// E16 — combining engines head-to-head: CC-Synch vs flat combining, through
// the structure fronts, against the lock-based and lock-free baselines.
//
// Survey / Fatourou-Kallimanis claim: the flat combiner's two fixed costs —
// the combiner-lock acquisition and the O(threads) publication-slot scan —
// are avoidable.  CC-Synch publishes a request with one wait-free exchange
// onto a request list and the combiner walks exactly the pending requests,
// so the per-operation synchronization cost is one exchange regardless of
// how many threads exist.  The expected shape at high thread counts:
//
//   CcSynch front  >  FlatCombiner front  >  coarse lock
//   CcSynch front  >  MS queue / Treiber  (no per-op allocation or CAS
//                                          retries; one exchange per op)
//
// The batch rows measure the OBATCHER-style apply_batch front: k operations
// ride one combining request, so the per-op synchronization cost drops by
// another factor of k.
//
// Rows: queue fronts (vs MS queue, coarse lock queue), stack fronts (vs
// Treiber, coarse lock stack), counter fronts (vs single fetch_add word,
// lock counter), and batched queue fronts.  All 50/50 mixed op workloads,
// prefilled; thread counts from the shared CCDS_BENCH_THREADS sweep.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <span>
#include <type_traits>
#include <vector>

#include "bench_util.hpp"
#include "counter/combining_counter.hpp"
#include "counter/counters.hpp"
#include "queue/coarse_queue.hpp"
#include "queue/combining_queue.hpp"
#include "queue/ms_queue.hpp"
#include "reclaim/epoch.hpp"
#include "stack/coarse_stack.hpp"
#include "stack/combining_stack.hpp"
#include "stack/treiber_stack.hpp"
#include "sync/ccsynch.hpp"
#include "sync/flat_combining.hpp"
#include "sync/spinlock.hpp"

namespace {

using namespace ccds;

constexpr std::uint64_t kPrefill = 1024;

// ---------------------------------------------------------------------------
// Queues: 50/50 enqueue/dequeue.
// ---------------------------------------------------------------------------

template <typename Queue>
void BM_QueueMix(benchmark::State& state) {
  static Queue* q = nullptr;
  if (state.thread_index() == 0) {
    q = new Queue();
    for (std::uint64_t i = 0; i < kPrefill; ++i) q->enqueue(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      q->enqueue(42);
    } else {
      benchmark::DoNotOptimize(q->try_dequeue());
    }
    ops.tick();
  }
  ops.finish();
  if constexpr (std::is_same_v<Queue, CombiningQueue<std::uint64_t, CcSynch>> ||
                std::is_same_v<Queue,
                               CombiningQueue<std::uint64_t, FlatCombiner>>) {
    ccds::bench::report_combining_front(state);
  }
  if (state.thread_index() == 0) {
    delete q;
    q = nullptr;
  }
}

using CcSynchQueue = CombiningQueue<std::uint64_t, CcSynch>;
using FcQueue = CombiningQueue<std::uint64_t, FlatCombiner>;
using MsQueueEbr = MSQueue<std::uint64_t, EpochDomain>;
using LockQueueTtas = LockQueue<std::uint64_t, TtasLock>;

BENCHMARK(BM_QueueMix<CcSynchQueue>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueMix<FcQueue>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueMix<MsQueueEbr>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueMix<LockQueueTtas>) CCDS_BENCH_THREADS;

// Batched fronts: 8 operations (4 enqueues, 4 dequeues) per combining
// request.  Throughput counts operations, not batches.
template <typename Queue>
void BM_QueueBatch8(benchmark::State& state) {
  constexpr int kBatch = 8;
  static Queue* q = nullptr;
  if (state.thread_index() == 0) {
    q = new Queue();
    for (std::uint64_t i = 0; i < kPrefill; ++i) q->enqueue(i);
  }
  ccds::bench::ThreadOps ops(state);
  std::uint64_t batched = 0;
  for (auto _ : state) {
    using Op = QueueOp<std::uint64_t>;
    Op batch[kBatch] = {Op::enqueue(1), Op::enqueue(2), Op::enqueue(3),
                        Op::enqueue(4), Op::dequeue(),  Op::dequeue(),
                        Op::dequeue(),  Op::dequeue()};
    q->apply_batch(std::span<Op>(batch));
    benchmark::DoNotOptimize(batch[4].result);
    batched += kBatch;
    ops.tick();
  }
  ops.finish();
  state.SetItemsProcessed(static_cast<std::int64_t>(batched));
  ccds::bench::report_batch_size(state, kBatch);
  ccds::bench::report_combining_front(state);
  if (state.thread_index() == 0) {
    delete q;
    q = nullptr;
  }
}

BENCHMARK(BM_QueueBatch8<CcSynchQueue>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueBatch8<FcQueue>) CCDS_BENCH_THREADS;

// ---------------------------------------------------------------------------
// Stacks: 50/50 push/pop.
// ---------------------------------------------------------------------------

template <typename Stack>
void BM_StackMix(benchmark::State& state) {
  static Stack* s = nullptr;
  if (state.thread_index() == 0) {
    s = new Stack();
    for (std::uint64_t i = 0; i < kPrefill; ++i) s->push(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      s->push(42);
    } else {
      benchmark::DoNotOptimize(s->try_pop());
    }
    ops.tick();
  }
  ops.finish();
  if constexpr (std::is_same_v<Stack, CombiningStack<std::uint64_t, CcSynch>> ||
                std::is_same_v<Stack,
                               CombiningStack<std::uint64_t, FlatCombiner>>) {
    ccds::bench::report_combining_front(state);
  }
  if (state.thread_index() == 0) {
    delete s;
    s = nullptr;
  }
}

using CcSynchStack = CombiningStack<std::uint64_t, CcSynch>;
using FcStack = CombiningStack<std::uint64_t, FlatCombiner>;
using TreiberEbr = TreiberStack<std::uint64_t, EpochDomain>;
using LockStackTtas = LockStack<std::uint64_t, TtasLock>;

BENCHMARK(BM_StackMix<CcSynchStack>) CCDS_BENCH_THREADS;
BENCHMARK(BM_StackMix<FcStack>) CCDS_BENCH_THREADS;
BENCHMARK(BM_StackMix<TreiberEbr>) CCDS_BENCH_THREADS;
BENCHMARK(BM_StackMix<LockStackTtas>) CCDS_BENCH_THREADS;

// ---------------------------------------------------------------------------
// Counters: pure fetch_add — the purest contention microbenchmark.
// ---------------------------------------------------------------------------

template <typename Counter>
void BM_CounterAdd(benchmark::State& state) {
  static Counter* c = nullptr;
  if (state.thread_index() == 0) c = new Counter();
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c->fetch_add(1));
    ops.tick();
  }
  ops.finish();
  if constexpr (std::is_same_v<Counter, CombiningCounter<CcSynch>> ||
                std::is_same_v<Counter, CombiningCounter<FlatCombiner>>) {
    ccds::bench::report_combining_front(state);
  }
  if (state.thread_index() == 0) {
    delete c;
    c = nullptr;
  }
}

using CcSynchCounter = CombiningCounter<CcSynch>;
using FcCounter = CombiningCounter<FlatCombiner>;

BENCHMARK(BM_CounterAdd<CcSynchCounter>) CCDS_BENCH_THREADS;
BENCHMARK(BM_CounterAdd<FcCounter>) CCDS_BENCH_THREADS;
BENCHMARK(BM_CounterAdd<AtomicCounter>) CCDS_BENCH_THREADS;
BENCHMARK(BM_CounterAdd<LockCounter<TtasLock>>) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// E16/E20 — combining engines head-to-head: every enrolled engine
// (sync/engines.hpp: FlatCombiner, CcSynch, HSynch, PSim), through the
// structure fronts, against the lock-based and lock-free baselines.
//
// Survey / Fatourou-Kallimanis claim: the flat combiner's two fixed costs —
// the combiner-lock acquisition and the O(threads) publication-slot scan —
// are avoidable.  CC-Synch publishes a request with one wait-free exchange
// onto a request list and the combiner walks exactly the pending requests;
// H-Synch splits that list per topology node so the combiner's cache
// traffic stays node-local; P-Sim replaces the combiner lock with a
// copy-apply-CAS universal construction and is wait-free.  The expected
// shape at high thread counts:
//
//   CcSynch/HSynch fronts  >  FlatCombiner front  >  coarse lock
//   CcSynch front          >  MS queue / Treiber  (no per-op allocation or
//                                                  CAS retries)
//   PSim pays the state copy per episode — slower on big states, but the
//   ONLY engine whose throughput survives a preempted combiner (E20).
//
// The batch rows measure the OBATCHER-style apply_batch front: k operations
// ride one combining request, so the per-op synchronization cost drops by
// another factor of k.
//
// E20 rows (BM_CounterAddPreempt): the preemption-injection hook
// (sync/combiner.hpp) stalls a serving thread at engine combine points a
// few hundred times per second, modeling an OS preempting the combiner
// mid-episode.  Blocking engines convoy behind the stalled combiner; the
// wait-free engine's other threads keep finishing episodes via helping.
// The per-thread fairness schema (bench_util.hpp ThreadOps) is emitted on
// every combining row so the gate can compare fairness across engines.
//
// Rows: queue fronts (vs MS queue, coarse lock queue), stack fronts (vs
// Treiber, coarse lock stack), counter fronts (vs single fetch_add word,
// lock counter), batched queue fronts, and the E20 preemption sweep.  All
// 50/50 mixed op workloads, prefilled; thread counts from the shared
// CCDS_BENCH_THREADS sweep.  Engines enroll through the X-macro: a new
// engine added to CCDS_COMBINER_ENGINES gets every row here for free.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <span>
#include <type_traits>
#include <vector>

#include "bench_util.hpp"
#include "counter/combining_counter.hpp"
#include "counter/counters.hpp"
#include "queue/coarse_queue.hpp"
#include "queue/combining_queue.hpp"
#include "queue/ms_queue.hpp"
#include "reclaim/epoch.hpp"
#include "stack/coarse_stack.hpp"
#include "stack/combining_stack.hpp"
#include "stack/treiber_stack.hpp"
#include "sync/engines.hpp"
#include "sync/spinlock.hpp"

namespace {

using namespace ccds;

constexpr std::uint64_t kPrefill = 1024;

// Combining fronts get the combining_front row flag; baselines don't.
template <typename T>
struct is_combining_front : std::false_type {};
template <typename V, template <typename> class E>
struct is_combining_front<CombiningQueue<V, E>> : std::true_type {};
template <typename V, template <typename> class E>
struct is_combining_front<CombiningStack<V, E>> : std::true_type {};
template <template <typename> class E>
struct is_combining_front<CombiningCounter<E>> : std::true_type {};

// One alias per engine and front, spelled <Engine>Queue / <Engine>Stack /
// <Engine>Counter so benchmark row names read as engine comparisons and
// scripts/check_combining.py can derive the required row set from the same
// engine list.
#define CCDS_ENGINE_FRONT_ALIASES(E)                  \
  using E##Queue = CombiningQueue<std::uint64_t, E>;  \
  using E##Stack = CombiningStack<std::uint64_t, E>;  \
  using E##Counter = CombiningCounter<E>;
CCDS_COMBINER_ENGINES(CCDS_ENGINE_FRONT_ALIASES)
#undef CCDS_ENGINE_FRONT_ALIASES

// ---------------------------------------------------------------------------
// Queues: 50/50 enqueue/dequeue.
// ---------------------------------------------------------------------------

template <typename Queue>
void BM_QueueMix(benchmark::State& state) {
  static Queue* q = nullptr;
  if (state.thread_index() == 0) {
    q = new Queue();
    for (std::uint64_t i = 0; i < kPrefill; ++i) q->enqueue(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      q->enqueue(42);
    } else {
      benchmark::DoNotOptimize(q->try_dequeue());
    }
    ops.tick();
  }
  ops.finish();
  if constexpr (is_combining_front<Queue>::value) {
    ccds::bench::report_combining_front(state);
  }
  if (state.thread_index() == 0) {
    delete q;
    q = nullptr;
  }
}

using MsQueueEbr = MSQueue<std::uint64_t, EpochDomain>;
using LockQueueTtas = LockQueue<std::uint64_t, TtasLock>;

#define CCDS_QUEUE_ROW(E) BENCHMARK(BM_QueueMix<E##Queue>) CCDS_BENCH_THREADS;
CCDS_COMBINER_ENGINES(CCDS_QUEUE_ROW)
#undef CCDS_QUEUE_ROW
BENCHMARK(BM_QueueMix<MsQueueEbr>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueMix<LockQueueTtas>) CCDS_BENCH_THREADS;

// Batched fronts: 8 operations (4 enqueues, 4 dequeues) per combining
// request.  Throughput counts operations, not batches.
template <typename Queue>
void BM_QueueBatch8(benchmark::State& state) {
  constexpr int kBatch = 8;
  static Queue* q = nullptr;
  if (state.thread_index() == 0) {
    q = new Queue();
    for (std::uint64_t i = 0; i < kPrefill; ++i) q->enqueue(i);
  }
  ccds::bench::ThreadOps ops(state);
  std::uint64_t batched = 0;
  for (auto _ : state) {
    using Op = QueueOp<std::uint64_t>;
    Op batch[kBatch] = {Op::enqueue(1), Op::enqueue(2), Op::enqueue(3),
                        Op::enqueue(4), Op::dequeue(),  Op::dequeue(),
                        Op::dequeue(),  Op::dequeue()};
    q->apply_batch(std::span<Op>(batch));
    benchmark::DoNotOptimize(batch[4].result);
    batched += kBatch;
    ops.tick();
  }
  ops.finish();
  state.SetItemsProcessed(static_cast<std::int64_t>(batched));
  ccds::bench::report_batch_size(state, kBatch);
  ccds::bench::report_combining_front(state);
  if (state.thread_index() == 0) {
    delete q;
    q = nullptr;
  }
}

#define CCDS_QBATCH_ROW(E) \
  BENCHMARK(BM_QueueBatch8<E##Queue>) CCDS_BENCH_THREADS;
CCDS_COMBINER_ENGINES(CCDS_QBATCH_ROW)
#undef CCDS_QBATCH_ROW

// ---------------------------------------------------------------------------
// Stacks: 50/50 push/pop.
// ---------------------------------------------------------------------------

template <typename Stack>
void BM_StackMix(benchmark::State& state) {
  static Stack* s = nullptr;
  if (state.thread_index() == 0) {
    s = new Stack();
    for (std::uint64_t i = 0; i < kPrefill; ++i) s->push(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      s->push(42);
    } else {
      benchmark::DoNotOptimize(s->try_pop());
    }
    ops.tick();
  }
  ops.finish();
  if constexpr (is_combining_front<Stack>::value) {
    ccds::bench::report_combining_front(state);
  }
  if (state.thread_index() == 0) {
    delete s;
    s = nullptr;
  }
}

using TreiberEbr = TreiberStack<std::uint64_t, EpochDomain>;
using LockStackTtas = LockStack<std::uint64_t, TtasLock>;

#define CCDS_STACK_ROW(E) BENCHMARK(BM_StackMix<E##Stack>) CCDS_BENCH_THREADS;
CCDS_COMBINER_ENGINES(CCDS_STACK_ROW)
#undef CCDS_STACK_ROW
BENCHMARK(BM_StackMix<TreiberEbr>) CCDS_BENCH_THREADS;
BENCHMARK(BM_StackMix<LockStackTtas>) CCDS_BENCH_THREADS;

// ---------------------------------------------------------------------------
// Counters: pure fetch_add — the purest contention microbenchmark.
// ---------------------------------------------------------------------------

template <typename Counter>
void BM_CounterAdd(benchmark::State& state) {
  static Counter* c = nullptr;
  if (state.thread_index() == 0) c = new Counter();
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c->fetch_add(1));
    ops.tick();
  }
  ops.finish();
  if constexpr (is_combining_front<Counter>::value) {
    ccds::bench::report_combining_front(state);
  }
  if (state.thread_index() == 0) {
    delete c;
    c = nullptr;
  }
}

#define CCDS_COUNTER_ROW(E) \
  BENCHMARK(BM_CounterAdd<E##Counter>) CCDS_BENCH_THREADS;
CCDS_COMBINER_ENGINES(CCDS_COUNTER_ROW)
#undef CCDS_COUNTER_ROW
BENCHMARK(BM_CounterAdd<AtomicCounter>) CCDS_BENCH_THREADS;
BENCHMARK(BM_CounterAdd<LockCounter<TtasLock>>) CCDS_BENCH_THREADS;

// ---------------------------------------------------------------------------
// E20: the same counter mix with combiner preemption injected.
//
// The hook fires at every engine's combine-time preemption point; one call
// in 128 stalls the serving thread for a busy window several episodes
// long.  For the blocking engines every waiter behind the stalled combiner
// eats the stall; for P-Sim the other threads install the stalled thread's
// announced op themselves and keep going.  Rows carry the same fairness
// schema plus a preempt_injected flag so check_combining.py can pair each
// engine's clean and preempted rows.
// ---------------------------------------------------------------------------

void bench_stall_hook(void*) {
  thread_local std::uint32_t calls = 0;
  if ((++calls & 127u) != 0) return;
  for (int spin = 0; spin < 20000; ++spin) {
    benchmark::DoNotOptimize(spin);
  }
}

template <typename Counter>
void BM_CounterAddPreempt(benchmark::State& state) {
  static Counter* c = nullptr;
  if (state.thread_index() == 0) {
    c = new Counter();
    detail::set_preemption_hook(&bench_stall_hook, nullptr);
  }
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c->fetch_add(1));
    ops.tick();
  }
  ops.finish();
  ccds::bench::report_combining_front(state);
  state.counters["preempt_injected"] =
      benchmark::Counter(1.0, benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    detail::set_preemption_hook(nullptr, nullptr);
    delete c;
    c = nullptr;
  }
}

#define CCDS_PREEMPT_ROW(E) \
  BENCHMARK(BM_CounterAddPreempt<E##Counter>) CCDS_BENCH_THREADS;
CCDS_COMBINER_ENGINES(CCDS_PREEMPT_ROW)
#undef CCDS_PREEMPT_ROW

}  // namespace

BENCHMARK_MAIN();

// E1 + E13 — shared-counter throughput vs thread count.
//
// Reproduces the survey's opening figure: a mutex-protected counter
// *degrades* as threads are added; fetch_add holds up better but still
// serializes on one cache line; a sharded counter's increments scale freely
// (reads pay the sum); the combining tree trades single-op latency for
// bounded root contention; flat combining amortizes lock handoffs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>

#include "bench_util.hpp"
#include "counter/combining_tree.hpp"
#include "counter/counters.hpp"
#include "sync/flat_combining.hpp"
#include "sync/spinlock.hpp"
#include "sync/ticket_lock.hpp"

namespace {

using namespace ccds;

template <typename Counter>
void BM_CounterIncrement(benchmark::State& state) {
  static Counter* counter = nullptr;
  if (state.thread_index() == 0) counter = new Counter();
  for (auto _ : state) {
    counter->fetch_add(1);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete counter;
    counter = nullptr;
  }
}

void BM_ShardedCounterIncrement(benchmark::State& state) {
  static ShardedCounter* counter = nullptr;
  if (state.thread_index() == 0) counter = new ShardedCounter();
  for (auto _ : state) {
    counter->add(1);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete counter;
    counter = nullptr;
  }
}

void BM_FlatCombiningCounter(benchmark::State& state) {
  static FlatCombiner<std::uint64_t>* fc = nullptr;
  if (state.thread_index() == 0) fc = new FlatCombiner<std::uint64_t>(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc->apply([](std::uint64_t& v) { return v++; }));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete fc;
    fc = nullptr;
  }
}

// Mixed increment/read workload for the sharded counter (reads cost O(T)).
void BM_ShardedCounterWithReads(benchmark::State& state) {
  static ShardedCounter* counter = nullptr;
  if (state.thread_index() == 0) counter = new ShardedCounter();
  ccds::bench::make_rng(state);
  int i = 0;
  for (auto _ : state) {
    if (++i % 100 == 0) {
      benchmark::DoNotOptimize(counter->load());
    } else {
      counter->add(1);
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete counter;
    counter = nullptr;
  }
}

BENCHMARK(BM_CounterIncrement<LockCounter<std::mutex>>) CCDS_BENCH_THREADS;
BENCHMARK(BM_CounterIncrement<LockCounter<TtasLock>>) CCDS_BENCH_THREADS;
BENCHMARK(BM_CounterIncrement<LockCounter<TicketLock>>) CCDS_BENCH_THREADS;
BENCHMARK(BM_CounterIncrement<AtomicCounter>) CCDS_BENCH_THREADS;
BENCHMARK(BM_CounterIncrement<CombiningTreeCounter>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ShardedCounterIncrement) CCDS_BENCH_THREADS;
BENCHMARK(BM_ShardedCounterWithReads) CCDS_BENCH_THREADS;
BENCHMARK(BM_FlatCombiningCounter) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

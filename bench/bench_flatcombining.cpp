// E12 — flat combining vs lock handoff vs lock-free, on a sequential FIFO.
//
// Survey / Hendler-et-al. claim: for short operations, the dominant cost of
// a lock-based structure is the lock *handoff* (one coherence transfer per
// operation).  Flat combining pays one handoff per *batch*: one thread
// holds the lock and executes everyone's published ops.  It therefore beats
// the coarse lock under bursty contention, while the MS queue — which never
// hands anything off — tops the chart.
//
// The combining side is engine-templated over the shared Combiner policy
// (sync/combiner.hpp), so the same workload runs over every enrolled
// engine (sync/engines.hpp); the head-to-head engine comparison (plus
// structure fronts, batching, and the E20 preemption sweep) lives in
// bench_combining.cpp.  Thread counts come from
// the shared CCDS_BENCH_THREADS sweep in bench_util.hpp.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "bench_util.hpp"
#include "queue/coarse_queue.hpp"
#include "queue/ms_queue.hpp"
#include "reclaim/epoch.hpp"
#include "sync/engines.hpp"
#include "sync/spinlock.hpp"

namespace {

using namespace ccds;

template <template <typename> class Engine>
void BM_CombinedSeqQueue(benchmark::State& state) {
  using Combined = Engine<std::deque<std::uint64_t>>;
  static Combined* cq = nullptr;
  if (state.thread_index() == 0) {
    cq = new Combined();
    cq->apply_locked([](std::deque<std::uint64_t>& q) {
      for (std::uint64_t i = 0; i < 1024; ++i) q.push_back(i);
    });
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      cq->apply([](std::deque<std::uint64_t>& q) { q.push_back(42); });
    } else {
      benchmark::DoNotOptimize(
          cq->apply([](std::deque<std::uint64_t>& q)
                        -> std::optional<std::uint64_t> {
            if (q.empty()) return std::nullopt;
            std::uint64_t v = q.front();
            q.pop_front();
            return v;
          }));
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete cq;
    cq = nullptr;
  }
}

// Every enrolled engine (sync/engines.hpp) runs the identical sequential
// FIFO workload; row names carry the engine identifier directly, so
// summaries read FlatCombiner vs CcSynch vs HSynch vs PSim.
#define CCDS_SEQQ_ROW(E) BENCHMARK(BM_CombinedSeqQueue<E>) CCDS_BENCH_THREADS;
CCDS_COMBINER_ENGINES(CCDS_SEQQ_ROW)
#undef CCDS_SEQQ_ROW

template <typename Queue>
void BM_BaselineQueue(benchmark::State& state) {
  static Queue* q = nullptr;
  if (state.thread_index() == 0) {
    q = new Queue();
    for (std::uint64_t i = 0; i < 1024; ++i) q->enqueue(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      q->enqueue(42);
    } else {
      benchmark::DoNotOptimize(q->try_dequeue());
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete q;
    q = nullptr;
  }
}

using LockQueueTtasB = LockQueue<std::uint64_t, TtasLock>;
using LockQueueMutexB = LockQueue<std::uint64_t, std::mutex>;
using MsQueueEbrB = MSQueue<std::uint64_t, EpochDomain>;

BENCHMARK(BM_BaselineQueue<LockQueueTtasB>) CCDS_BENCH_THREADS;
BENCHMARK(BM_BaselineQueue<LockQueueMutexB>) CCDS_BENCH_THREADS;
BENCHMARK(BM_BaselineQueue<MsQueueEbrB>) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// E4 — FIFO queue family: coarse lock vs two-lock vs Michael-Scott.
//
// 50/50 enqueue/dequeue over a prefilled queue.  Survey claim: the two-lock
// queue roughly doubles the coarse queue (producers and consumers no longer
// collide), and the lock-free MS queue wins beyond a few threads.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>

#include "bench_util.hpp"
#include "queue/coarse_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/two_lock_queue.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "sync/spinlock.hpp"

namespace {

using namespace ccds;

template <typename Queue>
void BM_QueueEnqDeq(benchmark::State& state) {
  static Queue* queue = nullptr;
  if (state.thread_index() == 0) {
    queue = new Queue();
    for (std::uint64_t i = 0; i < 1024; ++i) queue->enqueue(i);  // prefill
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      queue->enqueue(42);
    } else {
      benchmark::DoNotOptimize(queue->try_dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}

using LockQueueMutex = LockQueue<std::uint64_t, std::mutex>;
using LockQueueTtas = LockQueue<std::uint64_t, TtasLock>;
using TwoLockMutex = TwoLockQueue<std::uint64_t, std::mutex>;
using TwoLockTtas = TwoLockQueue<std::uint64_t, TtasLock>;
using MSQueueHP = MSQueue<std::uint64_t, HazardDomain>;
using MSQueueEBR = MSQueue<std::uint64_t, EpochDomain>;

BENCHMARK(BM_QueueEnqDeq<LockQueueMutex>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueEnqDeq<LockQueueTtas>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueEnqDeq<TwoLockMutex>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueEnqDeq<TwoLockTtas>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueEnqDeq<MSQueueHP>) CCDS_BENCH_THREADS;
BENCHMARK(BM_QueueEnqDeq<MSQueueEBR>) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

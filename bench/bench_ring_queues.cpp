// E5 — specialized bounded queues in their niches.
//
// Survey claim: when you can constrain the communication pattern, the
// structure gets dramatically faster.  The SPSC ring (no RMW at all) beats
// everything in its 1P/1C niche; the Vyukov bounded MPMC (one fetch-add +
// one private cell handoff per op) beats the unbounded linked queues.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "core/arch.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "reclaim/epoch.hpp"

namespace {

using namespace ccds;

// SPSC ring transfer: thread 0 produces, thread 1 consumes.  Run with
// exactly 2 threads.
void BM_SpscRingTransfer(benchmark::State& state) {
  static SpscRing<std::uint64_t>* ring = nullptr;
  if (state.thread_index() == 0) ring = new SpscRing<std::uint64_t>(4096);
  if (state.thread_index() == 0) {
    for (auto _ : state) {
      while (!ring->try_push(1)) cpu_relax();
    }
  } else {
    for (auto _ : state) {
      while (!ring->try_pop()) cpu_relax();
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    // Drain whatever the consumer didn't take before freeing.
    delete ring;
    ring = nullptr;
  }
}
BENCHMARK(BM_SpscRingTransfer)->Threads(2)->UseRealTime();

// Bounded MPMC: mixed enqueue/dequeue, all threads both produce and consume.
void BM_MpmcMixed(benchmark::State& state) {
  static MpmcQueue<std::uint64_t>* q = nullptr;
  if (state.thread_index() == 0) {
    q = new MpmcQueue<std::uint64_t>(4096);
    for (int i = 0; i < 1024; ++i) q->try_enqueue(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      benchmark::DoNotOptimize(q->try_enqueue(42));
    } else {
      benchmark::DoNotOptimize(q->try_dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete q;
    q = nullptr;
  }
}
BENCHMARK(BM_MpmcMixed) CCDS_BENCH_THREADS;

// The general-purpose MS queue on the same mixed workload, for the direct
// bounded-vs-unbounded comparison.
void BM_MsQueueMixedBaseline(benchmark::State& state) {
  static MSQueue<std::uint64_t, EpochDomain>* q = nullptr;
  if (state.thread_index() == 0) {
    q = new MSQueue<std::uint64_t, EpochDomain>();
    for (int i = 0; i < 1024; ++i) q->enqueue(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      q->enqueue(42);
    } else {
      benchmark::DoNotOptimize(q->try_dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete q;
    q = nullptr;
  }
}
BENCHMARK(BM_MsQueueMixedBaseline) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// E2 — mutual-exclusion lock spectrum under contention.
//
// Reproduces the survey's lock-scaling claims: TAS collapses first (every
// spin is a coherence storm), TTAS holds on a little longer, backoff
// stretches further, and the FIFO/queue locks (ticket, Anderson, MCS, CLH)
// degrade most gracefully because waiters spin locally.  The Arg is the
// critical-section length in dependent-work units — short sections maximize
// lock overhead, longer ones shift the bottleneck to the serial section
// itself (Amdahl).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>

#include "bench_util.hpp"
#include "sync/anderson_lock.hpp"
#include "sync/clh_lock.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/spinlock.hpp"
#include "sync/ticket_lock.hpp"

namespace {

using namespace ccds;

// Shared data mutated in the critical section: a real protected payload so
// the lock orders visible work, not an empty region.
struct Protected {
  std::uint64_t value = 0;
};

template <typename Lock>
void BM_LockCriticalSection(benchmark::State& state) {
  static Lock* lock = nullptr;
  static Protected* data = nullptr;
  if (state.thread_index() == 0) {
    lock = new Lock();
    data = new Protected();
  }
  const int cs_work = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::lock_guard<Lock> g(*lock);
    // Dependent chain: cannot be vectorized away, models real CS work.
    std::uint64_t v = data->value;
    for (int i = 0; i < cs_work; ++i) v = v * 2654435761u + 1;
    data->value = v + 1;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete lock;
    delete data;
    lock = nullptr;
    data = nullptr;
  }
}

#define CCDS_LOCK_BENCH(Lock)                                     \
  BENCHMARK(BM_LockCriticalSection<Lock>)                         \
      ->Arg(0)                                                    \
      ->Arg(64)                                                   \
      ->ThreadRange(1, 8)                                         \
      ->UseRealTime()

CCDS_LOCK_BENCH(TasLock);
CCDS_LOCK_BENCH(TtasLock);
CCDS_LOCK_BENCH(TtasBackoffLock);
CCDS_LOCK_BENCH(TicketLock);
CCDS_LOCK_BENCH(AndersonLock);
CCDS_LOCK_BENCH(McsLock);
CCDS_LOCK_BENCH(ClhLock);
CCDS_LOCK_BENCH(std::mutex);

}  // namespace

BENCHMARK_MAIN();

// E10 — Chase-Lev work-stealing deque: owner throughput under stealers.
//
// Survey claim: the deque's asymmetry is the point — the owner's push/take
// path has no RMW in the common case, so adding thieves barely dents owner
// throughput; thieves pay the CAS.  Thread 0 is the owner; every other
// thread steals.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "queue/ws_deque.hpp"

namespace {

using namespace ccds;

void BM_WsDequeOwnerWithThieves(benchmark::State& state) {
  static WorkStealingDeque<std::uint64_t>* deque = nullptr;
  if (state.thread_index() == 0) {
    deque = new WorkStealingDeque<std::uint64_t>(1 << 16);
  }
  if (state.thread_index() == 0) {
    // Owner: push/pop pairs (the scheduler hot path).
    std::uint64_t i = 0;
    for (auto _ : state) {
      deque->push(i++);
      benchmark::DoNotOptimize(deque->try_pop());
    }
    state.SetItemsProcessed(state.iterations() * 2);
  } else {
    // Thieves: hammer steal.
    for (auto _ : state) {
      benchmark::DoNotOptimize(deque->try_steal());
    }
    state.SetItemsProcessed(state.iterations());
  }
  if (state.thread_index() == 0) {
    delete deque;
    deque = nullptr;
  }
}
BENCHMARK(BM_WsDequeOwnerWithThieves)->ThreadRange(1, 8)->UseRealTime();

// Pure owner loop, no interference: the deque's speed-of-light.
void BM_WsDequeOwnerAlone(benchmark::State& state) {
  WorkStealingDeque<std::uint64_t> deque(1 << 16);
  std::uint64_t i = 0;
  for (auto _ : state) {
    deque.push(i++);
    benchmark::DoNotOptimize(deque.try_pop());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_WsDequeOwnerAlone);

}  // namespace

BENCHMARK_MAIN();

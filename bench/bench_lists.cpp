// E6 — list-based set spectrum across workload mixes.
//
// Survey claim: coarse < hand-over-hand < optimistic < lazy <= lock-free,
// with the gap widening as the read share grows (lazy/lock-free reads take
// no locks at all, HoH reads still lock every node on the path).
//
// Args: {read%, insert%}; remove% is the remainder.  Key range 512 keeps
// traversals meaningful without making single ops glacial.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>

#include "bench_util.hpp"
#include "list/coarse_list.hpp"
#include "list/harris_list.hpp"
#include "list/hoh_list.hpp"
#include "list/lazy_list.hpp"
#include "list/optimistic_list.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"

namespace {

using namespace ccds;
using namespace ccds::bench;

constexpr std::uint64_t kKeyRange = 512;

template <typename Set>
void BM_ListSetMix(benchmark::State& state) {
  // Magic static: construction is thread-safe and happens on first touch by
  // whichever thread gets here first; call_once prefilling likewise.  The
  // structure persists across configs/repetitions (balanced mixes keep the
  // occupancy near half), which avoids any setup/teardown race entirely.
  static Set& set = *new Set();
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] { prefill_set(set, kKeyRange); });
  run_set_mix(set, state, kKeyRange, static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)));
}

using CoarseList = CoarseListSet<std::uint64_t>;
using HohList = HandOverHandListSet<std::uint64_t>;
using OptList = OptimisticListSet<std::uint64_t>;
using LazyList = LazyListSet<std::uint64_t>;
using HarrisHP = HarrisMichaelListSet<std::uint64_t, HazardDomain>;
using HarrisEBR = HarrisMichaelListSet<std::uint64_t, EpochDomain>;

BENCHMARK(BM_ListSetMix<CoarseList>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_ListSetMix<HohList>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_ListSetMix<OptList>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_ListSetMix<LazyList>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_ListSetMix<HarrisHP>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_ListSetMix<HarrisEBR>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// E19: YCSB-style serving — shard-per-core KV tier vs. shared maps.
//
// The serving question E7 (hash map micro-ops) cannot answer: when a KV
// tier fronts the map with routing and mailboxes, does deleting contention
// via shard ownership (service/kv_service.hpp) beat the best shared map
// under a skewed, update-heavy request stream?  Three tiers serve the SAME
// YCSB-shaped workload — zipfian key popularity over a 2M-key space, A/B/C
// read-update mixes — from the same prefilled population:
//
//   sharded  — KvService: requests hash-route through per-(client,shard)
//              SpscRing mailboxes to 4 shard workers, each batch-draining
//              into a private SwissHashMap partition (windowed async
//              clients, 32 outstanding, so workers see real batches);
//   swiss    — one shared SwissHashMap, every measured thread operates
//              directly (the repo's best shared map, E7);
//   striped  — one shared StripedHashMap, 64 stripe locks (the classic
//              shared design and E7's foil).
//
// Measurement model (same discipline as E17/E18, documented in
// EXPERIMENTS.md): this host has ONE CPU, so wall-clock items_per_second
// mostly measures the scheduler — the sharded tier pays for 4 extra worker
// threads in quanta, and SHOULD lose wall-clock here; that loss is
// reported, not hidden.  The architectural comparison rides on
// scheduler-noise-free WORK counters (hash/hash_stats.hpp, compiled in via
// CCDS_HASH_STATS in this TU only):
//
//   probes_per_op     — structure-examination work units (16-slot group
//                       visits for swiss tiers, bucket head + chain nodes
//                       for striped);
//   cas_fails_per_op  — contention episodes: group-lock waits/CAS losses,
//                       seqlock torn-read retries, stripe try_lock
//                       failures — counted once per DISTINCT colliding
//                       writer session via seqlock generation distance
//                       (hash_stats.hpp), never per spin iteration: a
//                       convoy of k holders slept through counts k, a
//                       whole quantum spinning behind one parked holder
//                       counts 1 (spin counts scale with scheduler
//                       latency, the noise this counter excludes);
//   work_per_op       — their sum, the gated quantity
//                       (scripts/check_ycsb.py --perf: sharded must do
//                       >= 1.2x less work than shared swiss at T=8 on the
//                       update-heavy A mix at alpha=1.2).
//
// Because critical sections (~100ns) never span a scheduling quantum
// (~ms) on one CPU, real mid-operation preemption rounds to zero and every
// tier's contention would read ~0.  HashStats::maybe-stall injection (the
// E17 PreemptLess pattern) restores multicore-like interleaving: every
// stall_every-th PROBE by an opted-in thread (measured clients on shared
// tiers, shard workers on the sharded tier — identical per-probe rate, no
// tier-dependent condition) yields the CPU for stall_burst quanta.  A
// shared map turns a parked in-lock writer into waiter episodes on every
// colliding thread; a shard-owned partition cannot contend however often
// its worker stalls.  The residual counter difference is the architecture,
// not the host.
//
// Witnesses on sharded rows: per-shard occupancy min/max (routing balance),
// per-shard applied-ops min/max (load balance), drain_batch_avg/max (the
// amortization actually happening), fallback_ops (requests that rode the
// shared MpmcQueue because clients outnumbered ring slots — the T=8 series
// runs 8 clients over 4 ring slots on purpose).
#define CCDS_HASH_STATS 1

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/zipf.hpp"
#include "hash/hash_stats.hpp"
#include "hash/striped_hash_map.hpp"
#include "hash/swiss_hash_map.hpp"
#include "service/kv_service.hpp"
#include "sync/oneshot.hpp"

namespace ccds {
namespace {

using bench::make_rng;
using bench::ThreadOps;

constexpr std::uint64_t kKeyRange = 1ull << 21;  // 2M records, all resident
constexpr std::size_t kShards = 4;
constexpr std::size_t kRingClients = 4;  // T=8 puts 4 clients on fallback
constexpr std::size_t kWindow = 32;      // outstanding requests per client
// Injection magnitude: every 4th probe parks the prober for 8 yields
// (E17's zipfian comparator yields on EVERY comparison — this is milder).
// Calibration (this host): at 48/2 a parked writer exposes its locked
// group to only ~30 other-thread ops and shared-swiss contention reads
// 0.01 episodes/op — far below what 8 genuinely concurrent cores would
// produce on an 18%-hot key (every hot write overlapping ~0.18x7 ops;
// the sum over the zipf(1.2) key-collision distribution puts the
// full-overlap collision probability near 0.2-0.35 per op).  4/8 lands
// the shared map at ~0.3 episodes/op on the A mix at alpha=1.2 — inside
// that physically expected band — while staying tier-blind: the sharded
// workers stall at the identical per-probe rate and still read ~0,
// because nobody else can touch their partition.
constexpr int kStallEvery = 4;
constexpr int kStallBurst = 8;

// Pre-sized so the 2M-key prefill triggers no growth and the measured
// phase (updates overwrite, nothing inserts new keys) never rehashes.
constexpr std::size_t kSharedSlots = 1ull << 22;

using Svc = KvService<std::uint64_t, std::uint64_t>;
using SharedSwiss = SwissHashMap<std::uint64_t, std::uint64_t>;
using SharedStriped = StripedHashMap<std::uint64_t, std::uint64_t>;

const bool kYcsbContext = [] {
  benchmark::AddCustomContext("ycsb_key_range", std::to_string(kKeyRange));
  benchmark::AddCustomContext("ycsb_shard_count", std::to_string(kShards));
  benchmark::AddCustomContext("ycsb_ring_clients",
                              std::to_string(kRingClients));
  benchmark::AddCustomContext(
      "ycsb_clients_oversubscribe_rings",
      bench::kBenchMaxThreads > static_cast<int>(kRingClients) ? "true"
                                                               : "false");
  benchmark::AddCustomContext("ycsb_window", std::to_string(kWindow));
  benchmark::AddCustomContext("ycsb_stall_every", std::to_string(kStallEvery));
  benchmark::AddCustomContext("ycsb_stall_burst", std::to_string(kStallBurst));
  return true;
}();

// All three tiers live in one struct and prefill interleaved, for the same
// allocation-locality fairness reason as E17's set bundle (matters for the
// striped tier's nodes; the swiss tiers store entries inline).
struct Tiers {
  Tiers()
      : svc([] {
          Svc::Config cfg;
          cfg.shards = kShards;
          cfg.client_slots = kRingClients;
          cfg.ring_capacity = 128;
          cfg.fallback_capacity = 1024;
          cfg.drain_batch = 64;
          cfg.initial_slots_per_shard = kSharedSlots / kShards;
          cfg.pin_workers = false;  // 1-CPU host: pinning would serialize
          cfg.worker_init = [](std::size_t) { HashStats::enabled = true; };
          return cfg;
        }()),
        swiss(kSharedSlots),
        striped(kSharedSlots) {}

  Svc svc;
  SharedSwiss swiss;
  SharedStriped striped;
};

Tiers& tiers() {
  // Magic static + call_once, never destroyed: teardown rules out
  // shutdown races with benchmark repetition teardown (see
  // bench_lists.cpp).  The service's 4 shard workers idle at ~1ms sleeps
  // between sharded rows — they touch no map while idle, so they neither
  // pollute the work counters nor steal meaningful quanta from the shared
  // tiers' rows.
  static Tiers& t = *new Tiers();
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] {
    HashStats::stall_every = 0;  // no injection during setup
    for (std::uint64_t k = 0; k < kKeyRange; ++k) {
      t.svc.prefill(k, k);
      t.swiss.insert(k, k);
      t.striped.insert(k, k);
    }
    HashStats::stall_every = kStallEvery;
    HashStats::stall_burst = kStallBurst;
  });
  return t;
}

// Zipf alias tables built once per alpha (arg is alpha in tenths).
const ZipfianGenerator& zipf_table(int alpha_tenths) {
  static const ZipfianGenerator z09(kKeyRange, 0.9);
  static const ZipfianGenerator z12(kKeyRange, 1.2);
  return alpha_tenths == 9 ? z09 : z12;
}

// Snapshot the global work counters around the timed loop and report them
// per measured operation (thread 0 only; the framework's loop barriers
// order the snapshots, same pattern as E17's RecoveryEvents).  The window
// tail of a sharded row (<= kWindow ops per client) completes after the
// stop barrier, a <0.1% slack at artifact iteration counts.
struct WorkCounters {
  std::uint64_t probes0 = 0;
  std::uint64_t cas0 = 0;
  explicit WorkCounters(const benchmark::State& state) {
    if (state.thread_index() != 0) return;
    probes0 = HashStats::probes.load(std::memory_order_relaxed);  // relaxed: stats
    cas0 = HashStats::cas_fails.load(std::memory_order_relaxed);  // relaxed: stats
  }
  void report(benchmark::State& state) const {
    if (state.thread_index() != 0) return;
    const double ops = static_cast<double>(state.iterations()) *
                       static_cast<double>(state.threads());
    const double probes =
        static_cast<double>(HashStats::probes.load(std::memory_order_relaxed) -
                            probes0);  // relaxed: stats
    const double cas = static_cast<double>(
        HashStats::cas_fails.load(std::memory_order_relaxed) - cas0);  // relaxed: stats
    const double pp = ops > 0.0 ? probes / ops : 0.0;
    const double cp = ops > 0.0 ? cas / ops : 0.0;
    state.counters["probes_per_op"] = benchmark::Counter(pp);
    state.counters["cas_fails_per_op"] = benchmark::Counter(cp);
    state.counters["work_per_op"] = benchmark::Counter(pp + cp);
  }
};

// ---- shared-map tiers ------------------------------------------------------

// YCSB mix over a fully resident population: read_pct reads, the rest
// updates (inserts that overwrite — the population neither grows nor
// shrinks, so no tier rehashes mid-measurement).
template <typename Map>
void run_ycsb_shared(Map& map, benchmark::State& state, int read_pct,
                     int alpha_tenths) {
  const ZipfianGenerator& zipf = zipf_table(alpha_tenths);
  Xoshiro256 rng = make_rng(state);
  WorkCounters wc(state);
  ThreadOps ops(state);
  HashStats::enabled = true;  // measured threads opt into stall injection
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = zipf.next(rng);
    if (static_cast<int>(r % 100) < read_pct) {
      benchmark::DoNotOptimize(map.get(key));
    } else {
      benchmark::DoNotOptimize(map.insert(key, r));
    }
    ops.tick();
  }
  HashStats::enabled = false;
  ops.finish();
  wc.report(state);
}

void BM_YcsbSharedSwiss(benchmark::State& state) {
  run_ycsb_shared(tiers().swiss, state, static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)));
}

void BM_YcsbStriped(benchmark::State& state) {
  run_ycsb_shared(tiers().striped, state, static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)));
}

// ---- sharded serving tier --------------------------------------------------

// Per-shard witness deltas (thread 0 only).  max_batch is a lifetime
// high-water mark (no reset API by design — it is monitoring state, not a
// benchmark hook), so drain_batch_max reports the mark as of this row.
struct ShardWitness {
  Svc::ShardStats before[64] = {};
  std::size_t n = 0;
  explicit ShardWitness(const benchmark::State& state, const Svc& svc) {
    if (state.thread_index() != 0) return;
    n = svc.shards();
    for (std::size_t s = 0; s < n; ++s) before[s] = svc.shard_stats(s);
  }
  void report(benchmark::State& state, const Svc& svc) const {
    if (state.thread_index() != 0) return;
    double ops_min = 0.0, ops_max = 0.0, occ_min = 0.0, occ_max = 0.0;
    double episodes = 0.0, applied = 0.0, batch_max = 0.0, fallback = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const auto st = svc.shard_stats(s);
      const double d_ops = static_cast<double>(st.ops - before[s].ops);
      const double d_epi =
          static_cast<double>(st.episodes - before[s].episodes);
      const double occ = static_cast<double>(svc.shard_map(s).size());
      ops_min = s == 0 ? d_ops : std::min(ops_min, d_ops);
      ops_max = s == 0 ? d_ops : std::max(ops_max, d_ops);
      occ_min = s == 0 ? occ : std::min(occ_min, occ);
      occ_max = s == 0 ? occ : std::max(occ_max, occ);
      applied += d_ops;
      episodes += d_epi;
      batch_max = std::max(batch_max, static_cast<double>(st.max_batch));
      fallback += static_cast<double>(st.fallback_ops - before[s].fallback_ops);
    }
    state.counters["shard_ops_min"] = benchmark::Counter(ops_min);
    state.counters["shard_ops_max"] = benchmark::Counter(ops_max);
    state.counters["shard_occ_min"] = benchmark::Counter(occ_min);
    state.counters["shard_occ_max"] = benchmark::Counter(occ_max);
    state.counters["drain_batch_avg"] =
        benchmark::Counter(episodes > 0.0 ? applied / episodes : 0.0);
    state.counters["drain_batch_max"] = benchmark::Counter(batch_max);
    state.counters["fallback_ops"] = benchmark::Counter(fallback);
  }
};

// Windowed asynchronous client: kWindow requests outstanding, slot i
// reclaimed (blocking in OneShot::take only when the pipeline is behind)
// just before reuse.  Batching at the shard comes from the window — a
// worker that wakes finds several of this client's requests queued and
// drains them in one episode.
void BM_YcsbSharded(benchmark::State& state) {
  Svc& svc = tiers().svc;
  const int read_pct = static_cast<int>(state.range(0));
  const ZipfianGenerator& zipf = zipf_table(static_cast<int>(state.range(1)));
  auto client = svc.make_client();
  Xoshiro256 rng = make_rng(state);

  std::vector<OneShot<Svc::Response>> slots(kWindow);
  std::vector<bool> live(kWindow, false);
  WorkCounters wc(state);
  ShardWitness sw(state, svc);
  ThreadOps ops(state);
  // Clients never touch a map — the shard workers probe (and stall) on
  // their behalf, enabled once at service construction via worker_init.
  std::uint64_t issued = 0;
  for (auto _ : state) {
    const std::size_t i = issued % kWindow;
    if (live[i]) {
      benchmark::DoNotOptimize(slots[i].take());
      ops.tick();  // requester-attributed completion, as everywhere
    }
    const std::uint64_t r = rng.next();
    const std::uint64_t key = zipf.next(rng);
    if (static_cast<int>(r % 100) < read_pct) {
      client.get_async(key, &slots[i]);
    } else {
      client.put_async(key, r, &slots[i]);
    }
    live[i] = true;
    ++issued;
  }
  for (std::size_t i = 0; i < kWindow; ++i) {  // drain the tail window
    if (live[i]) slots[i].take();
  }
  ops.finish();
  bench::report_batch_size(state, 0);  // batch size is emergent; see avg/max
  wc.report(state);
  sw.report(state, svc);
}

// Args: {read_pct, alpha_tenths}.  A = 50/50 update-heavy, B = 95/5,
// C = 100/0 read-only; alpha 0.9 (mild skew) and 1.2 (hot-key regime —
// rank 0 alone draws ~18% of requests).
#define CCDS_YCSB_ARGS                                                 \
  ->Args({50, 9})->Args({50, 12})->Args({95, 9})->Args({95, 12})       \
      ->Args({100, 9})->Args({100, 12})

#define CCDS_YCSB_THREADS ->Threads(1)->Threads(4)->Threads(8)->UseRealTime()

BENCHMARK(BM_YcsbSharded)
    CCDS_YCSB_ARGS CCDS_YCSB_THREADS->Repetitions(3)
    ->ReportAggregatesOnly(true);
BENCHMARK(BM_YcsbSharedSwiss)
    CCDS_YCSB_ARGS CCDS_YCSB_THREADS->Repetitions(3)
    ->ReportAggregatesOnly(true);
BENCHMARK(BM_YcsbStriped)
    CCDS_YCSB_ARGS CCDS_YCSB_THREADS->Repetitions(3)
    ->ReportAggregatesOnly(true);

}  // namespace
}  // namespace ccds

BENCHMARK_MAIN();

// E18 — batch-parallel ordered structures: the OBATCHER-style
// BatchedSkipListSet against the lock-free skip list, measured in
// comparison work per operation.
//
// Claim under test (PAPERS.md: "Concurrent Data Structures Made Easy"):
// explicit batching beats point concurrency on ordered structures because a
// SORTED batch of B operations over N keys costs O(B + B·log(N/B))
// comparisons — one head descent plus B-1 finger hops — instead of B
// independent O(log N) descents, and because disjoint key-range segments of
// the merged batch can be applied by helper threads with zero
// synchronization inside a segment.
//
// Measurand: comparisons_per_op via a process-global counting comparator
// (atomic, relaxed).  Wall-clock throughput on this repo's 1-CPU host
// (EXPERIMENTS.md methodology) measures the scheduler, not the algorithm:
// T=8 rows are preemption storms and fan-out "parallelism" is time-sliced.
// Comparison counts are schedule-independent, capture the submitter-side
// sort, the merge, the finger walk AND the helper threads' segment work
// (the global counter is exactly why: helpers are pool workers that a
// thread_local tally would miss), and every row pays the same constant
// per-comparison cost, so ratios are honest.  The fan-out rows additionally
// carry structural witnesses (fanout_subbatches_per_batch,
// worker_tasks_per_batch) proving the cross-thread path actually ran.
//
// Rows:
//   * BM_BatchedBulkLoadSeq/B   — T=1 bulk load of 32k keys, ascending
//     order, submitted in B-sized batches: the best case (gap between
//     consecutive batch keys is 1) and the cleanest reading of the
//     O(B + B·log(N/B)) claim.  B=1 honestly pays a full fresh-finger
//     descent per episode.
//   * BM_BatchedBulkLoadRandom/B — same load, keys in a pseudorandom
//     permutation: gaps are ~N/B, the amortization's stress case.
//   * BM_BatchedMixedWrite/B    — 50/50 insert/erase, uniform keys over
//     64k (prefilled half), T ∈ {1, 8}, B ∈ {1, 8, 64, 512}: batching as a
//     drop-in under a steady-state write-heavy mix.
//   * BM_BatchedMixedWriteFanout/B — the same mix through the 8-shard
//     partitioned set with a StealingExecutor attached: batches of ≥ the
//     fan-out threshold split at range boundaries and go through the bulk
//     submit + help path.
//   * BM_LfslMixedWrite<kLocal|kRestart> — the PR 7 lock-free skip list
//     under the identical mix and comparator: the point-concurrency
//     baseline the batch rows are gated against (scripts/check_batched.py).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "pool/stealing_pool.hpp"
#include "reclaim/epoch.hpp"
#include "skiplist/batched_skiplist.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "sync/engines.hpp"

namespace {

using namespace ccds;
using namespace ccds::bench;

constexpr std::uint64_t kKeyRange = 1 << 16;  // mixed-write key space
constexpr std::uint64_t kLoadKeys = 1 << 15;  // bulk-load size

// Process-global comparison tally.  Relaxed atomic instead of thread_local:
// fan-out segments run on pool worker threads whose thread_local counters
// nothing ever reads, and their comparisons are part of the batch's cost.
// The fetch_add burdens every comparison identically across ALL rows
// (batched and baseline), so it cancels out of every ratio the gate reads.
struct AtomicCountingLess {
  static inline std::atomic<std::uint64_t> comparisons{0};
  bool operator()(std::uint64_t a, std::uint64_t b) const {
    comparisons.fetch_add(1, std::memory_order_relaxed);  // relaxed: stats
    return a < b;
  }
};

// Keyed towers throughout: every variant holding the same key set has the
// same shape, so comparison counts compare structures, not RNG luck.  The
// engine slot comes from the shared typelist (sync/engines.hpp); CcSynch
// stays the primary E18 measurand, the other engines ride the
// BM_BatchedMixedWriteEngine sweep below.
template <template <typename> class E>
using BatchedSet = BatchedSkipListSet<std::uint64_t, AtomicCountingLess, E,
                                      SkipListLevels::kKeyed>;
using BatchedCc = BatchedSet<CcSynch>;
using BatchedOp = BatchedCc::Op;
using LfslLocal =
    LockFreeSkipListSet<std::uint64_t, AtomicCountingLess, EpochDomain,
                        SkipListRecovery::kLocal, SkipListLevels::kKeyed>;
using LfslRestart =
    LockFreeSkipListSet<std::uint64_t, AtomicCountingLess, EpochDomain,
                        SkipListRecovery::kRestart, SkipListLevels::kKeyed>;

// Thread-0 pre-loop code runs before the start barrier and post-loop code
// after the stop barrier, so its global-counter snapshots cleanly bracket
// every thread's (and every helper's) timed work.
struct CompsPerOp {
  std::uint64_t before = 0;
  explicit CompsPerOp(const benchmark::State& state) {
    if (state.thread_index() != 0) return;
    before = AtomicCountingLess::comparisons.load(std::memory_order_relaxed);  // relaxed: stats
  }
  void report(benchmark::State& state, double total_ops) const {
    if (state.thread_index() != 0) return;
    const std::uint64_t after =
        AtomicCountingLess::comparisons.load(std::memory_order_relaxed);  // relaxed: stats
    state.counters["comparisons_per_op"] = benchmark::Counter(
        total_ops > 0.0 ? static_cast<double>(after - before) / total_ops
                        : 0.0);
  }
};

// ---------------------------------------------------------------------------
// Bulk load: T=1, fresh set per iteration, 32k inserts in B-sized batches.
// ---------------------------------------------------------------------------

template <bool Sequential>
void BM_BatchedBulkLoad(benchmark::State& state) {
  const std::uint64_t batch = static_cast<std::uint64_t>(state.range(0));
  std::vector<BatchedOp> ops(batch);
  CompsPerOp comps(state);
  for (auto _ : state) {
    BatchedCc set;
    for (std::uint64_t base = 0; base < kLoadKeys; base += batch) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        // Odd multiplier mod a power of two is a bijection: the random leg
        // visits every key exactly once, just out of order.
        const std::uint64_t idx = base + i;
        const std::uint64_t key =
            Sequential ? idx : (idx * 2654435761ull) & (kLoadKeys - 1);
        ops[i] = BatchedOp::insert(key);
      }
      set.apply_batch(std::span<BatchedOp>(ops.data(), batch));
    }
    benchmark::DoNotOptimize(set.size());
  }
  const double total_ops =
      static_cast<double>(state.iterations()) * static_cast<double>(kLoadKeys);
  state.SetItemsProcessed(static_cast<std::int64_t>(total_ops));
  comps.report(state, total_ops);
  report_batch_size(state, batch);
  report_combining_front(state);
}

void BM_BatchedBulkLoadSeq(benchmark::State& state) {
  BM_BatchedBulkLoad<true>(state);
}
void BM_BatchedBulkLoadRandom(benchmark::State& state) {
  BM_BatchedBulkLoad<false>(state);
}

#define CCDS_E18_BATCH_ARGS ->Arg(1)->Arg(8)->Arg(64)->Arg(512)

BENCHMARK(BM_BatchedBulkLoadSeq)
    CCDS_E18_BATCH_ARGS->Repetitions(5)->ReportAggregatesOnly(true);
BENCHMARK(BM_BatchedBulkLoadRandom)
    CCDS_E18_BATCH_ARGS->Repetitions(5)->ReportAggregatesOnly(true);

// ---------------------------------------------------------------------------
// Mixed write: 50/50 insert/erase, uniform keys, shared prefilled set.
// ---------------------------------------------------------------------------

// Magic static + call_once: see bench_lists.cpp for why (no teardown race).
// Templated over the engine: one prefilled shared set per engine.
template <template <typename> class E>
BatchedSet<E>& mixed_set() {
  static BatchedSet<E>& s = *new BatchedSet<E>();
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] {
    const std::uint64_t half = kKeyRange / 2;
    std::vector<BatchedOp> ops;
    ops.reserve(half);
    for (std::uint64_t i = 0; i < half; ++i) {
      ops.push_back(BatchedOp::insert(prefill_perturb(i, half)));
    }
    s.apply_batch(std::span<BatchedOp>(ops.data(), ops.size()));
  });
  return s;
}

// The fan-out configuration: 8 key-range shards, a two-worker executor
// attached for the structure's lifetime.  Never destroyed (same leak
// pattern as every shared bench structure: no teardown race).
struct FanoutRig {
  StealingExecutor<EpochDomain>* exec;
  BatchedCc* set;
};

FanoutRig& fanout_rig() {
  static FanoutRig& rig = *new FanoutRig{};
  static std::once_flag once;
  std::call_once(once, [] {
    rig.exec = new StealingExecutor<EpochDomain>(2);
    std::vector<std::uint64_t> splits;
    for (std::uint64_t s = kKeyRange / 8; s < kKeyRange; s += kKeyRange / 8) {
      splits.push_back(s);
    }
    rig.set = new BatchedCc(std::move(splits));
    rig.set->attach_executor(*rig.exec);
    const std::uint64_t half = kKeyRange / 2;
    std::vector<BatchedOp> ops;
    ops.reserve(half);
    for (std::uint64_t i = 0; i < half; ++i) {
      ops.push_back(BatchedOp::insert(prefill_perturb(i, half)));
    }
    rig.set->apply_batch(std::span<BatchedOp>(ops.data(), ops.size()));
  });
  return rig;
}

template <typename Set>
void run_batched_mixed(Set& set, benchmark::State& state) {
  const std::uint64_t batch = static_cast<std::uint64_t>(state.range(0));
  std::vector<BatchedOp> ops(batch);
  Xoshiro256 rng = make_rng(state);
  CompsPerOp comps(state);
  ThreadOps tops(state);
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < batch; ++i) {
      const std::uint64_t r = rng.next();
      const std::uint64_t key = (r >> 32) % kKeyRange;
      ops[i] = (r & 1) ? BatchedOp::insert(key) : BatchedOp::erase(key);
    }
    set.apply_batch(std::span<BatchedOp>(ops.data(), batch));
    for (std::uint64_t i = 0; i < batch; ++i) tops.tick();
  }
  tops.finish();
  const double total_ops = static_cast<double>(state.iterations()) *
                           static_cast<double>(state.threads()) *
                           static_cast<double>(batch);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
  comps.report(state, total_ops);
  report_batch_size(state, batch);
  report_combining_front(state);
}

void BM_BatchedMixedWrite(benchmark::State& state) {
  run_batched_mixed(mixed_set<CcSynch>(), state);
}

// Engine cross-check: the identical mixed workload through every enrolled
// combining engine at one representative batch size, so the batched front
// is exercised (and comparable) over the whole typelist, not just the E18
// primary.  B=64 keeps the row inline (below the fan-out threshold).
template <template <typename> class E>
void BM_BatchedMixedWriteEngine(benchmark::State& state) {
  run_batched_mixed(mixed_set<E>(), state);
}

// Structural fan-out witnesses, deltas across the timed loop: sub-batches
// dispatched per batch and tasks executed by the worker crew (not by the
// helping combiner) per batch.  Both must be > 0 for the fan-out rows'
// gate — on one CPU that is the honest claim ("the cross-thread path ran
// and produced the same answers"), wall-clock parallelism is not.
void BM_BatchedMixedWriteFanout(benchmark::State& state) {
  FanoutRig& rig = fanout_rig();
  BatchedSkipListStats st0;
  std::uint64_t worker0 = 0;
  if (state.thread_index() == 0) {
    st0 = rig.set->stats();
    worker0 = rig.exec->worker_executed();
  }
  run_batched_mixed(*rig.set, state);
  if (state.thread_index() == 0) {
    const BatchedSkipListStats st1 = rig.set->stats();
    const double batches =
        static_cast<double>(st1.batches - st0.batches);
    state.counters["fanout_subbatches_per_batch"] = benchmark::Counter(
        batches > 0.0 ? static_cast<double>(st1.fanout_subbatches -
                                            st0.fanout_subbatches) /
                            batches
                      : 0.0);
    state.counters["worker_tasks_per_batch"] = benchmark::Counter(
        batches > 0.0
            ? static_cast<double>(rig.exec->worker_executed() - worker0) /
                  batches
            : 0.0);
  }
}

#define CCDS_E18_THREADS ->Threads(1)->Threads(8)->UseRealTime()

BENCHMARK(BM_BatchedMixedWrite)
    CCDS_E18_BATCH_ARGS CCDS_E18_THREADS->Repetitions(5)
    ->ReportAggregatesOnly(true);
#define CCDS_ENGINE_MIX_ROW(E) \
  BENCHMARK(BM_BatchedMixedWriteEngine<E>)->Arg(64) CCDS_E18_THREADS;
CCDS_COMBINER_ENGINES(CCDS_ENGINE_MIX_ROW)
#undef CCDS_ENGINE_MIX_ROW
// Fan-out needs total batch ≥ threshold (256): only the B=512 sweep point
// crosses it from a single submitter; B=64 rides along to show the
// below-threshold behaviour staying inline (witness counters ~0).
BENCHMARK(BM_BatchedMixedWriteFanout)
    ->Arg(64)->Arg(512) CCDS_E18_THREADS->Repetitions(5)
    ->ReportAggregatesOnly(true);

// ---------------------------------------------------------------------------
// Baseline: the lock-free skip list, identical mix and comparator.
// ---------------------------------------------------------------------------

template <typename Set>
void BM_LfslMixedWrite(benchmark::State& state) {
  // Magic static + call_once: see bench_lists.cpp for why (no teardown race).
  static Set& set = *new Set();
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] { prefill_set(set, kKeyRange); });
  CompsPerOp comps(state);
  run_set_mix(set, state, kKeyRange, 0, 50);
  comps.report(state, static_cast<double>(state.iterations()) *
                          static_cast<double>(state.threads()));
}

BENCHMARK(BM_LfslMixedWrite<LfslLocal>)
    CCDS_E18_THREADS->Repetitions(5)->ReportAggregatesOnly(true);
BENCHMARK(BM_LfslMixedWrite<LfslRestart>)
    CCDS_E18_THREADS->Repetitions(5)->ReportAggregatesOnly(true);

}  // namespace

BENCHMARK_MAIN();

// Shared helpers for the ccds benchmark harness.
//
// Conventions used by every bench binary:
//   * google-benchmark threaded mode (->ThreadRange): the same function body
//     runs on every thread; thread 0 constructs/destroys the shared
//     structure outside the timed loop (the framework barriers threads at
//     loop start and end);
//   * throughput is reported via items_processed, so every table prints an
//     items_per_second column — the "ops/sec vs threads" series the survey
//     figures use;
//   * workload mixes follow the survey's convention: a (read%, insert%,
//     remove%) triple over a fixed key range, prefilled to half occupancy.
//   * every table also carries per-thread fairness fields
//     (thread_ops_per_sec_min / thread_ops_per_sec_max / fairness /
//     per_thread_ops_per_sec) emitted by ThreadOps below: total throughput
//     can hide one thread starving (combining makes this failure mode
//     easy), the slowest thread's measured rate cannot.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "core/arch.hpp"
#include "core/rng.hpp"
#include "core/zipf.hpp"

namespace ccds::bench {

// Thread counts for scaling series (value mirrored by CCDS_BENCH_THREADS
// below; kept as a constant so the context block can record it).
inline constexpr int kBenchMaxThreads = 8;

// Bench-context hygiene (ISSUE 7 satellite).  Every bench binary includes
// this header, so the static initializer below stamps every BENCH_*.json
// context block with:
//   ccds_build_type        — "release" iff this binary's own TUs were
//     compiled with NDEBUG.  The library_build_type key google-benchmark
//     emits describes the PACKAGED benchmark library (debug on distro
//     packages), not our code — scripts/run_benchmarks.sh keys its
//     debug-build refusal on ccds_build_type for exactly that reason.
//   hardware_concurrency   — what the host actually offers, next to
//   requested_max_threads  — what the scaling series asks for, and
//   oversubscribed         — requested > offered.  On small hosts the T=8
//     series is a preemption-storm measurement, not a parallelism one; the
//     flag makes every artifact self-describing instead of relying on a
//     footnote in EXPERIMENTS.md.
inline const bool kContextRegistered = [] {
#ifdef NDEBUG
  benchmark::AddCustomContext("ccds_build_type", "release");
#else
  benchmark::AddCustomContext("ccds_build_type", "debug");
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  benchmark::AddCustomContext("hardware_concurrency", std::to_string(hw));
  benchmark::AddCustomContext("requested_max_threads",
                              std::to_string(kBenchMaxThreads));
  benchmark::AddCustomContext(
      "oversubscribed",
      static_cast<unsigned>(kBenchMaxThreads) > hw ? "true" : "false");
  return true;
}();

// Per-thread deterministic generator, distinct per (thread, run).
inline Xoshiro256 make_rng(const benchmark::State& state) {
  return Xoshiro256(0x9e3779b97f4a7c15ull * (state.thread_index() + 1) + 1);
}

// Records how many operations each thread of a threaded benchmark completed
// and emits per-thread throughput and fairness counters.
//
// Usage inside a benchmark body:
//   ThreadOps ops(state);
//   for (auto _ : state) { ...one operation...; ops.tick(); }
//   ops.finish();   // replaces state.SetItemsProcessed(state.iterations())
//
// JSON fields added to every row (set by thread 0; google-benchmark merges
// counters across threads by summation, so thread-0-only values pass
// through):
//   thread_ops_per_sec_min / thread_ops_per_sec_max — measured throughput of
//     the slowest and fastest thread.  The framework hands every thread the
//     SAME iteration quota, so per-run op *counts* are equal by construction;
//     what differs — and what combining can skew, since the combiner does
//     everyone's work while requesters spin — is how fast each thread moves
//     through its quota.
//   fairness — thread_ops_per_sec_min / thread_ops_per_sec_max in [0, 1];
//     1.0 means all threads progressed at the same rate.
//   per_thread_ops_per_sec — average per-thread throughput (every thread
//     contributes its count; kAvgThreads|kIsRate divides by threads & time;
//     equals items_per_second / threads).
//
// Per-thread rates are derived from sampled timestamps: every tick bumps a
// thread-local counter, and every 64th tick writes (count, steady_clock now)
// to a cache-line-padded slot owned by the ticking thread — no sharing, one
// clock read per 64 ops, and the same constant cost for every structure
// under test, so relative comparisons are unaffected.  Rows too short to
// produce two samples per thread report min = max = 0 and fairness = 1.0
// (smoke runs); real artifact runs sample thousands of times.
//
// ATTRIBUTION CONTRACT (combining rows): ticks are REQUESTER-attributed.
// A thread ticks when ITS operation completes, regardless of which thread's
// CPU executed it — under a combining engine the combiner performs other
// threads' operations while they spin, and under batch fan-out helper
// threads apply segments of a batch the submitter owns.  That is the right
// attribution for a fairness metric (the question is "did every requester
// make progress", not "which CPU did the work"), but it means fairness on
// combining rows measures request-completion fairness, not CPU-time
// fairness: a combiner thread that spends its quantum serving others still
// ticks only its own requests.  Rows produced by combining/batched fronts
// carry the combining_front flag (report_combining_front below) so readers
// and gates can tell which interpretation applies.
class ThreadOps {
 public:
  static constexpr int kMaxBenchThreads = 64;
  static constexpr std::uint64_t kSampleMask = 63;  // sample every 64 ticks

  explicit ThreadOps(benchmark::State& state)
      : state_(state), tid_(state.thread_index()) {
    // Thread 0 resets the slots before the start barrier (the timed loop's
    // begin() blocks on it), so no tick can race the reset.
    if (tid_ == 0) {
      for (int t = 0; t < state.threads() && t < kMaxBenchThreads; ++t) {
        slots()[t].count.store(0, std::memory_order_relaxed);
        slots()[t].first_ns.store(0, std::memory_order_relaxed);
        slots()[t].last_ns.store(0, std::memory_order_relaxed);
      }
    }
  }

  void tick() {
    if (((++local_) & kSampleMask) == 0) sample();
  }

  void finish() {
    state_.SetItemsProcessed(state_.iterations());
    state_.counters["per_thread_ops_per_sec"] = benchmark::Counter(
        static_cast<double>(local_),
        benchmark::Counter::kIsRate | benchmark::Counter::kAvgThreads);
    if (tid_ != 0) return;
    // Post-loop code runs after the stop barrier: every thread's samples are
    // visible here (the final one is at most kSampleMask ops stale, which is
    // noise at artifact iteration counts).
    double mn = 0.0;
    double mx = 0.0;
    bool have = false;
    for (int t = 0; t < state_.threads() && t < kMaxBenchThreads; ++t) {
      const Slot& s = slots()[t];
      const std::uint64_t ops = s.count.load(std::memory_order_relaxed);
      const std::uint64_t t0 = s.first_ns.load(std::memory_order_relaxed);
      const std::uint64_t t1 = s.last_ns.load(std::memory_order_relaxed);
      // Need two distinct samples: the first fixes (kSampleMask+1, t0).
      if (ops <= kSampleMask + 1 || t1 <= t0) continue;
      const double rate = static_cast<double>(ops - (kSampleMask + 1)) *
                          1e9 / static_cast<double>(t1 - t0);
      mn = (!have || rate < mn) ? rate : mn;
      mx = (!have || rate > mx) ? rate : mx;
      have = true;
    }
    state_.counters["thread_ops_per_sec_min"] = benchmark::Counter(mn);
    state_.counters["thread_ops_per_sec_max"] = benchmark::Counter(mx);
    state_.counters["fairness"] =
        benchmark::Counter(mx > 0.0 ? mn / mx : 1.0);
  }

 private:
  struct CCDS_CACHELINE_ALIGNED Slot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> first_ns{0};
    std::atomic<std::uint64_t> last_ns{0};
  };
  // One static slot array shared by all benchmarks in a binary: runs are
  // sequential and thread 0 resets before each, so reuse is safe.
  static Slot* slots() {
    static Slot arr[kMaxBenchThreads];
    return arr;
  }

  void sample() {
    const std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    Slot& s = slots()[tid_];
    // relaxed: single-writer slot; the loop-end barrier orders the final
    // values before thread 0's reads in finish().
    if (s.first_ns.load(std::memory_order_relaxed) == 0) {
      s.first_ns.store(ns, std::memory_order_relaxed);
    }
    s.count.store(local_, std::memory_order_relaxed);
    s.last_ns.store(ns, std::memory_order_relaxed);
  }

  benchmark::State& state_;
  const int tid_;
  std::uint64_t local_ = 0;
};

// Batched-row schema (E18 + the E16 batch rows).  batch_size is a
// first-class JSON field: every row whose operations ride combining
// requests in groups reports the ops-per-request count, so cross-row
// comparisons ("B=64 vs B=1") key on a machine-readable field instead of
// parsing row names.  combining_front marks rows produced through a
// combining engine (see the ThreadOps attribution contract above).  Both
// are thread-0-only: google-benchmark sums counters across threads, which
// would multiply a flag by the thread count.
inline void report_batch_size(benchmark::State& state, std::uint64_t b) {
  if (state.thread_index() != 0) return;
  state.counters["batch_size"] = benchmark::Counter(static_cast<double>(b));
}

inline void report_combining_front(benchmark::State& state) {
  if (state.thread_index() != 0) return;
  state.counters["combining_front"] = benchmark::Counter(1.0);
}

// Mixed read/insert/remove loop over a key range for set-like structures
// (contains/insert/remove).  Returns ops performed.
template <typename Set>
void run_set_mix(Set& set, benchmark::State& state, std::uint64_t key_range,
                 int read_pct, int insert_pct) {
  Xoshiro256 rng = make_rng(state);
  ThreadOps ops(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = (r >> 32) % key_range;
    const int op = static_cast<int>(r % 100);
    if (op < read_pct) {
      benchmark::DoNotOptimize(set.contains(key));
    } else if (op < read_pct + insert_pct) {
      benchmark::DoNotOptimize(set.insert(key));
    } else {
      benchmark::DoNotOptimize(set.remove(key));
    }
    ops.tick();
  }
  ops.finish();
}

// Zipfian hot-range mix for set-like structures (E17): 90% of operations
// draw a zipfian rank over a small CONTIGUOUS hot range at the HIGH end of
// the key space, 10% are uniform background over the full range (so the
// structure keeps realistic size and tower height while the hot range
// concentrates the conflicts).  Rank r maps to key key_range-1-r: the
// hottest keys sit at the far right of the key space, so (a) the
// bottom-level predecessors of the most-contended keys are the other
// most-contended keys, and (b) a traversal to a hot key crosses the full
// O(log n) descent — hot keys adjacent to the head would make a restart
// re-descent artificially cheap.  (a) is deliberate and adversarial for
// recovery: the window a thread holds when it gets interrupted near a hot
// key is built from exactly the nodes most likely to have churned away by
// the time it resumes — every conflict then pays the recovery path under
// ablation.
// hot.size() and key_range must be powers of two.
//
// `progress`, when non-null, is bumped once per operation; a caller that
// pairs this loop with paced background threads (E17's churners) reads it
// to stay in lockstep with the measured threads.
template <typename Set>
void run_set_mix_zipf(Set& set, benchmark::State& state,
                      std::uint64_t key_range, const ZipfianGenerator& hot,
                      int read_pct, int insert_pct,
                      std::atomic<std::uint64_t>* progress = nullptr) {
  Xoshiro256 rng = make_rng(state);
  ThreadOps ops(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    std::uint64_t key;
    if (r % 10 != 0) {
      key = key_range - 1 - hot.next(rng);
    } else {
      key = (r >> 32) & (key_range - 1);
    }
    const int op = static_cast<int>((r >> 8) % 100);
    if (op < read_pct) {
      benchmark::DoNotOptimize(set.contains(key));
    } else if (op < read_pct + insert_pct) {
      benchmark::DoNotOptimize(set.insert(key));
    } else {
      benchmark::DoNotOptimize(set.remove(key));
    }
    if (progress != nullptr) {
      progress->fetch_add(1, std::memory_order_relaxed);  // relaxed: pacing counter, no data guarded
    }
    ops.tick();
  }
  ops.finish();
}

// Same for map-like structures (get/insert/erase).
template <typename Map>
void run_map_mix(Map& map, benchmark::State& state, std::uint64_t key_range,
                 int read_pct, int insert_pct) {
  Xoshiro256 rng = make_rng(state);
  ThreadOps ops(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = (r >> 32) % key_range;
    const int op = static_cast<int>(r % 100);
    if (op < read_pct) {
      benchmark::DoNotOptimize(map.get(key));
    } else if (op < read_pct + insert_pct) {
      benchmark::DoNotOptimize(map.insert(key, key));
    } else {
      benchmark::DoNotOptimize(map.erase(key));
    }
    ops.tick();
  }
  ops.finish();
}

// Prefill with every other key (half occupancy), visiting keys in a
// pseudo-random permutation rather than ascending order: sorted insertion
// would degenerate unbalanced structures (the tombstone BST most of all)
// into linked lists and poison every subsequent measurement.  Multiplying
// the index by an odd constant mod a power of two is a bijection.
inline std::uint64_t prefill_perturb(std::uint64_t i, std::uint64_t half) {
  return ((i * 0x9e3779b1ull) & (half - 1)) * 2;  // half must be a power of 2
}

template <typename Set>
void prefill_set(Set& set, std::uint64_t key_range) {
  const std::uint64_t half = key_range / 2;
  for (std::uint64_t i = 0; i < half; ++i) {
    set.insert(prefill_perturb(i, half));
  }
}

template <typename Map>
void prefill_map(Map& map, std::uint64_t key_range) {
  const std::uint64_t half = key_range / 2;
  for (std::uint64_t i = 0; i < half; ++i) {
    const std::uint64_t k = prefill_perturb(i, half);
    map.insert(k, k);
  }
}

// Standard mix arguments: {read%, insert%} (remove% is the remainder).
// 90/9/1 read-heavy, 70/20/10 mixed, 50/25/25 update-heavy, 0/50/50 writes.
#define CCDS_BENCH_MIX_ARGS                    \
  ->Args({90, 9})->Args({70, 20})->Args({50, 25})->Args({0, 50})

// Thread counts for scaling series (max must match kBenchMaxThreads above).
#define CCDS_BENCH_THREADS ->ThreadRange(1, 8)->UseRealTime()

}  // namespace ccds::bench

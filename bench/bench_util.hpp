// Shared helpers for the ccds benchmark harness.
//
// Conventions used by every bench binary:
//   * google-benchmark threaded mode (->ThreadRange): the same function body
//     runs on every thread; thread 0 constructs/destroys the shared
//     structure outside the timed loop (the framework barriers threads at
//     loop start and end);
//   * throughput is reported via items_processed, so every table prints an
//     items_per_second column — the "ops/sec vs threads" series the survey
//     figures use;
//   * workload mixes follow the survey's convention: a (read%, insert%,
//     remove%) triple over a fixed key range, prefilled to half occupancy.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/rng.hpp"

namespace ccds::bench {

// Per-thread deterministic generator, distinct per (thread, run).
inline Xoshiro256 make_rng(const benchmark::State& state) {
  return Xoshiro256(0x9e3779b97f4a7c15ull * (state.thread_index() + 1) + 1);
}

// Mixed read/insert/remove loop over a key range for set-like structures
// (contains/insert/remove).  Returns ops performed.
template <typename Set>
void run_set_mix(Set& set, benchmark::State& state, std::uint64_t key_range,
                 int read_pct, int insert_pct) {
  Xoshiro256 rng = make_rng(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = (r >> 32) % key_range;
    const int op = static_cast<int>(r % 100);
    if (op < read_pct) {
      benchmark::DoNotOptimize(set.contains(key));
    } else if (op < read_pct + insert_pct) {
      benchmark::DoNotOptimize(set.insert(key));
    } else {
      benchmark::DoNotOptimize(set.remove(key));
    }
  }
  state.SetItemsProcessed(state.iterations());
}

// Same for map-like structures (get/insert/erase).
template <typename Map>
void run_map_mix(Map& map, benchmark::State& state, std::uint64_t key_range,
                 int read_pct, int insert_pct) {
  Xoshiro256 rng = make_rng(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = (r >> 32) % key_range;
    const int op = static_cast<int>(r % 100);
    if (op < read_pct) {
      benchmark::DoNotOptimize(map.get(key));
    } else if (op < read_pct + insert_pct) {
      benchmark::DoNotOptimize(map.insert(key, key));
    } else {
      benchmark::DoNotOptimize(map.erase(key));
    }
  }
  state.SetItemsProcessed(state.iterations());
}

// Prefill with every other key (half occupancy), visiting keys in a
// pseudo-random permutation rather than ascending order: sorted insertion
// would degenerate unbalanced structures (the tombstone BST most of all)
// into linked lists and poison every subsequent measurement.  Multiplying
// the index by an odd constant mod a power of two is a bijection.
inline std::uint64_t prefill_perturb(std::uint64_t i, std::uint64_t half) {
  return ((i * 0x9e3779b1ull) & (half - 1)) * 2;  // half must be a power of 2
}

template <typename Set>
void prefill_set(Set& set, std::uint64_t key_range) {
  const std::uint64_t half = key_range / 2;
  for (std::uint64_t i = 0; i < half; ++i) {
    set.insert(prefill_perturb(i, half));
  }
}

template <typename Map>
void prefill_map(Map& map, std::uint64_t key_range) {
  const std::uint64_t half = key_range / 2;
  for (std::uint64_t i = 0; i < half; ++i) {
    const std::uint64_t k = prefill_perturb(i, half);
    map.insert(k, k);
  }
}

// Standard mix arguments: {read%, insert%} (remove% is the remainder).
// 90/9/1 read-heavy, 70/20/10 mixed, 50/25/25 update-heavy, 0/50/50 writes.
#define CCDS_BENCH_MIX_ARGS                    \
  ->Args({90, 9})->Args({70, 20})->Args({50, 25})->Args({0, 50})

// Thread counts for scaling series.
#define CCDS_BENCH_THREADS ->ThreadRange(1, 8)->UseRealTime()

}  // namespace ccds::bench

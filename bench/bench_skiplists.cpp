// E8 — search structures: skip lists and trees across workload mixes.
//
// Survey claim: skip lists concurrentize gracefully because there is no
// rebalancing to coordinate — the lazy and lock-free variants track or beat
// the balanced-tree baselines as soon as more than one thread is involved,
// while the coarse AVL (strict rebalancing under one lock) flatlines.
//
// Key range 64k, prefilled half.  Args: {read%, insert%}.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>

#include "bench_util.hpp"
#include "skiplist/lazy_skiplist.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "skiplist/seq_skiplist.hpp"
#include "tree/fine_bst.hpp"
#include "tree/seq_avl.hpp"
#include "tree/tombstone_bst.hpp"

namespace {

using namespace ccds;
using namespace ccds::bench;

constexpr std::uint64_t kKeyRange = 1 << 16;

template <typename Set>
void BM_SearchMix(benchmark::State& state) {
  // Magic static + call_once: see bench_lists.cpp for why (no teardown race).
  static Set& set = *new Set();
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] { prefill_set(set, kKeyRange); });
  run_set_mix(set, state, kKeyRange, static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)));
}

using CoarseSkip = CoarseSkipListSet<std::uint64_t>;
using LazySkip = LazySkipListSet<std::uint64_t>;
using LockFreeSkip = LockFreeSkipListSet<std::uint64_t>;
using CoarseAvl = CoarseAvlSet<std::uint64_t>;
using TombstoneBst = TombstoneBstSet<std::uint64_t>;
using FineBst = FineBstSet<std::uint64_t>;

BENCHMARK(BM_SearchMix<CoarseSkip>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<LazySkip>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<LockFreeSkip>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<CoarseAvl>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<TombstoneBst>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<FineBst>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// E8 — search structures: skip lists and trees across workload mixes.
//
// Survey claim: skip lists concurrentize gracefully because there is no
// rebalancing to coordinate — the lazy and lock-free variants track or beat
// the balanced-tree baselines as soon as more than one thread is involved,
// while the coarse AVL (strict rebalancing under one lock) flatlines.
//
// Key range 64k, prefilled half.  Args: {read%, insert%}.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>
#include <type_traits>

// Recovery-event counters for the E17 rows (zero-cost for the E8 rows that
// share this TU: the counters only tick on recovery paths, which the
// uncontended E8 mixes almost never take).
#define CCDS_SKIPLIST_STATS

#include "bench_util.hpp"
#include "skiplist/lazy_skiplist.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "skiplist/seq_skiplist.hpp"
#include "tree/fine_bst.hpp"
#include "tree/seq_avl.hpp"
#include "tree/tombstone_bst.hpp"

namespace {

using namespace ccds;
using namespace ccds::bench;

constexpr std::uint64_t kKeyRange = 1 << 16;

template <typename Set>
void BM_SearchMix(benchmark::State& state) {
  // Magic static + call_once: see bench_lists.cpp for why (no teardown race).
  static Set& set = *new Set();
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] { prefill_set(set, kKeyRange); });
  run_set_mix(set, state, kKeyRange, static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)));
}

using CoarseSkip = CoarseSkipListSet<std::uint64_t>;
using LazySkip = LazySkipListSet<std::uint64_t>;
using LockFreeSkip = LockFreeSkipListSet<std::uint64_t>;
using CoarseAvl = CoarseAvlSet<std::uint64_t>;
using TombstoneBst = TombstoneBstSet<std::uint64_t>;
using FineBst = FineBstSet<std::uint64_t>;

BENCHMARK(BM_SearchMix<CoarseSkip>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<LazySkip>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<LockFreeSkip>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<CoarseAvl>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<TombstoneBst>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_SearchMix<FineBst>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;

// ---------------------------------------------------------------------------
// E17 — recovery ablation: Fomitchev–Ruppert backlink-local recovery vs
// head-restart, identical flag/mark/unlink protocol otherwise (the
// SkipListRecovery template knob isolates exactly the recovery strategy).
//
// Claim: under hot-key contention a failed CAS costs O(1) backlink steps
// with local recovery vs an O(log n) re-descent with restart, so the local
// variant's throughput degrades much more slowly as conflicts multiply;
// under uniform low-conflict load the two are indistinguishable (backlinks
// are only dereferenced after a conflict).
//
// Workloads: uniform 50/25/25 over the full 64k range (conflicts rare —
// the "no regression" leg, plain comparator) and the zipfian hot-key mix:
// a write-only 50/50 insert/remove mix where 90% of ops draw their key
// zipf-distributed (α ∈ {0.9, 1.2}) over a 64-key hot range at the TOP of
// the key space and 10% spray uniformly (see run_set_mix_zipf for why the
// hot range sits at the top).  The write-only mix maximizes CAS conflicts
// on the hot keys, which is the path under ablation.  T ∈ {1, 4, 8}; at
// T ≥ 4 one thread in four becomes an uninstrumented churner (see
// BM_SkipRecoveryZipf).
//
// Preemption injection (zipf legs only): on this repo's 1-CPU measurement
// host (EXPERIMENTS.md methodology), hardware preemption arrives at
// millisecond quanta while a traversal takes microseconds, so a thread is
// essentially never interrupted mid-operation and the conflict rate the
// ablation exists to measure rounds to zero — every variant looks
// identical.  A multicore host interrupts traversals constantly (other
// cores mutate the window in real time).  PreemptLess restores that at a
// controlled, identical rate for both variants: every key comparison by a
// measured thread yields the CPU, so a fixed fraction of operations lose
// their window mid-descent and must recover — via backlinks (kLocal) or a
// full find() re-descent (kRestart).  The injection is symmetric (same
// comparator type, same rate, both variants), so the residual difference
// is exactly the recovery-path cost, which is the quantity under test.
//
// Expected magnitude — read this before comparing against the exemplar
// studies' multicore numbers.  Per conflict, the asymmetry is large: a
// re-descent of the 32k-key list costs ~35 comparisons (stalled like any
// others) while a backlink repair costs ~3.  But the ratio of the two
// variants' throughputs is gated by how often conflicts happen, not how
// much each one costs: ratio ≈ C·(1 + restarts/op) / (C + w·backtracks/op)
// with C ≈ 35 comparisons per descent and w ≈ 3 per repair, i.e. a
// ceiling of about 1 + restarts/op.  One CPU caps conflicts/op around
// 0.3 under unbiased injection (mutations are only visible during yields,
// and the vulnerable read-window span is a few comparisons wide), so the
// honest ceiling here is ~1.2–1.3x.  The 4–6x gaps the exemplar studies
// report need 16 real cores invalidating windows in true parallel — the
// same "multicore half untestable here" caveat EXPERIMENTS.md records for
// the other contention studies.  Two dishonest ways to inflate the ratio,
// both rejected: restarting from the head with a level-local walk instead
// of a full find() (an O(n) strawman at the bottom level), and stalling
// only hot-key comparisons (taxes the local variant's hot-window repairs
// harder than the restart variant's cold re-descents).
// ---------------------------------------------------------------------------

constexpr std::uint64_t kHotRange = 1 << 6;
inline constexpr int kPreemptEvery = 1;  // stall 1 in N comparisons
inline constexpr int kPreemptBurst = 2;  // scheduling rounds ceded per stall

struct PreemptLess {
  // Churner threads (below) disable injection for themselves: they model
  // the remote cores whose mutations land while the measured thread is off
  // the CPU, so they must make progress during the measured threads'
  // stalls, not stall along with them.
  static inline thread_local bool enabled = false;
  static inline thread_local std::uint64_t comparisons = 0;

  bool operator()(std::uint64_t a, std::uint64_t b) const {
    // Stall every kPreemptEvery-th comparison, unconditionally: a
    // preemption strikes a traversal at a uniformly random point, so the
    // expected stall count of any code path is proportional to the number
    // of comparisons it performs — the property the ablation needs.  A
    // head re-descent re-rolls these dice across its whole O(log n)
    // comparison budget (and re-exposes its freshly read window to the
    // churners for that whole time), while a backlink repair re-rolls
    // them across the two or three comparisons it takes to re-walk one
    // window.  No key-dependent condition: a predicate that singled out
    // hot-key comparisons would tax the window re-walks the local variant
    // lives in harder than the cold approach the restart variant repeats,
    // biasing the very quantity under test.
    if (enabled && ++comparisons % kPreemptEvery == 0) {
      for (int i = 0; i < kPreemptBurst; ++i) std::this_thread::yield();
    }
    return a < b;
  }
};

// Counting-only comparator for the uniform legs: tallies key comparisons
// with no stall injection.  The "backlinks are free when idle" claim gates
// on comparisons_per_op equality, because the uniform rows' wall clock at
// T >= 4 is oversubscribed-scheduler noise (measured cv 0.12-0.23 per
// median-of-repetitions cell on this host — larger than any real effect).
struct CountingLess {
  static inline thread_local std::uint64_t comparisons = 0;
  bool operator()(std::uint64_t a, std::uint64_t b) const {
    ++comparisons;
    return a < b;
  }
};

// All four use keyed (deterministic) tower heights: the Local and Restart
// sets hold the same key distribution under churn, so kKeyed makes them
// structurally IDENTICAL — with RNG towers, remove/reinsert churn lets the
// two long-lived sets drift a few percent apart in traversal cost, which
// is the same order as the recovery effect the ablation measures.
using LockFreeSkipLocal =
    LockFreeSkipListSet<std::uint64_t, CountingLess, EpochDomain,
                        SkipListRecovery::kLocal, SkipListLevels::kKeyed>;
using LockFreeSkipRestart =
    LockFreeSkipListSet<std::uint64_t, CountingLess, EpochDomain,
                        SkipListRecovery::kRestart, SkipListLevels::kKeyed>;
using LockFreeSkipLocalPreempt =
    LockFreeSkipListSet<std::uint64_t, PreemptLess, EpochDomain,
                        SkipListRecovery::kLocal, SkipListLevels::kKeyed>;
using LockFreeSkipRestartPreempt =
    LockFreeSkipListSet<std::uint64_t, PreemptLess, EpochDomain,
                        SkipListRecovery::kRestart, SkipListLevels::kKeyed>;


// All four E17 sets are prefilled together, round-robin PER KEY, before
// any E17 row runs.  With the usual one-static-per-benchmark prefill, the
// variant whose set happens to be populated first gets the freshest heap
// and ~20% better node locality for the rest of the process — measured as
// a 0.8x-1.25x swing on the T=1 legs, where both variants execute
// identical instruction streams and the true ratio is 1.0 by construction.
// Interleaving the insertions gives every set the same allocation-locality
// statistics, which is what makes cross-variant ratios meaningful inside
// one process.
struct E17Sets {
  LockFreeSkipLocal uniform_local;
  LockFreeSkipRestart uniform_restart;
  LockFreeSkipLocalPreempt zipf_local;
  LockFreeSkipRestartPreempt zipf_restart;
};

E17Sets& e17_sets() {
  // Magic static + call_once: see bench_lists.cpp for why (no teardown race).
  static E17Sets& s = *new E17Sets();
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] {
    const std::uint64_t half = kKeyRange / 2;
    for (std::uint64_t i = 0; i < half; ++i) {
      const std::uint64_t k = prefill_perturb(i, half);
      s.uniform_local.insert(k);
      s.uniform_restart.insert(k);
      s.zipf_local.insert(k);
      s.zipf_restart.insert(k);
    }
  });
  return s;
}

template <typename Set>
Set& e17_set() {
  E17Sets& s = e17_sets();
  if constexpr (std::is_same_v<Set, LockFreeSkipLocal>) {
    return s.uniform_local;
  } else if constexpr (std::is_same_v<Set, LockFreeSkipRestart>) {
    return s.uniform_restart;
  } else if constexpr (std::is_same_v<Set, LockFreeSkipLocalPreempt>) {
    return s.zipf_local;
  } else {
    return s.zipf_restart;
  }
}

template <typename Set>
void BM_SkipRecoveryUniform(benchmark::State& state) {
  const std::uint64_t comps0 = CountingLess::comparisons;
  run_set_mix(e17_set<Set>(), state, kKeyRange, 50, 25);
  // Every thread reports its own share / (its iterations x thread count);
  // the framework sums thread contributions, yielding the per-op mean.
  state.counters["comparisons_per_op"] = benchmark::Counter(
      static_cast<double>(CountingLess::comparisons - comps0) /
      (static_cast<double>(state.iterations()) *
       static_cast<double>(state.threads())));
}

// Zipf table built once per α (ranks only; thread-safe via magic static).
const ZipfianGenerator& zipf_table(int alpha_tenths) {
  static const ZipfianGenerator z09(kHotRange, 0.9);
  static const ZipfianGenerator z12(kHotRange, 1.2);
  return alpha_tenths == 9 ? z09 : z12;
}

// Snapshot the recovery-event counters around the timed loop (thread 0
// only; pre-loop code cannot race the loop — the framework barriers all
// threads at loop entry and exit) and report them per operation, so every
// E17 row carries its own conflict-rate evidence.
struct RecoveryEvents {
  std::uint64_t backtracks0 = 0;
  std::uint64_t restarts0 = 0;
  std::uint64_t helps0 = 0;
  explicit RecoveryEvents(const benchmark::State& state) {
    if (state.thread_index() != 0) return;
    backtracks0 = SkipListStats::backtracks.load(std::memory_order_relaxed);  // relaxed: stats
    restarts0 = SkipListStats::head_restarts.load(std::memory_order_relaxed);  // relaxed: stats
    helps0 = SkipListStats::helps.load(std::memory_order_relaxed);  // relaxed: stats
  }
  void report(benchmark::State& state, int measured_threads) const {
    if (state.thread_index() != 0) return;
    const double ops = static_cast<double>(state.iterations()) *
                       static_cast<double>(measured_threads);
    auto per_op = [ops](std::atomic<std::uint64_t>& c, std::uint64_t before) {
      const std::uint64_t after = c.load(std::memory_order_relaxed);  // relaxed: stats
      return ops > 0.0 ? static_cast<double>(after - before) / ops : 0.0;
    };
    state.counters["backtracks_per_op"] =
        benchmark::Counter(per_op(SkipListStats::backtracks, backtracks0));
    state.counters["head_restarts_per_op"] =
        benchmark::Counter(per_op(SkipListStats::head_restarts, restarts0));
    state.counters["helps_per_op"] =
        benchmark::Counter(per_op(SkipListStats::helps, helps0));
  }
};

// Churner/measured thread split for the zipf legs.  One thread in four
// (the top indices) plays the remote cores: it hammers insert/remove on the
// top-rank keys WITHOUT stall injection, so mutations land on the hot
// window while the measured threads are stalled there — which is the whole
// point of a preemption.  Without the split the injection cancels itself
// out: when every thread stalls, stalling the system harder slows the
// mutators exactly as much as the readers and the conflicts-per-stall rate
// stays pinned near zero no matter how long the stall is (measured: ~0.1
// conflicts/op at any burst length).  The churners are paced to the
// measured threads' progress through the shared op counter, so they churn
// for exactly as long as the measured threads run — never finishing their
// quota early (which would silently turn the tail of the run
// conflict-free) and never free-running ahead.
//
// Churner iterations deliberately skip ThreadOps/SetItemsProcessed:
// items_per_second and the fairness counters describe the measured mixed
// threads only.
std::atomic<std::uint64_t> g_mixed_ops{0};

constexpr int kChurnerOpsPerStep = 64;  // churner writes per pacing step
constexpr std::uint64_t kChurnRanks = 32;  // churn concentrates on the top ranks

template <typename Set>
void BM_SkipRecoveryZipf(benchmark::State& state) {
  Set& set = e17_set<Set>();
  const int churners = state.threads() / 4;  // 0 @ T=1, 1 @ T=4, 2 @ T=8
  const int measured = state.threads() - churners;
  const bool is_churner = state.thread_index() >= measured;
  if (state.thread_index() == 0) {
    g_mixed_ops.store(0, std::memory_order_relaxed);  // relaxed: pre-loop, ordered by the framework's start barrier
  }
  PreemptLess::enabled = !is_churner;
  if (is_churner) {
    Xoshiro256 rng = make_rng(state);
    const std::uint64_t lo = kKeyRange - kChurnRanks;
    std::uint64_t step = 0;
    for (auto _ : state) {
      ++step;
      // One pacing step = one op from every measured thread.
      while (g_mixed_ops.load(std::memory_order_relaxed) <  // relaxed: pacing counter, no data guarded
             step * static_cast<std::uint64_t>(measured)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kChurnerOpsPerStep; i += 2) {
        // Remove-then-reinsert pairs: every pair marks a node some measured
        // thread may be standing on, while keeping the hot range almost
        // fully resident — leaving keys absent would let the measured
        // threads' windows come to rest on stable, never-churned
        // predecessors and throttle the very conflict rate under study.
        const std::uint64_t key = lo + (rng.next() % kChurnRanks);
        benchmark::DoNotOptimize(set.remove(key));
        benchmark::DoNotOptimize(set.insert(key));
      }
    }
    return;
  }
  RecoveryEvents events(state);
  const std::uint64_t comps0 = PreemptLess::comparisons;
  run_set_mix_zipf(set, state, kKeyRange,
                   zipf_table(static_cast<int>(state.range(0))), 0, 50,
                   &g_mixed_ops);
  // Comparison work per op, the noise-free measurand: wall-clock on this
  // 1-CPU host is dominated by the injected yields (identical for both
  // variants) plus scheduler noise, so the throughput ratio understates
  // and jitters around the recovery-cost difference — while the number of
  // key comparisons each variant needs per operation measures it exactly.
  // Each measured thread contributes its own delta; the framework sums
  // counters across threads, and the gate divides by iterations x
  // measured threads.  (Churners never increment: PreemptLess only counts
  // when enabled.)
  state.counters["comparisons_per_op"] = benchmark::Counter(
      static_cast<double>(PreemptLess::comparisons - comps0) /
      (static_cast<double>(state.iterations()) * measured));
  events.report(state, measured);
}

#define CCDS_E17_THREADS \
  ->Threads(1)->Threads(4)->Threads(8)->UseRealTime()

// Repetitions + median aggregates baked into every E17 row: single runs
// spread up to ~30% on this host (the restart variant's conflict cascades
// are heavy-tailed, and one process hosts many static sets whose heap
// layout drifts with run order), so the check_skiplist_recovery.py gate
// reads the _median rows, never a single sample.
BENCHMARK(BM_SkipRecoveryUniform<LockFreeSkipLocal>)
    CCDS_E17_THREADS->Repetitions(5)->ReportAggregatesOnly(true);
BENCHMARK(BM_SkipRecoveryUniform<LockFreeSkipRestart>)
    CCDS_E17_THREADS->Repetitions(5)->ReportAggregatesOnly(true);
// Arg = α in tenths (9 → 0.9, 12 → 1.2).
BENCHMARK(BM_SkipRecoveryZipf<LockFreeSkipLocalPreempt>)
    ->Arg(9)->Arg(12) CCDS_E17_THREADS
    ->Repetitions(5)->ReportAggregatesOnly(true);
BENCHMARK(BM_SkipRecoveryZipf<LockFreeSkipRestartPreempt>)
    ->Arg(9)->Arg(12) CCDS_E17_THREADS
    ->Repetitions(5)->ReportAggregatesOnly(true);

}  // namespace

BENCHMARK_MAIN();

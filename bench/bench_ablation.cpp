// E15 (ablations) — sensitivity of the design knobs DESIGN.md calls out.
//
//   * elimination array size: 1 slot (a single rendezvous point, heavy
//     collision contention) .. 64 slots (partners rarely meet);
//   * elimination spin budget: how long a parked op waits for a partner;
//   * hazard-pointer scan threshold: scan amortization vs garbage held;
//   * counting-network width: toggles-per-token (log^2 w layers) vs
//     per-wire contention;
//   * reclamation policy x update ratio: the same list under every
//     reclaimer at read-mostly and update-heavy mixes.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "counter/counters.hpp"
#include "counter/counting_network.hpp"
#include "list/harris_list.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/qsbr.hpp"
#include "stack/elimination_stack.hpp"
#include "stack/treiber_stack.hpp"

namespace {

using namespace ccds;

// ---------- elimination array size / spin budget ----------

template <int Slots, int Budget>
void BM_EliminationKnobs(benchmark::State& state) {
  using Stack = EliminationBackoffStack<std::uint64_t, HazardDomain, Slots,
                                        Budget>;
  static Stack* stack = nullptr;
  if (state.thread_index() == 0) {
    stack = new Stack();
    for (std::uint64_t i = 0; i < 1024; ++i) stack->push(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      stack->push(7);
    } else {
      benchmark::DoNotOptimize(stack->try_pop());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete stack;
    stack = nullptr;
  }
}

#define CCDS_ELIM(slots, budget)                       \
  BENCHMARK(BM_EliminationKnobs<slots, budget>)        \
      ->ThreadRange(2, 8)                              \
      ->UseRealTime()

CCDS_ELIM(1, 512);
CCDS_ELIM(4, 512);
CCDS_ELIM(16, 512);
CCDS_ELIM(64, 512);
CCDS_ELIM(16, 64);
CCDS_ELIM(16, 4096);

// ---------- hazard-pointer scan threshold ----------

template <std::size_t Threshold>
void BM_HpScanThreshold(benchmark::State& state) {
  using Stack = TreiberStack<std::uint64_t, BasicHazardDomain<Threshold>>;
  static Stack* stack = nullptr;
  if (state.thread_index() == 0) {
    stack = new Stack();
    for (std::uint64_t i = 0; i < 1024; ++i) stack->push(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      stack->push(7);
    } else {
      benchmark::DoNotOptimize(stack->try_pop());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete stack;
    stack = nullptr;
  }
}

BENCHMARK(BM_HpScanThreshold<32>)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_HpScanThreshold<256>)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_HpScanThreshold<2048>)->ThreadRange(1, 8)->UseRealTime();

// ---------- counting network width ----------

template <int Width>
void BM_CountingNetwork(benchmark::State& state) {
  static CountingNetworkCounter<Width>* counter = nullptr;
  if (state.thread_index() == 0) {
    counter = new CountingNetworkCounter<Width>();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter->next());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete counter;
    counter = nullptr;
  }
}

BENCHMARK(BM_CountingNetwork<2>)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_CountingNetwork<4>)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_CountingNetwork<8>)->ThreadRange(1, 8)->UseRealTime();
BENCHMARK(BM_CountingNetwork<16>)->ThreadRange(1, 8)->UseRealTime();

// Reference: the single fetch_add word the network is trying to beat.
void BM_CountingNetworkAtomicRef(benchmark::State& state) {
  static AtomicCounter* counter = nullptr;
  if (state.thread_index() == 0) counter = new AtomicCounter();
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter->fetch_add(1));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete counter;
    counter = nullptr;
  }
}
BENCHMARK(BM_CountingNetworkAtomicRef)->ThreadRange(1, 8)->UseRealTime();

// ---------- reclamation policy x update ratio ----------
//
// The cross-policy ablation the reclaimer concept unlocks: the SAME
// Harris-Michael list code under every policy, at two update ratios.  HP
// pays per pointer hop (hurts reads), QSBR pays per operation boundary
// (read path free, reclamation latency worst), epochs sit between; the
// update ratio shifts how much of the op is traversal vs retirement, so
// the policy ranking can flip between the two mixes.
template <typename Domain, int UpdatePct>
void BM_ListPolicyMix(benchmark::State& state) {
  using List = HarrisMichaelListSet<std::uint64_t, Domain>;
  static List* list = nullptr;
  constexpr std::uint64_t kKeyRange = 256;
  if (state.thread_index() == 0) {
    list = new List();
    for (std::uint64_t k = 0; k < kKeyRange; k += 2) list->insert(k);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = r % kKeyRange;
    const std::uint64_t op = (r >> 32) % 100;
    if (op >= static_cast<std::uint64_t>(UpdatePct)) {
      benchmark::DoNotOptimize(list->contains(key));
    } else if (op & 1) {
      benchmark::DoNotOptimize(list->insert(key));
    } else {
      benchmark::DoNotOptimize(list->remove(key));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete list;
    list = nullptr;
  }
}

#define CCDS_POLICY_MIX(domain)                                       \
  BENCHMARK(BM_ListPolicyMix<domain, 2>)                              \
      ->ThreadRange(2, 8)                                             \
      ->UseRealTime();                                                \
  BENCHMARK(BM_ListPolicyMix<domain, 40>)                             \
      ->ThreadRange(2, 8)                                             \
      ->UseRealTime()

CCDS_POLICY_MIX(LeakyDomain);
CCDS_POLICY_MIX(HazardDomain);
CCDS_POLICY_MIX(EpochDomain);
CCDS_POLICY_MIX(EpochLeaseDomain);
CCDS_POLICY_MIX(QsbrDomain);
CCDS_POLICY_MIX(QsbrLeaseDomain);

}  // namespace

BENCHMARK_MAIN();

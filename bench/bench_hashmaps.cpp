// E7 — hash tables: coarse vs striped vs split-ordered lock-free vs the
// swiss-table flat map.
//
// Survey claim: striping buys near-linear read scaling at low cost; the
// split-ordered list keeps winning as the update share grows and removes
// the stop-the-world resize entirely (the table never moves).  The swiss
// map tests the follow-on claim from the flat-layout literature (F14,
// Synch): once probing is a SIMD scan over inline groups, the cache-miss
// chain of node-based maps is the dominant term they can never recover —
// its lock-free seqlock gets should dominate every lock-taking get on the
// read-heavy mixes.
//
// The lock-based structures and the swiss map are benchmarked through the
// map interface, the split-ordered through the set interface; the per-op
// work (hash, probe chain of ~2) is comparable.  Key range 64k, prefilled
// half.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>

#include "bench_util.hpp"
#include "hash/coarse_hash_map.hpp"
#include "hash/split_ordered_set.hpp"
#include "hash/striped_hash_map.hpp"
#include "hash/swiss_hash_map.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"

namespace {

using namespace ccds;
using namespace ccds::bench;

constexpr std::uint64_t kKeyRange = 1 << 16;

template <typename Map>
void BM_HashMapMix(benchmark::State& state) {
  // Magic static + call_once: see bench_lists.cpp for why (no teardown race).
  static Map& map = *new Map(kKeyRange / 2);
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] { prefill_map(map, kKeyRange); });
  run_map_mix(map, state, kKeyRange, static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)));
}

template <typename Set>
void BM_HashSetMix(benchmark::State& state) {
  static Set& set = *new Set();
  static std::once_flag prefill_once;
  std::call_once(prefill_once, [] { prefill_set(set, kKeyRange); });
  run_set_mix(set, state, kKeyRange, static_cast<int>(state.range(0)),
              static_cast<int>(state.range(1)));
}

using CoarseMap = CoarseHashMap<std::uint64_t, std::uint64_t>;
using StripedMap = StripedHashMap<std::uint64_t, std::uint64_t>;
using SwissMap = SwissHashMap<std::uint64_t, std::uint64_t>;
using SplitOrderedHP =
    SplitOrderedHashSet<std::uint64_t, MixHash<std::uint64_t>, HazardDomain>;
using SplitOrderedEBR =
    SplitOrderedHashSet<std::uint64_t, MixHash<std::uint64_t>, EpochDomain>;

BENCHMARK(BM_HashMapMix<CoarseMap>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_HashMapMix<StripedMap>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_HashMapMix<SwissMap>) CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_HashSetMix<SplitOrderedHP>)
    CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;
BENCHMARK(BM_HashSetMix<SplitOrderedEBR>)
    CCDS_BENCH_MIX_ARGS CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

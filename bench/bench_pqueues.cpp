// E9 — priority queues: coarse binary heap vs skiplist-based (Lotan-Shavit).
//
// Survey claim: heap-based priority queues serialize on the root (every
// delete-min touches it), so a single lock around a binary heap is close to
// optimal for heaps — and still loses to the skiplist PQ, whose inserts
// touch disjoint regions and whose delete-mins contend only on claim flags.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_util.hpp"
#include "skiplist/lockfree_skiplist.hpp"

namespace {

using namespace ccds;

template <typename PQ>
void BM_PriorityQueueMix(benchmark::State& state) {
  static PQ* pq = nullptr;
  if (state.thread_index() == 0) {
    pq = new PQ();
    Xoshiro256 seed_rng(1234);
    for (int i = 0; i < 4096; ++i) {
      pq->push(static_cast<std::uint32_t>(seed_rng.next_below(1 << 24)));
    }
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      pq->push(static_cast<std::uint32_t>(rng.next_below(1 << 24)));
    } else {
      benchmark::DoNotOptimize(pq->pop_min());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete pq;
    pq = nullptr;
  }
}

using CoarsePQ = CoarsePriorityQueue<std::uint32_t>;
using SkipPQ = SkipListPriorityQueue<std::uint32_t>;

BENCHMARK(BM_PriorityQueueMix<CoarsePQ>) CCDS_BENCH_THREADS;
BENCHMARK(BM_PriorityQueueMix<SkipPQ>) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// E14 — reader-writer locks: when sharing the read path pays.
//
// Survey claim: an RW lock beats a plain mutex exactly when reads dominate
// AND the read-side critical section is long enough to amortize the RW
// lock's heavier entry protocol; at high write shares the writer-preference
// machinery makes it *worse* than a plain lock.  The Arg is the read
// percentage.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "bench_util.hpp"
#include "hash/coarse_hash_map.hpp"
#include "sync/rwlock.hpp"
#include "sync/spinlock.hpp"

namespace {

using namespace ccds;

// Protected payload: a small array scanned on read, one slot bumped on
// write — a read-side section with real length.
struct Table {
  std::uint64_t slots[64] = {};
};

// RW-capable locks.
template <typename Lock>
void BM_RwLockMix(benchmark::State& state) {
  static Lock* lock = nullptr;
  static Table* table = nullptr;
  if (state.thread_index() == 0) {
    lock = new Lock();
    table = new Table();
  }
  const int read_pct = static_cast<int>(state.range(0));
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    if (static_cast<int>(r % 100) < read_pct) {
      std::shared_lock<Lock> g(*lock);
      std::uint64_t sum = 0;
      for (auto s : table->slots) sum += s;
      benchmark::DoNotOptimize(sum);
    } else {
      std::lock_guard<Lock> g(*lock);
      table->slots[r % 64] += 1;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete lock;
    delete table;
    lock = nullptr;
    table = nullptr;
  }
}

// Exclusive-only baseline: same workload, every access takes the one lock.
template <typename Lock>
void BM_ExclusiveLockMix(benchmark::State& state) {
  static Lock* lock = nullptr;
  static Table* table = nullptr;
  if (state.thread_index() == 0) {
    lock = new Lock();
    table = new Table();
  }
  const int read_pct = static_cast<int>(state.range(0));
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    std::lock_guard<Lock> g(*lock);
    if (static_cast<int>(r % 100) < read_pct) {
      std::uint64_t sum = 0;
      for (auto s : table->slots) sum += s;
      benchmark::DoNotOptimize(sum);
    } else {
      table->slots[r % 64] += 1;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete lock;
    delete table;
    lock = nullptr;
    table = nullptr;
  }
}

#define CCDS_RW_ARGS ->Arg(99)->Arg(90)->Arg(50)->ThreadRange(1, 8)->UseRealTime()

BENCHMARK(BM_RwLockMix<RwSpinLock>) CCDS_RW_ARGS;
BENCHMARK(BM_RwLockMix<std::shared_mutex>) CCDS_RW_ARGS;
BENCHMARK(BM_ExclusiveLockMix<TtasLock>) CCDS_RW_ARGS;
BENCHMARK(BM_ExclusiveLockMix<std::mutex>) CCDS_RW_ARGS;

}  // namespace

BENCHMARK_MAIN();

// E11 — the cost of safe memory reclamation.
//
// Survey claim: hazard pointers tax every protected read with a
// store+fence+re-load; epochs amortize protection over a whole operation
// (one pin/unpin) and get close to the unprotected (leaky) baseline.  The
// flip side — epochs can't bound memory under a stalled reader — is a
// space property benchmarks can't show; tests cover it instead.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "bench_util.hpp"
#include "list/harris_list.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "stack/treiber_stack.hpp"

namespace {

using namespace ccds;

// Whole-structure view: Treiber stack churn under each domain.
template <typename Domain>
void BM_TreiberChurn(benchmark::State& state) {
  using Stack = TreiberStack<std::uint64_t, Domain>;
  static Stack* stack = nullptr;
  if (state.thread_index() == 0) {
    stack = new Stack();
    for (std::uint64_t i = 0; i < 1024; ++i) stack->push(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      stack->push(1);
    } else {
      benchmark::DoNotOptimize(stack->try_pop());
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete stack;
    stack = nullptr;
  }
}

BENCHMARK(BM_TreiberChurn<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_TreiberChurn<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_TreiberChurn<EpochDomain>) CCDS_BENCH_THREADS;

// Read-side microcost: protect a stable pointer repeatedly.
template <typename Domain>
void BM_ProtectedRead(benchmark::State& state) {
  static Domain* dom = nullptr;
  static std::atomic<std::uint64_t*>* src = nullptr;
  if (state.thread_index() == 0) {
    dom = new Domain();
    src = new std::atomic<std::uint64_t*>(new std::uint64_t(42));
  }
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    auto g = dom->guard();
    std::uint64_t* p = g.protect(0, *src);
    benchmark::DoNotOptimize(*p);
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete src->load();
    delete src;
    delete dom;
    src = nullptr;
    dom = nullptr;
  }
}

BENCHMARK(BM_ProtectedRead<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<EpochDomain>) CCDS_BENCH_THREADS;
// Before/after for the asymmetric-fence read path: the classic fully-fenced
// protocols (seq_cst publish on every protect/pin) on the same workload.
BENCHMARK(BM_ProtectedRead<SeqCstHazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<SeqCstEpochDomain>) CCDS_BENCH_THREADS;

// End-to-end effect: Harris-Michael list under a read-heavy mix
// (90% contains / 9% insert / 1% remove, keys in [0, 256)).  Here the
// per-hop protect() cost dominates contains(), so eliding the read-side
// fence moves the whole operation, not just a microbenchmark counter.
template <typename Domain>
void BM_HarrisListReadHeavy(benchmark::State& state) {
  using List = HarrisMichaelListSet<std::uint64_t, Domain>;
  static List* list = nullptr;
  constexpr std::uint64_t kKeyRange = 256;
  if (state.thread_index() == 0) {
    list = new List();
    for (std::uint64_t k = 0; k < kKeyRange; k += 2) list->insert(k);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = r % kKeyRange;
    const std::uint64_t op = (r >> 32) % 100;
    if (op < 90) {
      benchmark::DoNotOptimize(list->contains(key));
    } else if (op < 99) {
      benchmark::DoNotOptimize(list->insert(key));
    } else {
      benchmark::DoNotOptimize(list->remove(key));
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete list;
    list = nullptr;
  }
}

BENCHMARK(BM_HarrisListReadHeavy<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<SeqCstHazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<EpochDomain>) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// E11 — the cost of safe memory reclamation, swept structure x policy.
//
// Survey claim: hazard pointers tax every protected read with a
// store+fence+re-load; epochs amortize protection over a whole operation
// (one pin/unpin) and get close to the unprotected (leaky) baseline; QSBR
// moves the announcement to operation BOUNDARIES and makes the read path
// itself indistinguishable from leaky.  The flip side — epochs/QSBR can't
// bound memory under a stalled reader — is a space property benchmarks
// can't show; tests cover it instead.
//
// Every node-based structure is a template over ccds::reclaimer, so the
// sweep below is a true cross-product: one workload per structure, every
// policy plugged into the same code.  CI checks BENCH_reclaim.json keeps a
// row for each pair.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "bench_util.hpp"
#include "hash/split_ordered_set.hpp"
#include "hash/swiss_hash_map.hpp"
#include "list/harris_list.hpp"
#include "queue/ms_queue.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/reclaim.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "stack/treiber_stack.hpp"

namespace {

using namespace ccds;

// Whole-structure view: Treiber stack churn under each domain.
template <typename Domain>
void BM_TreiberChurn(benchmark::State& state) {
  using Stack = TreiberStack<std::uint64_t, Domain>;
  static Stack* stack = nullptr;
  if (state.thread_index() == 0) {
    stack = new Stack();
    for (std::uint64_t i = 0; i < 1024; ++i) stack->push(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      stack->push(1);
    } else {
      benchmark::DoNotOptimize(stack->try_pop());
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete stack;
    stack = nullptr;
  }
}

BENCHMARK(BM_TreiberChurn<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_TreiberChurn<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_TreiberChurn<EpochDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_TreiberChurn<QsbrDomain>) CCDS_BENCH_THREADS;

// Read-side microcost: protect a stable pointer repeatedly.
template <typename Domain>
void BM_ProtectedRead(benchmark::State& state) {
  static Domain* dom = nullptr;
  static std::atomic<std::uint64_t*>* src = nullptr;
  if (state.thread_index() == 0) {
    dom = new Domain();
    src = new std::atomic<std::uint64_t*>(new std::uint64_t(42));
  }
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    auto g = dom->guard();
    std::uint64_t* p = g.protect(0, *src);
    benchmark::DoNotOptimize(*p);
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete src->load();
    delete src;
    delete dom;
    src = nullptr;
    dom = nullptr;
  }
}

BENCHMARK(BM_ProtectedRead<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<EpochDomain>) CCDS_BENCH_THREADS;
// The headline QSBR claim: protect() is a plain load, so this row should
// sit within noise of (or beat) the leaky baseline — the per-op cost is
// the boundary checkpoint in the guard destructor.
BENCHMARK(BM_ProtectedRead<QsbrDomain>) CCDS_BENCH_THREADS;
// Lease-amortized flavors: no boundary at scope exit, re-announce only
// when the epoch moved.
BENCHMARK(BM_ProtectedRead<EpochLeaseDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<QsbrLeaseDomain>) CCDS_BENCH_THREADS;
// Before/after for the asymmetric-fence read path: the classic fully-fenced
// protocols (seq_cst publish on every protect/pin/online) on the same
// workload.
BENCHMARK(BM_ProtectedRead<SeqCstHazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<SeqCstEpochDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<SeqCstQsbrDomain>) CCDS_BENCH_THREADS;

// Same microcost at operation granularity: ONE guard covers eight
// protected reads (a short traversal; slots alternate hand-over-hand
// style).  This is where the policies' cost models separate — hazard
// pays its publish-and-validate per READ, while epoch's pin and QSBR's
// boundary are per GUARD and amortize to noise, so the per-read figure
// for both should converge on the leaky baseline.
template <typename Domain>
void BM_ProtectedReadBatch8(benchmark::State& state) {
  static Domain* dom = nullptr;
  static std::atomic<std::uint64_t*>* src = nullptr;
  if (state.thread_index() == 0) {
    dom = new Domain();
    src = new std::atomic<std::uint64_t*>(new std::uint64_t(42));
  }
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    auto g = dom->guard();
    for (int i = 0; i < 8; ++i) {
      std::uint64_t* p = g.protect(static_cast<std::size_t>(i & 1), *src);
      benchmark::DoNotOptimize(*p);
      ops.tick();
    }
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete src->load();
    delete src;
    delete dom;
    src = nullptr;
    dom = nullptr;
  }
}

BENCHMARK(BM_ProtectedReadBatch8<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedReadBatch8<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedReadBatch8<EpochDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedReadBatch8<QsbrDomain>) CCDS_BENCH_THREADS;

// End-to-end effect: Harris-Michael list under a read-heavy mix
// (90% contains / 9% insert / 1% remove, keys in [0, 256)).  Here the
// per-hop protect() cost dominates contains(), so eliding the read-side
// fence moves the whole operation, not just a microbenchmark counter.
template <typename Domain>
void BM_HarrisListReadHeavy(benchmark::State& state) {
  using List = HarrisMichaelListSet<std::uint64_t, Domain>;
  static List* list = nullptr;
  constexpr std::uint64_t kKeyRange = 256;
  if (state.thread_index() == 0) {
    list = new List();
    for (std::uint64_t k = 0; k < kKeyRange; k += 2) list->insert(k);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = r % kKeyRange;
    const std::uint64_t op = (r >> 32) % 100;
    if (op < 90) {
      benchmark::DoNotOptimize(list->contains(key));
    } else if (op < 99) {
      benchmark::DoNotOptimize(list->insert(key));
    } else {
      benchmark::DoNotOptimize(list->remove(key));
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete list;
    list = nullptr;
  }
}

BENCHMARK(BM_HarrisListReadHeavy<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<SeqCstHazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<EpochDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<EpochLeaseDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<QsbrDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_HarrisListReadHeavy<QsbrLeaseDomain>) CCDS_BENCH_THREADS;

// ---------- structure sweep ----------
//
// The same policy matrix through every other node-based shape: queue churn
// (two hot words, protect cost secondary), hash-set and skip-list
// read-heavy mixes (traversal-dominated, like the list but with different
// pointer-chase depths).  One workload per structure; domains plug in.

template <typename Domain>
void BM_MSQueueChurn(benchmark::State& state) {
  using Queue = MSQueue<std::uint64_t, Domain>;
  static Queue* queue = nullptr;
  if (state.thread_index() == 0) {
    queue = new Queue();
    for (std::uint64_t i = 0; i < 1024; ++i) queue->enqueue(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      queue->enqueue(1);
    } else {
      benchmark::DoNotOptimize(queue->try_dequeue());
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}

BENCHMARK(BM_MSQueueChurn<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_MSQueueChurn<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_MSQueueChurn<EpochDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_MSQueueChurn<QsbrDomain>) CCDS_BENCH_THREADS;

template <typename Domain>
void BM_SplitOrderedReadHeavy(benchmark::State& state) {
  using Set = SplitOrderedHashSet<std::uint64_t, MixHash<std::uint64_t>,
                                  Domain>;
  static Set* set = nullptr;
  constexpr std::uint64_t kKeyRange = 1024;
  if (state.thread_index() == 0) {
    set = new Set();
    for (std::uint64_t k = 0; k < kKeyRange; k += 2) set->insert(k);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = r % kKeyRange;
    const std::uint64_t op = (r >> 32) % 100;
    if (op < 90) {
      benchmark::DoNotOptimize(set->contains(key));
    } else if (op < 99) {
      benchmark::DoNotOptimize(set->insert(key));
    } else {
      benchmark::DoNotOptimize(set->remove(key));
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete set;
    set = nullptr;
  }
}

BENCHMARK(BM_SplitOrderedReadHeavy<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SplitOrderedReadHeavy<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SplitOrderedReadHeavy<EpochDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SplitOrderedReadHeavy<QsbrDomain>) CCDS_BENCH_THREADS;

template <typename Domain>
void BM_SwissMapReadHeavy(benchmark::State& state) {
  using Map = SwissHashMap<std::uint64_t, std::uint64_t,
                           MixHash<std::uint64_t>, Domain>;
  static Map* map = nullptr;
  constexpr std::uint64_t kKeyRange = 4096;
  if (state.thread_index() == 0) {
    map = new Map(2 * kKeyRange);
    for (std::uint64_t k = 0; k < kKeyRange; k += 2) map->insert(k, k);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = r % kKeyRange;
    const std::uint64_t op = (r >> 32) % 100;
    if (op < 90) {
      benchmark::DoNotOptimize(map->get(key));
    } else if (op < 99) {
      benchmark::DoNotOptimize(map->insert(key, key));
    } else {
      benchmark::DoNotOptimize(map->erase(key));
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete map;
    map = nullptr;
  }
}

BENCHMARK(BM_SwissMapReadHeavy<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SwissMapReadHeavy<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SwissMapReadHeavy<EpochDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SwissMapReadHeavy<QsbrDomain>) CCDS_BENCH_THREADS;

template <typename Domain>
void BM_SkipListReadHeavy(benchmark::State& state) {
  using Set = LockFreeSkipListSet<std::uint64_t, std::less<std::uint64_t>,
                                  Domain>;
  static Set* set = nullptr;
  constexpr std::uint64_t kKeyRange = 1024;
  if (state.thread_index() == 0) {
    set = new Set();
    for (std::uint64_t k = 0; k < kKeyRange; k += 2) set->insert(k);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  ccds::bench::ThreadOps ops(state);
  for (auto _ : state) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = r % kKeyRange;
    const std::uint64_t op = (r >> 32) % 100;
    if (op < 90) {
      benchmark::DoNotOptimize(set->contains(key));
    } else if (op < 99) {
      benchmark::DoNotOptimize(set->insert(key));
    } else {
      benchmark::DoNotOptimize(set->remove(key));
    }
    ops.tick();
  }
  ops.finish();
  if (state.thread_index() == 0) {
    delete set;
    set = nullptr;
  }
}

// WideHazardDomain: the skip list's per-level hazard banks need 40 slots.
BENCHMARK(BM_SkipListReadHeavy<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SkipListReadHeavy<WideHazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SkipListReadHeavy<EpochDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_SkipListReadHeavy<QsbrDomain>) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// E11 — the cost of safe memory reclamation.
//
// Survey claim: hazard pointers tax every protected read with a
// store+fence+re-load; epochs amortize protection over a whole operation
// (one pin/unpin) and get close to the unprotected (leaky) baseline.  The
// flip side — epochs can't bound memory under a stalled reader — is a
// space property benchmarks can't show; tests cover it instead.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "bench_util.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "stack/treiber_stack.hpp"

namespace {

using namespace ccds;

// Whole-structure view: Treiber stack churn under each domain.
template <typename Domain>
void BM_TreiberChurn(benchmark::State& state) {
  using Stack = TreiberStack<std::uint64_t, Domain>;
  static Stack* stack = nullptr;
  if (state.thread_index() == 0) {
    stack = new Stack();
    for (std::uint64_t i = 0; i < 1024; ++i) stack->push(i);
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      stack->push(1);
    } else {
      benchmark::DoNotOptimize(stack->try_pop());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete stack;
    stack = nullptr;
  }
}

BENCHMARK(BM_TreiberChurn<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_TreiberChurn<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_TreiberChurn<EpochDomain>) CCDS_BENCH_THREADS;

// Read-side microcost: protect a stable pointer repeatedly.
template <typename Domain>
void BM_ProtectedRead(benchmark::State& state) {
  static Domain* dom = nullptr;
  static std::atomic<std::uint64_t*>* src = nullptr;
  if (state.thread_index() == 0) {
    dom = new Domain();
    src = new std::atomic<std::uint64_t*>(new std::uint64_t(42));
  }
  for (auto _ : state) {
    auto g = dom->guard();
    std::uint64_t* p = g.protect(0, *src);
    benchmark::DoNotOptimize(*p);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete src->load();
    delete src;
    delete dom;
    src = nullptr;
    dom = nullptr;
  }
}

BENCHMARK(BM_ProtectedRead<LeakyDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<HazardDomain>) CCDS_BENCH_THREADS;
BENCHMARK(BM_ProtectedRead<EpochDomain>) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

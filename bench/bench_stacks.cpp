// E3 — stack family: coarse lock vs Treiber vs elimination-backoff.
//
// 50/50 push/pop over a prefilled stack.  The survey's claim: the Treiber
// stack beats any lock-based stack, and elimination extends scaling past
// the point where the single Treiber head saturates (pairs cancel without
// touching the head at all).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <mutex>

#include "bench_util.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "stack/coarse_stack.hpp"
#include "stack/elimination_stack.hpp"
#include "stack/treiber_stack.hpp"
#include "sync/spinlock.hpp"

namespace {

using namespace ccds;

template <typename Stack>
void BM_StackPushPop(benchmark::State& state) {
  static Stack* stack = nullptr;
  if (state.thread_index() == 0) {
    stack = new Stack();
    for (std::uint64_t i = 0; i < 1024; ++i) stack->push(i);  // prefill
  }
  Xoshiro256 rng = ccds::bench::make_rng(state);
  for (auto _ : state) {
    if (rng.next() & 1) {
      stack->push(42);
    } else {
      benchmark::DoNotOptimize(stack->try_pop());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete stack;
    stack = nullptr;
  }
}

using LockStackMutex = LockStack<std::uint64_t, std::mutex>;
using LockStackTtas = LockStack<std::uint64_t, TtasLock>;
using TreiberHP = TreiberStack<std::uint64_t, HazardDomain>;
using TreiberEBR = TreiberStack<std::uint64_t, EpochDomain>;
using ElimHP = EliminationBackoffStack<std::uint64_t, HazardDomain>;

BENCHMARK(BM_StackPushPop<LockStackMutex>) CCDS_BENCH_THREADS;
BENCHMARK(BM_StackPushPop<LockStackTtas>) CCDS_BENCH_THREADS;
BENCHMARK(BM_StackPushPop<TreiberHP>) CCDS_BENCH_THREADS;
BENCHMARK(BM_StackPushPop<TreiberEBR>) CCDS_BENCH_THREADS;
BENCHMARK(BM_StackPushPop<ElimHP>) CCDS_BENCH_THREADS;

}  // namespace

BENCHMARK_MAIN();

// Optimistic sorted linked-list set (Herlihy & Shavit ch. 9.6).
//
// Traverse WITHOUT locks, lock only the (pred, curr) window, then *validate*
// by re-traversing from the head that pred is still reachable and still
// links to curr; retry on failure.  Wins when traversals are long and
// conflicts rare; loses when validation (a second traversal) dominates.
//
// Unlinked nodes are retired through an epoch domain because lock-free
// traversals may still be reading them; every operation runs under an epoch
// guard.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>

#include "reclaim/epoch.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = TtasLock>
class OptimisticListSet {
 public:
  OptimisticListSet() : head_(new Node) {}
  OptimisticListSet(const OptimisticListSet&) = delete;
  OptimisticListSet& operator=(const OptimisticListSet&) = delete;

  ~OptimisticListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  bool contains(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key);
      std::lock_guard<Lock> lp(pred->lock);
      if (curr != nullptr) {
        std::lock_guard<Lock> lc(curr->lock);
        if (!validate(pred, curr)) continue;
        return !comp_(key, curr->key);
      }
      if (!validate(pred, curr)) continue;
      return false;
    }
  }

  bool insert(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key);
      std::lock_guard<Lock> lp(pred->lock);
      if (curr != nullptr) {
        std::lock_guard<Lock> lc(curr->lock);
        if (!validate(pred, curr)) continue;
        if (!comp_(key, curr->key)) return false;  // already present
        Node* n = new Node{key, curr};
        pred->next.store(n, std::memory_order_release);
        return true;
      }
      if (!validate(pred, curr)) continue;
      Node* n = new Node{key, nullptr};
      pred->next.store(n, std::memory_order_release);
      return true;
    }
  }

  bool remove(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key);
      if (curr == nullptr) {
        std::lock_guard<Lock> lp(pred->lock);
        if (!validate(pred, curr)) continue;
        return false;
      }
      std::lock_guard<Lock> lp(pred->lock);
      std::lock_guard<Lock> lc(curr->lock);
      if (!validate(pred, curr)) continue;
      if (comp_(key, curr->key)) return false;  // absent
      // relaxed: pred and curr are locked; next cannot change.
      pred->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);
      domain_.retire(curr);
      return true;
    }
  }

  EpochDomain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    std::atomic<Node*> next{nullptr};
    Lock lock;

    Node() = default;
    Node(const Key& k, Node* nx) : key(k), next(nx) {}
  };

  // Unsynchronized traversal to the window (pred < key <= curr).
  std::pair<Node*, Node*> locate(const Key& key) const {
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr != nullptr && comp_(curr->key, key)) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
    }
    return {pred, curr};
  }

  // Re-traverse from head: pred must still be reachable and link to curr.
  bool validate(Node* pred, Node* curr) const {
    Node* n = head_;
    while (n != nullptr) {
      if (n == pred) {
        return pred->next.load(std::memory_order_acquire) == curr;
      }
      n = n->next.load(std::memory_order_acquire);
    }
    return false;  // pred was unlinked while we were locking
  }

  Node* const head_;  // sentinel
  mutable EpochDomain domain_;
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

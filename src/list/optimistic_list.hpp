// Optimistic sorted linked-list set (Herlihy & Shavit ch. 9.6).
//
// Traverse WITHOUT locks, lock only the (pred, curr) window, then *validate*
// by re-traversing from the head that pred is still reachable and still
// links to curr; retry on failure.  Wins when traversals are long and
// conflicts rare; loses when validation (a second traversal) dominates.
//
// Unlinked nodes are retired through the reclamation domain because
// optimistic traversals may still be reading them; every operation runs
// under a guard.  Blanket domains (epoch/QSBR — the default) cover the
// whole traversal for free.  Pointer-based domains (hazard pointers) need
// more care, because an unlinked node's frozen next pointer can outlive its
// successor: nodes carry a `marked` flag, set under the window locks
// immediately before the unlink, and the traversal re-checks it after each
// protection — observing marked == false after publishing the successor's
// hazard proves the link was live at validation time (the flag's setter
// unlinks only after the flag store, and the domain's heavy barrier makes
// the flag visible to any reader whose hazard a scan missed).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <utility>

#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = TtasLock, reclaimer Domain = EpochDomain>
class OptimisticListSet {
  static_assert(!reclaimer_traits<Domain>::pointer_based ||
                    Domain::kSlots >= 4,
                "locate holds pred/curr while validate walks with two more");

 public:
  OptimisticListSet() : head_(new Node) {}
  OptimisticListSet(const OptimisticListSet&) = delete;
  OptimisticListSet& operator=(const OptimisticListSet&) = delete;

  ~OptimisticListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  bool contains(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key, g);
      std::lock_guard<Lock> lp(pred->lock);
      if (curr != nullptr) {
        std::lock_guard<Lock> lc(curr->lock);
        if (!validate(pred, curr, g)) continue;
        return !comp_(key, curr->key);
      }
      if (!validate(pred, curr, g)) continue;
      return false;
    }
  }

  bool insert(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key, g);
      std::lock_guard<Lock> lp(pred->lock);
      if (curr != nullptr) {
        std::lock_guard<Lock> lc(curr->lock);
        if (!validate(pred, curr, g)) continue;
        if (!comp_(key, curr->key)) return false;  // already present
        Node* n = new Node{key, curr};
        pred->next.store(n, std::memory_order_release);
        return true;
      }
      if (!validate(pred, curr, g)) continue;
      Node* n = new Node{key, nullptr};
      pred->next.store(n, std::memory_order_release);
      return true;
    }
  }

  bool remove(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key, g);
      if (curr == nullptr) {
        std::lock_guard<Lock> lp(pred->lock);
        if (!validate(pred, curr, g)) continue;
        return false;
      }
      std::lock_guard<Lock> lp(pred->lock);
      std::lock_guard<Lock> lc(curr->lock);
      if (!validate(pred, curr, g)) continue;
      if (comp_(key, curr->key)) return false;  // absent
      // Logical delete BEFORE the unlink: pointer-based traversals use the
      // flag to reject windows read through an unlinked predecessor.
      // release: must be visible no later than the unlink below.
      curr->marked.store(true, std::memory_order_release);
      // relaxed: pred and curr are locked; next cannot change.
      pred->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);
      domain_.retire(curr);
      return true;
    }
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    std::atomic<Node*> next{nullptr};
    // Set (under the window locks) right before the node is unlinked.
    std::atomic<bool> marked{false};
    Lock lock;

    Node() = default;
    Node(const Key& k, Node* nx) : key(k), next(nx) {}
  };

  static constexpr bool kPointerBased = reclaimer_traits<Domain>::pointer_based;

  // guard() may return a Guard or (via LeasedDomain) a Lease.
  using GuardT = decltype(std::declval<Domain&>().guard());

  // Traversal to the window (pred < key <= curr).  Blanket domains traverse
  // unsynchronized (protect degrades to an acquire load, the marked checks
  // compile out); pointer-based domains keep pred in slot 0 and curr in
  // slot 1, hand-over-hand, restarting whenever pred turns out marked (its
  // frozen next pointer can name an already-freed successor — header
  // comment).
  std::pair<Node*, Node*> locate(const Key& key, GuardT& g) const {
    for (;;) {  // outer: restart from head when a predecessor died (HP only)
      Node* pred = head_;
      Node* curr = g.protect(1, pred->next);
      bool restart = false;
      while (!restart) {
        if constexpr (kPointerBased) {
          // acquire: pairs with the remover's release store of the flag; a
          // false read after our hazard publication proves the link we
          // validated against was live (the sentinel head is never removed).
          if (pred != head_ &&
              pred->marked.load(std::memory_order_acquire)) {
            restart = true;
            continue;
          }
        }
        if (curr == nullptr || !comp_(curr->key, key)) return {pred, curr};
        g.protect_raw(0, curr);  // slot 1 still covers it during the handover
        pred = curr;
        curr = g.protect(1, pred->next);
      }
    }
  }

  // Re-traverse from head: pred must still be reachable and link to curr.
  // Key-bounded — the list is strictly sorted, so once a key passes
  // pred's, pred cannot appear later (pred is locked, so pred->key is
  // stable; a spurious false only retries).  Pointer-based domains walk
  // hand-over-hand in slots 2/3, leaving locate's window protections
  // intact.
  bool validate(Node* pred, Node* curr, GuardT& g) const {
    for (;;) {  // outer: restart from head when the walk hit a dead node
      Node* x = head_;
      bool restart = false;
      while (!restart) {
        if (x == pred) {
          return pred->next.load(std::memory_order_acquire) == curr;
        }
        Node* nx = g.protect(3, x->next);
        if constexpr (kPointerBased) {
          if (x != head_ && x->marked.load(std::memory_order_acquire)) {
            restart = true;
            continue;
          }
        }
        if (nx == nullptr) return false;
        if (comp_(pred->key, nx->key)) return false;  // walked past pred
        g.protect_raw(2, nx);  // slot 3 still covers it during the handover
        x = nx;
      }
    }
  }

  Node* const head_;  // sentinel
  mutable Domain domain_;
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

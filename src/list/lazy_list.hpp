// Lazy sorted linked-list set (Heller, Herlihy, Luchangco, Moir, Scheideler,
// Shavit 2005).
//
// Improves on the optimistic list in two ways: (1) validation becomes O(1) —
// each node carries a `marked` flag set before it is unlinked, so checking
// "!pred->marked && !curr->marked && pred->next == curr" replaces the full
// re-traversal; (2) contains() becomes lock-free and wait-free — a single
// traversal plus a mark check, never locking, never retrying.
//
// Removal is "lazy": mark first (the logical delete — the operation's
// linearization point), then unlink physically.  Traversals may still be
// walking through marked or even unlinked nodes, so unlinked nodes are
// retired through an epoch domain and every operation runs under a guard.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>

#include "reclaim/epoch.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = TtasLock>
class LazyListSet {
 public:
  LazyListSet() : head_(new Node) {}
  LazyListSet(const LazyListSet&) = delete;
  LazyListSet& operator=(const LazyListSet&) = delete;

  ~LazyListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  // Wait-free: one traversal, no locks, no retries.
  bool contains(const Key& key) {
    auto g = domain_.guard();
    Node* curr = head_->next.load(std::memory_order_acquire);
    while (curr != nullptr && comp_(curr->key, key)) {
      curr = curr->next.load(std::memory_order_acquire);
    }
    return curr != nullptr && !comp_(key, curr->key) &&
           !curr->marked.load(std::memory_order_acquire);
  }

  bool insert(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key);
      std::lock_guard<Lock> lp(pred->lock);
      if (curr != nullptr) {
        std::lock_guard<Lock> lc(curr->lock);
        if (!validate(pred, curr)) continue;
        if (!comp_(key, curr->key)) {
          // Present and (validated) unmarked.
          return false;
        }
        Node* n = new Node(key, curr);
        pred->next.store(n, std::memory_order_release);
        return true;
      }
      if (!validate(pred, curr)) continue;
      Node* n = new Node(key, nullptr);
      pred->next.store(n, std::memory_order_release);
      return true;
    }
  }

  bool remove(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key);
      if (curr == nullptr) {
        std::lock_guard<Lock> lp(pred->lock);
        if (!validate(pred, curr)) continue;
        return false;
      }
      std::lock_guard<Lock> lp(pred->lock);
      std::lock_guard<Lock> lc(curr->lock);
      if (!validate(pred, curr)) continue;
      if (comp_(key, curr->key)) return false;  // absent
      // Logical delete first (linearization point), then physical unlink.
      curr->marked.store(true, std::memory_order_release);
      // relaxed: pred and curr are locked; next cannot change.
      pred->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);
      domain_.retire(curr);
      return true;
    }
  }

  EpochDomain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> marked{false};
    Lock lock;

    Node() = default;
    Node(const Key& k, Node* nx) : key(k), next(nx) {}
  };

  std::pair<Node*, Node*> locate(const Key& key) const {
    Node* pred = head_;
    Node* curr = pred->next.load(std::memory_order_acquire);
    while (curr != nullptr && comp_(curr->key, key)) {
      pred = curr;
      curr = curr->next.load(std::memory_order_acquire);
    }
    return {pred, curr};
  }

  // O(1) validation under both locks: neither endpoint was logically
  // deleted, and the window is still intact.
  bool validate(Node* pred, Node* curr) const {
    return !pred->marked.load(std::memory_order_acquire) &&
           (curr == nullptr || !curr->marked.load(std::memory_order_acquire)) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  Node* const head_;  // sentinel (never marked)
  mutable EpochDomain domain_;
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

// Lazy sorted linked-list set (Heller, Herlihy, Luchangco, Moir, Scheideler,
// Shavit 2005).
//
// Improves on the optimistic list in two ways: (1) validation becomes O(1) —
// each node carries a `marked` flag set before it is unlinked, so checking
// "!pred->marked && !curr->marked && pred->next == curr" replaces the full
// re-traversal; (2) contains() becomes lock-free and wait-free — a single
// traversal plus a mark check, never locking, never retrying.
//
// Removal is "lazy": mark first (the logical delete — the operation's
// linearization point), then unlink physically.  Traversals may still be
// walking through marked or even unlinked nodes, so unlinked nodes are
// retired through the reclamation domain and every operation runs under a
// guard.  Under a pointer-based domain (hazard pointers) traversals go
// hand-over-hand and re-check the predecessor's mark after each hazard
// publication (an unlinked node's frozen next pointer can outlive its
// successor), which costs contains() its wait-freedom — it inherits the
// traversal's retry loop.  Blanket domains keep the original wait-free
// read path.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <utility>

#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = TtasLock, reclaimer Domain = EpochDomain>
class LazyListSet {
  static_assert(!reclaimer_traits<Domain>::pointer_based ||
                    Domain::kSlots >= 2,
                "the traversal window needs pred/curr slots");

 public:
  LazyListSet() : head_(new Node) {}
  LazyListSet(const LazyListSet&) = delete;
  LazyListSet& operator=(const LazyListSet&) = delete;

  ~LazyListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  // Wait-free under blanket domains: one traversal, no locks, no retries.
  // Pointer-based domains reuse the protected locate (lock-free, not
  // wait-free — see header).
  bool contains(const Key& key) {
    auto g = domain_.guard();
    if constexpr (kPointerBased) {
      auto [pred, curr] = locate(key, g);
      return curr != nullptr && !comp_(key, curr->key) &&
             !curr->marked.load(std::memory_order_acquire);
    } else {
      Node* curr = head_->next.load(std::memory_order_acquire);
      while (curr != nullptr && comp_(curr->key, key)) {
        curr = curr->next.load(std::memory_order_acquire);
      }
      return curr != nullptr && !comp_(key, curr->key) &&
             !curr->marked.load(std::memory_order_acquire);
    }
  }

  bool insert(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key, g);
      std::lock_guard<Lock> lp(pred->lock);
      if (curr != nullptr) {
        std::lock_guard<Lock> lc(curr->lock);
        if (!validate(pred, curr)) continue;
        if (!comp_(key, curr->key)) {
          // Present and (validated) unmarked.
          return false;
        }
        Node* n = new Node(key, curr);
        pred->next.store(n, std::memory_order_release);
        return true;
      }
      if (!validate(pred, curr)) continue;
      Node* n = new Node(key, nullptr);
      pred->next.store(n, std::memory_order_release);
      return true;
    }
  }

  bool remove(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      auto [pred, curr] = locate(key, g);
      if (curr == nullptr) {
        std::lock_guard<Lock> lp(pred->lock);
        if (!validate(pred, curr)) continue;
        return false;
      }
      std::lock_guard<Lock> lp(pred->lock);
      std::lock_guard<Lock> lc(curr->lock);
      if (!validate(pred, curr)) continue;
      if (comp_(key, curr->key)) return false;  // absent
      // Logical delete first (linearization point), then physical unlink.
      curr->marked.store(true, std::memory_order_release);
      // relaxed: pred and curr are locked; next cannot change.
      pred->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);
      domain_.retire(curr);
      return true;
    }
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> marked{false};
    Lock lock;

    Node() = default;
    Node(const Key& k, Node* nx) : key(k), next(nx) {}
  };

  static constexpr bool kPointerBased = reclaimer_traits<Domain>::pointer_based;

  // guard() may return a Guard or (via LeasedDomain) a Lease.
  using GuardT = decltype(std::declval<Domain&>().guard());

  // Traversal to the window (pred < key <= curr).  Blanket domains walk
  // unsynchronized (protect degrades to an acquire load and the marked
  // checks compile out); pointer-based domains keep pred in slot 0 and
  // curr in slot 1, restarting when pred turns out marked — observing
  // marked == false after the hazard publication proves the link we
  // validated against was live (the mark precedes the unlink, which
  // precedes retirement; the domain's heavy barrier makes the mark visible
  // to any reader whose hazard a scan missed).
  std::pair<Node*, Node*> locate(const Key& key, GuardT& g) const {
    for (;;) {  // outer: restart from head when a predecessor died (HP only)
      Node* pred = head_;
      Node* curr = g.protect(1, pred->next);
      bool restart = false;
      while (!restart) {
        if constexpr (kPointerBased) {
          // acquire: pairs with the remover's release store of the flag (the
          // sentinel head is never removed).
          if (pred != head_ &&
              pred->marked.load(std::memory_order_acquire)) {
            restart = true;
            continue;
          }
        }
        if (curr == nullptr || !comp_(curr->key, key)) return {pred, curr};
        g.protect_raw(0, curr);  // slot 1 still covers it during the handover
        pred = curr;
        curr = g.protect(1, pred->next);
      }
    }
  }

  // O(1) validation under both locks: neither endpoint was logically
  // deleted, and the window is still intact.
  // unguarded: pred/curr stay pinned by the caller's traversal guard
  // across the lock/validate/unlock window; validate adds no new reach.
  bool validate(Node* pred, Node* curr) const {
    return !pred->marked.load(std::memory_order_acquire) &&
           (curr == nullptr || !curr->marked.load(std::memory_order_acquire)) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  Node* const head_;  // sentinel (never marked)
  mutable Domain domain_;
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

// Coarse-grained sorted linked-list set: one lock around a sequential list.
//
// The baseline for the list-based-set spectrum (experiment E6).  Every
// operation — including pure lookups — serializes.
#pragma once

#include <functional>
#include <mutex>

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = std::mutex>
class CoarseListSet {
 public:
  CoarseListSet() = default;
  CoarseListSet(const CoarseListSet&) = delete;
  CoarseListSet& operator=(const CoarseListSet&) = delete;

  ~CoarseListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  bool contains(const Key& key) const {
    std::lock_guard<Lock> g(lock_);
    Node* curr = head_;
    while (curr != nullptr && comp_(curr->key, key)) curr = curr->next;
    return curr != nullptr && !comp_(key, curr->key);
  }

  bool insert(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    Node** prev = &head_;
    Node* curr = head_;
    while (curr != nullptr && comp_(curr->key, key)) {
      prev = &curr->next;
      curr = curr->next;
    }
    if (curr != nullptr && !comp_(key, curr->key)) return false;  // present
    *prev = new Node{key, curr};
    ++size_;
    return true;
  }

  bool remove(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    Node** prev = &head_;
    Node* curr = head_;
    while (curr != nullptr && comp_(curr->key, key)) {
      prev = &curr->next;
      curr = curr->next;
    }
    if (curr == nullptr || comp_(key, curr->key)) return false;  // absent
    *prev = curr->next;
    delete curr;
    --size_;
    return true;
  }

  std::size_t size() const {
    std::lock_guard<Lock> g(lock_);
    return size_;
  }

 private:
  struct Node {
    Key key;
    Node* next;
  };

  mutable Lock lock_;
  Node* head_ = nullptr;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

// Harris–Michael lock-free sorted linked-list set (Harris 2001, with
// Michael's 2002 hazard-pointer-compatible formulation).
//
// Deletion is two-phase: CAS a *mark bit* into the victim's next pointer
// (the logical delete and linearization point), then CAS the predecessor's
// link to unlink it physically.  Traversals that encounter a marked node
// help unlink it.  Because marking and unlinking are separate CASes, an
// insert CAS at a marked node fails (its expected next is unmarked), which
// is precisely what makes the algorithm linearizable without locks.
//
// Reclamation discipline (three guard slots, per Michael 2002):
//   slot 0 — node containing `prev` (none when prev is the head)
//   slot 1 — curr
//   slot 2 — next (only while unlinking / advancing)
// Every protection of a link-derived pointer is validated by re-reading the
// link; any inconsistency restarts the traversal from the head.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "core/arch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <typename Key, reclaimer Domain = HazardDomain,
          typename Compare = std::less<Key>>
class HarrisMichaelListSet {
  static_assert(!reclaimer_traits<Domain>::pointer_based ||
                    Domain::kSlots >= 3,
                "the traversal window needs prev/curr/next slots");
 public:
  HarrisMichaelListSet() = default;
  HarrisMichaelListSet(const HarrisMichaelListSet&) = delete;
  HarrisMichaelListSet& operator=(const HarrisMichaelListSet&) = delete;

  ~HarrisMichaelListSet() {
    Node* n = unmark(head_.load(std::memory_order_relaxed));  // relaxed: destructor
    while (n != nullptr) {
      Node* next = unmark(n->next.load(std::memory_order_relaxed));  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  bool contains(const Key& key) {
    auto g = domain_.guard();
    Window w = find(key, g);
    return w.found;
  }

  bool insert(const Key& key) {
    Node* n = new Node(key);
    auto g = domain_.guard();
    for (;;) {
      Window w = find(key, g);
      if (w.found) {
        delete n;
        return false;
      }
      n->next.store(w.curr, std::memory_order_relaxed);  // relaxed: published by the CAS below
      // release: publish the node's key and link.
      if (w.prev->compare_exchange_strong(w.curr, n,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {  // relaxed: failure re-runs the search
        return true;
      }
      // Window moved; retraverse.
    }
  }

  bool remove(const Key& key) {
    auto g = domain_.guard();
    for (;;) {
      Window w = find(key, g);
      if (!w.found) return false;
      Node* next = w.curr->next.load(std::memory_order_acquire);
      if (is_marked(next)) continue;  // someone else is deleting it; re-find
      // Logical delete: mark curr's next (linearization point on success).
      if (!w.curr->next.compare_exchange_strong(
              next, mark(next), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {  // relaxed: failure retraverses
        continue;  // link changed under us; retraverse
      }
      // Physical unlink; on failure some traversal will help eventually.
      Node* expected = w.curr;
      if (w.prev->compare_exchange_strong(expected, next,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {  // relaxed: failure retraverses
        domain_.retire(w.curr);
      } else {
        find(key, g);  // help: cleans up marked nodes on the search path
      }
      return true;
    }
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    const Key key;
    std::atomic<Node*> next{nullptr};
    explicit Node(const Key& k) : key(k) {}
    Node() : key() {}
  };

  struct Window {
    std::atomic<Node*>* prev;  // link that pointed to curr
    Node* curr;                // first node with key >= target (or null)
    bool found;
  };

  // ----- marked-pointer helpers (mark lives in bit 0) -----
  static bool is_marked(Node* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1u) != 0;
  }
  static Node* mark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) | 1u);
  }
  static Node* unmark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~std::uintptr_t{1});
  }

  // guard() may return a Guard or (via LeasedDomain) a Lease; name whatever
  // it is so find() can take it by reference.
  using GuardT = decltype(std::declval<Domain&>().guard());

  // Traverse to the window for `key`, helping unlink marked nodes.  On
  // return, slot 1 protects w.curr and slot 0 protects the node containing
  // w.prev (when it is not the head).
  Window find(const Key& key, GuardT& g) {
  retry:
    std::atomic<Node*>* prev = &head_;
    g.clear(0);
    Node* curr = g.protect(1, head_);
    if (is_marked(curr)) goto retry;  // head link itself is never marked
    for (;;) {
      if (curr == nullptr) return {prev, nullptr, false};
      Node* next_raw = curr->next.load(std::memory_order_acquire);
      if (is_marked(next_raw)) {
        // curr is logically deleted: help unlink it, then continue from the
        // successor.
        Node* next = unmark(next_raw);
        g.protect_raw(2, next);
        // Validate next is still curr's successor after protecting it.
        if (curr->next.load(std::memory_order_acquire) != next_raw) {
          goto retry;
        }
        Node* expected = curr;
        if (!prev->compare_exchange_strong(expected, next,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {  // relaxed: failure goes back to retry
          goto retry;  // prev changed; our window is stale
        }
        domain_.retire(curr);
        curr = next;
        g.protect_raw(1, curr);  // slot 2 still covers it during the handover
        continue;
      }
      // Validate the window: prev must still link to curr (this also
      // re-validates our protection of curr obtained via links).
      if (prev->load(std::memory_order_acquire) != curr) goto retry;
      if (!comp_(curr->key, key)) {
        return {prev, curr, !comp_(key, curr->key)};
      }
      // Advance: curr becomes the node containing prev.
      Node* next = unmark(next_raw);
      g.protect_raw(0, curr);  // keep curr alive as prev-container (slot 1 -> 0)
      g.protect_raw(2, next);
      if (curr->next.load(std::memory_order_acquire) != next_raw) {
        goto retry;  // next changed before we protected it
      }
      prev = &curr->next;
      curr = next;
      g.protect_raw(1, curr);
    }
  }

  CCDS_CACHELINE_ALIGNED std::atomic<Node*> head_{nullptr};
  Domain domain_;
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

// Hand-over-hand ("lock coupling") sorted linked-list set.
//
// Each node carries its own lock; traversal holds at most two locks at a
// time, acquiring the next before releasing the previous.  Disjoint
// operations on different list regions proceed in parallel, but every
// operation still *traverses* through every lock in its prefix, so the head
// remains a bottleneck — the survey's stepping stone between coarse locking
// and optimistic designs (experiment E6).
//
// Reclamation is trivial: a node can only be unlinked while both it and its
// predecessor are locked, and no other thread can hold a reference to it at
// that point (any contender is blocked at or before the predecessor), so
// `delete` is immediate and safe.
#pragma once

#include <functional>
#include <mutex>

#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = TtasLock>
class HandOverHandListSet {
 public:
  HandOverHandListSet() : head_(new Node) {}
  HandOverHandListSet(const HandOverHandListSet&) = delete;
  HandOverHandListSet& operator=(const HandOverHandListSet&) = delete;

  ~HandOverHandListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  bool contains(const Key& key) {
    head_->lock.lock();
    Node* pred = head_;
    Node* curr = pred->next;
    while (curr != nullptr) {
      curr->lock.lock();
      if (!comp_(curr->key, key)) break;  // curr->key >= key
      pred->lock.unlock();
      pred = curr;
      curr = curr->next;
    }
    const bool found = curr != nullptr && !comp_(key, curr->key);
    if (curr != nullptr) curr->lock.unlock();
    pred->lock.unlock();
    return found;
  }

  bool insert(const Key& key) {
    head_->lock.lock();
    Node* pred = head_;
    Node* curr = pred->next;
    while (curr != nullptr) {
      curr->lock.lock();
      if (!comp_(curr->key, key)) break;
      pred->lock.unlock();
      pred = curr;
      curr = curr->next;
    }
    bool inserted = false;
    if (curr == nullptr || comp_(key, curr->key)) {
      pred->next = new Node{key, curr, {}};
      inserted = true;
    }
    if (curr != nullptr) curr->lock.unlock();
    pred->lock.unlock();
    return inserted;
  }

  bool remove(const Key& key) {
    head_->lock.lock();
    Node* pred = head_;
    Node* curr = pred->next;
    while (curr != nullptr) {
      curr->lock.lock();
      if (!comp_(curr->key, key)) break;
      pred->lock.unlock();
      pred = curr;
      curr = curr->next;
    }
    bool removed = false;
    if (curr != nullptr && !comp_(key, curr->key)) {
      pred->next = curr->next;
      curr->lock.unlock();
      delete curr;  // safe: see class comment
      curr = nullptr;
      removed = true;
    }
    if (curr != nullptr) curr->lock.unlock();
    pred->lock.unlock();
    return removed;
  }

 private:
  struct Node {
    Key key{};
    Node* next = nullptr;
    Lock lock;
  };

  Node* const head_;  // sentinel (holds no key)
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

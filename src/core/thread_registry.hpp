// Dense thread ids.
//
// Hazard-pointer domains, sharded counters, Anderson locks, and flat
// combining all want a small dense integer per participating thread rather
// than std::thread::id.  The registry hands out ids 0..kMaxThreads-1 and
// recycles them when threads exit, so long-running programs that churn
// threads do not exhaust the space.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/arch.hpp"
#include "core/padded.hpp"

namespace ccds {

// Upper bound on simultaneously-registered threads.  Fixed at compile time so
// per-thread slot arrays in lock-free structures can be flat and allocation
// free.  96 comfortably covers a large host while keeping slot scans cheap.
inline constexpr std::size_t kMaxThreads = 96;

namespace detail {

class ThreadRegistry {
 public:
  static ThreadRegistry& instance() noexcept {
    static ThreadRegistry reg;
    return reg;
  }

  std::size_t acquire() noexcept {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      // acq_rel: pairs with the release in release() so slot reuse
      // happens-after the previous owner's teardown.
      if (in_use_[i]->compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {  // relaxed: failure -> try next slot
        return i;
      }
    }
    assert_fail("thread registry exhausted (raise ccds::kMaxThreads)",
                __FILE__, __LINE__);
  }

  void release(std::size_t id) noexcept {
    in_use_[id]->store(false, std::memory_order_release);
  }

 private:
  ThreadRegistry() = default;
  Padded<std::atomic<bool>> in_use_[kMaxThreads];
};

struct ThreadIdSlot {
  std::size_t id;
  ThreadIdSlot() : id(ThreadRegistry::instance().acquire()) {}
  ~ThreadIdSlot() { ThreadRegistry::instance().release(id); }
};

}  // namespace detail

// Dense id of the calling thread, assigned on first use, recycled at thread
// exit.  Always < kMaxThreads.
inline std::size_t thread_id() noexcept {
  thread_local detail::ThreadIdSlot slot;
  return slot.id;
}

}  // namespace ccds

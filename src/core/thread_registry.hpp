// Dense thread ids.
//
// Hazard-pointer domains, sharded counters, Anderson locks, and flat
// combining all want a small dense integer per participating thread rather
// than std::thread::id.  The registry hands out ids 0..kMaxThreads-1 and
// recycles them when threads exit, so long-running programs that churn
// threads do not exhaust the space.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/arch.hpp"
#include "core/padded.hpp"

namespace ccds {

// Upper bound on simultaneously-registered threads.  Fixed at compile time so
// per-thread slot arrays in lock-free structures can be flat and allocation
// free.  96 comfortably covers a large host while keeping slot scans cheap.
inline constexpr std::size_t kMaxThreads = 96;

namespace detail {

class ThreadRegistry {
 public:
  static ThreadRegistry& instance() noexcept {
    static ThreadRegistry reg;
    return reg;
  }

  std::size_t acquire() noexcept {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      // acq_rel: pairs with the release in release() so slot reuse
      // happens-after the previous owner's teardown.
      if (in_use_[i]->compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {  // relaxed: failure -> try next slot
        raise_ceiling(i + 1);
        return i;
      }
    }
    assert_fail("thread registry exhausted (raise ccds::kMaxThreads)",
                __FILE__, __LINE__);
  }

  void release(std::size_t id) noexcept {
    in_use_[id]->store(false, std::memory_order_release);
  }

  // Registration high-water mark: every id ever handed out is < ceiling().
  // Monotone (released slots stay counted), so per-thread-slot sweeps in the
  // reclamation domains can bound their loops by it instead of kMaxThreads:
  // slots at or above the ceiling have never been written by anyone.
  //
  // Ordering contract for sweepers: a thread obtains its id (and thus
  // raises the ceiling, seq_cst) BEFORE its first store to any per-thread
  // slot array indexed by that id.
  //
  // The load below is seq_cst so the classic fenced domains' sweep-bound
  // argument runs entirely inside the seq_cst total order S: if a sweep's
  // ceiling load misses a registration (load <_S raise-CAS), then every
  // slot publication of that thread is also later in S, so by coherence no
  // sweep load could have returned it anyway — the skipped slot is exactly
  // the "empty slot" case the classic protocol's proof already covers (the
  // reader's seq_cst validating load then observes the pre-sweep unlink
  // and retries).  An acquire load would not participate in S and that
  // argument would not hold.  The asymmetric domains get the same
  // guarantee from the membarrier pairwise property instead ("all earlier
  // stores of every thread are visible after the heavy barrier"), provided
  // the scanner reads the ceiling after its asymmetric_heavy() call; the
  // stronger load is harmless there — ceiling() is only called on
  // amortized reclamation paths, never per-operation.
  std::size_t ceiling() const noexcept {
    return ceiling_.value.load(std::memory_order_seq_cst);
  }

 private:
  ThreadRegistry() = default;

  void raise_ceiling(std::size_t n) noexcept {
    std::size_t cur = ceiling_.value.load(std::memory_order_relaxed);  // relaxed: CAS below carries the ordering
    while (cur < n &&
           !ceiling_.value.compare_exchange_weak(cur, n,
                                                 std::memory_order_seq_cst)) {
      // seq_cst success order above: registration is cold, and the strong
      // order keeps the sweep-bound argument a one-liner (see ceiling()).
    }
  }

  Padded<std::atomic<bool>> in_use_[kMaxThreads];
  Padded<std::atomic<std::size_t>> ceiling_{};
};

struct ThreadIdSlot {
  std::size_t id;
  ThreadIdSlot() : id(ThreadRegistry::instance().acquire()) {}
  ~ThreadIdSlot() { ThreadRegistry::instance().release(id); }
};

}  // namespace detail

// Dense id of the calling thread, assigned on first use, recycled at thread
// exit.  Always < kMaxThreads.
inline std::size_t thread_id() noexcept {
  thread_local detail::ThreadIdSlot slot;
  return slot.id;
}

// Upper bound (exclusive) on every thread id handed out so far; monotone,
// always <= kMaxThreads.  Lets per-thread-slot sweeps skip the untouched
// tail of their arrays — see ThreadRegistry::ceiling() for the ordering
// contract sweepers must follow.
inline std::size_t registered_ceiling() noexcept {
  return detail::ThreadRegistry::instance().ceiling();
}

}  // namespace ccds

// Hash mixing and bit-manipulation helpers.
//
// Split-ordered hash tables (hash module) need bit reversal; every hash table
// needs a finalizer strong enough that power-of-two masking is safe on
// low-entropy keys.
#pragma once

#include <cstdint>
#include <functional>

namespace ccds {

// Moremur / splitmix-style 64-bit finalizer: full-avalanche, invertible.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

// Bit-reversal of a 64-bit word (byte-table free, O(log w) swaps).
inline std::uint64_t reverse_bits64(std::uint64_t v) noexcept {
  v = ((v >> 1) & 0x5555555555555555ull) | ((v & 0x5555555555555555ull) << 1);
  v = ((v >> 2) & 0x3333333333333333ull) | ((v & 0x3333333333333333ull) << 2);
  v = ((v >> 4) & 0x0f0f0f0f0f0f0f0full) | ((v & 0x0f0f0f0f0f0f0f0full) << 4);
  v = ((v >> 8) & 0x00ff00ff00ff00ffull) | ((v & 0x00ff00ff00ff00ffull) << 8);
  v = ((v >> 16) & 0x0000ffff0000ffffull) |
      ((v & 0x0000ffff0000ffffull) << 16);
  return (v >> 32) | (v << 32);
}

// Default hasher used across ccds hash structures: std::hash then mix64, so
// identity std::hash implementations (libstdc++ integers) still spread.
template <typename Key>
struct MixHash {
  std::uint64_t operator()(const Key& k) const noexcept {
    return mix64(static_cast<std::uint64_t>(std::hash<Key>{}(k)));
  }
};

// Round up to the next power of two (returns 1 for 0).
inline std::uint64_t next_pow2(std::uint64_t v) noexcept {
  if (v <= 1) return 1;
  return 1ull << (64 - __builtin_clzll(v - 1));
}

}  // namespace ccds

// Machine-topology service: how many memory locality domains ("nodes") does
// this host have, and which one is the calling thread on right now?
//
// The hierarchical combining engine (sync/hsynch.hpp) keys its request
// lists on the answer: threads sharing a node combine through a local list
// and only the node winner touches the global lock, so the hot request
// traffic stays inside one socket's cache hierarchy.  The shard-per-core
// pool helpers (pool/affinity.hpp) use the same service so every layer
// agrees on what "local" means.
//
// Three sources, in order:
//
//   1. sysfs NUMA — /sys/devices/system/node/node*/cpulist when present
//      (Linux with CONFIG_NUMA).  Nodes are the kernel's memory nodes; the
//      cpu->node table comes from each node's cpulist.
//   2. cache-cluster fallback — no NUMA sysfs (containers, non-Linux,
//      single-node desktops): CPUs are grouped into fixed-arity clusters of
//      kFallbackClusterArity as a stand-in for shared-LLC domains.  A host
//      whose CPUs all fit one cluster reports exactly ONE node, never zero.
//   3. deterministic override — tests and the model checker install a
//      ScopedOverride{node count, tid->node map} so topology-dependent
//      code paths (H-Synch's per-node lists) are exercised identically on
//      every host and on every explored schedule.
//
// current_node() is an affinity HINT: it may go stale when the scheduler
// migrates the thread.  Every consumer must stay correct for an arbitrary
// tid->node map; topology only decides which fast path a thread takes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

#include "core/thread_registry.hpp"

namespace ccds {
namespace topology {

// Fixed cluster arity for hosts without NUMA sysfs: 16 CPUs per cluster
// approximates a shared-LLC complex on current parts; the exact number
// matters less than being deterministic and never yielding zero clusters.
inline constexpr std::size_t kFallbackClusterArity = 16;

// Highest node id the sysfs probe looks for.  Hosts with more memory nodes
// than this are clamped (the extra nodes alias into the probed range's
// count, which is still a valid — if coarser — locality map).
inline constexpr std::size_t kMaxProbedNodes = 64;

// Addressable CPUs, never zero (hardware_concurrency may legally return 0).
inline std::size_t cpu_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

// The non-NUMA fallback as a pure function of the CPU count, so the
// single-node guarantee ("one cluster, never zero") is unit-testable
// without faking sysfs: ceil(cpus / arity), floored at one.
constexpr std::size_t fallback_cluster_count(std::size_t cpus) noexcept {
  if (cpus <= kFallbackClusterArity) return 1;
  return (cpus + kFallbackClusterArity - 1) / kFallbackClusterArity;
}

// Deterministic override for tests and the model checker.
struct Override {
  std::size_t nodes;
  std::size_t (*node_of_tid)(std::size_t tid);
};

namespace detail {

// unguarded: the pointee is a caller-owned Override whose lifetime brackets
// the installation (ScopedOverride's scope); no reclamation in play.
inline std::atomic<const Override*>& override_slot() noexcept {
  static std::atomic<const Override*> slot{nullptr};
  return slot;
}

struct SysfsMap {
  std::size_t nodes = 0;                 // 0 = no NUMA sysfs
  std::size_t cpu_node[kMaxProbedNodes * 64] = {};  // cpu -> node, probed CPUs
  std::size_t cpu_limit = 0;
};

// Parse "0-3,8-11\n" into per-cpu node assignments.
inline void assign_cpulist(SysfsMap& map, const char* list, std::size_t node) {
  const char* p = list;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const unsigned long lo = std::strtoul(p, &end, 10);
    if (end == p) break;
    unsigned long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtoul(p, &end, 10);
      if (end == p) break;
      p = end;
    }
    for (unsigned long c = lo; c <= hi && c < map.cpu_limit; ++c) {
      map.cpu_node[c] = node;
    }
    if (*p == ',') ++p;
  }
}

inline const SysfsMap& sysfs_map() {
  static const SysfsMap map = [] {
    SysfsMap m;
    m.cpu_limit = sizeof(m.cpu_node) / sizeof(m.cpu_node[0]);
#if defined(__linux__)
    for (std::size_t n = 0; n < kMaxProbedNodes; ++n) {
      char path[96];
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/node/node%zu/cpulist", n);
      std::FILE* f = std::fopen(path, "re");
      if (f == nullptr) {
        if (n == 0) break;  // no NUMA sysfs at all
        continue;           // sparse node ids: keep probing
      }
      char buf[1024];
      const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
      std::fclose(f);
      buf[got] = '\0';
      assign_cpulist(m, buf, n);
      m.nodes = n + 1;
    }
#endif
    return m;
  }();
  return map;
}

}  // namespace detail

// Locality domains on this host: sysfs NUMA nodes when available, fixed-
// arity cache clusters otherwise.  Always >= 1.  An installed override wins.
inline std::size_t node_count() noexcept {
  // relaxed: the override is installed before the threads that consult it
  // start (test/model setup); staleness is impossible by construction.
  if (const Override* o =
          detail::override_slot().load(std::memory_order_relaxed)) {
    return o->nodes == 0 ? 1 : o->nodes;
  }
  const std::size_t sysfs = detail::sysfs_map().nodes;
  if (sysfs >= 1) return sysfs;
  return fallback_cluster_count(cpu_count());
}

// The node a given CPU belongs to (always < node_count()).
inline std::size_t node_of_cpu(std::size_t cpu) noexcept {
  const detail::SysfsMap& m = detail::sysfs_map();
  if (m.nodes >= 1) {
    return cpu < m.cpu_limit ? m.cpu_node[cpu] % m.nodes : cpu % m.nodes;
  }
  return (cpu / kFallbackClusterArity) % fallback_cluster_count(cpu_count());
}

// The calling thread's current node — an affinity hint, cached per thread
// (migration makes it stale; consumers must be correct for any map).
inline std::size_t current_node() noexcept {
  // relaxed: see node_count().
  if (const Override* o =
          detail::override_slot().load(std::memory_order_relaxed)) {
    const std::size_t n = o->nodes == 0 ? 1 : o->nodes;
    return o->node_of_tid != nullptr ? o->node_of_tid(thread_id()) % n
                                     : thread_id() % n;
  }
#if defined(__linux__)
  thread_local const std::size_t cached = [] {
    const int cpu = sched_getcpu();
    return node_of_cpu(cpu < 0 ? thread_id() : static_cast<std::size_t>(cpu));
  }();
  return cached;
#else
  return thread_id() % node_count();
#endif
}

// RAII installation of a deterministic topology, for tests and the model
// checker.  Install BEFORE constructing topology-aware engines (they size
// their per-node structures at construction) and before worker threads
// start.  Not reentrant; one override at a time.
class ScopedOverride {
 public:
  ScopedOverride(std::size_t nodes, std::size_t (*node_of_tid)(std::size_t))
      : ov_{nodes, node_of_tid} {
    // release: publish ov_'s fields to threads that load the slot.
    detail::override_slot().store(&ov_, std::memory_order_release);
  }

  ScopedOverride(const ScopedOverride&) = delete;
  ScopedOverride& operator=(const ScopedOverride&) = delete;

  ~ScopedOverride() {
    detail::override_slot().store(nullptr, std::memory_order_release);
  }

 private:
  Override ov_;
};

}  // namespace topology
}  // namespace ccds

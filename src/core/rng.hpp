// Small fast PRNGs for concurrent code.
//
// std::mt19937 is too heavy (and its thread_local construction too slow) for
// use inside lock retry loops and randomized structures like skip lists, so
// we provide SplitMix64 (seeding) and xoshiro256** (bulk generation).
#pragma once

#include <atomic>
#include <cstdint>

namespace ccds {

// SplitMix64 (Steele, Lea, Flood) — used to expand a 64-bit seed into state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 (Blackman, Vigna) — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased-enough bounded draw for non-cryptographic use (Lemire's
  // multiply-shift; bias is < 2^-64 * bound, irrelevant here).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

// Per-thread generator, seeded uniquely per thread from a global counter.
inline Xoshiro256& thread_rng() noexcept {
  static std::atomic<std::uint64_t> seed_seq{0x2545f4914f6cdd1dull};
  // relaxed: seed handout needs atomicity only, not ordering.
  thread_local Xoshiro256 rng(
      seed_seq.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed));
  return rng;
}

}  // namespace ccds

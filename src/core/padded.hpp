// Cache-line padded wrappers.
//
// `Padded<T>` gives a value its own cache line; arrays of Padded<T> are the
// standard representation for per-thread slots (sharded counters, Anderson
// lock flags, hazard-pointer records, ...).
#pragma once

#include <cstddef>
#include <utility>

#include "core/arch.hpp"

namespace ccds {

// A T aligned to — and occupying a whole multiple of — a cache line.
template <typename T>
struct CCDS_CACHELINE_ALIGNED Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Trailing pad so sizeof(Padded<T>) is a multiple of the line even when
  // alignment alone would not force it (e.g. T larger than one line).
  char pad_[kCacheLineSize - (sizeof(T) % kCacheLineSize)];
};

static_assert(sizeof(Padded<char>) == kCacheLineSize);
static_assert(alignof(Padded<char>) == kCacheLineSize);

}  // namespace ccds

// Byte-parallel tag probing for 16-slot hash groups (the Swiss-table /
// F14 metadata trick).
//
// A group's 16 one-byte tags are stored as two 64-bit words so that the
// concurrent map can load them with two relaxed atomic loads (race-free
// under the C++ memory model, unlike a raw 16-byte vector load from
// concurrently-mutated memory) and still probe all 16 slots in a handful of
// instructions.  The probe itself is a pure function of the two word values:
//
//   * SSE2:  materialize the 16 bytes in an XMM register (_mm_set_epi64x is
//            a register-only operation — no memory access, so no race),
//            compare all lanes at once, movemask to a 16-bit slot mask.
//   * NEON:  same shape with vceqq_u8 and a bit-gather via vaddv.
//   * SWAR:  portable fallback on plain uint64 arithmetic using the exact
//            zero-byte test from Hacker's Delight (the cheaper
//            (x-lsb)&~x&msb variant admits false positives on bytes equal
//            to 0x01 below a matching byte, which would be fatal for the
//            probe-termination rule, so we pay the extra two ops).
//
// Tag encoding contract (shared with hash/swiss_hash_map.hpp):
//   0x00        kEmpty — never-used slot; terminates probe chains.
//   0x01        kTomb  — erased slot; does NOT terminate probe chains.
//   0x80..0xff  full slot, low 7 bits are a second hash of the key.
// "Free" (empty or tomb) is exactly "high bit clear", which every backend
// tests with one mask.
#pragma once

#include <cstdint>

#include "core/arch.hpp"

namespace ccds {

// 16 slots per group: one cache line of (tag-word) metadata covers them and
// one SIMD compare probes them all.
inline constexpr int kGroupSlots = 16;

inline constexpr std::uint8_t kTagEmpty = 0x00;
inline constexpr std::uint8_t kTagTomb = 0x01;

// Full-slot tag from a 64-bit hash: top 7 bits plus the occupied marker.
// The map's group index comes from the LOW bits, so tag and index are
// nearly independent and a tag match is wrong only 1/128 of the time.
inline std::uint8_t tag_of_hash(std::uint64_t h) noexcept {
  return static_cast<std::uint8_t>(0x80u | (h >> 57));
}

namespace detail {

inline constexpr std::uint64_t kLsbBytes = 0x0101010101010101ull;
inline constexpr std::uint64_t kMsbBytes = 0x8080808080808080ull;

// Exact zero-byte detector: bit 7 of each byte of the result is set iff the
// corresponding byte of x is 0x00 (no false positives, unlike the
// subtract-borrow trick).
inline std::uint64_t zero_bytes(std::uint64_t x) noexcept {
  return ~(((x & ~kMsbBytes) + ~kMsbBytes) | x | ~kMsbBytes) & kMsbBytes;
}

// Compress a byte-mask (0x80 per selected byte) of one tag word into bits
// [0,8) of the result.  The fallback path only; kept as a plain loop the
// compiler unrolls rather than a multiply trick, for obvious correctness.
inline std::uint32_t msb_to_bits(std::uint64_t m) noexcept {
  std::uint32_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint32_t>((m >> (8 * i + 7)) & 1u) << i;
  }
  return bits;
}

}  // namespace detail

// Probe results are 16-bit masks: bit s set means slot s (byte s of the
// group's tag pair: slots 0-7 live in word 0, slots 8-15 in word 1).
#if defined(CCDS_HAVE_SSE2)

inline std::uint32_t group_match_tag(std::uint64_t w0, std::uint64_t w1,
                                     std::uint8_t tag) noexcept {
  const __m128i v = _mm_set_epi64x(static_cast<long long>(w1),
                                   static_cast<long long>(w0));
  const __m128i eq = _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(tag)));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(eq));
}

inline std::uint32_t group_match_empty(std::uint64_t w0,
                                       std::uint64_t w1) noexcept {
  const __m128i v = _mm_set_epi64x(static_cast<long long>(w1),
                                   static_cast<long long>(w0));
  const __m128i eq = _mm_cmpeq_epi8(v, _mm_setzero_si128());
  return static_cast<std::uint32_t>(_mm_movemask_epi8(eq));
}

inline std::uint32_t group_match_free(std::uint64_t w0,
                                      std::uint64_t w1) noexcept {
  // Free slots (empty or tomb) have the tag high bit clear; movemask
  // collects exactly the high bits.
  const __m128i v = _mm_set_epi64x(static_cast<long long>(w1),
                                   static_cast<long long>(w0));
  return static_cast<std::uint32_t>(~_mm_movemask_epi8(v)) & 0xffffu;
}

#elif defined(CCDS_HAVE_NEON)

namespace detail {

// Gather each lane's MSB into a 16-bit mask: AND each byte with its
// in-lane bit weight, then horizontally add each 8-byte half.
inline std::uint32_t neon_msb_mask(uint8x16_t m) noexcept {
  const std::uint8_t kWeights[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                     1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t sel = vandq_u8(vshrq_n_u8(m, 7), vdupq_n_u8(1));
  const uint8x16_t bits = vmulq_u8(sel, vld1q_u8(kWeights));
  const std::uint32_t lo = vaddv_u8(vget_low_u8(bits));
  const std::uint32_t hi = vaddv_u8(vget_high_u8(bits));
  return lo | (hi << 8);
}

}  // namespace detail

inline std::uint32_t group_match_tag(std::uint64_t w0, std::uint64_t w1,
                                     std::uint8_t tag) noexcept {
  const uint8x16_t v = vreinterpretq_u8_u64(
      vcombine_u64(vcreate_u64(w0), vcreate_u64(w1)));
  return detail::neon_msb_mask(vceqq_u8(v, vdupq_n_u8(tag)));
}

inline std::uint32_t group_match_empty(std::uint64_t w0,
                                       std::uint64_t w1) noexcept {
  const uint8x16_t v = vreinterpretq_u8_u64(
      vcombine_u64(vcreate_u64(w0), vcreate_u64(w1)));
  return detail::neon_msb_mask(vceqq_u8(v, vdupq_n_u8(0)));
}

inline std::uint32_t group_match_free(std::uint64_t w0,
                                      std::uint64_t w1) noexcept {
  const uint8x16_t v = vreinterpretq_u8_u64(
      vcombine_u64(vcreate_u64(w0), vcreate_u64(w1)));
  return detail::neon_msb_mask(vmvnq_u8(v));
}

#else  // portable SWAR fallback

inline std::uint32_t group_match_tag(std::uint64_t w0, std::uint64_t w1,
                                     std::uint8_t tag) noexcept {
  const std::uint64_t pat = detail::kLsbBytes * tag;
  return detail::msb_to_bits(detail::zero_bytes(w0 ^ pat)) |
         (detail::msb_to_bits(detail::zero_bytes(w1 ^ pat)) << 8);
}

inline std::uint32_t group_match_empty(std::uint64_t w0,
                                       std::uint64_t w1) noexcept {
  return detail::msb_to_bits(detail::zero_bytes(w0)) |
         (detail::msb_to_bits(detail::zero_bytes(w1)) << 8);
}

inline std::uint32_t group_match_free(std::uint64_t w0,
                                      std::uint64_t w1) noexcept {
  return detail::msb_to_bits(~w0 & detail::kMsbBytes) |
         (detail::msb_to_bits(~w1 & detail::kMsbBytes) << 8);
}

#endif

// First set bit of a non-empty probe mask (the lowest matching slot).
inline int group_first_slot(std::uint32_t mask) noexcept {
  return __builtin_ctz(mask);
}

// Drop the lowest set bit (iterate candidates: while (m) { slot =
// group_first_slot(m); m = group_clear_lowest(m); ... }).
inline std::uint32_t group_clear_lowest(std::uint32_t mask) noexcept {
  return mask & (mask - 1);
}

}  // namespace ccds

// Zipfian key sampler for contention benchmarks.
//
// Skewed access is where recovery strategy matters: under a uniform mix over
// 64k keys, CAS conflicts are rare and any skiplist looks fine; under a
// zipfian mix the hottest handful of keys absorb most operations and every
// conflict's recovery cost (head re-descent vs backlink step) is paid
// constantly.  E17 drives the lock-free skiplist with this sampler.
//
// Implementation: Walker/Vose alias table over ranks 0..n-1 with
// p(rank) ∝ 1 / (rank+1)^alpha.  Two array reads + one compare per draw —
// O(1), no per-draw pow(), and exact for ANY alpha >= 0 (the YCSB
// quick-formula approximation only handles alpha < 1, which would rule out
// the alpha = 1.2 point E17 needs).  Build cost is O(n) once.
//
// alpha = 0 degenerates to uniform; alpha ~ 0.99 is the classic YCSB skew;
// alpha > 1 concentrates mass so hard that the top few ranks dominate
// (at alpha = 1.2, n = 4096, rank 0 alone draws ~17% of all samples).
//
// Rank r is the r-th most popular key.  Callers that do not want popularity
// correlated with key order should scatter ranks over the key space
// (e.g. multiply by an odd constant mod a power-of-two range).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"

namespace ccds {

class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double alpha) : n_(n) {
    std::vector<double> weight(n);
    double total = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      total += weight[i];
    }
    // Vose's alias method: split ranks into under/over-full relative to the
    // uniform share 1/n, then pair each under-full rank with an over-full
    // donor.  accept_[i] is the probability (scaled to [0,1]) of keeping i
    // on a draw that lands in column i; alias_[i] is the donor otherwise.
    accept_.resize(n);
    alias_.resize(n);
    std::vector<double> scaled(n);
    std::vector<std::uint64_t> small;
    std::vector<std::uint64_t> large;
    for (std::uint64_t i = 0; i < n; ++i) {
      scaled[i] = weight[i] / total * static_cast<double>(n);
      (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
      const std::uint64_t s = small.back();
      const std::uint64_t l = large.back();
      small.pop_back();
      large.pop_back();
      accept_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] -= 1.0 - scaled[s];
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Numerical leftovers are exactly-full columns.
    for (const std::uint64_t i : small) {
      accept_[i] = 1.0;
      alias_[i] = i;
    }
    for (const std::uint64_t i : large) {
      accept_[i] = 1.0;
      alias_[i] = i;
    }
  }

  // Draw a rank in [0, n); rank 0 is the most popular.
  std::uint64_t next(Xoshiro256& rng) const noexcept {
    const std::uint64_t column = rng.next_below(n_);
    return rng.next_double() < accept_[column] ? column : alias_[column];
  }

  std::uint64_t size() const noexcept { return n_; }

 private:
  std::uint64_t n_;
  std::vector<double> accept_;
  std::vector<std::uint64_t> alias_;
};

}  // namespace ccds

// Sense-reversing centralized spin barrier.
//
// Used by tests and benchmarks to start all worker threads at once so that
// throughput measurements do not include thread-startup skew.
#pragma once

#include <atomic>
#include <cstddef>

#include "core/arch.hpp"

namespace ccds {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties), sense_(false) {}

  // Blocks (spinning) until `parties` threads have arrived.
  void arrive_and_wait() noexcept {
    // relaxed: sense is stable between flips; the acq_rel fetch_sub orders.
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    // acq_rel: the last arriver's flip must publish all pre-barrier writes.
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);  // relaxed: last arriver only; sense_ release publishes
      sense_.store(my_sense, std::memory_order_release);
    } else {
      std::uint32_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        spin_wait(spins);
      }
    }
  }

 private:
  const std::size_t parties_;
  CCDS_CACHELINE_ALIGNED std::atomic<std::size_t> remaining_;
  CCDS_CACHELINE_ALIGNED std::atomic<bool> sense_;
};

}  // namespace ccds

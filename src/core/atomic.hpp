// The library's atomic policy hook.
//
// Every ccds structure declares its shared words as `ccds::Atomic<T>` rather
// than `std::atomic<T>`.  In a normal build the alias IS std::atomic — zero
// overhead, identical codegen.  Under -DCCDS_MODEL=1 (tests/model) the alias
// resolves to the instrumented `ccds::model::atomic<T>` shim, so the
// exhaustive interleaving explorer runs against the exact same structure
// source that ships.  Memory-order arguments are std::memory_order in both
// configurations.
#pragma once

#include <atomic>

#ifdef CCDS_MODEL
#include "model/shim.hpp"

namespace ccds {
template <typename T>
using Atomic = model::atomic<T>;

// Fence counterpart of the Atomic alias: structures that need standalone
// fences (seqlock-style readers) must go through this wrapper so the model
// checker sees the fence as a schedule point and applies its view promotion
// (a bare std::atomic_thread_fence is invisible to the instrumented shim).
inline void atomic_thread_fence(std::memory_order mo) { model::fence(mo); }
}
#else

namespace ccds {
template <typename T>
using Atomic = std::atomic<T>;

inline void atomic_thread_fence(std::memory_order mo) noexcept {
  std::atomic_thread_fence(mo);
}
}
#endif

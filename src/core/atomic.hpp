// The library's atomic policy hook.
//
// Every ccds structure declares its shared words as `ccds::Atomic<T>` rather
// than `std::atomic<T>`.  In a normal build the alias IS std::atomic — zero
// overhead, identical codegen.  Under -DCCDS_MODEL=1 (tests/model) the alias
// resolves to the instrumented `ccds::model::atomic<T>` shim, so the
// exhaustive interleaving explorer runs against the exact same structure
// source that ships.  Memory-order arguments are std::memory_order in both
// configurations.
#pragma once

#include <atomic>

#ifdef CCDS_MODEL
#include "model/shim.hpp"

namespace ccds {
template <typename T>
using Atomic = model::atomic<T>;
}
#else

namespace ccds {
template <typename T>
using Atomic = std::atomic<T>;
}
#endif

// Architecture- and compiler-level utilities shared by every ccds module.
//
// Everything here is deliberately tiny: cache-line geometry, a spin-wait
// hint, and an assertion macro that stays active in release builds (lock-free
// code is exactly the code you want checked in production benchmarks).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

// SIMD feature selection for byte-wise group probing (core/group_probe.hpp).
// Exactly one of CCDS_HAVE_SSE2 / CCDS_HAVE_NEON / neither is defined; when
// neither is, group_probe falls back to a portable SWAR implementation.  The
// checks are compile-time ISA macros, not runtime dispatch: ccds targets the
// build machine (the benchmarks are the product).
#if defined(__SSE2__)
#define CCDS_HAVE_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) || (defined(__ARM_NEON) && defined(__ARM_NEON__))
#define CCDS_HAVE_NEON 1
#include <arm_neon.h>
#endif

// ThreadSanitizer detection.  GCC defines __SANITIZE_THREAD__ under
// -fsanitize=thread; Clang exposes the same fact through __has_feature.
// CCDS_TSAN gates the soundness backstop in core/asymmetric_fence.hpp: TSan
// cannot model the asymmetric membarrier protocol (it neither instruments
// the syscall nor understands a compiler-only light barrier), so TSan
// builds must run the classic symmetric protocol via CCDS_TSAN_SOUND.
#if defined(__SANITIZE_THREAD__)
#define CCDS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CCDS_TSAN 1
#endif
#endif

namespace ccds {

// Size used to pad shared variables so that logically-independent hot fields
// never share a cache line (avoids false sharing).  We use 128 rather than
// std::hardware_destructive_interference_size because adjacent-line
// prefetchers on x86 effectively couple pairs of 64-byte lines.
inline constexpr std::size_t kCacheLineSize = 128;

#define CCDS_CACHELINE_ALIGNED alignas(::ccds::kCacheLineSize)

// Pause/yield hint for spin loops.  On x86 this lowers to `pause`, which
// de-pipelines the spin and releases resources to the sibling hyperthread.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

#ifdef CCDS_MODEL
// Defined in model/scheduler.hpp (every CCDS_MODEL translation unit includes
// it via core/atomic.hpp): a voluntary reschedule so the cooperative
// explorer can run the thread a spin loop is waiting on.
namespace model {
void yield_hint() noexcept;
}
#endif

// Software prefetch hints.  Used on probe paths where the address of the
// next line(s) is known before the dependent load chain reaches them
// (hash-table groups: metadata line and data lines can be fetched in
// parallel instead of serially).  No-ops under the model checker — the
// explorer has no cache, and the arguments may be instrumented objects.
inline void prefetch_ro(const void* p) noexcept {
#ifdef CCDS_MODEL
  (void)p;
#else
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#endif
}

inline void prefetch_rw(const void* p) noexcept {
#ifdef CCDS_MODEL
  (void)p;
#else
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#endif
}

// Spin-then-yield helper for unbounded wait loops.  Pure cpu_relax spinning
// burns a full scheduler quantum whenever the awaited thread is preempted
// (catastrophic on oversubscribed or single-core hosts), so after a bounded
// number of pause iterations we donate the time slice.  `counter` is the
// caller's per-wait loop counter.  Under the model checker every spin step
// must instead yield to the deterministic scheduler, or a wait loop would
// monopolize the single running thread forever.
inline void spin_wait(std::uint32_t& counter) noexcept {
#ifdef CCDS_MODEL
  (void)counter;
  model::yield_hint();
#else
  if ((++counter & 0x3ff) == 0) {
    std::this_thread::yield();
  } else {
    cpu_relax();
  }
#endif
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) noexcept {
  std::fprintf(stderr, "ccds assertion failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

// Always-on assertion: concurrent-structure invariants are cheap relative to
// the synchronization around them, and silent corruption is far worse than
// the branch.
#define CCDS_ASSERT(expr)                                 \
  do {                                                    \
    if (__builtin_expect(!(expr), 0)) {                   \
      ::ccds::assert_fail(#expr, __FILE__, __LINE__);     \
    }                                                     \
  } while (0)

}  // namespace ccds

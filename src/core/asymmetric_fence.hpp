// Asymmetric fences: folly/hazptr- and liburcu-style barrier pairing.
//
// The hazard-pointer and epoch protocols both contain a Dekker-shaped
// store-load conflict:
//
//   reader:    publish announcement      reclaimer:  unlink node
//              ~~~ StoreLoad fence ~~~               ~~~ StoreLoad fence ~~~
//              re-read source                        read announcements
//
// Classically BOTH sides pay a full fence (a seq_cst store on x86 compiles
// to mov+mfence or xchg), and the reader side executes it on EVERY protected
// read — the dominant cost of practical SMR (experiment E11).  The
// asymmetric-fence technique moves the entire cost to the rare reclaimer:
//
//   asymmetric_light()  — reader side.  With the membarrier backend, a
//       compiler-only barrier: it pins the program order of the surrounding
//       accesses in the emitted code but emits NO fence instruction.  The
//       publication store itself is memory_order_release (a plain store on
//       x86/ARM).
//
//   asymmetric_heavy()  — reclaimer side.  Forces a full memory barrier ON
//       EVERY THREAD of the process.  On Linux this is
//       membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED): the kernel IPIs every
//       CPU currently running one of our threads and executes a full barrier
//       there, so by the time the call returns each peer thread has passed a
//       point where (a) its earlier stores are visible to us and (b) our
//       earlier stores are visible to its later loads.  That is exactly the
//       pairwise guarantee the Dekker conflict needs: either the reader's
//       announcement is visible to the reclaimer's scan, or the reclaimer's
//       unlink is visible to the reader's re-read.
//
// FALLBACK (non-Linux, kernels < 4.14, seccomp-blocked membarrier): there
// is no way to fence other threads remotely, so asymmetric_heavy() can only
// issue a LOCAL seq_cst fence — and a local fence on the reclaimer alone
// cannot drain a reader's store buffer.  The Dekker store-load conflict
// needs a StoreLoad fence on BOTH sides (this is true even on TSO: the one
// reordering x86 permits is exactly store-load), so on fallback platforms
// asymmetric_light() issues a real seq_cst fence too and the pair DEGRADES
// TO THE CLASSIC SYMMETRIC PROTOCOL.  Correctness never depends on which
// backend is live — only the read-side speedup does.  Both halves branch on
// the same one-time detection, and asymmetric_light_is_fence() exposes the
// coupling so tests can assert the unsound combination (compiler-only light
// + local-only heavy) can never ship.
//
// Under -DCCDS_MODEL=1 both calls route into the model checker:
// asymmetric_heavy() is a schedule point that acts as a seq_cst fence on
// behalf of ALL model threads (every store already executed becomes
// mandatory reading for everyone — the operational meaning of "each CPU ran
// smp_mb()"), so ccds-verify explores the protocol with its real semantics
// and catches a reclaimer that wrongly uses the light barrier
// (tests/model/test_model_reclaim.cpp).
#pragma once

#include <atomic>

#include "core/arch.hpp"
#include "core/atomic.hpp"

#if !defined(CCDS_MODEL) && defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

// TSAN SOUNDNESS BACKSTOP.  ThreadSanitizer cannot model the asymmetric
// protocol: it does not instrument the membarrier syscall, and a
// compiler-only atomic_signal_fence contributes nothing to its
// happens-before graph — so every protected read under the membarrier
// backend would be reported as a race (false positive), and worse, TSan's
// instrumentation can mask the real ordering the protocol depends on
// (false negative).  A TSan build must therefore run the classic symmetric
// seq_cst protocol: define CCDS_TSAN_SOUND (the CMake option of the same
// name does it, and -DCCDS_SANITIZE_THREAD=ON forces it on).  This is a
// hard error, not a silent downgrade, so a hand-rolled
// `g++ -fsanitize=thread` invocation cannot ship an unsound binary.
#if defined(CCDS_TSAN) && !defined(CCDS_TSAN_SOUND) && !defined(CCDS_MODEL)
#error \
    "ThreadSanitizer build without CCDS_TSAN_SOUND: TSan cannot model " \
    "asymmetric membarrier fences. Configure with -DCCDS_TSAN_SOUND=ON " \
    "(CMake does this automatically for -DCCDS_SANITIZE_THREAD=ON) or " \
    "define CCDS_TSAN_SOUND=1 to force the symmetric seq_cst protocol."
#endif

namespace ccds {

// False when CCDS_TSAN_SOUND forces the classic symmetric protocol.  The
// reclaimer domains (hazard/epoch/qsbr) default their Asymmetric template
// parameter to this constant and static_assert against an explicit
// Asymmetric=true instantiation when it is false — a TSan build that
// selects an asymmetric-fence domain FAILS TO COMPILE rather than
// silently skipping or, worse, running an unverifiable protocol.
#if defined(CCDS_TSAN_SOUND)
inline constexpr bool kAsymmetricFencesAllowed = false;
#else
inline constexpr bool kAsymmetricFencesAllowed = true;
#endif

#if !defined(CCDS_MODEL) && defined(__linux__)
namespace detail {

// Command values from <linux/membarrier.h>, spelled out so the header is
// not required at build time (the ABI is fixed).
inline constexpr int kMembarrierCmdQuery = 0;
inline constexpr int kMembarrierCmdPrivateExpedited = 1 << 3;
inline constexpr int kMembarrierCmdRegisterPrivateExpedited = 1 << 4;

inline long membarrier_call(int cmd) noexcept {
#ifdef __NR_membarrier
  return syscall(__NR_membarrier, cmd, 0, 0);
#else
  (void)cmd;
  return -1;
#endif
}

// One-time runtime detection + registration.  PRIVATE_EXPEDITED requires a
// per-process REGISTER before first use (EPERM otherwise); both the query
// and the registration happen exactly once, in a magic static, so the first
// asymmetric_heavy() from any thread performs them and every later call is
// a single predictable branch.
inline bool membarrier_private_expedited_ready() noexcept {
  static const bool ready = [] {
    const long cmds = membarrier_call(kMembarrierCmdQuery);
    if (cmds < 0) return false;
    if ((cmds & kMembarrierCmdPrivateExpedited) == 0 ||
        (cmds & kMembarrierCmdRegisterPrivateExpedited) == 0) {
      return false;
    }
    return membarrier_call(kMembarrierCmdRegisterPrivateExpedited) == 0;
  }();
  return ready;
}

}  // namespace detail
#endif  // !CCDS_MODEL && __linux__

// Reader-side half of the asymmetric pair.  With the membarrier backend, a
// compiler barrier only — zero instructions; its entire job is to forbid
// the compiler from sinking the announcement store below the validating
// load (the CPU-level reordering is the reclaimer's heavy barrier's
// problem).  When asymmetric_heavy() can only fence locally, this must be a
// real seq_cst fence: the symmetric protocol requires a StoreLoad fence on
// both sides, and a compiler barrier here would reopen the missed-hazard
// use-after-free (see FALLBACK in the header comment).  The branch resolves
// off the same cached one-time detection as the heavy side, so the fast
// path costs one predictable compare.  Under the model checker the
// instrumented shim already executes operations strictly in program order
// and heavy_fence() models membarrier for all threads, so this is a true
// no-op there.
inline void asymmetric_light() noexcept {
#if defined(CCDS_MODEL)
  // no-op: the model's heavy_fence() carries the protocol's ordering.
#elif defined(CCDS_TSAN_SOUND)
  // Symmetric protocol, unconditionally: a real fence TSan can see.
  std::atomic_thread_fence(std::memory_order_seq_cst);
#elif defined(__linux__)
  if (detail::membarrier_private_expedited_ready()) {
    std::atomic_signal_fence(std::memory_order_seq_cst);
  } else {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

// True when asymmetric_light() issues a real fence — i.e. the pair is
// running the symmetric fallback because asymmetric_heavy() can only fence
// locally.  Tests assert this stays coupled to asymmetric_heavy_backend():
// kMembarrier must imply compiler-only light, kSeqCstFence must imply a
// fencing light.
inline bool asymmetric_light_is_fence() noexcept {
#if defined(CCDS_MODEL)
  return false;
#elif defined(CCDS_TSAN_SOUND)
  return true;
#elif defined(__linux__)
  return !detail::membarrier_private_expedited_ready();
#else
  return true;
#endif
}

// Which implementation asymmetric_heavy() resolves to at runtime — surfaced
// so tests can assert the fast path is actually exercised on Linux CI and
// the benchmark JSON records what was measured.
enum class AsymmetricHeavyBackend { kMembarrier, kSeqCstFence, kModel };

inline AsymmetricHeavyBackend asymmetric_heavy_backend() noexcept {
#if defined(CCDS_MODEL)
  return AsymmetricHeavyBackend::kModel;
#elif defined(CCDS_TSAN_SOUND)
  return AsymmetricHeavyBackend::kSeqCstFence;
#elif defined(__linux__)
  return detail::membarrier_private_expedited_ready()
             ? AsymmetricHeavyBackend::kMembarrier
             : AsymmetricHeavyBackend::kSeqCstFence;
#else
  return AsymmetricHeavyBackend::kSeqCstFence;
#endif
}

// Reclaimer-side half: a full barrier on behalf of every thread in the
// process.  Expensive (an IPI broadcast, microseconds) and intended to be
// amortized over an O(threshold) batch of retirements — never call it on a
// per-operation path.
inline void asymmetric_heavy() noexcept {
#if defined(CCDS_MODEL)
  model::heavy_fence();
#else
#if defined(__linux__) && !defined(CCDS_TSAN_SOUND)
  if (detail::membarrier_private_expedited_ready()) {
    if (detail::membarrier_call(detail::kMembarrierCmdPrivateExpedited) == 0) {
      return;
    }
  }
#endif
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace ccds

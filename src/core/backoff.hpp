// Bounded exponential backoff for contended retry loops.
//
// Backoff is the survey's first tool for taming contention on CAS retry loops
// and test-and-set locks: on failure, spin for a randomized, exponentially
// growing number of iterations before retrying, so that colliding threads
// de-synchronize.
#pragma once

#include <cstdint>

#include "core/arch.hpp"
#include "core/rng.hpp"

namespace ccds {

class Backoff {
 public:
  // `min_spins`/`max_spins` bound the randomized spin count per step.
  explicit Backoff(std::uint32_t min_spins = 4,
                   std::uint32_t max_spins = 1024) noexcept
      : limit_(min_spins), max_(max_spins) {}

  // Spin for a random duration in [1, current limit], then double the limit.
  void spin() noexcept {
    const std::uint32_t spins = 1 + static_cast<std::uint32_t>(
                                        thread_rng().next() % limit_);
    for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
    if (limit_ < max_) limit_ <<= 1;
  }

  // True once the limit has saturated; callers may then fall back to a
  // different strategy (e.g. elimination, or parking the thread).
  bool saturated() const noexcept { return limit_ >= max_; }

  void reset() noexcept { limit_ = min_; }

 private:
  std::uint32_t limit_;
  std::uint32_t min_ = limit_;
  std::uint32_t max_;
};

}  // namespace ccds

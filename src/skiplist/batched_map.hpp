// Batch-parallel ordered map: a thin key/value veneer over
// BatchedSkipListSet.
//
// The set stores BatchedMapEntry{key, value} ordered (and deduplicated) by
// key only; the value rides along as the mutable half of the element.  The
// mapping of map verbs onto the set's op kinds:
//
//   put(k, v)    -> kAssign    insert-or-assign; result = "was absent"
//   get(k)       -> kContains  on a hit the combiner copies the STORED
//                              entry back into the op, which is where the
//                              value comes from
//   erase(k)     -> kErase     result = "was present"
//
// Batches work exactly as on the set: build Ops with the factories below,
// hand them to apply_batch, read per-op results (and values) afterwards.
// Everything about atomicity, last-writer-wins and fan-out is inherited —
// see skiplist/batched_skiplist.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "skiplist/batched_skiplist.hpp"
#include "skiplist/seq_skiplist.hpp"
#include "sync/ccsynch.hpp"

namespace ccds {

// Map element: ordered and hashed by key alone, so the value half may be
// mutated in place (SeqSkipListSet::found_ref's ordering-preservation
// contract holds trivially).
template <typename Key, typename Value>
struct BatchedMapEntry {
  Key key{};
  Value value{};
};

// kKeyed tower draws must ignore the value: same key, same tower height,
// whatever value rides along.
template <typename Key, typename Value>
struct SkipListKeyHash<BatchedMapEntry<Key, Value>> {
  std::uint64_t operator()(const BatchedMapEntry<Key, Value>& e) const {
    return static_cast<std::uint64_t>(std::hash<Key>{}(e.key));
  }
};

template <typename Key, typename Value, typename Compare = std::less<Key>,
          template <typename> class Engine = CcSynch,
          SkipListLevels Levels = SkipListLevels::kRandom>
class BatchedMap {
 public:
  using Entry = BatchedMapEntry<Key, Value>;

  struct EntryCompare {
    [[no_unique_address]] Compare comp{};
    bool operator()(const Entry& a, const Entry& b) const {
      return comp(a.key, b.key);
    }
  };

  using Set = BatchedSkipListSet<Entry, EntryCompare, Engine, Levels>;
  using Op = typename Set::Op;

  BatchedMap() = default;

  // Key-space partition points, forwarded to the set as entry splitters
  // (values don't participate in ordering, so defaulted ones are fine).
  explicit BatchedMap(std::vector<Key> splitters)
      : set_(to_entries(std::move(splitters))) {}

  // Insert-or-assign; true if the key was absent (a fresh insert).
  bool put(const Key& k, Value v) {
    Op op = Op::assign(Entry{k, std::move(v)});
    set_.apply_batch(std::span<Op>(&op, 1));
    return op.result;
  }

  std::optional<Value> get(const Key& k) const {
    Op op = Op::contains(Entry{k, Value{}});
    set_.apply_batch(std::span<Op>(&op, 1));
    if (!op.result) return std::nullopt;
    return std::move(op.key.value);  // op.key now holds the stored entry
  }

  bool contains(const Key& k) const {
    Op op = Op::contains(Entry{k, Value{}});
    set_.apply_batch(std::span<Op>(&op, 1));
    return op.result;
  }

  bool erase(const Key& k) {
    Op op = Op::erase(Entry{k, Value{}});
    set_.apply_batch(std::span<Op>(&op, 1));
    return op.result;
  }

  // Batch entry points: build Ops with the factories (Op::assign for put,
  // Op::contains for get — read the value out of op.key.value on a hit,
  // Op::erase), then submit.  One atomic batch, last-writer-wins per key,
  // results in submission-slot order.
  static Op put_op(Key k, Value v) {
    return Op::assign(Entry{std::move(k), std::move(v)});
  }
  static Op get_op(Key k) { return Op::contains(Entry{std::move(k), Value{}}); }
  static Op erase_op(Key k) { return Op::erase(Entry{std::move(k), Value{}}); }

  void apply_batch(std::span<Op> ops) { set_.apply_batch(ops); }

  std::size_t size() const { return set_.size(); }
  std::size_t shard_count() const { return set_.shard_count(); }

  template <typename Exec>
  void attach_executor(Exec& e) {
    set_.attach_executor(e);
  }
  void detach_executor() { set_.detach_executor(); }
  void set_fanout_threshold(std::size_t n) { set_.set_fanout_threshold(n); }

  BatchedSkipListStats stats() const { return set_.stats(); }
  void reset_stats() { set_.reset_stats(); }

 private:
  static std::vector<Entry> to_entries(std::vector<Key> keys) {
    std::vector<Entry> es;
    es.reserve(keys.size());
    for (Key& k : keys) es.push_back(Entry{std::move(k), Value{}});
    return es;
  }

  // mutable: get()/contains() serialize through the combining engine too.
  mutable Set set_;
};

}  // namespace ccds

// Lock-free skip list set (Fraser 2004; presentation follows Herlihy &
// Shavit ch. 14.4), with a Lotan–Shavit style pop_min for priority-queue
// use.
//
// Every level is a Harris list: deletion marks the victim's next pointer at
// each level from the top down (bottom-level mark = linearization point);
// traversals snip marked nodes as they pass.  The bottom level is the
// authoritative set; upper levels are just shortcuts.
//
// Reclamation is pluggable (epoch by default).  After the winning remover's
// final find() pass the node is unlinked at every level (each level's
// incoming pointer lies on the search path for its key), so it is retired
// exactly once, by the thread whose bottom-level mark CAS succeeded.  A
// stale insert CAS cannot re-link a retired node because its expected value
// is the node pointer itself, which cannot be recycled while the inserter's
// guard protects it (no ABA).
//
// Under a BLANKET domain traversals run exactly as in the textbook: guards
// cover everything, and contains() walks wait-free straight through marked
// nodes.  Under a POINTER-BASED domain (hazard pointers) the traversal is
// hand-over-hand:
//
//   * A marked pred->next[level] means pred was logically deleted under us;
//     its frozen link may name an already-freed successor, so the traversal
//     restarts from the head (marked links never change again — no CAS in
//     the algorithm expects a marked value — so validating against one
//     proves nothing).
//   * Marked nodes must be snipped, not skipped: a successful snip CAS on a
//     live pred proves the successor was not yet unlinked at this level,
//     hence not yet retired (every unlink path changes that same link
//     first), hence safe to protect-and-validate on the next step.  This
//     costs contains()/pop_min() their no-CAS traversals.
//   * Slot budget: preds[l] in slot l, succs[l] in slot kSkipListMaxLevel+l,
//     plus a walking pred, a candidate, and the inserter's own node —
//     2*kSkipListMaxLevel + 3 = 35 slots (static_asserted below;
//     WideHazardDomain provides 40).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/arch.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "skiplist/seq_skiplist.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          reclaimer Domain = EpochDomain>
class LockFreeSkipListSet {
  static_assert(!reclaimer_traits<Domain>::pointer_based ||
                    Domain::kSlots >= 2 * kSkipListMaxLevel + 3,
                "pointer-based traversal needs a preds/succs pair per level "
                "plus walking scratch — use WideHazardDomain");

 public:
  LockFreeSkipListSet() : head_(new Node{}) {
    head_->height = kSkipListMaxLevel;
  }
  LockFreeSkipListSet(const LockFreeSkipListSet&) = delete;
  LockFreeSkipListSet& operator=(const LockFreeSkipListSet&) = delete;

  ~LockFreeSkipListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = unmark(n->next[0].load(std::memory_order_relaxed));  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  // Wait-free traversal under blanket domains (never snips, never CASes);
  // pointer-based domains reuse the snipping find (lock-free only).
  bool contains(const Key& key) {
    auto g = domain_.guard();
    if constexpr (kPointerBased) {
      Node* preds[kSkipListMaxLevel];
      Node* succs[kSkipListMaxLevel];
      return find(key, preds, succs, g);
    } else {
      Node* pred = head_;
      Node* curr = nullptr;
      for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
        curr = unmark(pred->next[level].load(std::memory_order_acquire));
        for (;;) {
          if (curr == nullptr) break;
          Node* succ_raw = curr->next[level].load(std::memory_order_acquire);
          if (is_marked(succ_raw)) {
            // Logically deleted: skip over it without helping.
            curr = unmark(succ_raw);
            continue;
          }
          if (comp_(curr->key, key)) {
            pred = curr;
            curr = unmark(succ_raw);
            continue;
          }
          break;
        }
      }
      return curr != nullptr && !comp_(key, curr->key) &&
             !is_marked(curr->next[0].load(std::memory_order_acquire));
    }
  }

  bool insert(const Key& key) {
    const int height = skiplist_random_level();
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    Node* n = nullptr;
    for (;;) {
      if (find(key, preds, succs, g)) {
        delete n;  // n is still private here (or null); plain delete is fine
        return false;
      }
      if (n == nullptr) {
        n = new Node{};
        n->key = key;
        n->height = height;
        // Publish our own hazard for n while it is still private: once the
        // bottom-level splice lands, a concurrent remover may unlink and
        // retire n before we finish its tower (blanket domains no-op).
        g.protect_raw(kNodeSlot, n);
      }
      // n is private until the bottom-level splice: plain stores are fine.
      // relaxed: links published by the bottom-level release CAS.
      for (int level = 0; level < height; ++level) {
        n->next[level].store(succs[level], std::memory_order_relaxed);
      }
      // Splice at the bottom level first: this is the linearization point.
      Node* expected = succs[0];
      if (!link_cas(preds[0], 0, expected, n)) continue;

      // Link the upper levels.  From here on n is public, so its forward
      // pointers may concurrently acquire delete-marks: every update to
      // n->next[level] must CAS (never blind-store), and after any
      // successful link we re-check for deletion and snip ourselves back
      // out — otherwise a remover whose cleanup pass already ran could
      // leave a persistent link to a retired node.
      for (int level = 1; level < height; ++level) {
        for (;;) {
          Node* fwd = n->next[level].load(std::memory_order_acquire);
          if (is_marked(fwd)) {
            // n was deleted while we were building its tower; make sure it
            // is unlinked everywhere we may have linked it, then stop.
            find(key, preds, succs, g);
            return true;
          }
          Node* succ = succs[level];
          if (fwd != succ &&
              !n->next[level].compare_exchange_strong(
                  fwd, succ, std::memory_order_release,
                  std::memory_order_relaxed)) {  // relaxed: failure re-evaluates the level
            continue;  // lost to a marker (or helper); re-evaluate
          }
          Node* expected_up = succ;
          if (link_cas(preds[level], level, expected_up, n)) {
            // Re-validate: if a remover finished while we linked, its
            // cleanup may have missed this brand-new link.
            if (is_marked(n->next[0].load(std::memory_order_acquire))) {
              find(key, preds, succs, g);
              return true;
            }
            break;
          }
          // Window moved: recompute.
          if (find(key, preds, succs, g)) {
            if (succs[0] != n) return true;  // removed (+ maybe reinserted)
          } else {
            return true;  // removed entirely; find snipped any leftovers
          }
        }
      }
      return true;
    }
  }

  bool remove(const Key& key) {
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    if (!find(key, preds, succs, g)) return false;
    Node* victim = succs[0];  // protected by slot kSkipListMaxLevel under HP
    return remove_node(victim, key, g);
  }

  // Priority-queue pop: claim and remove the smallest unclaimed key.  Only
  // meaningful when the set is driven purely through insert/pop_min (mixing
  // with remove() of the same keys can double-deliver).
  std::optional<Key> pop_min() {
    auto g = domain_.guard();
    if constexpr (kPointerBased) {
    retry:
      Node* pred = head_;
      for (;;) {
        Node* curr;
        if (!protect_next(g, pred, 0, kCurrSlot, curr)) goto retry;
        if (curr == nullptr) return std::nullopt;
        Node* succ_raw = curr->next[0].load(std::memory_order_acquire);
        if (is_marked(succ_raw)) {
          // Cannot walk through a marked node under HP — snip it (a
          // successful snip proves the successor is not yet retired).
          Node* expected = curr;
          if (!pred->next[0].compare_exchange_strong(
                  expected, unmark(succ_raw), std::memory_order_release,
                  std::memory_order_relaxed)) {  // relaxed: failure restarts
            goto retry;
          }
          continue;
        }
        if (!curr->claimed.exchange(true, std::memory_order_acq_rel)) {
          const Key key = curr->key;
          remove_node(curr, key, g);
          return key;
        }
        g.protect_raw(kPredSlot, curr);  // kCurrSlot covers the handover
        pred = curr;
      }
    } else {
      Node* curr = unmark(head_->next[0].load(std::memory_order_acquire));
      while (curr != nullptr) {
        Node* succ_raw = curr->next[0].load(std::memory_order_acquire);
        if (!is_marked(succ_raw) &&
            !curr->claimed.exchange(true, std::memory_order_acq_rel)) {
          const Key key = curr->key;
          remove_node(curr, key, g);
          return key;
        }
        curr = unmark(succ_raw);
      }
      return std::nullopt;
    }
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    int height = 0;
    std::atomic<bool> claimed{false};  // pop_min coordination only
    std::atomic<Node*> next[kSkipListMaxLevel] = {};
  };

  static constexpr bool kPointerBased = reclaimer_traits<Domain>::pointer_based;
  // Scratch slots past the preds/succs banks (HP mode only).
  static constexpr std::size_t kPredSlot = 2 * kSkipListMaxLevel;
  static constexpr std::size_t kCurrSlot = 2 * kSkipListMaxLevel + 1;
  static constexpr std::size_t kNodeSlot = 2 * kSkipListMaxLevel + 2;

  // guard() may return a Guard or (via LeasedDomain) a Lease.
  using GuardT = decltype(std::declval<Domain&>().guard());

  // ----- marked pointers -----
  static bool is_marked(Node* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1u) != 0;
  }
  static Node* mark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) | 1u);
  }
  static Node* unmark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~std::uintptr_t{1});
  }

  bool link_cas(Node* pred, int level, Node*& expected, Node* desired) {
    return pred->next[level].compare_exchange_strong(
        expected, desired, std::memory_order_release,
        std::memory_order_relaxed);  // relaxed: failure handled by caller
  }

  // HP helper: protect pred's level-`level` successor in `slot`.  Returns
  // false if the link is marked — pred died under us and its frozen link
  // cannot be validated (header comment) — in which case the caller must
  // restart from the head.  `pred` must itself be protected (or the head).
  bool protect_next(GuardT& g, Node* pred, int level, std::size_t slot,
                    Node*& out) {
    for (;;) {
      Node* raw = pred->next[level].load(std::memory_order_acquire);
      if (is_marked(raw)) return false;
      if (raw == nullptr) {
        out = nullptr;
        return true;
      }
      g.protect_raw(slot, raw);
      // Validating re-read: pred is live (unmarked link) and still points
      // at raw after the hazard was published, so raw cannot have been
      // retired before the publication.
      if (pred->next[level].load(std::memory_order_acquire) == raw) {
        out = raw;
        return true;
      }
    }
  }

  // Mark `victim` at every level (bottom mark is the linearization point),
  // then run one find() pass to unlink it everywhere, then retire.  Returns
  // false if another thread won the bottom-level mark.  Under HP the caller
  // must hold a protection on victim; it is consumed here (the find pass
  // recycles the scratch slots, after which victim is only passed to
  // retire, never dereferenced).
  bool remove_node(Node* victim, const Key& key, GuardT& g) {
    const int height = victim->height;
    // Mark top levels (idempotent; concurrent helpers welcome).
    for (int level = height - 1; level >= 1; --level) {
      Node* succ = victim->next[level].load(std::memory_order_acquire);
      while (!is_marked(succ)) {
        victim->next[level].compare_exchange_weak(succ, mark(succ),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire);
      }
    }
    // Bottom-level mark decides the winner.
    Node* succ = victim->next[0].load(std::memory_order_acquire);
    for (;;) {
      if (is_marked(succ)) return false;  // lost
      if (victim->next[0].compare_exchange_weak(succ, mark(succ),
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        // Winner: one full find() pass unlinks the victim at every level it
        // occupies (find snips every marked node on the key's search path).
        Node* preds[kSkipListMaxLevel];
        Node* succs[kSkipListMaxLevel];
        find(key, preds, succs, g);
        domain_.retire(victim);
        return true;
      }
    }
  }

  // Harris-style window search with snipping at every level.  On return,
  // preds[l]/succs[l] bracket `key` at level l with no marked node between;
  // returns whether succs[0] holds `key` (and is unmarked).  Under HP,
  // preds[l]/succs[l] are protected in slots l / kSkipListMaxLevel+l.
  bool find(const Key& key, Node** preds, Node** succs, GuardT& g) {
    if constexpr (kPointerBased) {
      return find_hp(key, preds, succs, g);
    } else {
    retry:
      Node* pred = head_;
      for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
        Node* curr = unmark(pred->next[level].load(std::memory_order_acquire));
        for (;;) {
          if (curr == nullptr) break;
          Node* succ_raw = curr->next[level].load(std::memory_order_acquire);
          while (is_marked(succ_raw)) {
            // Snip the logically-deleted curr out of this level.
            Node* expected = curr;
            if (!pred->next[level].compare_exchange_strong(
                    expected, unmark(succ_raw), std::memory_order_release,
                    std::memory_order_relaxed)) {  // relaxed: failure goes back to retry
              goto retry;
            }
            curr = unmark(pred->next[level].load(std::memory_order_acquire));
            if (curr == nullptr) break;
            succ_raw = curr->next[level].load(std::memory_order_acquire);
          }
          if (curr == nullptr) break;
          if (comp_(curr->key, key)) {
            pred = curr;
            curr = unmark(succ_raw);
            continue;
          }
          break;
        }
        preds[level] = pred;
        succs[level] = curr;
      }
      Node* bottom = succs[0];
      return bottom != nullptr && !comp_(key, bottom->key) &&
             !comp_(bottom->key, key);
    }
  }

  // HP flavor of find: hand-over-hand through kPredSlot/kCurrSlot, window
  // endpoints parked in the preds/succs slot banks before each descent.
  bool find_hp(const Key& key, Node** preds, Node** succs, GuardT& g) {
  retry:
    Node* pred = head_;
    for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
      for (;;) {
        Node* curr;
        if (!protect_next(g, pred, level, kCurrSlot, curr)) goto retry;
        if (curr != nullptr) {
          Node* succ_raw = curr->next[level].load(std::memory_order_acquire);
          if (is_marked(succ_raw)) {
            // Snip the logically-deleted curr out of this level; success
            // proves the successor is not yet retired (header comment).
            Node* expected = curr;
            if (!pred->next[level].compare_exchange_strong(
                    expected, unmark(succ_raw), std::memory_order_release,
                    std::memory_order_relaxed)) {  // relaxed: failure restarts
              goto retry;
            }
            continue;  // re-protect pred's (new) successor
          }
          if (comp_(curr->key, key)) {
            g.protect_raw(kPredSlot, curr);  // kCurrSlot covers the handover
            pred = curr;
            continue;
          }
        }
        // Park the window endpoints for this level: pred keeps a slot of
        // its own so the descent (which recycles kPredSlot/kCurrSlot) and
        // the caller's later CASes stay covered.
        g.protect_raw(level, pred);
        g.protect_raw(static_cast<std::size_t>(kSkipListMaxLevel) + level,
                      curr);
        preds[level] = pred;
        succs[level] = curr;
        break;
      }
    }
    Node* bottom = succs[0];
    return bottom != nullptr && !comp_(key, bottom->key) &&
           !comp_(bottom->key, key);
  }

  Node* const head_;
  mutable Domain domain_;
  [[no_unique_address]] Compare comp_{};
};

// Concurrent min-priority queue built on the lock-free skip list
// (Lotan & Shavit 2000): push inserts a unique (priority, sequence) key;
// pop_min claims the leftmost unclaimed node.  Duplicate priorities are
// allowed (disambiguated by the sequence counter).
template <typename Priority = std::uint32_t, reclaimer Domain = EpochDomain>
class SkipListPriorityQueue {
  static_assert(sizeof(Priority) <= 4,
                "priority must fit 32 bits (packed with a sequence number)");

 public:
  void push(Priority p) {
    const std::uint64_t seq =
        seq_.fetch_add(1, std::memory_order_relaxed) & 0xffffffffull;  // relaxed: unique-id counter
    list_.insert((static_cast<std::uint64_t>(p) << 32) | seq);
  }

  std::optional<Priority> pop_min() {
    auto v = list_.pop_min();
    if (!v) return std::nullopt;
    return static_cast<Priority>(*v >> 32);
  }

 private:
  LockFreeSkipListSet<std::uint64_t, std::less<std::uint64_t>, Domain> list_;
  std::atomic<std::uint64_t> seq_{0};  // unpadded: test scaffolding, not a hot path
};

// Coarse-grained binary-heap priority queue: the baseline for E9.
template <typename Priority = std::uint32_t, typename Lock = std::mutex>
class CoarsePriorityQueue {
 public:
  void push(Priority p) {
    std::lock_guard<Lock> g(lock_);
    heap_.push_back(p);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  std::optional<Priority> pop_min() {
    std::lock_guard<Lock> g(lock_);
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Priority p = heap_.back();
    heap_.pop_back();
    return p;
  }

 private:
  mutable Lock lock_;
  std::vector<Priority> heap_;
};

}  // namespace ccds

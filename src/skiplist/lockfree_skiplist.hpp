// Lock-free skip list set (Fraser 2004; presentation follows Herlihy &
// Shavit ch. 14.4), with a Lotan–Shavit style pop_min for priority-queue
// use.
//
// Every level is a Harris list: deletion marks the victim's next pointer at
// each level from the top down (bottom-level mark = linearization point);
// traversals snip marked nodes as they pass.  The bottom level is the
// authoritative set; upper levels are just shortcuts.
//
// Reclamation: epoch-based only.  After the winning remover's final find()
// pass the node is unlinked at every level (each level's incoming pointer
// lies on the search path for its key), so it is retired exactly once, by
// the thread whose bottom-level mark CAS succeeded.  Concurrent traversals
// that still hold references are protected by their epoch guards; a stale
// insert CAS cannot re-link a retired node because its expected value is
// the node pointer itself, which cannot be recycled within the inserter's
// pinned epoch (no ABA).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "core/arch.hpp"
#include "reclaim/epoch.hpp"
#include "skiplist/seq_skiplist.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>>
class LockFreeSkipListSet {
 public:
  LockFreeSkipListSet() : head_(new Node{}) {
    head_->height = kSkipListMaxLevel;
  }
  LockFreeSkipListSet(const LockFreeSkipListSet&) = delete;
  LockFreeSkipListSet& operator=(const LockFreeSkipListSet&) = delete;

  ~LockFreeSkipListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = unmark(n->next[0].load(std::memory_order_relaxed));  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  // Wait-free traversal (never snips, never CASes).
  bool contains(const Key& key) {
    auto g = domain_.guard();
    Node* pred = head_;
    Node* curr = nullptr;
    for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
      curr = unmark(pred->next[level].load(std::memory_order_acquire));
      for (;;) {
        if (curr == nullptr) break;
        Node* succ_raw = curr->next[level].load(std::memory_order_acquire);
        if (is_marked(succ_raw)) {
          // Logically deleted: skip over it without helping.
          curr = unmark(succ_raw);
          continue;
        }
        if (comp_(curr->key, key)) {
          pred = curr;
          curr = unmark(succ_raw);
          continue;
        }
        break;
      }
    }
    return curr != nullptr && !comp_(key, curr->key) &&
           !is_marked(curr->next[0].load(std::memory_order_acquire));
  }

  bool insert(const Key& key) {
    const int height = skiplist_random_level();
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    Node* n = nullptr;
    for (;;) {
      if (find(key, preds, succs)) {
        delete n;  // n is still private here (or null); plain delete is fine
        return false;
      }
      if (n == nullptr) {
        n = new Node{};
        n->key = key;
        n->height = height;
      }
      // n is private until the bottom-level splice: plain stores are fine.
      // relaxed: links published by the bottom-level release CAS.
      for (int level = 0; level < height; ++level) {
        n->next[level].store(succs[level], std::memory_order_relaxed);
      }
      // Splice at the bottom level first: this is the linearization point.
      Node* expected = succs[0];
      if (!link_cas(preds[0], 0, expected, n)) continue;

      // Link the upper levels.  From here on n is public, so its forward
      // pointers may concurrently acquire delete-marks: every update to
      // n->next[level] must CAS (never blind-store), and after any
      // successful link we re-check for deletion and snip ourselves back
      // out — otherwise a remover whose cleanup pass already ran could
      // leave a persistent link to a retired node.
      for (int level = 1; level < height; ++level) {
        for (;;) {
          Node* fwd = n->next[level].load(std::memory_order_acquire);
          if (is_marked(fwd)) {
            // n was deleted while we were building its tower; make sure it
            // is unlinked everywhere we may have linked it, then stop.
            find(key, preds, succs);
            return true;
          }
          Node* succ = succs[level];
          if (fwd != succ &&
              !n->next[level].compare_exchange_strong(
                  fwd, succ, std::memory_order_release,
                  std::memory_order_relaxed)) {  // relaxed: failure re-evaluates the level
            continue;  // lost to a marker (or helper); re-evaluate
          }
          Node* expected_up = succ;
          if (link_cas(preds[level], level, expected_up, n)) {
            // Re-validate: if a remover finished while we linked, its
            // cleanup may have missed this brand-new link.
            if (is_marked(n->next[0].load(std::memory_order_acquire))) {
              find(key, preds, succs);
              return true;
            }
            break;
          }
          // Window moved: recompute.
          if (find(key, preds, succs)) {
            if (succs[0] != n) return true;  // removed (+ maybe reinserted)
          } else {
            return true;  // removed entirely; find snipped any leftovers
          }
        }
      }
      return true;
    }
  }

  bool remove(const Key& key) {
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    if (!find(key, preds, succs)) return false;
    Node* victim = succs[0];
    return remove_node(victim, key);
  }

  // Priority-queue pop: claim and remove the smallest unclaimed key.  Only
  // meaningful when the set is driven purely through insert/pop_min (mixing
  // with remove() of the same keys can double-deliver).
  std::optional<Key> pop_min() {
    auto g = domain_.guard();
    Node* curr = unmark(head_->next[0].load(std::memory_order_acquire));
    while (curr != nullptr) {
      Node* succ_raw = curr->next[0].load(std::memory_order_acquire);
      if (!is_marked(succ_raw) &&
          !curr->claimed.exchange(true, std::memory_order_acq_rel)) {
        const Key key = curr->key;
        remove_node(curr, key);
        return key;
      }
      curr = unmark(succ_raw);
    }
    return std::nullopt;
  }

  EpochDomain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    int height = 0;
    std::atomic<bool> claimed{false};  // pop_min coordination only
    std::atomic<Node*> next[kSkipListMaxLevel] = {};
  };

  // ----- marked pointers -----
  static bool is_marked(Node* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1u) != 0;
  }
  static Node* mark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) | 1u);
  }
  static Node* unmark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~std::uintptr_t{1});
  }

  bool link_cas(Node* pred, int level, Node*& expected, Node* desired) {
    return pred->next[level].compare_exchange_strong(
        expected, desired, std::memory_order_release,
        std::memory_order_relaxed);  // relaxed: failure handled by caller
  }

  // Mark `victim` at every level (bottom mark is the linearization point),
  // then run one find() pass to unlink it everywhere, then retire.  Returns
  // false if another thread won the bottom-level mark.
  bool remove_node(Node* victim, const Key& key) {
    const int height = victim->height;
    // Mark top levels (idempotent; concurrent helpers welcome).
    for (int level = height - 1; level >= 1; --level) {
      Node* succ = victim->next[level].load(std::memory_order_acquire);
      while (!is_marked(succ)) {
        victim->next[level].compare_exchange_weak(succ, mark(succ),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire);
      }
    }
    // Bottom-level mark decides the winner.
    Node* succ = victim->next[0].load(std::memory_order_acquire);
    for (;;) {
      if (is_marked(succ)) return false;  // lost
      if (victim->next[0].compare_exchange_weak(succ, mark(succ),
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        // Winner: one full find() pass unlinks the victim at every level it
        // occupies (find snips every marked node on the key's search path).
        Node* preds[kSkipListMaxLevel];
        Node* succs[kSkipListMaxLevel];
        find(key, preds, succs);
        domain_.retire(victim);
        return true;
      }
    }
  }

  // Harris-style window search with snipping at every level.  On return,
  // preds[l]/succs[l] bracket `key` at level l with no marked node between;
  // returns whether succs[0] holds `key` (and is unmarked).
  bool find(const Key& key, Node** preds, Node** succs) {
  retry:
    Node* pred = head_;
    for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
      Node* curr = unmark(pred->next[level].load(std::memory_order_acquire));
      for (;;) {
        if (curr == nullptr) break;
        Node* succ_raw = curr->next[level].load(std::memory_order_acquire);
        while (is_marked(succ_raw)) {
          // Snip the logically-deleted curr out of this level.
          Node* expected = curr;
          if (!pred->next[level].compare_exchange_strong(
                  expected, unmark(succ_raw), std::memory_order_release,
                  std::memory_order_relaxed)) {  // relaxed: failure goes back to retry
            goto retry;
          }
          curr = unmark(pred->next[level].load(std::memory_order_acquire));
          if (curr == nullptr) break;
          succ_raw = curr->next[level].load(std::memory_order_acquire);
        }
        if (curr == nullptr) break;
        if (comp_(curr->key, key)) {
          pred = curr;
          curr = unmark(succ_raw);
          continue;
        }
        break;
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    Node* bottom = succs[0];
    return bottom != nullptr && !comp_(key, bottom->key) &&
           !comp_(bottom->key, key);
  }

  Node* const head_;
  mutable EpochDomain domain_;
  [[no_unique_address]] Compare comp_{};
};

// Concurrent min-priority queue built on the lock-free skip list
// (Lotan & Shavit 2000): push inserts a unique (priority, sequence) key;
// pop_min claims the leftmost unclaimed node.  Duplicate priorities are
// allowed (disambiguated by the sequence counter).
template <typename Priority = std::uint32_t>
class SkipListPriorityQueue {
  static_assert(sizeof(Priority) <= 4,
                "priority must fit 32 bits (packed with a sequence number)");

 public:
  void push(Priority p) {
    const std::uint64_t seq =
        seq_.fetch_add(1, std::memory_order_relaxed) & 0xffffffffull;  // relaxed: unique-id counter
    list_.insert((static_cast<std::uint64_t>(p) << 32) | seq);
  }

  std::optional<Priority> pop_min() {
    auto v = list_.pop_min();
    if (!v) return std::nullopt;
    return static_cast<Priority>(*v >> 32);
  }

 private:
  LockFreeSkipListSet<std::uint64_t> list_;
  std::atomic<std::uint64_t> seq_{0};  // unpadded: test scaffolding, not a hot path
};

// Coarse-grained binary-heap priority queue: the baseline for E9.
template <typename Priority = std::uint32_t, typename Lock = std::mutex>
class CoarsePriorityQueue {
 public:
  void push(Priority p) {
    std::lock_guard<Lock> g(lock_);
    heap_.push_back(p);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  std::optional<Priority> pop_min() {
    std::lock_guard<Lock> g(lock_);
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Priority p = heap_.back();
    heap_.pop_back();
    return p;
  }

 private:
  mutable Lock lock_;
  std::vector<Priority> heap_;
};

}  // namespace ccds

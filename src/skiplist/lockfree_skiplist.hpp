// Lock-free skip list set with RESTART-FREE local recovery (Fomitchev &
// Ruppert, PODC 2004), with a Lotan–Shavit style pop_min for priority-queue
// use.
//
// Every level is a lock-free list; the bottom level is the authoritative
// set, upper levels are shortcuts.  Deletion of a node at one level is a
// three-step protocol over two tag bits packed into the forward pointers
// (bit0 = MARK, bit1 = FLAG; a pointer is clean, marked, or flagged — never
// both):
//
//   1. FLAG the predecessor:  pred.next = FLAG(victim).  A flagged pointer
//      is a promise: "my successor is being deleted".  No insert can splice
//      after pred and no mark can land on pred at this level while the flag
//      stands, so the flagged pred is a stable anchor for step 2.
//   2. BACKLINK + MARK the victim:  victim.backlink = pred, then
//      victim.next = MARK(succ).  The mark freezes the victim's forward
//      pointer (every CAS in the algorithm expects a clean value); the
//      backlink, written before the mark becomes visible, is the escape
//      route for anyone stranded on the dead node.
//   3. HELP-UNLINK:  pred.next: FLAG(victim) -> succ (one CAS clears the
//      flag and snips the victim).  Any thread that encounters a flagged
//      pointer can run steps 2-3 — a stalled deleter never blocks others.
//
//        pred          victim         succ
//       [ A ]--FLAG-->[ B ]--MARK-->[ C ]        step 1+2
//         ^             |
//         +--backlink---+
//       [ A ]---------------------->[ C ]        step 3 (unlink clears FLAG)
//
// LOCAL RECOVERY (the point of the scheme): a traversal or CAS that fails
// because its predecessor got marked does NOT re-descend from the head — it
// walks `backlink` pointers left to the nearest live node and resumes.
// Backlink chains terminate: a flagged node cannot be marked, so the node a
// backlink names was live when recorded, and chains of marked nodes end at
// a live predecessor (ultimately the never-marked head).  Under hot-key
// contention this turns each conflict from an O(log n) re-descent into an
// O(1) step back, preventing the restart cascades both exemplar studies
// identify as the dominant contention cost (4-6x at high thread counts).
//
// The `Recovery` knob keeps the ablation honest: kRestart runs the SAME
// flag/mark/unlink protocol but re-descends from the head wherever kLocal
// would take a backlink (and on failed snips), isolating the recovery
// strategy itself — benchmarked as E17 in bench_skiplists.
//
// Deletion order across levels: a remover completes the protocol on every
// upper level (top-down) before touching level 0, and an upper level the
// victim was never linked at is still MARKED (mark_unlinked_level) so a
// lagging inserter cannot re-link a half-dead tower unseen.  Hence the
// structure invariant: a bottom-marked node is marked at every level.  The
// bottom-level FLAG CAS decides the winning remover (exactly one such CAS
// can succeed per victim — the flag only clears together with the unlink of
// the then-marked victim, which can never be re-found); the bottom-level
// MARK remains the linearization point of the removal.
//
// Reclamation is pluggable (epoch by default).  After the winner's final
// find() pass the victim is unlinked at every level (each level's incoming
// pointer lies on the search path for its key; resurrected links to marked
// nodes are snipped by search_level), so it is retired exactly once.  A
// stale insert CAS cannot re-link a retired node because its expected value
// is the node pointer itself (no ABA while a guard protects it).
//
// Under a POINTER-BASED domain (hazard pointers) backlinks are unusable: a
// marked node's backlink is immutable, so there is no source to validate a
// hazard against — the target may have been retired before the hazard was
// published.  Those instantiations therefore keep the mark-only protocol
// with hand-over-hand protection and head-restart recovery (`Recovery` is
// ignored; the flag bit never appears):
//
//   * A marked pred->next[level] means pred was logically deleted under us;
//     its frozen link may name an already-freed successor, so the traversal
//     restarts from the head.
//   * Marked nodes must be snipped, not skipped: a successful snip CAS on a
//     live pred proves the successor was not yet unlinked at this level,
//     hence not yet retired, hence safe to protect-and-validate next.
//   * Slot budget: preds[l] in slot l, succs[l] in slot kSkipListMaxLevel+l,
//     plus a walking pred, a candidate, and the inserter's own node —
//     2*kSkipListMaxLevel + 3 = 35 slots (static_asserted below;
//     WideHazardDomain provides 40).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/arch.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "skiplist/seq_skiplist.hpp"

namespace ccds {

// Recovery strategy after a failed CAS / marked predecessor: backlink-local
// (Fomitchev–Ruppert) or re-descend from the head (the classic baseline —
// kept selectable so E17 can ablate recovery in isolation).
enum class SkipListRecovery { kLocal, kRestart };

// SkipListLevels (kRandom / kKeyed tower-height policy) lives in
// skiplist/seq_skiplist.hpp, shared with the sequential structure.

// Optional recovery-event counters (define CCDS_SKIPLIST_STATS before
// including): how often each recovery path actually fired, so the E17
// artifact can report the conflict rate alongside wall-clock throughput —
// a throughput ratio without the event counts would not show WHY the
// variants diverge.  Zero-cost when disabled.
#ifdef CCDS_SKIPLIST_STATS
struct SkipListStats {
  // A backtrack is one backlink-chain escape (kLocal); a head_restart is
  // one full re-descent (kRestart); a help is one completed help_flagged.
  static inline std::atomic<std::uint64_t> backtracks{0};
  static inline std::atomic<std::uint64_t> head_restarts{0};
  static inline std::atomic<std::uint64_t> helps{0};
  static void reset() noexcept {
    backtracks.store(0, std::memory_order_relaxed);     // relaxed: stats
    head_restarts.store(0, std::memory_order_relaxed);  // relaxed: stats
    helps.store(0, std::memory_order_relaxed);          // relaxed: stats
  }
};
#define CCDS_SKIPLIST_COUNT(field) ::ccds::SkipListStats::field.fetch_add(1, std::memory_order_relaxed)  // relaxed: stats
#else
#define CCDS_SKIPLIST_COUNT(field) ((void)0)
#endif

template <typename Key, typename Compare = std::less<Key>,
          reclaimer Domain = EpochDomain,
          SkipListRecovery Recovery = SkipListRecovery::kLocal,
          SkipListLevels Levels = SkipListLevels::kRandom>
class LockFreeSkipListSet {
  static_assert(!reclaimer_traits<Domain>::pointer_based ||
                    Domain::kSlots >= 2 * kSkipListMaxLevel + 3,
                "pointer-based traversal needs a preds/succs pair per level "
                "plus walking scratch — use WideHazardDomain");

 public:
  LockFreeSkipListSet() : head_(new Node{}) {
    head_->height = kSkipListMaxLevel;
  }
  LockFreeSkipListSet(const LockFreeSkipListSet&) = delete;
  LockFreeSkipListSet& operator=(const LockFreeSkipListSet&) = delete;

  ~LockFreeSkipListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = strip(n->next[0].load(std::memory_order_relaxed));  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  // Wait-free traversal under blanket domains (never snips, never CASes;
  // walks straight through marked nodes and past flagged links — a flagged
  // node is still live).  Pointer-based domains reuse the snipping find.
  bool contains(const Key& key) {
    auto g = domain_.guard();
    if constexpr (kPointerBased) {
      Node* preds[kSkipListMaxLevel];
      Node* succs[kSkipListMaxLevel];
      return find_hp(key, preds, succs, g);
    } else {
      Node* pred = head_;
      Node* curr = nullptr;
      for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
        curr = strip(pred->next[level].load(std::memory_order_acquire));
        for (;;) {
          if (curr == nullptr) break;
          Node* succ_raw = curr->next[level].load(std::memory_order_acquire);
          if (is_marked(succ_raw)) {
            // Logically deleted: skip over it without helping.
            curr = strip(succ_raw);
            continue;
          }
          if (comp_(curr->key, key)) {
            pred = curr;
            curr = strip(succ_raw);
            continue;
          }
          break;
        }
      }
      return curr != nullptr && !comp_(key, curr->key) &&
             !is_marked(curr->next[0].load(std::memory_order_acquire));
    }
  }

  bool insert(const Key& key) {
    if constexpr (kPointerBased) {
      return insert_hp(key);
    } else {
      return insert_fr(key);
    }
  }

  bool remove(const Key& key) {
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    if (!find(key, preds, succs, g)) return false;
    Node* victim = succs[0];  // protected by slot kSkipListMaxLevel under HP
    return remove_node(victim, key, preds, g);
  }

  // Priority-queue pop: claim and remove the smallest unclaimed key.  Only
  // meaningful when the set is driven purely through insert/pop_min (mixing
  // with remove() of the same keys can double-deliver).
  std::optional<Key> pop_min() {
    auto g = domain_.guard();
    if constexpr (kPointerBased) {
      bool restart = true;
      while (restart) {
        restart = false;
        Node* pred = head_;
        for (;;) {
          Node* curr;
          if (!protect_next(g, pred, 0, kCurrSlot, curr)) {
            restart = true;  // pred died; its frozen link is unvalidatable
            break;
          }
          if (curr == nullptr) return std::nullopt;
          Node* succ_raw = curr->next[0].load(std::memory_order_acquire);
          if (is_marked(succ_raw)) {
            // Cannot walk through a marked node under HP — snip it (a
            // successful snip proves the successor is not yet retired).
            Node* expected = curr;
            if (!pred->next[0].compare_exchange_strong(
                    expected, strip(succ_raw), std::memory_order_release,
                    std::memory_order_relaxed)) {  // relaxed: failure restarts
              restart = true;
              break;
            }
            continue;
          }
          if (!curr->claimed.exchange(true, std::memory_order_acq_rel)) {
            const Key key = curr->key;
            remove_node_hp(curr, key, g);
            return key;
          }
          g.protect_raw(kPredSlot, curr);  // kCurrSlot covers the handover
          pred = curr;
        }
      }
      return std::nullopt;  // unreachable; placates control-flow analysis
    } else {
      Node* curr = strip(head_->next[0].load(std::memory_order_acquire));
      while (curr != nullptr) {
        Node* succ_raw = curr->next[0].load(std::memory_order_acquire);
        if (!is_marked(succ_raw) &&
            !curr->claimed.exchange(true, std::memory_order_acq_rel)) {
          const Key key = curr->key;
          Node* preds[kSkipListMaxLevel];
          Node* succs[kSkipListMaxLevel];
          find(key, preds, succs, g);  // windows for the per-level deletion
          remove_node(curr, key, preds, g);
          return key;
        }
        curr = strip(succ_raw);
      }
      return std::nullopt;
    }
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    int height = 0;
    std::atomic<bool> claimed{false};  // pop_min coordination only
    std::atomic<Node*> next[kSkipListMaxLevel] = {};
    // Escape route out of a marked node, one per level; written (to the
    // then-flagged predecessor) before the level's mark becomes visible and
    // immutable afterwards.  Unused (always null) under pointer-based
    // domains.  Memory: doubles the link footprint — the price of O(1)
    // recovery; see E17.
    std::atomic<Node*> backlink[kSkipListMaxLevel] = {};
  };

  static constexpr bool kPointerBased = reclaimer_traits<Domain>::pointer_based;
  // Backlinks are only sound under blanket protection (header comment).
  static constexpr bool kLocalRecovery =
      Recovery == SkipListRecovery::kLocal && !kPointerBased;
  // Scratch slots past the preds/succs banks (HP mode only).
  static constexpr std::size_t kPredSlot = 2 * kSkipListMaxLevel;
  static constexpr std::size_t kCurrSlot = 2 * kSkipListMaxLevel + 1;
  static constexpr std::size_t kNodeSlot = 2 * kSkipListMaxLevel + 2;

  // guard() may return a Guard or (via LeasedDomain) a Lease.
  using GuardT = decltype(std::declval<Domain&>().guard());

  // ----- tagged pointers: bit0 = mark (node deleted), bit1 = flag
  // (successor being deleted).  Mutually exclusive by protocol. -----
  static constexpr std::uintptr_t kMarkBit = 1;
  static constexpr std::uintptr_t kFlagBit = 2;

  static bool is_marked(Node* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & kMarkBit) != 0;
  }
  static bool is_flagged(Node* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & kFlagBit) != 0;
  }
  static Node* mark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) |
                                   kMarkBit);
  }
  static Node* flag(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) |
                                   kFlagBit);
  }
  static Node* strip(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~(kMarkBit | kFlagBit));
  }

  // =========================================================================
  // Fomitchev–Ruppert protocol (blanket domains)
  // =========================================================================

  // Escape a marked predecessor by walking backlinks to the nearest node
  // that is live at `level`.  Sound under blanket guards only: everything a
  // backlink can name was unlinked (hence retired) after this guard began.
  // The null fallback covers the one backlink-less way to be marked —
  // mark_unlinked_level() on a never-linked level — by degrading to the
  // head (a full-width walk at this level, not a full re-descent).
  Node* backtrack(Node* n, int level, GuardT&) {
    CCDS_SKIPLIST_COUNT(backtracks);
    do {
      Node* b = n->backlink[level].load(std::memory_order_acquire);
      n = b == nullptr ? head_ : b;
    } while (is_marked(n->next[level].load(std::memory_order_acquire)));
    return n;
  }

  // Step 3: swing the flagged pred past the (marked, frozen) victim,
  // clearing the flag in the same CAS.  Idempotent across helpers.
  void help_marked(Node* pred, Node* victim, int level, GuardT&) {
    Node* succ = strip(victim->next[level].load(std::memory_order_acquire));
    Node* expected = flag(victim);
    pred->next[level].compare_exchange_strong(
        expected, succ, std::memory_order_release,
        std::memory_order_relaxed);  // relaxed: failure = someone unlinked it
  }

  // Steps 2+3 for an already-flagged (pred, victim) pair: record the escape
  // route, freeze the victim, unlink it.  Any thread may run this; every
  // participant writes the same backlink value (the unique flagged pred).
  void help_flagged(Node* pred, Node* victim, int level, GuardT& g) {
    victim->backlink[level].store(pred, std::memory_order_release);
    Node* s = victim->next[level].load(std::memory_order_acquire);
    while (!is_marked(s)) {
      if (is_flagged(s)) {
        // A flagged pointer cannot be marked: the victim's own successor is
        // mid-deletion; complete that deletion first (FR TryMark).
        help_flagged(victim, strip(s), level, g);
        s = victim->next[level].load(std::memory_order_acquire);
        continue;
      }
      if (victim->next[level].compare_exchange_weak(
              s, mark(s), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        break;
      }
    }
    help_marked(pred, victim, level, g);
    CCDS_SKIPLIST_COUNT(helps);
  }

  // Mark victim at a level it is NOT linked at (try_flag returned kGone),
  // so a lagging inserter that still holds victim in its succs[] cannot
  // re-link a half-deleted tower unseen: insert's tower loop re-reads
  // victim->next[level] and aborts on the mark.  Preserves the structure
  // invariant "bottom-marked => marked at every level".
  void mark_unlinked_level(Node* victim, int level, GuardT& g) {
    Node* s = victim->next[level].load(std::memory_order_acquire);
    while (!is_marked(s)) {
      if (is_flagged(s)) {
        help_flagged(victim, strip(s), level, g);
        s = victim->next[level].load(std::memory_order_acquire);
        continue;
      }
      if (victim->next[level].compare_exchange_weak(
              s, mark(s), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        break;
      }
    }
  }

  // Level-local window search: starting from `pred` (pred->key < key, or
  // the head), walk right at `level` until pred->key < key <= curr->key,
  // helping complete any deletion in the way.  kLocal never fails; kRestart
  // returns false where kLocal would have taken a backlink (or retried a
  // snip), asking the caller to re-descend from the head — the ablation
  // baseline.
  bool search_level(const Key& key, int level, Node*& pred_io, Node*& curr_out,
                    GuardT& g) {
    Node* pred = pred_io;
    Node* curr;
    for (;;) {
      Node* raw = pred->next[level].load(std::memory_order_acquire);
      if (is_marked(raw)) {
        if constexpr (kLocalRecovery) {
          pred = backtrack(pred, level, g);
          continue;
        } else {
          return false;
        }
      }
      curr = strip(raw);
      if (is_flagged(raw)) {
        // curr is mid-deletion; finish it so the window comes out clean.
        help_flagged(pred, curr, level, g);
        continue;
      }
      if (curr == nullptr) break;
      Node* csucc = curr->next[level].load(std::memory_order_acquire);
      if (is_marked(csucc)) {
        // A marked node behind a CLEAN link: an insert raced a deletion and
        // resurrected the link (or mark_unlinked_level beat the inserter).
        // Snip it directly — there is no flagged pred to help through.
        Node* expected = curr;
        if (!pred->next[level].compare_exchange_strong(
                expected, strip(csucc), std::memory_order_release,
                std::memory_order_relaxed)) {  // relaxed: loop re-reads
          if constexpr (!kLocalRecovery) return false;  // baseline restarts
        }
        continue;
      }
      if (comp_(curr->key, key)) {
        pred = curr;
        continue;
      }
      break;
    }
    pred_io = pred;
    curr_out = curr;
    return true;
  }

  // Full-height window search (blanket flavor).  On return preds[l] /
  // succs[l] bracket `key` at level l; returns whether succs[0] holds
  // `key`.  In kLocal mode a single descent always completes (all recovery
  // is level-local); in kRestart mode the descent re-runs from the head
  // whenever search_level reports a conflict.
  bool find(const Key& key, Node** preds, Node** succs, GuardT& g) {
    if constexpr (kPointerBased) {
      return find_hp(key, preds, succs, g);
    } else {
      for (;;) {
        Node* pred = head_;
        bool restart = false;
        for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
          Node* curr;
          if (!search_level(key, level, pred, curr, g)) {
            restart = true;
            break;
          }
          preds[level] = pred;
          succs[level] = curr;
        }
        if (restart) {
          CCDS_SKIPLIST_COUNT(head_restarts);
          continue;  // kRestart mode only
        }
        Node* bottom = succs[0];
        return bottom != nullptr && !comp_(key, bottom->key) &&
               !comp_(bottom->key, key);
      }
    }
  }

  enum class FlagResult { kWon, kLost, kGone, kRestart };

  // Step 1: place the deletion flag on victim's level-`level` predecessor.
  // `pred` is a search hint (pred->key < victim->key); on kWon/kLost it is
  // updated to the flagged pred.  kWon = OUR CAS placed the flag (at the
  // bottom level this elects the winning remover), kLost = another
  // deleter's flag is standing, kGone = victim is no longer linked at this
  // level, kRestart = kRestart-mode conflict (caller re-descends).
  FlagResult try_flag(Node*& pred, Node* victim, int level, GuardT& g) {
    for (;;) {
      Node* raw = pred->next[level].load(std::memory_order_acquire);
      if (raw == flag(victim)) return FlagResult::kLost;
      if (is_marked(raw)) {
        if constexpr (kLocalRecovery) {
          pred = backtrack(pred, level, g);
          continue;
        } else {
          return FlagResult::kRestart;
        }
      }
      if (is_flagged(raw)) {
        help_flagged(pred, strip(raw), level, g);
        continue;
      }
      if (strip(raw) != victim) {
        Node* curr;
        if (!search_level(victim->key, level, pred, curr, g)) {
          return FlagResult::kRestart;
        }
        if (curr != victim) return FlagResult::kGone;
        continue;  // re-read pred->next: it may already carry the flag
      }
      Node* expected = victim;
      if (pred->next[level].compare_exchange_strong(
              expected, flag(victim), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {  // relaxed: loop re-reads
        return FlagResult::kWon;
      }
    }
  }

  // Complete the deletion protocol for `victim` at one UPPER level: flag +
  // help if linked, force-mark if not.  Whatever the interleaving, victim
  // is marked at `level` when this returns.
  void delete_upper_level(Node* start_pred, Node* victim, int level,
                          GuardT& g) {
    Node* pred = start_pred;
    for (;;) {
      FlagResult r = try_flag(pred, victim, level, g);
      if (r == FlagResult::kWon || r == FlagResult::kLost) {
        help_flagged(pred, victim, level, g);
        return;
      }
      if (r == FlagResult::kGone) {
        mark_unlinked_level(victim, level, g);
        return;
      }
      // kRestart: full O(log n) re-descent to rebuild the window hint (a
      // level-local walk from the head would be an O(n) strawman at the
      // bottom levels, overstating the restart penalty the ablation
      // measures).
      CCDS_SKIPLIST_COUNT(head_restarts);
      Node* ps[kSkipListMaxLevel];
      Node* ss[kSkipListMaxLevel];
      find(victim->key, ps, ss, g);
      pred = ps[level];
    }
  }

  // Full removal of `victim` (blanket protocol): upper levels top-down,
  // then the bottom-level flag election.  Returns true iff this thread won
  // the bottom level; the winner runs the final unlink pass and retires.
  // `preds` is the search-hint window from a find() for victim->key.
  bool remove_node(Node* victim, const Key& key, Node** preds, GuardT& g) {
    if constexpr (kPointerBased) {
      return remove_node_hp(victim, key, g);
    } else {
      const int height = victim->height;
      for (int level = height - 1; level >= 1; --level) {
        delete_upper_level(preds[level], victim, level, g);
      }
      Node* pred = preds[0];
      for (;;) {
        FlagResult r = try_flag(pred, victim, 0, g);
        if (r == FlagResult::kWon) {
          // Linearization point: the mark help_flagged is about to place.
          help_flagged(pred, victim, 0, g);
          // One full search pass snips any link a racing insert resurrected
          // (search_level's clean-link-to-marked-node branch), after which
          // the victim is unreachable at every level.
          Node* ps[kSkipListMaxLevel];
          Node* ss[kSkipListMaxLevel];
          find(key, ps, ss, g);
          domain_.retire(victim);
          return true;
        }
        if (r == FlagResult::kLost) {
          help_flagged(pred, victim, 0, g);  // finish the winner's work
          return false;
        }
        if (r == FlagResult::kGone) return false;
        // kRestart: full re-descent (see delete_upper_level).  If the
        // victim is no longer the bottom-level successor, another remover
        // finished it (or it was reinserted as a fresh node) — either way
        // we did not win the election.
        CCDS_SKIPLIST_COUNT(head_restarts);
        Node* ps[kSkipListMaxLevel];
        Node* ss[kSkipListMaxLevel];
        if (!find(key, ps, ss, g) || ss[0] != victim) return false;
        pred = ps[0];
      }
    }
  }

  // Tower height per the Levels knob (file-header comment on kKeyed).
  static int draw_level(const Key& key) noexcept {
    if constexpr (Levels == SkipListLevels::kKeyed) {
      return skiplist_keyed_level(
          static_cast<std::uint64_t>(std::hash<Key>{}(key)));
    } else {
      return skiplist_random_level();
    }
  }

  // Blanket-mode insert with local recovery.
  bool insert_fr(const Key& key) {
    const int height = draw_level(key);
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    if (find(key, preds, succs, g)) return false;
    Node* n = new Node{};
    n->key = key;
    n->height = height;

    // ---- bottom-level splice: the linearization point of the insert ----
    Node* pred = preds[0];
    Node* succ = succs[0];
    for (;;) {
      // n is private until the CAS lands: plain stores are fine.
      // relaxed: links published by the bottom-level release CAS.
      for (int level = 0; level < height; ++level) {
        n->next[level].store(succs[level], std::memory_order_relaxed);
      }
      n->next[0].store(succ, std::memory_order_relaxed);  // relaxed: ditto
      Node* expected = succ;
      if (pred->next[0].compare_exchange_strong(
              expected, n, std::memory_order_release,
              std::memory_order_relaxed)) {  // relaxed: failure path re-searches
        break;
      }
      // CAS failed: repair the window without leaving level 0 (kLocal) or
      // re-descend (kRestart), helping any deletion that got in the way.
      Node* raw = pred->next[0].load(std::memory_order_acquire);
      if (is_flagged(raw)) help_flagged(pred, strip(raw), 0, g);
      if constexpr (kLocalRecovery) {
        if (is_marked(pred->next[0].load(std::memory_order_acquire))) {
          pred = backtrack(pred, 0, g);
        }
        Node* curr;
        search_level(key, 0, pred, curr, g);  // kLocal: cannot fail
        succ = curr;
      } else {
        CCDS_SKIPLIST_COUNT(head_restarts);
        if (find(key, preds, succs, g)) {
          delete n;  // n is still private; plain delete is fine
          return false;
        }
        pred = preds[0];
        succ = succs[0];
      }
      if (succ != nullptr && !comp_(key, succ->key) &&
          !comp_(succ->key, key)) {
        delete n;  // duplicate appeared while we retried; n never published
        return false;
      }
      succs[0] = succ;
    }

    // ---- upper levels.  From here on n is public: every update to
    // n->next[level] must CAS (a delete-mark may land at any moment), and
    // after any successful link we re-check for deletion and snip ourselves
    // back out — otherwise a remover whose final pass already ran could
    // leave a persistent link to a retired node. ----
    for (int level = 1; level < height; ++level) {
      Node* lpred = preds[level];
      Node* lsucc = succs[level];
      for (;;) {
        Node* fwd = n->next[level].load(std::memory_order_acquire);
        if (is_marked(fwd)) {
          // n was deleted while we were building its tower; make sure it is
          // unlinked everywhere we may have linked it, then stop.
          find(key, preds, succs, g);
          return true;
        }
        if (lsucc == n) {
          // Degenerate window after a repair walked onto our own node.
          find(key, preds, succs, g);
          return true;
        }
        if (fwd != lsucc &&
            !n->next[level].compare_exchange_strong(
                fwd, lsucc, std::memory_order_release,
                std::memory_order_relaxed)) {  // relaxed: failure re-evaluates
          continue;  // lost to a marker (or helper); re-evaluate
        }
        Node* expected = lsucc;
        if (lpred->next[level].compare_exchange_strong(
                expected, n, std::memory_order_release,
                std::memory_order_relaxed)) {  // relaxed: failure repairs below
          // Re-validate: if a remover finished while we linked, its final
          // pass may have missed this brand-new link.
          if (is_marked(n->next[0].load(std::memory_order_acquire))) {
            find(key, preds, succs, g);
            return true;
          }
          break;
        }
        // Link failed: repair this level's window.
        if constexpr (kLocalRecovery) {
          Node* raw = lpred->next[level].load(std::memory_order_acquire);
          if (is_flagged(raw)) help_flagged(lpred, strip(raw), level, g);
          if (is_marked(lpred->next[level].load(std::memory_order_acquire))) {
            lpred = backtrack(lpred, level, g);
          }
          Node* curr;
          search_level(key, level, lpred, curr, g);  // kLocal: cannot fail
          lsucc = curr;
        } else {
          CCDS_SKIPLIST_COUNT(head_restarts);
          if (find(key, preds, succs, g)) {
            if (succs[0] != n) return true;  // removed (+ maybe reinserted)
          } else {
            return true;  // removed entirely; find snipped any leftovers
          }
          lpred = preds[level];
          lsucc = succs[level];
        }
      }
    }
    return true;
  }

  // =========================================================================
  // Pointer-based (hazard) protocol: mark-only, hand-over-hand, restart
  // recovery.  Backlinks/flags are never used here (header comment).
  // =========================================================================

  bool insert_hp(const Key& key) {
    const int height = draw_level(key);
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    Node* n = nullptr;
    for (;;) {
      if (find_hp(key, preds, succs, g)) {
        delete n;  // n is still private here (or null); plain delete is fine
        return false;
      }
      if (n == nullptr) {
        n = new Node{};
        n->key = key;
        n->height = height;
        // Publish our own hazard for n while it is still private: once the
        // bottom-level splice lands, a concurrent remover may unlink and
        // retire n before we finish its tower.
        g.protect_raw(kNodeSlot, n);
      }
      // n is private until the bottom-level splice: plain stores are fine.
      // relaxed: links published by the bottom-level release CAS.
      for (int level = 0; level < height; ++level) {
        n->next[level].store(succs[level], std::memory_order_relaxed);
      }
      // Splice at the bottom level first: this is the linearization point.
      Node* expected = succs[0];
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, n, std::memory_order_release,
              std::memory_order_relaxed)) {  // relaxed: failure re-finds
        continue;
      }

      // Link the upper levels (same CAS + re-check discipline as insert_fr;
      // recovery is always a full re-find under HP).
      for (int level = 1; level < height; ++level) {
        for (;;) {
          Node* fwd = n->next[level].load(std::memory_order_acquire);
          if (is_marked(fwd)) {
            find_hp(key, preds, succs, g);
            return true;
          }
          Node* succ = succs[level];
          if (fwd != succ &&
              !n->next[level].compare_exchange_strong(
                  fwd, succ, std::memory_order_release,
                  std::memory_order_relaxed)) {  // relaxed: failure re-evaluates
            continue;  // lost to a marker (or helper); re-evaluate
          }
          Node* expected_up = succ;
          if (preds[level]->next[level].compare_exchange_strong(
                  expected_up, n, std::memory_order_release,
                  std::memory_order_relaxed)) {  // relaxed: failure re-finds
            if (is_marked(n->next[0].load(std::memory_order_acquire))) {
              find_hp(key, preds, succs, g);
              return true;
            }
            break;
          }
          // Window moved: recompute.
          if (find_hp(key, preds, succs, g)) {
            if (succs[0] != n) return true;  // removed (+ maybe reinserted)
          } else {
            return true;  // removed entirely; find snipped any leftovers
          }
        }
      }
      return true;
    }
  }

  // HP helper: protect pred's level-`level` successor in `slot`.  Returns
  // false if the link is marked — pred died under us and its frozen link
  // cannot be validated (header comment) — in which case the caller must
  // restart from the head.  `pred` must itself be protected (or the head).
  bool protect_next(GuardT& g, Node* pred, int level, std::size_t slot,
                    Node*& out) {
    for (;;) {
      Node* raw = pred->next[level].load(std::memory_order_acquire);
      if (is_marked(raw)) return false;
      if (raw == nullptr) {
        out = nullptr;
        return true;
      }
      g.protect_raw(slot, raw);
      // Validating re-read: pred is live (unmarked link) and still points
      // at raw after the hazard was published, so raw cannot have been
      // retired before the publication.
      if (pred->next[level].load(std::memory_order_acquire) == raw) {
        out = raw;
        return true;
      }
    }
  }

  // Mark `victim` at every level (bottom mark is the linearization point),
  // then run one find pass to unlink it everywhere, then retire.  Returns
  // false if another thread won the bottom-level mark.  The caller must
  // hold a protection on victim; it is consumed here (the find pass
  // recycles the scratch slots, after which victim is only passed to
  // retire, never dereferenced).
  bool remove_node_hp(Node* victim, const Key& key, GuardT& g) {
    const int height = victim->height;
    // Mark top levels (idempotent; concurrent helpers welcome).
    for (int level = height - 1; level >= 1; --level) {
      Node* succ = victim->next[level].load(std::memory_order_acquire);
      while (!is_marked(succ)) {
        victim->next[level].compare_exchange_weak(succ, mark(succ),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire);
      }
    }
    // Bottom-level mark decides the winner.
    Node* succ = victim->next[0].load(std::memory_order_acquire);
    for (;;) {
      if (is_marked(succ)) return false;  // lost
      if (victim->next[0].compare_exchange_weak(succ, mark(succ),
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        // Winner: one full find pass unlinks the victim at every level it
        // occupies (find snips every marked node on the key's search path).
        Node* preds[kSkipListMaxLevel];
        Node* succs[kSkipListMaxLevel];
        find_hp(key, preds, succs, g);
        domain_.retire(victim);
        return true;
      }
    }
  }

  // HP flavor of find: hand-over-hand through kPredSlot/kCurrSlot, window
  // endpoints parked in the preds/succs slot banks before each descent.
  bool find_hp(const Key& key, Node** preds, Node** succs, GuardT& g) {
    bool restart = true;
    while (restart) {
      restart = false;
      Node* pred = head_;
      for (int level = kSkipListMaxLevel - 1; level >= 0 && !restart;
           --level) {
        for (;;) {
          Node* curr;
          if (!protect_next(g, pred, level, kCurrSlot, curr)) {
            restart = true;  // pred died; frozen link is unvalidatable
            break;
          }
          if (curr != nullptr) {
            Node* succ_raw = curr->next[level].load(std::memory_order_acquire);
            if (is_marked(succ_raw)) {
              // Snip the logically-deleted curr out of this level; success
              // proves the successor is not yet retired (header comment).
              Node* expected = curr;
              if (!pred->next[level].compare_exchange_strong(
                      expected, strip(succ_raw), std::memory_order_release,
                      std::memory_order_relaxed)) {  // relaxed: failure restarts
                restart = true;
                break;
              }
              continue;  // re-protect pred's (new) successor
            }
            if (comp_(curr->key, key)) {
              g.protect_raw(kPredSlot, curr);  // kCurrSlot covers the handover
              pred = curr;
              continue;
            }
          }
          // Park the window endpoints for this level: pred keeps a slot of
          // its own so the descent (which recycles kPredSlot/kCurrSlot) and
          // the caller's later CASes stay covered.
          g.protect_raw(static_cast<std::size_t>(level), pred);
          g.protect_raw(static_cast<std::size_t>(kSkipListMaxLevel) + level,
                        curr);
          preds[level] = pred;
          succs[level] = curr;
          break;
        }
      }
      if (restart) continue;
      Node* bottom = succs[0];
      return bottom != nullptr && !comp_(key, bottom->key) &&
             !comp_(bottom->key, key);
    }
    return false;  // unreachable; placates control-flow analysis
  }

  Node* const head_;
  mutable Domain domain_;
  [[no_unique_address]] Compare comp_{};
};

// Concurrent min-priority queue built on the lock-free skip list
// (Lotan & Shavit 2000): push inserts a unique (priority, sequence) key;
// pop_min claims the leftmost unclaimed node.  Duplicate priorities are
// allowed (disambiguated by the sequence counter).
template <typename Priority = std::uint32_t, reclaimer Domain = EpochDomain>
class SkipListPriorityQueue {
  static_assert(sizeof(Priority) <= 4,
                "priority must fit 32 bits (packed with a sequence number)");

 public:
  void push(Priority p) {
    const std::uint64_t seq =
        seq_.fetch_add(1, std::memory_order_relaxed) & 0xffffffffull;  // relaxed: unique-id counter
    list_.insert((static_cast<std::uint64_t>(p) << 32) | seq);
  }

  std::optional<Priority> pop_min() {
    auto v = list_.pop_min();
    if (!v) return std::nullopt;
    return static_cast<Priority>(*v >> 32);
  }

 private:
  LockFreeSkipListSet<std::uint64_t, std::less<std::uint64_t>, Domain> list_;
  std::atomic<std::uint64_t> seq_{0};  // unpadded: test scaffolding, not a hot path
};

// Coarse-grained binary-heap priority queue: the baseline for E9.
template <typename Priority = std::uint32_t, typename Lock = std::mutex>
class CoarsePriorityQueue {
 public:
  void push(Priority p) {
    std::lock_guard<Lock> g(lock_);
    heap_.push_back(p);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  std::optional<Priority> pop_min() {
    std::lock_guard<Lock> g(lock_);
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Priority p = heap_.back();
    heap_.pop_back();
    return p;
  }

 private:
  mutable Lock lock_;
  std::vector<Priority> heap_;
};

}  // namespace ccds

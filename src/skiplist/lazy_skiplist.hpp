// Lazy (optimistic) concurrent skip list set — Herlihy, Lev, Luchangco,
// Shavit, "A Simple Optimistic Skiplist Algorithm" (SIROCCO 2007).
//
// The lazy-list recipe lifted to skip lists: traversals take no locks;
// updates lock only the predecessors of the affected node, validate, and
// apply.  Two per-node flags carry the protocol:
//   fullyLinked — set once a node is linked at ALL its levels; contains()
//                 and remove() ignore half-linked nodes (insert's
//                 linearization point is setting this flag);
//   marked      — logical deletion flag (remove's linearization point).
// contains() is wait-free under blanket domains.  Unlinked nodes are
// retired through the reclamation domain (epoch by default); all operations
// run under a guard.
//
// Under a pointer-based domain (hazard pointers) the traversal goes
// hand-over-hand, re-checking each predecessor's `marked` flag after the
// hazard publication — an unlinked node's frozen next pointers can outlive
// their successors, and observing marked == false after publishing proves
// the link was live (the flag is set under locks before the unlink, and the
// domain's heavy barrier makes it visible to any reader whose hazard a scan
// missed).  Slot budget: a preds/succs pair per level plus two walking
// slots = 2*kSkipListMaxLevel + 2 (static_asserted; WideHazardDomain
// provides 40).  remove()'s victim needs no standing protection: it is
// marked and locked by the removing thread, and only that thread retires
// it.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <utility>

#include "core/arch.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "skiplist/seq_skiplist.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = TtasLock, reclaimer Domain = EpochDomain>
class LazySkipListSet {
  static_assert(!reclaimer_traits<Domain>::pointer_based ||
                    Domain::kSlots >= 2 * kSkipListMaxLevel + 2,
                "pointer-based traversal needs a preds/succs pair per level "
                "plus walking scratch — use WideHazardDomain");

 public:
  LazySkipListSet() : head_(new Node{}) {
    head_->height = kSkipListMaxLevel;
    head_->fully_linked.store(true, std::memory_order_relaxed);  // relaxed: ctor, list unpublished
  }
  LazySkipListSet(const LazySkipListSet&) = delete;
  LazySkipListSet& operator=(const LazySkipListSet&) = delete;

  ~LazySkipListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  // Wait-free under blanket domains; lock-free (restarting) under HP.
  bool contains(const Key& key) {
    auto g = domain_.guard();
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    const int found = find(key, preds, succs, g);
    return found != -1 &&
           succs[found]->fully_linked.load(std::memory_order_acquire) &&
           !succs[found]->marked.load(std::memory_order_acquire);
  }

  bool insert(const Key& key) {
    const int height = skiplist_random_level();
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    for (;;) {
      const int found = find(key, preds, succs, g);
      if (found != -1) {
        Node* existing = succs[found];  // protected (HP: succs slot bank)
        if (!existing->marked.load(std::memory_order_acquire)) {
          // Present (or about to be): wait until its insert completes so our
          // "false" is linearizable, then report duplicate.
          std::uint32_t spins = 0;
          while (!existing->fully_linked.load(std::memory_order_acquire)) {
            spin_wait(spins);
          }
          return false;
        }
        continue;  // marked: it is going away; retry for a clean window
      }

      // Lock the distinct predecessors bottom-up and validate each window.
      // Under HP every preds[level]/succs[level] is still protected by its
      // find() slot, so the dereferences below are safe even if a window
      // has already moved (validation catches that).
      int highest_locked = -1;
      Node* last_locked = nullptr;
      bool valid = true;
      for (int level = 0; valid && level < height; ++level) {
        Node* pred = preds[level];
        Node* succ = succs[level];
        if (pred != last_locked) {  // preds repeat across levels: lock once
          pred->lock.lock();
          last_locked = pred;
          highest_locked = level;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[level].load(std::memory_order_acquire) == succ &&
                (succ == nullptr ||
                 !succ->marked.load(std::memory_order_acquire));
      }
      if (!valid) {
        unlock_preds(preds, highest_locked);
        continue;
      }

      Node* n = new Node{};
      n->key = key;
      n->height = height;
      // relaxed: the node is unpublished until fully_linked's release.
      for (int level = 0; level < height; ++level) {
        n->next[level].store(succs[level], std::memory_order_relaxed);
      }
      for (int level = 0; level < height; ++level) {
        // release: publish n's key and lower-level links.
        preds[level]->next[level].store(n, std::memory_order_release);
      }
      // Linearization point: the node becomes logically present.
      n->fully_linked.store(true, std::memory_order_release);
      unlock_preds(preds, highest_locked);
      return true;
    }
  }

  bool remove(const Key& key) {
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    Node* victim = nullptr;
    bool is_marked = false;
    int height = -1;
    auto g = domain_.guard();
    for (;;) {
      const int found = find(key, preds, succs, g);
      if (!is_marked) {
        if (found == -1) return false;
        victim = succs[found];
        if (!victim->fully_linked.load(std::memory_order_acquire) ||
            victim->height - 1 != found ||
            victim->marked.load(std::memory_order_acquire)) {
          return false;
        }
        height = victim->height;
        victim->lock.lock();
        if (victim->marked.load(std::memory_order_acquire)) {
          victim->lock.unlock();
          return false;  // someone else removed it first
        }
        // Linearization point: logical deletion.  From here on victim is
        // ours alone to retire, so it stays safe to dereference across the
        // re-find below even though find() recycles the protection slots.
        victim->marked.store(true, std::memory_order_release);
        is_marked = true;
      }

      int highest_locked = -1;
      Node* last_locked = nullptr;
      bool valid = true;
      for (int level = 0; valid && level < height; ++level) {
        Node* pred = preds[level];
        if (pred != last_locked) {
          pred->lock.lock();
          last_locked = pred;
          highest_locked = level;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[level].load(std::memory_order_acquire) == victim;
      }
      if (!valid) {
        unlock_preds(preds, highest_locked);
        continue;  // windows moved; re-find (victim stays marked+locked)
      }

      for (int level = height - 1; level >= 0; --level) {
        // relaxed: victim is locked; its links are frozen.
        preds[level]->next[level].store(
            victim->next[level].load(std::memory_order_relaxed),
            std::memory_order_release);
      }
      victim->lock.unlock();
      unlock_preds(preds, highest_locked);
      domain_.retire(victim);
      return true;
    }
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    int height = 0;
    std::atomic<Node*> next[kSkipListMaxLevel] = {};
    Lock lock;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
  };

  static constexpr bool kPointerBased = reclaimer_traits<Domain>::pointer_based;
  // Walking scratch past the preds/succs banks (HP mode only).
  static constexpr std::size_t kPredSlot = 2 * kSkipListMaxLevel;
  static constexpr std::size_t kCurrSlot = 2 * kSkipListMaxLevel + 1;

  // guard() may return a Guard or (via LeasedDomain) a Lease.
  using GuardT = decltype(std::declval<Domain&>().guard());

  // Lock-free traversal filling preds/succs at every level; returns the
  // highest level whose successor matches `key`, or -1.  Under HP,
  // preds[l]/succs[l] are left protected in slots l / kSkipListMaxLevel+l.
  int find(const Key& key, Node** preds, Node** succs, GuardT& g) const {
    if constexpr (kPointerBased) {
    retry:
      int found = -1;
      Node* pred = head_;
      for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
        // protect() validates against the link; the marked re-check
        // afterwards rejects windows read through a frozen (unlinked)
        // predecessor — header comment.  The sentinel head is never marked,
        // so checking it unconditionally is harmless.
        Node* curr = g.protect(kCurrSlot, pred->next[level]);
        if (pred->marked.load(std::memory_order_acquire)) goto retry;
        while (curr != nullptr && comp_(curr->key, key)) {
          g.protect_raw(kPredSlot, curr);  // kCurrSlot covers the handover
          pred = curr;
          curr = g.protect(kCurrSlot, pred->next[level]);
          if (pred->marked.load(std::memory_order_acquire)) goto retry;
        }
        if (found == -1 && curr != nullptr && !comp_(key, curr->key)) {
          found = level;
        }
        // Park the window for this level; pred stays covered through the
        // descent (which recycles the walking slots).
        g.protect_raw(static_cast<std::size_t>(level), pred);
        g.protect_raw(static_cast<std::size_t>(kSkipListMaxLevel) + level,
                      curr);
        preds[level] = pred;
        succs[level] = curr;
      }
      return found;
    } else {
      int found = -1;
      Node* pred = head_;
      for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
        Node* curr = pred->next[level].load(std::memory_order_acquire);
        while (curr != nullptr && comp_(curr->key, key)) {
          pred = curr;
          curr = pred->next[level].load(std::memory_order_acquire);
        }
        if (found == -1 && curr != nullptr && !comp_(key, curr->key)) {
          found = level;
        }
        preds[level] = pred;
        succs[level] = curr;
      }
      return found;
    }
  }

  void unlock_preds(Node** preds, int highest_locked) {
    Node* last = nullptr;
    for (int level = highest_locked; level >= 0; --level) {
      if (preds[level] != last) {
        preds[level]->lock.unlock();
        last = preds[level];
      }
    }
  }

  Node* const head_;  // sentinel: full height, fully linked, never marked
  mutable Domain domain_;
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

// Lazy (optimistic) concurrent skip list set — Herlihy, Lev, Luchangco,
// Shavit, "A Simple Optimistic Skiplist Algorithm" (SIROCCO 2007).
//
// The lazy-list recipe lifted to skip lists: traversals take no locks;
// updates lock only the predecessors of the affected node, validate, and
// apply.  Two per-node flags carry the protocol:
//   fullyLinked — set once a node is linked at ALL its levels; contains()
//                 and remove() ignore half-linked nodes (insert's
//                 linearization point is setting this flag);
//   marked      — logical deletion flag (remove's linearization point).
// contains() is wait-free.  Unlinked nodes are retired through an epoch
// domain; all operations run under an epoch guard.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>

#include "core/arch.hpp"
#include "reclaim/epoch.hpp"
#include "skiplist/seq_skiplist.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = TtasLock>
class LazySkipListSet {
 public:
  LazySkipListSet() : head_(new Node{}) {
    head_->height = kSkipListMaxLevel;
    head_->fully_linked.store(true, std::memory_order_relaxed);  // relaxed: ctor, list unpublished
  }
  LazySkipListSet(const LazySkipListSet&) = delete;
  LazySkipListSet& operator=(const LazySkipListSet&) = delete;

  ~LazySkipListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  // Wait-free.
  bool contains(const Key& key) {
    auto g = domain_.guard();
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    const int found = find(key, preds, succs);
    return found != -1 &&
           succs[found]->fully_linked.load(std::memory_order_acquire) &&
           !succs[found]->marked.load(std::memory_order_acquire);
  }

  bool insert(const Key& key) {
    const int height = skiplist_random_level();
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    auto g = domain_.guard();
    for (;;) {
      const int found = find(key, preds, succs);
      if (found != -1) {
        Node* existing = succs[found];
        if (!existing->marked.load(std::memory_order_acquire)) {
          // Present (or about to be): wait until its insert completes so our
          // "false" is linearizable, then report duplicate.
          std::uint32_t spins = 0;
          while (!existing->fully_linked.load(std::memory_order_acquire)) {
            spin_wait(spins);
          }
          return false;
        }
        continue;  // marked: it is going away; retry for a clean window
      }

      // Lock the distinct predecessors bottom-up and validate each window.
      int highest_locked = -1;
      Node* last_locked = nullptr;
      bool valid = true;
      for (int level = 0; valid && level < height; ++level) {
        Node* pred = preds[level];
        Node* succ = succs[level];
        if (pred != last_locked) {  // preds repeat across levels: lock once
          pred->lock.lock();
          last_locked = pred;
          highest_locked = level;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[level].load(std::memory_order_acquire) == succ &&
                (succ == nullptr ||
                 !succ->marked.load(std::memory_order_acquire));
      }
      if (!valid) {
        unlock_preds(preds, highest_locked);
        continue;
      }

      Node* n = new Node{};
      n->key = key;
      n->height = height;
      // relaxed: the node is unpublished until fully_linked's release.
      for (int level = 0; level < height; ++level) {
        n->next[level].store(succs[level], std::memory_order_relaxed);
      }
      for (int level = 0; level < height; ++level) {
        // release: publish n's key and lower-level links.
        preds[level]->next[level].store(n, std::memory_order_release);
      }
      // Linearization point: the node becomes logically present.
      n->fully_linked.store(true, std::memory_order_release);
      unlock_preds(preds, highest_locked);
      return true;
    }
  }

  bool remove(const Key& key) {
    Node* preds[kSkipListMaxLevel];
    Node* succs[kSkipListMaxLevel];
    Node* victim = nullptr;
    bool is_marked = false;
    int height = -1;
    auto g = domain_.guard();
    for (;;) {
      const int found = find(key, preds, succs);
      if (!is_marked) {
        if (found == -1) return false;
        victim = succs[found];
        if (!victim->fully_linked.load(std::memory_order_acquire) ||
            victim->height - 1 != found ||
            victim->marked.load(std::memory_order_acquire)) {
          return false;
        }
        height = victim->height;
        victim->lock.lock();
        if (victim->marked.load(std::memory_order_acquire)) {
          victim->lock.unlock();
          return false;  // someone else removed it first
        }
        // Linearization point: logical deletion.
        victim->marked.store(true, std::memory_order_release);
        is_marked = true;
      }

      int highest_locked = -1;
      Node* last_locked = nullptr;
      bool valid = true;
      for (int level = 0; valid && level < height; ++level) {
        Node* pred = preds[level];
        if (pred != last_locked) {
          pred->lock.lock();
          last_locked = pred;
          highest_locked = level;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->next[level].load(std::memory_order_acquire) == victim;
      }
      if (!valid) {
        unlock_preds(preds, highest_locked);
        continue;  // windows moved; re-find (victim stays marked+locked)
      }

      for (int level = height - 1; level >= 0; --level) {
        // relaxed: victim is locked; its links are frozen.
        preds[level]->next[level].store(
            victim->next[level].load(std::memory_order_relaxed),
            std::memory_order_release);
      }
      victim->lock.unlock();
      unlock_preds(preds, highest_locked);
      domain_.retire(victim);
      return true;
    }
  }

  EpochDomain& domain() noexcept { return domain_; }

 private:
  struct Node {
    Key key{};
    int height = 0;
    std::atomic<Node*> next[kSkipListMaxLevel] = {};
    Lock lock;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
  };

  // Lock-free traversal filling preds/succs at every level; returns the
  // highest level whose successor matches `key`, or -1.
  int find(const Key& key, Node** preds, Node** succs) const {
    int found = -1;
    Node* pred = head_;
    for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (curr != nullptr && comp_(curr->key, key)) {
        pred = curr;
        curr = pred->next[level].load(std::memory_order_acquire);
      }
      if (found == -1 && curr != nullptr && !comp_(key, curr->key)) {
        found = level;
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    return found;
  }

  void unlock_preds(Node** preds, int highest_locked) {
    Node* last = nullptr;
    for (int level = highest_locked; level >= 0; --level) {
      if (preds[level] != last) {
        preds[level]->lock.unlock();
        last = preds[level];
      }
    }
  }

  Node* const head_;  // sentinel: full height, fully linked, never marked
  mutable EpochDomain domain_;
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

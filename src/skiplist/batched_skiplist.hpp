// Batch-parallel ordered set: an OBATCHER-style combining front over
// per-key-range sequential skip lists ("Concurrent Data Structures Made
// Easy" — see PAPERS.md; the combining engines are the Synch-framework
// reproductions in sync/).
//
// The pipeline, per combining episode:
//
//   submitters                         combiner
//   ----------                        ---------------------------------
//   sort own run (Op::prepare)   -->  gather ALL pending sorted runs
//   publish mergeable request         (CcSynch: consecutive list nodes;
//   spin locally                       FlatCombiner: slot scan)
//                                     k-way MERGE the runs (winner tree,
//                                      ~log2 k comparisons per op)
//                                     group equal keys, LAST-WRITER-WINS
//                                      (each op's result slot still filled)
//                                     apply each group once, left-to-right,
//                                      resuming the search from the
//                                      previous key's position (finger
//                                      seek: O(log d) for gap d, so a batch
//                                      of B over N keys costs
//                                      O(B + B·log(N/B)) instead of
//                                      O(B·log N))
//                                     above a size threshold, fan disjoint
//                                      key-range segments out to helper
//                                      threads (pool/stealing_pool.hpp)
//                                      and HELP until the latch drains
//
// Sorting happens on the SUBMITTING threads (it parallelizes across them);
// merging, deduplication and application happen inside one combining
// episode, so a batch — and the union of merged batches — is atomic with
// respect to every other operation on the structure.  Per-op results are
// written into the ops before any submitter's wait drops.
//
// The state is partitioned into disjoint key ranges by a fixed splitter
// vector (empty = one range).  Ranges give two things: single operations
// descend a shard of N/P keys (cheaper than N), and a merged run splits at
// range boundaries into segments that helper threads can apply in parallel
// against independent sequential structures — no synchronization inside a
// segment at all, which is the OBATCHER bet: batch-level parallelism with
// sequential-structure simplicity.
//
// When batching LOSES: tiny batches (sort + merge overhead, nothing to
// amortize), batches wider than the key locality (gaps d ~ N/B approach N
// and the finger seek degenerates to a full descent), and read-mostly
// single-op workloads where a lock-free traversal would not serialize at
// all (see docs/algorithms.md and EXPERIMENTS.md E18).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/arch.hpp"
#include "skiplist/seq_skiplist.hpp"
#include "sync/ccsynch.hpp"
#include "sync/combiner.hpp"

namespace ccds {

// Hard cap on key-range shards (and thus fan-out width per batch).
inline constexpr std::size_t kBatchedSkipListMaxShards = 64;

struct BatchedSkipListStats {
  std::uint64_t batches = 0;           // merged applications (apply_runs calls)
  std::uint64_t merged_runs = 0;       // submitted runs folded into them
  std::uint64_t ops = 0;               // operations across all runs
  std::uint64_t dedup_folded = 0;      // ops beyond the first in a same-key group
  std::uint64_t fanout_batches = 0;    // batches that dispatched to helpers
  std::uint64_t fanout_subbatches = 0; // segments dispatched across all of those
};

namespace detail {

// The sequential state a combining engine serializes: the range shards,
// the splitters that route keys to them, and combiner-owned scratch.
template <typename Key, typename Compare, SkipListLevels Levels>
struct BatchedSkipState {
  using Seq = SeqSkipListSet<Key, Compare, Levels>;

  // One operation of a (sorted) batch.  Built by the static factories;
  // `result` and (for kContains hits) `key` are written by the combiner
  // before the submitting call returns.
  struct Op {
    enum class Kind : std::uint8_t {
      kContains,  // result = present; on hit, key is overwritten with the
                  // STORED element (how BatchedMap reads values back)
      kInsert,    // set insert: result = "was absent"; no-op when present
      kAssign,    // insert-or-assign: result = "was absent"; overwrites the
                  // stored element when present (map put)
      kErase,     // result = "was present"
    };

    static Op contains(Key k) { return Op{std::move(k), Kind::kContains}; }
    static Op insert(Key k) { return Op{std::move(k), Kind::kInsert}; }
    static Op assign(Key k) { return Op{std::move(k), Kind::kAssign}; }
    static Op erase(Key k) { return Op{std::move(k), Kind::kErase}; }

    Op() = default;
    Op(Key k, Kind ki) : key(std::move(k)), kind(ki) {}

    Key key{};
    // Sorted chain through the run, threaded by prepare() so the caller's
    // array order (= result slot order) is never permuted; sorted_head is
    // meaningful on the run's first element only.
    Op* next_sorted = nullptr;
    Op* sorted_head = nullptr;
    Kind kind = Kind::kContains;
    bool result = false;

    // Single-op execution (the engines' apply/apply_batch path): same
    // semantics as a one-op sorted batch, minus the merge machinery.
    void operator()(BatchedSkipState& s) {
      Compare comp{};
      std::size_t sh = 0;
      while (sh < s.splitters.size() && !comp(key, s.splitters[sh])) ++sh;
      Seq& shard = *s.shards[sh];
      typename Seq::Finger f = shard.finger();
      shard.seek(f, key);
      const bool present = shard.found_at(f, key);
      switch (kind) {
        case Kind::kContains:
          result = present;
          if (present) key = shard.found_ref(f);
          break;
        case Kind::kInsert:
          result = !present;
          if (!present) shard.insert_new_at(f, key);
          break;
        case Kind::kAssign:
          result = !present;
          if (present) {
            shard.found_ref(f) = key;
          } else {
            shard.insert_new_at(f, key);
          }
          break;
        case Kind::kErase:
          result = present;
          if (present) shard.remove_found_at(f);
          break;
      }
    }

    // Submitter-side sort (CombinerBatchOps::apply_sorted_batch calls this
    // before publishing).  Stable by submission order, so last-writer-wins
    // inside a run follows program order.
    static void prepare(std::span<Op> ops) {
      if (ops.size() == 1) {
        ops[0].next_sorted = nullptr;
        ops[0].sorted_head = ops.data();
        return;
      }
      std::vector<Op*> idx(ops.size());
      for (std::size_t i = 0; i < ops.size(); ++i) idx[i] = &ops[i];
      std::stable_sort(idx.begin(), idx.end(), [](const Op* a, const Op* b) {
        return Compare{}(a->key, b->key);
      });
      for (std::size_t i = 0; i + 1 < idx.size(); ++i) {
        idx[i]->next_sorted = idx[i + 1];
      }
      idx.back()->next_sorted = nullptr;
      ops[0].sorted_head = idx[0];
    }

    // Merged application: every pending sorted run of one combining
    // episode, in combining order.  Runs in the combiner; see the member
    // functions below for the merge / dedup / apply pipeline.
    static void apply_runs(std::span<std::span<Op>> runs,
                           BatchedSkipState& s) {
      s.apply_runs_impl(runs);
    }
  };

  BatchedSkipState() { shards.push_back(std::make_unique<Seq>()); }

  // Deep copy for episode-copying engines (PSim copy-constructs the whole
  // state per combining episode).  Shards and routing are copied; the
  // fan-out hook carries over (the executor is engine-independent); the
  // combiner scratch starts empty — it is per-episode working memory, and
  // any SegJob entries in the source point into the SOURCE's scratch.
  BatchedSkipState(const BatchedSkipState& o)
      : splitters(o.splitters),
        stats(o.stats),
        dispatch(o.dispatch),
        exec(o.exec),
        fanout_threshold(o.fanout_threshold) {
    shards.reserve(o.shards.size());
    for (const auto& sh : o.shards) {
      shards.push_back(std::make_unique<Seq>(*sh));
    }
  }

  BatchedSkipState& operator=(const BatchedSkipState&) = delete;

  // Splitters partition the key space into shards: shard i holds the keys
  // with exactly i splitters <= key.  They are fixed for the structure's
  // lifetime (a static partition; re-balancing is future work).
  explicit BatchedSkipState(std::vector<Key> splits)
      : splitters(std::move(splits)) {
    Compare comp{};
    std::sort(splitters.begin(), splitters.end(), comp);
    splitters.erase(std::unique(splitters.begin(), splitters.end(),
                                [&comp](const Key& a, const Key& b) {
                                  return !comp(a, b) && !comp(b, a);
                                }),
                    splitters.end());
    if (splitters.size() > kBatchedSkipListMaxShards - 1) {
      splitters.resize(kBatchedSkipListMaxShards - 1);
    }
    for (std::size_t i = 0; i <= splitters.size(); ++i) {
      shards.push_back(std::make_unique<Seq>());
    }
  }

  // A contiguous slice of the merged op sequence, all routed to one shard.
  struct Seg {
    std::size_t begin;
    std::size_t end;
    std::size_t shard;
  };

  // One fan-out unit: a segment plus its output (the dedup count), written
  // by whichever thread runs it and summed by the combiner after the wait.
  struct SegJob {
    BatchedSkipState* state;
    Seg seg;
    std::uint64_t folded;

    static void run(void* ctx) {
      SegJob* j = static_cast<SegJob*>(ctx);
      j->folded = j->state->apply_segment(j->seg);
    }
  };

  void apply_runs_impl(std::span<std::span<Op>> runs) {
    std::size_t total = 0;
    for (const auto& r : runs) total += r.size();
    stats.batches += 1;
    stats.merged_runs += runs.size();
    stats.ops += total;

    merge_runs(runs, total);
    segment_scratch();

    const bool fan = dispatch != nullptr && segs.size() > 1 &&
                     total >= fanout_threshold;
    if (fan) {
      stats.fanout_batches += 1;
      stats.fanout_subbatches += segs.size();
      jobs.clear();
      for (const Seg& g : segs) jobs.push_back(SegJob{this, g, 0});
      dispatch(exec, jobs.data(), jobs.size());
      for (const SegJob& j : jobs) stats.dedup_folded += j.folded;
    } else {
      for (const Seg& g : segs) stats.dedup_folded += apply_segment(g);
    }
  }

  // k-way merge of the pre-sorted chains into `scratch` via a winner
  // (tournament) tree: exactly ceil(log2 k) comparisons per op, and ties
  // resolve to the lower run index (= combining order), preserving
  // last-writer-wins across runs.  In-order leaves make "left subtree ==
  // lower runs" hold, so one strict comparison per match suffices.
  void merge_runs(std::span<std::span<Op>> runs, std::size_t total) {
    scratch.clear();
    scratch.reserve(total);
    const std::size_t k = runs.size();
    if (k == 1) {
      for (Op* op = runs[0].front().sorted_head; op != nullptr;
           op = op->next_sorted) {
        scratch.push_back(op);
      }
      return;
    }
    Compare comp{};
    std::size_t m = 1;
    while (m < k) m <<= 1;  // leaf count, padded to a power of two
    CCDS_ASSERT(m <= 2 * kMaxThreads);
    Op* heads[2 * kMaxThreads];
    std::size_t tree[4 * kMaxThreads];  // tree[j]: winning run of match j
    for (std::size_t i = 0; i < m; ++i) {
      heads[i] = i < k ? runs[i].front().sorted_head : nullptr;
    }
    const auto match = [&](std::size_t a, std::size_t b) {
      Op* ha = heads[a];
      Op* hb = heads[b];
      if (ha == nullptr) return b;
      if (hb == nullptr) return a;
      // Strictly-smaller right head wins; ties go left (lower run index).
      return comp(hb->key, ha->key) ? b : a;
    };
    for (std::size_t j = m; j < 2 * m; ++j) tree[j] = j - m;
    for (std::size_t j = m - 1; j >= 1; --j) {
      tree[j] = match(tree[2 * j], tree[2 * j + 1]);
    }
    for (;;) {
      const std::size_t w = tree[1];
      Op* op = heads[w];
      if (op == nullptr) break;  // every run exhausted
      scratch.push_back(op);
      heads[w] = op->next_sorted;
      for (std::size_t j = (m + w) >> 1; j >= 1; j >>= 1) {
        tree[j] = match(tree[2 * j], tree[2 * j + 1]);
      }
    }
  }

  // Split the merged (ascending) op sequence at shard boundaries.  The
  // cursor only moves forward: cost is one comparison per op plus one per
  // crossed splitter — and zero comparisons with a single shard.
  void segment_scratch() {
    segs.clear();
    Compare comp{};
    std::size_t cursor = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      std::size_t sh = cursor;
      while (sh < splitters.size() && !comp(scratch[i]->key, splitters[sh])) {
        ++sh;
      }
      if (sh != cursor) {
        if (i > start) segs.push_back(Seg{start, i, cursor});
        cursor = sh;
        start = i;
      }
    }
    if (scratch.size() > start) {
      segs.push_back(Seg{start, scratch.size(), cursor});
    }
  }

  // Apply one shard's segment: walk the sorted ops with a finger (each key
  // resumes from the previous key's position), folding same-key groups —
  // every op's result slot is written, but the structure sees at most ONE
  // mutation per key (the group's net effect), so no intermediate state
  // ever materializes.  Returns the number of folded (non-first) ops.
  std::uint64_t apply_segment(const Seg& seg) {
    Seq& shard = *shards[seg.shard];
    typename Seq::Finger f = shard.finger();
    Compare comp{};
    std::uint64_t folded = 0;
    std::size_t i = seg.begin;
    while (i < seg.end) {
      Op* first = scratch[i];
      const Key& key = first->key;
      shard.seek(f, key);
      const bool initial = shard.found_at(f, key);
      // The group's live element image: the stored one initially, then the
      // key slot of the latest kInsert/kAssign that took effect.
      Key* stored = initial ? &shard.found_ref(f) : nullptr;
      const Key* current = stored;
      bool present = initial;
      std::size_t j = i;
      for (; j < seg.end; ++j) {
        Op* op = scratch[j];
        if (j > i && comp(key, op->key)) break;  // next key group
        switch (op->kind) {
          case Op::Kind::kContains:
            op->result = present;
            if (present) op->key = *current;
            break;
          case Op::Kind::kInsert:
            op->result = !present;
            if (!present) {
              current = &op->key;
              present = true;
            }
            break;
          case Op::Kind::kAssign:
            op->result = !present;
            current = &op->key;
            present = true;
            break;
          case Op::Kind::kErase:
            op->result = present;
            present = false;
            break;
        }
      }
      folded += (j - i) - 1;
      if (present != initial) {
        if (present) {
          shard.insert_new_at(f, *current);
        } else {
          shard.remove_found_at(f);
        }
      } else if (present && current != stored) {
        *stored = *current;  // net effect of a kAssign chain on a live key
      }
      i = j;
    }
    return folded;
  }

  std::vector<Key> splitters;
  std::vector<std::unique_ptr<Seq>> shards;
  BatchedSkipListStats stats;

  // Fan-out hook (type-erased so this header needs no executor type): set
  // by BatchedSkipListSet::attach_executor, called by the combiner with the
  // per-shard jobs of one batch.  Null = apply segments inline.
  void (*dispatch)(void* exec, SegJob* jobs, std::size_t n) = nullptr;
  void* exec = nullptr;
  std::size_t fanout_threshold = 256;

  // Combiner-owned scratch, reused across batches (helper threads only
  // read scratch/segs and write their own SegJob slot).
  std::vector<Op*> scratch;
  std::vector<Seg> segs;
  std::vector<SegJob> jobs;
};

}  // namespace detail

// The combining front.  Engine-templated exactly like the PR 4 fronts
// (CcSynch default, FlatCombiner drop-in); Levels picks the tower-height
// policy of the underlying sequential shards (kKeyed for deterministic
// shapes in ablations and model tests).
template <typename Key, typename Compare = std::less<Key>,
          template <typename> class Engine = CcSynch,
          SkipListLevels Levels = SkipListLevels::kRandom>
class BatchedSkipListSet {
 public:
  using State = detail::BatchedSkipState<Key, Compare, Levels>;
  using Op = typename State::Op;
  static_assert(CombinerFor<Engine<State>, State>,
                "Engine must model the Combiner policy (sync/combiner.hpp)");

  BatchedSkipListSet() = default;

  // Partition the key space at `splitters` (sorted/deduped internally):
  // one sequential shard per range, fan-out across them.
  explicit BatchedSkipListSet(std::vector<Key> splitters)
      : engine_(State(std::move(splitters))) {}

  bool contains(const Key& key) const {
    Op op = Op::contains(key);
    engine_.apply_sorted_batch(std::span<Op>(&op, 1));
    return op.result;
  }

  bool insert(const Key& key) {
    Op op = Op::insert(key);
    engine_.apply_sorted_batch(std::span<Op>(&op, 1));
    return op.result;
  }

  bool remove(const Key& key) {
    Op op = Op::erase(key);
    engine_.apply_sorted_batch(std::span<Op>(&op, 1));
    return op.result;
  }

  // Submit `ops` as ONE sorted batch: sorted + deduplicated by key
  // (last-writer-wins in submission order), applied in a single
  // left-to-right pass, atomic w.r.t. every other operation.  Results land
  // in each op's `result` (and `key` for kContains hits) in the caller's
  // original slot order.
  void apply_batch(std::span<Op> ops) { engine_.apply_sorted_batch(ops); }

  std::size_t size() const {
    return engine_.apply([](State& s) {
      std::size_t n = 0;
      for (const auto& sh : s.shards) n += sh->size();
      return n;
    });
  }

  std::size_t shard_count() const {
    return engine_.apply([](State& s) { return s.shards.size(); });
  }

  // Attach a helper-thread executor (e.g. StealingExecutor): batches of at
  // least the fan-out threshold whose merged run spans >1 shard are split
  // into per-shard sub-batches, bulk-submitted, and helped to completion.
  // The executor must outlive the attachment (detach before destroying it).
  template <typename Exec>
  void attach_executor(Exec& e) {
    Exec* ep = &e;
    engine_.apply_locked([ep](State& s) {
      s.exec = ep;
      s.dispatch = &dispatch_to<Exec>;
    });
  }

  void detach_executor() {
    engine_.apply_locked([](State& s) {
      s.exec = nullptr;
      s.dispatch = nullptr;
    });
  }

  // Minimum merged-batch size that triggers fan-out (default 256): below
  // it, dispatch overhead beats the parallelism.
  void set_fanout_threshold(std::size_t n) {
    engine_.apply_locked([n](State& s) { s.fanout_threshold = n; });
  }

  BatchedSkipListStats stats() const {
    return engine_.apply([](State& s) { return s.stats; });
  }

  void reset_stats() {
    engine_.apply_locked([](State& s) { s.stats = BatchedSkipListStats{}; });
  }

 private:
  // Type-erased fan-out trampoline: builds the executor's task span on the
  // stack, bulk-submits, and helps until done (the combiner making
  // progress on its own sub-batches is what keeps a 1-CPU host live).
  template <typename Exec>
  static void dispatch_to(void* exec, typename State::SegJob* jobs,
                          std::size_t n) {
    Exec& e = *static_cast<Exec*>(exec);
    typename Exec::Task tasks[kBatchedSkipListMaxShards];
    for (std::size_t i = 0; i < n; ++i) {
      tasks[i].fn = &State::SegJob::run;
      tasks[i].ctx = &jobs[i];
    }
    typename Exec::Latch latch;
    e.submit_bulk(std::span<typename Exec::Task>(tasks, n), latch);
    e.wait(latch);
  }

  // mutable: combining serializes logically-const reads through apply too.
  mutable Engine<State> engine_{};
};

}  // namespace ccds

// Sequential skip list set (Pugh 1990), plus a coarse-grained wrapper.
//
// The probabilistically-balanced baseline: expected O(log n) search/insert/
// remove with no rebalancing.  Used both standalone (sequential baseline in
// experiment E8) and under a single lock (coarse baseline).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "core/rng.hpp"

namespace ccds {

inline constexpr int kSkipListMaxLevel = 16;

// Geometric level draw, p = 1/2, capped at kSkipListMaxLevel.
inline int skiplist_random_level() noexcept {
  const std::uint64_t r = thread_rng().next();
  const int zeros = r == 0 ? 63 : __builtin_ctzll(r);
  return zeros >= kSkipListMaxLevel ? kSkipListMaxLevel : zeros + 1;
}

// Deterministic geometric level draw keyed on a hash of the element: the
// same key always gets the same tower height, so a set's shape is a pure
// function of its key set, independent of insertion order, thread
// interleaving, or churn history.  The E17 ablation harness uses this
// (SkipListLevels::kKeyed) to compare two variants on structurally
// identical sets — with RNG levels, remove/reinsert churn makes two
// long-lived sets drift apart structurally, and the resulting few-percent
// traversal-cost asymmetry is the same order as the effect under test.
// Mixer is splitmix64's finalizer (avalanches low bits, which ctz reads).
inline int skiplist_keyed_level(std::uint64_t h) noexcept {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const int zeros = h == 0 ? 63 : __builtin_ctzll(h);
  return zeros >= kSkipListMaxLevel ? kSkipListMaxLevel : zeros + 1;
}

template <typename Key, typename Compare = std::less<Key>>
class SeqSkipListSet {
 public:
  SeqSkipListSet() : head_(new Node{}) {}
  SeqSkipListSet(const SeqSkipListSet&) = delete;
  SeqSkipListSet& operator=(const SeqSkipListSet&) = delete;

  ~SeqSkipListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  bool contains(const Key& key) const {
    Node* pred = head_;
    for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
      Node* curr = pred->next[level];
      while (curr != nullptr && comp_(curr->key, key)) {
        pred = curr;
        curr = curr->next[level];
      }
    }
    Node* curr = pred->next[0];
    return curr != nullptr && !comp_(key, curr->key);
  }

  bool insert(const Key& key) {
    Node* preds[kSkipListMaxLevel];
    Node* pred = head_;
    for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
      Node* curr = pred->next[level];
      while (curr != nullptr && comp_(curr->key, key)) {
        pred = curr;
        curr = curr->next[level];
      }
      preds[level] = pred;
    }
    Node* curr = pred->next[0];
    if (curr != nullptr && !comp_(key, curr->key)) return false;

    const int height = skiplist_random_level();
    Node* n = new Node{};
    n->key = key;
    n->height = height;
    for (int level = 0; level < height; ++level) {
      n->next[level] = preds[level]->next[level];
      preds[level]->next[level] = n;
    }
    ++size_;
    return true;
  }

  bool remove(const Key& key) {
    Node* preds[kSkipListMaxLevel];
    Node* pred = head_;
    for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
      Node* curr = pred->next[level];
      while (curr != nullptr && comp_(curr->key, key)) {
        pred = curr;
        curr = curr->next[level];
      }
      preds[level] = pred;
    }
    Node* victim = pred->next[0];
    if (victim == nullptr || comp_(key, victim->key)) return false;
    for (int level = 0; level < victim->height; ++level) {
      if (preds[level]->next[level] == victim) {
        preds[level]->next[level] = victim->next[level];
      }
    }
    delete victim;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }

 private:
  struct Node {
    Key key{};
    int height = kSkipListMaxLevel;  // head default: full height
    Node* next[kSkipListMaxLevel] = {};
  };

  Node* const head_;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare comp_{};
};

// Coarse-grained skip list: the sequential structure under one lock.
template <typename Key, typename Compare = std::less<Key>,
          typename Lock = std::mutex>
class CoarseSkipListSet {
 public:
  bool contains(const Key& key) const {
    std::lock_guard<Lock> g(lock_);
    return impl_.contains(key);
  }
  bool insert(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    return impl_.insert(key);
  }
  bool remove(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    return impl_.remove(key);
  }
  std::size_t size() const {
    std::lock_guard<Lock> g(lock_);
    return impl_.size();
  }

 private:
  mutable Lock lock_;
  SeqSkipListSet<Key, Compare> impl_;
};

}  // namespace ccds

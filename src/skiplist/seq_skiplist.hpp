// Sequential skip list set (Pugh 1990), plus a coarse-grained wrapper.
//
// The probabilistically-balanced baseline: expected O(log n) search/insert/
// remove with no rebalancing.  Used standalone (sequential baseline in
// experiment E8), under a single lock (coarse baseline), and as the
// per-range sequential structure behind BatchedSkipListSet, which drives it
// through the Finger API below.
//
// FINGER SEARCH (Pugh's "search fingers"): a Finger remembers the
// predecessor tower of the last sought key.  seek() repositions it to a
// NON-DECREASING next key by ascending from the bottom level only as high
// as the key distance requires, then descending with movement — expected
// O(log d) comparisons for a gap of d elements instead of O(log n) from the
// head.  That is what makes sorted-batch application O(B + B log(N/B)): the
// batch pays one head descent and then B-1 short hops.
//
// Finger contract (single-threaded, like the rest of this class):
//   * finger() returns a fresh finger positioned before every key;
//   * seek(f, k) requires k >= every previously sought key on f (any
//     Compare order); after it, found_at/insert_new_at/remove_found_at may
//     be called for k;
//   * any mutation NOT made through a finger invalidates it (the finger
//     may hold dangling predecessor pointers) — re-create instead.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "core/rng.hpp"

namespace ccds {

inline constexpr int kSkipListMaxLevel = 16;

// Geometric level draw, p = 1/2, capped at kSkipListMaxLevel.
inline int skiplist_random_level() noexcept {
  const std::uint64_t r = thread_rng().next();
  const int zeros = r == 0 ? 63 : __builtin_ctzll(r);
  return zeros >= kSkipListMaxLevel ? kSkipListMaxLevel : zeros + 1;
}

// Deterministic geometric level draw keyed on a hash of the element: the
// same key always gets the same tower height, so a set's shape is a pure
// function of its key set, independent of insertion order, thread
// interleaving, or churn history.  The E17 ablation harness uses this
// (SkipListLevels::kKeyed) to compare two variants on structurally
// identical sets — with RNG levels, remove/reinsert churn makes two
// long-lived sets drift apart structurally, and the resulting few-percent
// traversal-cost asymmetry is the same order as the effect under test.
// Mixer is splitmix64's finalizer (avalanches low bits, which ctz reads).
inline int skiplist_keyed_level(std::uint64_t h) noexcept {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const int zeros = h == 0 ? 63 : __builtin_ctzll(h);
  return zeros >= kSkipListMaxLevel ? kSkipListMaxLevel : zeros + 1;
}

// Hash used by kKeyed tower draws.  Defaults to std::hash; element types
// without one (e.g. BatchedMap entries, whose identity is the key half)
// specialize this instead of std::hash.
template <typename T>
struct SkipListKeyHash {
  std::uint64_t operator()(const T& v) const {
    return static_cast<std::uint64_t>(std::hash<T>{}(v));
  }
};

// Tower-height policy: kRandom draws from the per-thread RNG (default);
// kKeyed derives the height from std::hash of the key, so towers are
// reproducible and a set's shape depends only on which keys it holds.
// Benchmarks that compare variants on separate long-lived sets use kKeyed
// to keep the sets structurally identical under churn; the model tests use
// it to keep explored schedules replayable (no RNG in the explored code).
enum class SkipListLevels { kRandom, kKeyed };

template <typename Key, typename Compare = std::less<Key>,
          SkipListLevels Levels = SkipListLevels::kRandom>
class SeqSkipListSet {
  struct Node;

 public:
  SeqSkipListSet() : head_(new Node{}) {}

  // Deep copy preserving every tower height (so the copy's shape — and
  // therefore its traversal costs — is identical to the source's, even
  // under SkipListLevels::kRandom).  One bottom-level walk with a per-level
  // tail array: append each cloned node to the levels its height spans.
  // PSim-backed batched structures copy-construct their state per episode
  // through this.
  SeqSkipListSet(const SeqSkipListSet& o)
      : head_(new Node{}),
        size_(o.size_),
        level_(o.level_),
        comp_(o.comp_) {
    Node* tails[kSkipListMaxLevel];
    for (int l = 0; l < kSkipListMaxLevel; ++l) tails[l] = head_;
    for (Node* n = o.head_->next[0]; n != nullptr; n = n->next[0]) {
      Node* c = new Node{};
      c->key = n->key;
      c->height = n->height;
      for (int l = 0; l < n->height; ++l) {
        tails[l]->next[l] = c;
        tails[l] = c;
      }
    }
  }

  SeqSkipListSet& operator=(const SeqSkipListSet&) = delete;

  ~SeqSkipListSet() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  bool contains(const Key& key) const {
    Node* pred = head_;
    for (int level = level_ - 1; level >= 0; --level) {
      Node* curr = pred->next[level];
      while (curr != nullptr && comp_(curr->key, key)) {
        pred = curr;
        curr = curr->next[level];
      }
    }
    Node* curr = pred->next[0];
    return curr != nullptr && !comp_(key, curr->key);
  }

  bool insert(const Key& key) {
    Finger f = finger();
    seek(f, key);
    if (found_at(f, key)) return false;
    insert_new_at(f, key);
    return true;
  }

  bool remove(const Key& key) {
    Finger f = finger();
    seek(f, key);
    if (!found_at(f, key)) return false;
    remove_found_at(f);
    return true;
  }

  std::size_t size() const { return size_; }

  // A saved search position: preds[l] is a node strictly before the last
  // sought key at level l, exact (rightmost such node) for l <= top_.
  class Finger {
    friend SeqSkipListSet;
    Node* preds_[kSkipListMaxLevel];
    int top_ = -1;  // -1: fresh (no key sought yet; preds are all head)
  };

  Finger finger() const {
    Finger f;
    for (int l = 0; l < kSkipListMaxLevel; ++l) f.preds_[l] = head_;
    return f;
  }

  // Reposition `f` to `key` (>= every key previously sought on `f`).  A
  // fresh finger takes the classic top-down descent from the list's top
  // occupied level; a placed finger ascends only while the next level still
  // falls short of the key, then descends — O(log d) for a gap of d.
  void seek(Finger& f, const Key& key) const {
    Node* nxt = f.preds_[0]->next[0];
    if (nxt == nullptr || !comp_(nxt->key, key)) {
      // Already positioned: the bottom-level successor is >= key, so the
      // bottom pred is exact; upper levels may be stale-left (extend_exact
      // refreshes the ones a mutation needs).
      f.top_ = 0;
      return;
    }
    int lvl = 0;
    // Whether preds_[lvl]->next[lvl] is already known < key, letting the
    // descent take its first step at that level without re-comparing.
    bool first_step_known = true;
    if (f.top_ < 0) {
      lvl = level_ - 1;  // fresh finger: no position to ascend from
      first_step_known = lvl == 0;
    } else {
      while (lvl + 1 < level_) {
        Node* up = f.preds_[lvl + 1]->next[lvl + 1];
        if (up == nullptr || !comp_(up->key, key)) break;
        ++lvl;
      }
    }
    Node* p = f.preds_[lvl];
    for (int l = lvl; l >= 0; --l) {
      Node* c = p->next[l];
      if (first_step_known) {
        p = c;
        c = c->next[l];
        first_step_known = false;
      }
      while (c != nullptr && comp_(c->key, key)) {
        p = c;
        c = c->next[l];
      }
      f.preds_[l] = p;
    }
    f.top_ = lvl;
  }

  // Presence of `key` at a finger positioned by seek(f, key).
  bool found_at(const Finger& f, const Key& key) const {
    Node* c = f.preds_[0]->next[0];
    return c != nullptr && !comp_(key, c->key);
  }

  // Mutable access to the stored element found at the finger.
  // Precondition: found_at is true.  Callers may only modify it in ways
  // that preserve its ordering under Compare (e.g. the value half of a
  // map entry ordered by key) — anything else corrupts the list.
  Key& found_ref(const Finger& f) { return f.preds_[0]->next[0]->key; }

  // Splice `key` in at the finger.  Precondition: seek(f, key) ran and
  // found_at(f, key) is false.
  void insert_new_at(Finger& f, const Key& key) {
    const int height = draw_level(key);
    extend_exact(f, key, height - 1);
    Node* n = new Node{};
    n->key = key;
    n->height = height;
    for (int l = 0; l < height; ++l) {
      n->next[l] = f.preds_[l]->next[l];
      f.preds_[l]->next[l] = n;
    }
    if (height > level_) level_ = height;
    ++size_;
  }

  // Unlink the found node at the finger.  Precondition: seek(f, key) ran
  // and found_at(f, key) is true.  The finger stays valid (its preds are
  // never the victim).
  void remove_found_at(Finger& f) {
    Node* victim = f.preds_[0]->next[0];
    extend_exact(f, victim->key, victim->height - 1);
    for (int l = 0; l < victim->height; ++l) {
      if (f.preds_[l]->next[l] == victim) {
        f.preds_[l]->next[l] = victim->next[l];
      }
    }
    delete victim;
    --size_;
  }

 private:
  // Make preds_[l] exact (rightmost node < key) for every level <= upto.
  // Levels are independent: any stale-left predecessor reaches the exact
  // one by advancing while its successor is still < key.
  void extend_exact(Finger& f, const Key& key, int upto) const {
    for (int l = f.top_ + 1; l <= upto; ++l) {
      Node* p = f.preds_[l];
      Node* c = p->next[l];
      while (c != nullptr && comp_(c->key, key)) {
        p = c;
        c = c->next[l];
      }
      f.preds_[l] = p;
    }
    if (upto > f.top_) f.top_ = upto;
  }

  // Tower height per the Levels knob (header comment on kKeyed).
  static int draw_level(const Key& key) noexcept {
    if constexpr (Levels == SkipListLevels::kKeyed) {
      return skiplist_keyed_level(SkipListKeyHash<Key>{}(key));
    } else {
      return skiplist_random_level();
    }
  }

  struct Node {
    Key key{};
    int height = kSkipListMaxLevel;  // head default: full height
    Node* next[kSkipListMaxLevel] = {};
  };

  Node* const head_;
  std::size_t size_ = 0;
  // Top occupied level count: descents skip the empty levels above it.
  // Grows on insert, never shrinks (a removal leaving a level empty is
  // rare and harmless: the descent pays one null check).
  int level_ = 1;
  [[no_unique_address]] Compare comp_{};
};

// Coarse-grained skip list: the sequential structure under one lock.
template <typename Key, typename Compare = std::less<Key>,
          typename Lock = std::mutex>
class CoarseSkipListSet {
 public:
  bool contains(const Key& key) const {
    std::lock_guard<Lock> g(lock_);
    return impl_.contains(key);
  }
  bool insert(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    return impl_.insert(key);
  }
  bool remove(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    return impl_.remove(key);
  }
  std::size_t size() const {
    std::lock_guard<Lock> g(lock_);
    return impl_.size();
  }

 private:
  mutable Lock lock_;
  SeqSkipListSet<Key, Compare> impl_;
};

}  // namespace ccds

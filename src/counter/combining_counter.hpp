// Combining-backed fetch-and-add counter front.
//
// Unlike ShardedCounter (statistical: exact reads only at quiescence) this
// front keeps a single linearizable counter word and relies on a combining
// engine (CcSynch by default, FlatCombiner drop-in — sync/combiner.hpp) to
// make it scale: the combiner absorbs convoys of increments in one episode,
// so each fetch_add costs one exchange rather than one contended RMW on a
// hot line.  A hardware fetch_add is still faster at low thread counts
// (EXPERIMENTS.md E16 charts the crossover); the interesting property here
// is that priors remain unique and totally ordered — the linearizability
// witness the batch interface preserves too.
//
// apply_batch(span<CounterOp>) submits k adds/reads as one combining
// request: they execute back-to-back (priors are consecutive) with no
// foreign operation interleaved.
#pragma once

#include <cstdint>
#include <span>

#include "sync/ccsynch.hpp"
#include "sync/combiner.hpp"

namespace ccds {

// One counter operation for the batch interface (delta 0 == pure read).
struct CounterOp {
  static CounterOp add(std::uint64_t d) { return {d, 0}; }
  static CounterOp read() { return {0, 0}; }

  void operator()(std::uint64_t& v) {
    prior = v;
    v += delta;
  }

  std::uint64_t delta = 0;
  std::uint64_t prior = 0;  // value observed just before this op applied
};

template <template <typename> class Engine = CcSynch>
class CombiningCounter {
  using State = std::uint64_t;
  static_assert(CombinerFor<Engine<State>, State>,
                "Engine must model the Combiner policy (sync/combiner.hpp)");

 public:
  CombiningCounter() = default;
  explicit CombiningCounter(std::uint64_t initial) : engine_(initial) {}

  std::uint64_t fetch_add(std::uint64_t d = 1) {
    return engine_.apply([d](State& v) {
      const State prior = v;
      v += d;
      return prior;
    });
  }

  std::uint64_t load() const {
    return engine_.apply([](State& v) { return v; });
  }

  // Execute all of `ops` as one combining request (in span order).
  void apply_batch(std::span<CounterOp> ops) { engine_.apply_batch(ops); }

 private:
  // mutable: combining serializes logically-const reads through apply too.
  mutable Engine<State> engine_;
};

}  // namespace ccds

// Shared counters: the survey's opening example of the contention spectrum.
//
//   LockCounter<Lock>  — coarse-grained baseline; every increment serializes.
//   AtomicCounter      — single fetch_add word; hardware-arbitrated, still a
//                        single contended cache line.
//   ShardedCounter     — per-thread stripes; increments are uncontended and
//                        relaxed, reads sum the stripes (a "statistical"
//                        counter: reads are linearizable only at quiescence,
//                        like folly's ThreadCachedInt / Java's LongAdder).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

// Coarse-grained counter protected by any BasicLockable.
template <typename Lock = std::mutex>
class LockCounter {
 public:
  std::uint64_t fetch_add(std::uint64_t d = 1) noexcept {
    std::lock_guard<Lock> g(lock_);
    const std::uint64_t prior = value_;
    value_ += d;
    return prior;
  }

  std::uint64_t load() const noexcept {
    std::lock_guard<Lock> g(lock_);
    return value_;
  }

 private:
  mutable Lock lock_;
  std::uint64_t value_ = 0;
};

// Single atomic word.
class AtomicCounter {
 public:
  std::uint64_t fetch_add(std::uint64_t d = 1) noexcept {
    // relaxed: a pure counter carries no dependent data; tests that need
    // happens-before pair it with explicit fences or use load(acquire) via
    // exact_load below.  The RMW itself is still atomic and totally ordered
    // per-location, which is all a counter needs.
    return value_.fetch_add(d, std::memory_order_relaxed);
  }

  std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);  // relaxed: approximate read by contract
  }

 private:
  CCDS_CACHELINE_ALIGNED std::atomic<std::uint64_t> value_{0};
};

// Striped counter: per-thread cache-line-private cells.  fetch-and-add
// semantics are NOT provided (no single total order across stripes); this is
// an increment/read-sum counter, which is what hit counters, metrics and
// allocator statistics actually need.
class ShardedCounter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    stripes_[thread_id()]->fetch_add(d, std::memory_order_relaxed);  // relaxed: per-thread stripe, atomicity only
  }

  // Sum of all stripes.  Each stripe is read atomically; the total is exact
  // once writers are quiescent and a consistent lower bound while they run.
  std::uint64_t load() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) {
      sum += s->load(std::memory_order_relaxed);  // relaxed: statistical sum, tolerates skew
    }
    return sum;
  }

 private:
  Padded<std::atomic<std::uint64_t>> stripes_[kMaxThreads] = {};
};

}  // namespace ccds

// Software combining tree counter (Goodman, Vernon & Woest; presentation
// follows Herlihy & Shavit, "The Art of Multiprocessor Programming" ch. 12).
//
// Threads climb a binary tree from per-pair leaves; when two threads meet at
// a node, the second parks and the first carries the *combined* increment
// upward, so a single RMW at the root can apply many increments.  Latency of
// an individual increment is O(log n) node handoffs — worse than fetch_add —
// but total root contention is O(n / combining-factor): the classic
// latency-for-scalability trade (experiment E13).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/arch.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

class CombiningTreeCounter {
 public:
  CombiningTreeCounter() : nodes_(2 * kLeaves - 1) {
    nodes_[0].status = Node::kRoot;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      nodes_[i].parent = &nodes_[(i - 1) / 2];
    }
    for (std::size_t i = 0; i < kLeaves; ++i) {
      leaf_[i] = &nodes_[kLeaves - 1 + i];
    }
  }

  // Atomically add `d`, returning the prior value (fetch-and-add semantics —
  // unlike ShardedCounter, increments here are totally ordered).
  std::uint64_t fetch_add(std::uint64_t d = 1) {
    Node* leaf = leaf_[thread_id() / 2];

    // Precombining phase: climb while we are the FIRST arrival at each node;
    // stop at the first node where a partner already claimed FIRST (we
    // become its SECOND) or at the root.
    Node* node = leaf;
    while (node->precombine()) node = node->parent;
    Node* stop = node;

    // Combining phase: re-walk leaf -> stop, accumulating any partner
    // contributions deposited at the nodes we own.  Tree depth is log2 of
    // kLeaves, so a fixed path array avoids per-increment allocation.
    std::uint64_t combined = d;
    Node* path[kDepth];
    std::size_t depth = 0;
    for (Node* n = leaf; n != stop; n = n->parent) {
      combined = n->combine(combined);
      path[depth++] = n;
    }

    // Operation phase: apply the combined delta at the stop node (root: do
    // the arithmetic; interior: deposit for the partner and wait for result).
    const std::uint64_t prior = stop->op(combined);

    // Distribution phase: walk back down, handing each waiting partner its
    // slice of the result.
    while (depth > 0) path[--depth]->distribute(prior);
    return prior;
  }

  std::uint64_t load() {
    std::lock_guard<std::mutex> g(nodes_[0].m);
    return nodes_[0].result;
  }

 private:
  struct Node {
    enum Status { kIdle, kFirst, kSecond, kResult, kRoot };

    std::mutex m;
    std::condition_variable cv;
    Status status = kIdle;
    bool locked = false;
    std::uint64_t first_value = 0;
    std::uint64_t second_value = 0;
    std::uint64_t result = 0;
    Node* parent = nullptr;

    // Returns true if the caller should keep climbing (it is the first
    // arrival here); false if it must stop (partner present, or root).
    bool precombine() {
      std::unique_lock<std::mutex> l(m);
      cv.wait(l, [&] { return !locked; });
      switch (status) {
        case kIdle:
          status = kFirst;
          return true;
        case kFirst:
          // A later phase of us-as-first is pending; the caller becomes the
          // passive second party and stops climbing here.
          locked = true;
          status = kSecond;
          return false;
        case kRoot:
          return false;
        default:
          assert_fail("combining tree: bad precombine status", __FILE__,
                      __LINE__);
      }
    }

    // Active thread passing through: lock the node, deposit its accumulated
    // value, and pick up the partner's value if one parked here.
    std::uint64_t combine(std::uint64_t combined) {
      std::unique_lock<std::mutex> l(m);
      cv.wait(l, [&] { return !locked; });
      locked = true;
      first_value = combined;
      switch (status) {
        case kFirst:
          return combined;
        case kSecond:
          return combined + second_value;
        default:
          assert_fail("combining tree: bad combine status", __FILE__,
                      __LINE__);
      }
    }

    std::uint64_t op(std::uint64_t combined) {
      std::unique_lock<std::mutex> l(m);
      switch (status) {
        case kRoot: {
          const std::uint64_t prior = result;
          result += combined;
          return prior;
        }
        case kSecond: {
          // Passive party: deposit our value, wake the active partner
          // (blocked in combine() on `locked`), then wait for our result.
          second_value = combined;
          locked = false;
          cv.notify_all();
          cv.wait(l, [&] { return status == kResult; });
          locked = false;
          status = kIdle;
          cv.notify_all();
          return result;
        }
        default:
          assert_fail("combining tree: bad op status", __FILE__, __LINE__);
      }
    }

    void distribute(std::uint64_t prior) {
      std::unique_lock<std::mutex> l(m);
      switch (status) {
        case kFirst:
          // No partner showed up: just reopen the node.
          status = kIdle;
          locked = false;
          break;
        case kSecond:
          // Partner's increments were ordered after ours within the batch.
          result = prior + first_value;
          status = kResult;
          break;
        default:
          assert_fail("combining tree: bad distribute status", __FILE__,
                      __LINE__);
      }
      cv.notify_all();
    }
  };

  // One leaf per pair of thread ids, padded up to a power of two.
  static constexpr std::size_t kLeaves = 64;
  static constexpr std::size_t kDepth = 7;  // log2(kLeaves) + 1
  static_assert(kLeaves * 2 >= kMaxThreads);
  static_assert((std::size_t{1} << (kDepth - 1)) == kLeaves);

  std::vector<Node> nodes_;
  Node* leaf_[kLeaves];
};

}  // namespace ccds

// Bitonic counting network (Aspnes, Herlihy, Shavit 1991; presentation
// follows Herlihy & Shavit ch. 12).
//
// A network of 2-input/2-output *balancers*: each balancer forwards
// alternate tokens to its top and bottom wires.  The bitonic wiring
// guarantees the *step property* on the output wires — token counts across
// output wires differ by at most one, with the excess on the lowest wires —
// so attaching a counter to wire k that hands out k, k+w, k+2w, ... yields
// a shared counter whose RMW traffic is spread across w*log^2(w)/2 toggles
// instead of one hot word.
//
// The trade: counting networks are *quiescently consistent*, not
// linearizable — values handed out concurrently may not respect real-time
// order (each value is still handed out exactly once).  Perfect for ticket
// dispensers and load balancing; wrong for a sequence-number generator.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

namespace detail {

// One balancer: alternates tokens between output 0 and output 1.
class Balancer {
 public:
  int traverse() noexcept {
    // Each toggle is an independent RMW word; acq_rel keeps toggles of one
    // token ordered with the counters at the wires.
    return static_cast<int>(toggle_.fetch_xor(1, std::memory_order_acq_rel));
  }

 private:
  CCDS_CACHELINE_ALIGNED std::atomic<std::uint32_t> toggle_{0};
};

// Bitonic merger M[w]: merges two step sequences of width w/2 into one of
// width w.  M_even takes the even wires of the first input and odd wires of
// the second; M_odd the complement; one final balancer layer interleaves.
class Merger {
 public:
  explicit Merger(int width) : width_(width), layer_(width / 2) {
    if (width > 2) {
      even_ = std::make_unique<Merger>(width / 2);
      odd_ = std::make_unique<Merger>(width / 2);
    }
  }

  // `input` in [0, width): first half are x-wires, second half y-wires.
  int traverse(int input) noexcept {
    if (width_ == 2) {
      return layer_[0].traverse();
    }
    const int half = width_ / 2;
    int sub_output;
    if (input < half) {               // x-wire j = input
      const int j = input;
      Merger* sub = (j % 2 == 0) ? even_.get() : odd_.get();
      sub_output = sub->traverse(j / 2);  // x-side position
    } else {                          // y-wire j = input - half
      const int j = input - half;
      Merger* sub = (j % 2 == 1) ? even_.get() : odd_.get();
      sub_output = sub->traverse(half / 2 + j / 2);  // y-side position
    }
    // Final layer: balancer k interleaves sub-merger output k into wires
    // 2k / 2k+1.
    return 2 * sub_output + layer_[sub_output].traverse();
  }

 private:
  const int width_;
  std::unique_ptr<Merger> even_;
  std::unique_ptr<Merger> odd_;
  std::vector<Balancer> layer_;
};

// Bitonic[w]: two Bitonic[w/2] halves feeding a Merger[w].
class Bitonic {
 public:
  explicit Bitonic(int width) : width_(width), merger_(width) {
    if (width > 2) {
      upper_ = std::make_unique<Bitonic>(width / 2);
      lower_ = std::make_unique<Bitonic>(width / 2);
    }
  }

  int traverse(int input) noexcept {
    if (width_ == 2) {
      return merger_.traverse(input);
    }
    const int half = width_ / 2;
    int wire;
    if (input < half) {
      wire = upper_->traverse(input);          // becomes merger x-wire
    } else {
      wire = half + lower_->traverse(input - half);  // merger y-wire
    }
    return merger_.traverse(wire);
  }

 private:
  const int width_;
  std::unique_ptr<Bitonic> upper_;
  std::unique_ptr<Bitonic> lower_;
  Merger merger_;
};

}  // namespace detail

// Shared counter on a bitonic counting network of width `Width` (power of
// two).  fetch_add(1)-style interface; each call returns a unique value.
// Quiescently consistent (see file comment), NOT linearizable.
template <int Width = 8>
class CountingNetworkCounter {
  static_assert(Width >= 2 && (Width & (Width - 1)) == 0,
                "width must be a power of two");

 public:
  CountingNetworkCounter() : network_(Width) {
    for (int k = 0; k < Width; ++k) {
      // relaxed: constructor; the network is unpublished.
      wire_counters_[k]->store(static_cast<std::uint64_t>(k),
                               std::memory_order_relaxed);
    }
  }

  // Returns a unique value; over any quiescent prefix the returned values
  // are exactly {0, 1, ..., n-1}.
  std::uint64_t next() noexcept {
    // Enter on a wire derived from the thread id to spread input load.
    const int wire =
        network_.traverse(static_cast<int>(thread_id() % Width));
    return wire_counters_[wire]->fetch_add(Width, std::memory_order_acq_rel);
  }

  // Total tokens that have traversed (exact at quiescence).
  std::uint64_t issued() const noexcept {
    std::uint64_t total = 0;
    for (int k = 0; k < Width; ++k) {
      const std::uint64_t v =
          wire_counters_[k]->load(std::memory_order_acquire);
      total += (v - static_cast<std::uint64_t>(k)) / Width;
    }
    return total;
  }

 private:
  detail::Bitonic network_;
  Padded<std::atomic<std::uint64_t>> wire_counters_[Width] = {};
};

}  // namespace ccds

// Hazard pointers (Michael 2004) with asymmetric-fence read paths.
//
// A reader publishes the pointer it is about to dereference in a per-thread
// hazard slot and re-validates the source; a reclaimer only frees a retired
// node if no thread's hazard slots contain it.  Gives per-object, bounded
// memory overhead.
//
// The classic algorithm pays a store+FULL-FENCE+reload on every protected
// read (the store-load Dekker between publication and the reclaimer's scan).
// Here the default protocol is ASYMMETRIC (folly/hazptr technique): the
// reader publishes with a release store plus asymmetric_light() — a
// compiler-only barrier, i.e. a plain store on x86/ARM, wherever membarrier
// backs the heavy side; on fallback platforms the light barrier is a real
// seq_cst fence and the pair degrades to the classic symmetric protocol
// (core/asymmetric_fence.hpp) — and scan() pays the whole ordering cost
// once per reclamation batch with a process-wide heavy barrier.
// Correctness on the membarrier path: after asymmetric_heavy()
// returns, for every reader either (a) its hazard publication is visible to
// this scan, so the node is kept, or (b) the reader's publication comes
// after the barrier, in which case the reclaimer's earlier unlink is
// visible to the reader's program-order-later validating re-read, which
// therefore fails and the reader never dereferences the retired node.
// `Asymmetric = false` keeps the classic fully-fenced protocol — the
// before/after baseline for bench_reclaim and the ablation suite.
//
// Usage discipline: one live Guard per thread per domain at a time (ccds
// structures create exactly one per operation); the guard's slot indices are
// the structure's to manage (e.g. Harris-Michael lists use 3 slots for
// prev/curr/next).
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/arch.hpp"
#include "core/asymmetric_fence.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <std::size_t ScanThreshold = 256,
          bool Asymmetric = kAsymmetricFencesAllowed, std::size_t Slots = 8>
class BasicHazardDomain {
  static_assert(Slots >= 1 && Slots <= 64,
                "the guard's dirty mask is a single 64-bit word");
  static_assert(!Asymmetric || kAsymmetricFencesAllowed,
                "asymmetric-fence hazard domain selected in a build where "
                "asymmetric fences are unsound (CCDS_TSAN_SOUND): use the "
                "default Asymmetric=kAsymmetricFencesAllowed or the "
                "SeqCst* alias");

 public:
  // Hazard slots per thread.  The default 8 covers the flat structures
  // (Harris-Michael traversal peaks at 3 live protections); skip lists
  // need a preds/succs pair per level plus scratch — see WideHazardDomain.
  static constexpr std::size_t kSlots = Slots;

  // Pointer-based protection (reclaim/reclaim.hpp): ONLY the pointers
  // published in guard slots are safe to dereference; structures must run
  // their hand-over-hand protect-and-validate traversals against this
  // domain.
  static constexpr bool kPointerBased = true;

  class Guard {
   public:
    explicit Guard(BasicHazardDomain& d) noexcept
        : dom_(&d), hp_(d.hazards_[thread_id()].value.slot) {}

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    // Only slots this guard actually published are cleared: short read-side
    // sections touch 1-3 of the 8 slots, and unconditional clearing would
    // charge them 8 stores of fixed overhead per operation.
    ~Guard() {
      std::uint64_t used = used_;
      while (used != 0) {
        const auto i = static_cast<std::size_t>(std::countr_zero(used));
        hp_[i].store(nullptr, std::memory_order_release);
        used &= used - 1;
      }
    }

    // Protect the pointer currently stored in `src`: publish-and-validate
    // loop.  On return the referent cannot be freed while this slot holds it.
    template <typename Atom>
    auto protect(std::size_t slot, const Atom& src) noexcept {
      CCDS_ASSERT(slot < kSlots);
      used_ |= 1ull << slot;
      auto p = src.load(std::memory_order_acquire);
      for (;;) {
        if constexpr (Asymmetric) {
          // release + light barrier: a plain store where membarrier backs
          // scan()'s asymmetric_heavy(), which then supplies the
          // store-load ordering against the slot sweep; on fallback
          // platforms the light barrier is itself a full fence (symmetric
          // protocol — see core/asymmetric_fence.hpp).
          // The validating load needs only acquire — if it reads a stale
          // (pre-unlink) value, the publication store precedes the heavy
          // barrier and the scan keeps the node.
          hp_[slot].store(p, std::memory_order_release);
          asymmetric_light();
        } else {
          // asymmetric: OFF — classic Michael protocol kept as the fenced
          // baseline; the seq_cst store/load pair makes the publication
          // globally visible before the re-read on its own.
          hp_[slot].store(p, std::memory_order_seq_cst);
        }
        auto q = src.load(Asymmetric ? std::memory_order_acquire
                                     : std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    // Assert protection of an already-read pointer WITHOUT validation.
    // Sound only when the caller re-validates its source afterwards (that
    // re-check is the validating load of the same asymmetric Dekker as
    // protect()) or when `p` is already protected by another slot of this
    // guard (slot-to-slot handover).
    template <typename T>
    void protect_raw(std::size_t slot, T* p) noexcept {
      CCDS_ASSERT(slot < kSlots);
      used_ |= 1ull << slot;
      if constexpr (Asymmetric) {
        hp_[slot].store(p, std::memory_order_release);
        asymmetric_light();
      } else {
        // asymmetric: OFF — fenced baseline (see protect()).
        hp_[slot].store(p, std::memory_order_seq_cst);
      }
    }

    template <typename T>
    void set(std::size_t slot, T* p) noexcept {  // legacy alias
      protect_raw(slot, p);
    }

    void clear(std::size_t slot) noexcept {
      CCDS_ASSERT(slot < kSlots);
      // release: the clearing must not float above the last dereference.
      hp_[slot].store(nullptr, std::memory_order_release);
      used_ &= ~(1ull << slot);
    }

   private:
    BasicHazardDomain* dom_;
    Atomic<void*>* hp_;
    std::uint64_t used_ = 0;  // bitmask of slots published by this guard
  };

  Guard guard() noexcept { return Guard(*this); }

  // Hand over a detached node; freed by some later scan() once unhazarded.
  template <typename T>
  void retire(T* p) {
    auto& bag = retired_[thread_id()].value;
    bag.push_back({p, [](void* q) { delete static_cast<T*>(q); }});
    if (bag.size() >= kScanThreshold) scan(bag);
  }

  // Force a reclamation pass over the calling thread's retired bag.
  void collect() { scan(retired_[thread_id()].value); }

  // Reclamation pass over EVERY thread's bag.  Only safe at quiescence (no
  // concurrent retire calls) — e.g. after joining workers in tests, or in a
  // structure's maintenance path while externally synchronized.
  void collect_all() {
    for (auto& bag : retired_) scan(bag.value);
  }

  // Retired-but-not-yet-freed node count (accurate only at quiescence).
  std::size_t retired_count() const {
    std::size_t n = 0;
    for (const auto& bag : retired_) n += bag->size();
    return n;
  }

  ~BasicHazardDomain() {
    // Caller guarantees quiescence at destruction; free everything left.
    // Deleters may retire() further nodes mid-teardown (they land in the
    // destructing thread's bag, possibly one already visited), so drain to
    // a fixpoint, popping each record before running its deleter.
    for (bool again = true; again;) {
      again = false;
      for (auto& bag : retired_) {
        while (!bag->empty()) {
          again = true;
          Retired r = bag->back();
          bag->pop_back();
          r.del(r.ptr);
        }
      }
    }
  }

  BasicHazardDomain() = default;
  BasicHazardDomain(const BasicHazardDomain&) = delete;
  BasicHazardDomain& operator=(const BasicHazardDomain&) = delete;

 private:
  struct HpRecord {
    Atomic<void*> slot[kSlots]{};
  };
  struct Retired {
    void* ptr;
    void (*del)(void*);
  };
  // Per-thread scratch for scan(): reused across passes so steady-state
  // reclamation performs no allocation (the vectors keep their capacity).
  // `in_scan` is the reentrancy latch: a deleter run by scan() may itself
  // retire() on this domain and cross the threshold, and a nested scan()
  // would clear/swap the very vectors the outer pass is iterating.
  struct Scratch {
    std::vector<void*> hazards;
    std::vector<Retired> work;
    bool in_scan = false;
  };

  // Scan threshold: amortizes the O(H) hazard sweep — and, in the
  // asymmetric protocol, the process-wide heavy barrier — over many
  // retirements (Michael recommends >= 2*H).  Template parameter so the
  // ablation bench can sweep it; the 256 default keeps peak garbage modest
  // while still amortizing well.
  static constexpr std::size_t kScanThreshold = ScanThreshold;

  void scan(std::vector<Retired>& bag) {
    Scratch& scratch = scratch_[thread_id()].value;
    // Reentrant call (a deleter retired past the threshold): defer.  The
    // nested nodes sit in the live bag — which the outer pass appends its
    // survivors to as well — and are picked up by the next scan; freeing
    // them now would corrupt the outer pass's iteration state.
    if (scratch.in_scan) return;
    scratch.in_scan = true;
    if constexpr (Asymmetric) {
      // The one heavy barrier that pays for every reader's elided fence:
      // all hazard publications made before this point are now visible to
      // the acquire sweep below, and our earlier unlinks are visible to the
      // validating re-read of any reader publishing after it.
      asymmetric_heavy();
    }
    // Read the ceiling AFTER the barrier: a publication visible to the
    // sweep implies the publisher's earlier registration (and its ceiling
    // raise) is visible too, so the sweep bound always covers every slot
    // the sweep needs to see (core/thread_registry.hpp).
    const std::size_t nthreads = registered_ceiling();
    std::vector<void*>& hazards = scratch.hazards;
    hazards.clear();
    for (std::size_t t = 0; t < nthreads; ++t) {
      for (auto& s : hazards_[t]->slot) {
        // acquire suffices under the asymmetric protocol (the heavy
        // barrier above did the Dekker work); the classic baseline keeps
        // seq_cst to pair with Guard::protect's publication.
        void* p = s.load(Asymmetric ? std::memory_order_acquire
                                    : std::memory_order_seq_cst);
        if (p != nullptr) hazards.push_back(p);
      }
    }
    std::sort(hazards.begin(), hazards.end());

    // Move the bag aside BEFORE running any deleter: a deleter that
    // retires on this domain appends to the live bag, which therefore must
    // not be the list being iterated.  Survivors go back into the (now
    // empty) bag; the swap trades capacity both ways, so steady-state
    // reclamation stays malloc-free.
    std::vector<Retired>& work = scratch.work;
    work.clear();
    work.swap(bag);
    for (auto& r : work) {
      if (std::binary_search(hazards.begin(), hazards.end(), r.ptr)) {
        bag.push_back(r);
      } else {
        r.del(r.ptr);  // may reenter retire()/scan() — see latch above
      }
    }
    work.clear();
    scratch.in_scan = false;
  }

  Padded<HpRecord> hazards_[kMaxThreads];
  Padded<std::vector<Retired>> retired_[kMaxThreads];
  // Owner-thread access only (indexed by the scanning thread's id).
  Padded<Scratch> scratch_[kMaxThreads];
};

// Default domain used across the library: asymmetric read path (degrades
// to the symmetric protocol under CCDS_TSAN_SOUND, where the asymmetric
// one is unverifiable — see core/asymmetric_fence.hpp).
using HazardDomain = BasicHazardDomain<>;

// Classic fully-fenced protocol — the E11 before/after baseline.
using SeqCstHazardDomain = BasicHazardDomain<256, /*Asymmetric=*/false>;

// Wide variant for deep-window structures: skip lists protect a
// preds/succs pair per level (2 * kSkipListMaxLevel = 32) plus traversal
// scratch, so they require kSlots >= 35 (they static_assert it).
using WideHazardDomain =
    BasicHazardDomain<256, kAsymmetricFencesAllowed, /*Slots=*/40>;

static_assert(reclaimer<HazardDomain>);
static_assert(reclaimer<SeqCstHazardDomain>);
static_assert(reclaimer<WideHazardDomain>);
static_assert(reclaimer_traits<HazardDomain>::pointer_based);
static_assert(!reclaimer_traits<HazardDomain>::has_lease);

}  // namespace ccds

// Hazard pointers (Michael 2004).
//
// A reader publishes the pointer it is about to dereference in a per-thread
// hazard slot and re-validates the source; a reclaimer only frees a retired
// node if no thread's hazard slots contain it.  Gives per-object, bounded
// memory overhead at the price of a store+fence+reload on every protected
// read — exactly the read-side cost experiment E11 measures against epochs.
//
// Usage discipline: one live Guard per thread per domain at a time (ccds
// structures create exactly one per operation); the guard's slot indices are
// the structure's to manage (e.g. Harris-Michael lists use 3 slots for
// prev/curr/next).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

template <std::size_t ScanThreshold = 256>
class BasicHazardDomain {
 public:
  // Hazard slots per thread.  8 covers every ccds structure (max live
  // protections in Harris-Michael list traversal is 3).
  static constexpr std::size_t kSlots = 8;

  class Guard {
   public:
    explicit Guard(BasicHazardDomain& d) noexcept
        : dom_(&d), hp_(d.hazards_[thread_id()].value.slot) {}

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    ~Guard() {
      for (std::size_t i = 0; i < kSlots; ++i) clear(i);
    }

    // Protect the pointer currently stored in `src`: publish-and-validate
    // loop.  On return the referent cannot be freed while this slot holds it.
    template <typename Atom>
    auto protect(std::size_t slot, const Atom& src) noexcept {
      CCDS_ASSERT(slot < kSlots);
      auto p = src.load(std::memory_order_acquire);
      for (;;) {
        // seq_cst store/load pair: the hazard publication must be globally
        // visible before we re-read src, or a reclaimer's scan could miss it
        // (classic store-load ordering requirement of the HP algorithm).
        hp_[slot].store(p, std::memory_order_seq_cst);
        auto q = src.load(std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    // Assert protection of a pointer the caller will re-validate itself
    // (caller must re-check its source after this returns).
    template <typename T>
    void set(std::size_t slot, T* p) noexcept {
      CCDS_ASSERT(slot < kSlots);
      hp_[slot].store(p, std::memory_order_seq_cst);
    }

    void clear(std::size_t slot) noexcept {
      CCDS_ASSERT(slot < kSlots);
      // release: the clearing must not float above the last dereference.
      hp_[slot].store(nullptr, std::memory_order_release);
    }

   private:
    BasicHazardDomain* dom_;
    Atomic<void*>* hp_;
  };

  Guard guard() noexcept { return Guard(*this); }

  // Hand over a detached node; freed by some later scan() once unhazarded.
  template <typename T>
  void retire(T* p) {
    auto& bag = retired_[thread_id()].value;
    bag.push_back({p, [](void* q) { delete static_cast<T*>(q); }});
    if (bag.size() >= kScanThreshold) scan(bag);
  }

  // Force a reclamation pass over the calling thread's retired bag.
  void collect() { scan(retired_[thread_id()].value); }

  // Reclamation pass over EVERY thread's bag.  Only safe at quiescence (no
  // concurrent retire calls) — e.g. after joining workers in tests, or in a
  // structure's maintenance path while externally synchronized.
  void collect_all() {
    for (auto& bag : retired_) scan(bag.value);
  }

  // Retired-but-not-yet-freed node count (accurate only at quiescence).
  std::size_t retired_count() const {
    std::size_t n = 0;
    for (const auto& bag : retired_) n += bag->size();
    return n;
  }

  ~BasicHazardDomain() {
    // Caller guarantees quiescence at destruction; free everything left.
    for (auto& bag : retired_) {
      for (auto& r : *bag) r.del(r.ptr);
    }
  }

  BasicHazardDomain() = default;
  BasicHazardDomain(const BasicHazardDomain&) = delete;
  BasicHazardDomain& operator=(const BasicHazardDomain&) = delete;

 private:
  struct HpRecord {
    Atomic<void*> slot[kSlots]{};
  };
  struct Retired {
    void* ptr;
    void (*del)(void*);
  };

  // Scan threshold: amortizes the O(H) hazard sweep over many retirements
  // (Michael recommends >= 2*H).  Template parameter so the ablation bench
  // can sweep it; the 256 default keeps peak garbage modest while still
  // amortizing well.
  static constexpr std::size_t kScanThreshold = ScanThreshold;

  void scan(std::vector<Retired>& bag) {
    std::vector<void*> hazards;
    hazards.reserve(kMaxThreads * kSlots);
    for (auto& rec : hazards_) {
      for (auto& s : rec->slot) {
        // seq_cst: pairs with Guard::protect's publication.
        void* p = s.load(std::memory_order_seq_cst);
        if (p != nullptr) hazards.push_back(p);
      }
    }
    std::sort(hazards.begin(), hazards.end());

    std::vector<Retired> keep;
    keep.reserve(bag.size());
    for (auto& r : bag) {
      if (std::binary_search(hazards.begin(), hazards.end(), r.ptr)) {
        keep.push_back(r);
      } else {
        r.del(r.ptr);
      }
    }
    bag.swap(keep);
  }

  Padded<HpRecord> hazards_[kMaxThreads];
  Padded<std::vector<Retired>> retired_[kMaxThreads];
};

// Default domain used across the library.
using HazardDomain = BasicHazardDomain<>;

}  // namespace ccds

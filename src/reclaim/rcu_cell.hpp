// RcuCell<T> — read-copy-update over a single value, built on a pluggable
// reclamation domain (epoch by default).
//
// The survey's answer for read-mostly shared state: readers take a snapshot
// with one acquire load inside a guard (no stores, no RMW under blanket
// domains — perfectly scalable); writers copy the current value, modify the
// copy, publish it with a CAS, and retire the old copy to the domain.
// Readers holding old snapshots keep them alive through their guards.
// Under a pointer-based domain the snapshot is a real hazard publication
// (protect's publish-and-validate loop), trading a store per read for
// bounded garbage.
//
// This is the userspace analogue of kernel RCU's rcu_dereference /
// rcu_assign_pointer / synchronize_rcu triple, with the grace period
// handled by the domain.
#pragma once

#include <atomic>
#include <utility>

#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <typename T, reclaimer Domain = EpochDomain>
class RcuCell {
  // guard() may return a Guard or (via LeasedDomain) a Lease.
  using GuardT = decltype(std::declval<Domain&>().guard());

 public:
  // A snapshot holds a guard for its lifetime; keep it short-lived.
  class Snapshot {
   public:
    Snapshot(Domain& d, const std::atomic<T*>& src)
        : guard_(d.guard()), ptr_(guard_.protect(0, src)) {}

    const T& operator*() const noexcept { return *ptr_; }
    const T* operator->() const noexcept { return ptr_; }
    const T* get() const noexcept { return ptr_; }

    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

   private:
    GuardT guard_;
    T* ptr_;
  };

  explicit RcuCell(T initial = T{}) : ptr_(new T(std::move(initial))) {}

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  ~RcuCell() { delete ptr_.load(std::memory_order_relaxed); }  // relaxed: destructor

  // Read-side: O(1), no shared-memory writes beyond the domain's guard.
  Snapshot read() { return Snapshot(domain_, ptr_); }

  // Copy of the current value (for callers that outlive any guard).
  T load() {
    auto snap = read();
    return *snap;
  }

  // Write-side: copy -> mutate -> CAS-publish -> retire old.  `mutate` may
  // run multiple times under contention (it must be idempotent on its copy).
  template <typename F>
  void update(F&& mutate) {
    auto guard = domain_.guard();
    T* cur = guard.protect(0, ptr_);
    for (;;) {
      T* fresh = new T(*cur);  // copy the observed version
      mutate(*fresh);
      // release: publish the new version's contents.
      if (ptr_.compare_exchange_strong(cur, fresh,
                                       std::memory_order_release,
                                       std::memory_order_acquire)) {
        domain_.retire(cur);
        return;
      }
      // Lost the race: re-protect the winner before copying from it.  The
      // protect MUST be the source of `cur` — a separate re-load could
      // observe a newer, unprotected version under a pointer-based domain.
      delete fresh;
      cur = guard.protect(0, ptr_);
    }
  }

  // Replace wholesale (publish a given value).
  void store(T value) {
    update([&](T& v) { v = value; });
  }

  Domain& domain() noexcept { return domain_; }

 private:
  CCDS_CACHELINE_ALIGNED std::atomic<T*> ptr_;
  Domain domain_;
};

}  // namespace ccds

// Safe memory reclamation — common documentation and the domain concept.
//
// Lock-free structures cannot free a node the moment it is unlinked: a
// concurrent reader may still be traversing it.  The survey's two practical
// answers are hazard pointers (Michael 2004) and epoch-based reclamation
// (Fraser 2004); ccds provides both, plus a deliberately leaking domain used
// to measure the cost of reclamation itself (experiment E11).
//
// Every ccds lock-free structure is parameterized by a *domain* type D with:
//
//   typename D::Guard g = domain.guard();
//       RAII protection region.  For epochs this pins the thread; for hazard
//       pointers it reserves per-thread hazard slots; for the leaky domain it
//       is a no-op.  Guards must not be held across blocking calls.
//
//   T* p = g.protect(slot, src);
//       Read `src` so that the referent stays safe to dereference until the
//       guard is destroyed or the slot is re-used.  `slot` indexes the
//       guard's hazard slots (< D::kSlots); epoch/leaky ignore it.
//
//   g.set(slot, p);
//       Assert protection of an already-read pointer (used after validating
//       it another way, e.g. re-checking a link).  HP only; others no-op.
//
//   domain.retire(p);
//       Hand a detached node to the domain; it calls `delete p` once no
//       guard can still reference it.
//
// All domains are per-structure objects (no global singletons), so tests and
// structures are isolated from one another.  Destruction of a domain frees
// everything still retired; callers must be quiesced by then, which the
// owning structure's destructor guarantees.
#pragma once

#include <concepts>

namespace ccds {

// Concept sketch (structural, checked where used): see module comment.
template <typename D>
concept ReclaimDomainLike = requires(D d) {
  { d.guard() };
  { D::kSlots } -> std::convertible_to<std::size_t>;
};

}  // namespace ccds

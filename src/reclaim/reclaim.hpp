// Safe memory reclamation — the formal `ccds::reclaimer` concept.
//
// Lock-free structures cannot free a node the moment it is unlinked: a
// concurrent reader may still be traversing it.  ccds ships three first-class
// answers — hazard pointers (Michael 2004, reclaim/hazard.hpp), epoch-based
// reclamation (Fraser 2004, reclaim/epoch.hpp), quiescent-state-based
// reclamation (DEBRA-style, reclaim/qsbr.hpp) — plus a deliberately leaking
// baseline (reclaim/leaky.hpp) used to measure the cost of reclamation
// itself (experiment E11).  docs/algorithms.md has the policy-selection
// table (read-path cost, reclamation latency, garbage bounds, behavior
// under blocked threads).
//
// Every node-based ccds structure is a template over a `reclaimer Domain`
// parameter; the concepts below are the contract those structures compile
// against, and every concrete domain static_asserts them at the bottom of
// its header so API drift fails the build, not a downstream user.
//
// The two protection FLAVORS matter to structure authors:
//
//   * POINTER-BASED domains (hazard pointers; `reclaimer_traits<D>::
//     pointer_based == true`) protect exactly the pointers published in the
//     guard's slots.  Traversals must protect-and-validate every node they
//     dereference (hand-over-hand), and a structure needs D::kSlots large
//     enough for its deepest window (skip lists need 2*levels + scratch —
//     see WideHazardDomain).
//
//   * BLANKET domains (epoch, QSBR, leaky) protect everything unlinked
//     after the guard began; protect() degrades to an acquire load and the
//     slot arguments are ignored.  Structures may traverse freely inside a
//     guard.
//
// Structures that support both dispatch on `reclaimer_traits<D>::
// pointer_based` with `if constexpr`, paying the hand-over-hand discipline
// only when the domain actually needs it.
#pragma once

#include <concepts>
#include <cstddef>

#include "core/atomic.hpp"

namespace ccds {

// The RAII protection region handed out by Domain::guard().
//
//   p = g.protect(slot, src)   read `src` (any atomic-like with load()) so
//                              the referent stays dereferenceable until the
//                              guard dies or the slot is reused.  For
//                              pointer-based domains this is a publish-and-
//                              validate loop; blanket domains do one acquire
//                              load.
//   g.protect_raw(slot, p)     publish protection of an already-read
//                              pointer WITHOUT validation.  Sound only when
//                              the caller re-validates its source afterwards
//                              (the re-read is the validating half of the
//                              publication Dekker) or when `p` is already
//                              protected by another slot of this guard
//                              (slot-to-slot handover).  Blanket domains
//                              no-op.
//   g.clear(slot)              drop one slot's protection early.
//
// Guards must not be held across blocking calls, and ccds structures open
// exactly one guard per operation (one live guard per thread per domain).
template <typename G>
concept reclaimer_guard =
    requires(G& g, std::size_t slot, const Atomic<int*>& src, int* p) {
      { g.protect(slot, src) } -> std::convertible_to<int*>;
      g.protect_raw(slot, p);
      g.clear(slot);
    };

// A reclamation domain.  Domains are per-structure objects (no global
// singletons), so tests and structures are isolated from one another.
//
//   D::kSlots          guard slots per thread (pointer-based domains bound
//                      how many pointers one guard can hold; blanket
//                      domains keep the constant for API parity).
//   d.guard()          open a protection region (see reclaimer_guard).
//   d.retire(p)        hand over a DETACHED node; the domain calls
//                      `delete p` once no guard can still reference it.
//                      Callable inside or outside a guard.
//   d.collect()        best-effort reclamation pass over the calling
//                      thread's retired bag; safe concurrently.
//   d.collect_all()    reclamation pass over EVERY thread's bag.  Only safe
//                      at quiescence (no live guards/leases, no concurrent
//                      retires); afterwards retired_count() == 0 for every
//                      domain — the unified drain contract the typed tests
//                      pin down.
//   d.retired_count()  retired-but-not-yet-freed nodes (accurate only at
//                      quiescence).
//
// Destruction of a domain frees everything still retired; callers must be
// quiesced by then, which the owning structure's destructor guarantees.
// Deleters may retire() further nodes on the same domain (reentrancy);
// every domain defers nested passes and drains its destructor to a
// fixpoint.
template <typename D>
concept reclaimer = requires(D& d, const D& cd, int* p) {
  { D::kSlots } -> std::convertible_to<std::size_t>;
  { d.guard() } -> reclaimer_guard;
  d.retire(p);
  d.collect();
  d.collect_all();
  { cd.retired_count() } -> std::convertible_to<std::size_t>;
};

// Capability probes, all structural:
//   pointer_based  — D opted in with `static constexpr bool kPointerBased =
//                    true` (hazard pointers).  Absent or false = blanket.
//   has_lease      — D offers lease(): an amortized read path that LEAVES
//                    its announcement standing at scope exit, so back-to-
//                    back leases skip publication entirely (epoch, QSBR).
template <typename D>
struct reclaimer_traits {
  static constexpr bool pointer_based = requires { requires D::kPointerBased; };
  static constexpr bool has_lease = requires(D& d) { d.lease(); };
};

// The cheapest read path D offers: lease() where available, guard()
// otherwise.  Returns by value (guards are immovable; guaranteed copy
// elision constructs in place):
//
//   auto g = lease_of(domain_);   // Lease or Guard, depending on D
//
// Use only where retired garbage is rare and bounded (a standing lease
// delays reclamation until the thread leases again) — see EpochDomain::
// Lease for the full trade-off discussion.
template <reclaimer D>
[[nodiscard]] auto lease_of(D& d) noexcept {
  if constexpr (reclaimer_traits<D>::has_lease) {
    return d.lease();
  } else {
    return d.guard();
  }
}

// Policy adapter for the benches and ablations: a leasing domain whose
// guard() IS its lease().  Every operation then rides the amortized
// standing-announcement read path ("Epoch+Lease" / "Qsbr+Lease" in
// BENCH_reclaim.json) with no structure changes.  Reclamation can lag
// arbitrarily while a leasing thread stays quiet — benchmark/ablation use,
// not a general-purpose default.
template <reclaimer Base>
  requires(reclaimer_traits<Base>::has_lease)
class LeasedDomain : public Base {
 public:
  auto guard() noexcept { return Base::lease(); }
};

}  // namespace ccds

// Quiescent-state-based reclamation (QSBR; the scheme behind liburcu's
// urcu-qsbr flavor and DEBRA, Brown PODC 2015), with the same asymmetric-
// fence announcement path as reclaim/epoch.hpp.
//
// The third point in the design space next to hazard pointers (per-pointer
// protection, bounded garbage, a publication per protected read) and epochs
// (per-operation pin/unpin, a validated announcement per operation):
// QSBR's read path does NOTHING AT ALL.  No slot publication, no pin — a
// protected read is a plain acquire load.  Instead, each thread announces
// at its OPERATION BOUNDARIES (guard destruction) that it holds no
// structure references — a quiescent state — by copying the global epoch
// into its per-thread slot with a single release store to an otherwise
// thread-private cache line.  try_advance() bumps the global epoch only
// once every ONLINE thread has announced the current one, so a node
// retired at stamp s is freed once the epoch reaches s+3, by which point
// every thread has passed a quiescent state after the unlink.
//
// Protocol in full:
//
//   * Onlining (first guard on a thread, and any lease after the epoch
//     moved): a VALIDATED announcement, exactly epoch pin's Dekker —
//     release-store the observed epoch, asymmetric_light(), then re-read
//     the global epoch seq_cst and loop until it matched.  Without the
//     validating re-read a sweep could miss the announcement and advance
//     twice past a thread that believes itself online (the seeded
//     missed-quiescence bug in tests/model/test_model_qsbr.cpp).
//
//   * Boundary (guard destructor): load the global epoch (acquire), store
//     it to the own slot (release) if it moved.  NO validation and no
//     fence: a boundary announcement only RELEASES the past — if the sweep
//     reads a stale older value the advance is merely blocked
//     (conservative), never unsafe.  This is why the read path can be
//     free: the expensive validated publication happens once per thread
//     (plus once per epoch change on the lease path), not per operation.
//
//   * Advance (try_advance, amortized over a retirement batch): one
//     process-wide asymmetric_heavy() — which also closes the onlining
//     Dekker — then sweep the announcement slots up to the registration
//     ceiling; advance by one iff every slot is kOffline or equals the
//     current epoch.
//
// Safety sketch (the grace-period arithmetic): while a thread stays
// announced at e the epoch cannot pass e+1, so collect_bag's `stamp + 3 <=
// E` condition implies stamp <= e_T - 2 for every online thread T.  The
// advance chain to e_T acquired a post-retire boundary announcement from
// the retiring thread (its pre-retire boundary can only announce <= stamp),
// and that boundary release-store is sequenced after the unlink — so by the
// time T's boundary acquire-load observes e_T, the unlink is visible and T
// can never load a link to the freed node.  The +3 (not the textbook +2)
// buys exactly the "pre-retire boundary may announce the stamp itself"
// step of lag, mirroring epoch's reasoning.
//
// Trade-offs vs. the siblings (docs/algorithms.md has the table): the
// fastest possible read path, but reclamation stalls whenever ANY online
// thread stops passing boundaries (a blocked thread freezes the epoch
// forever — strictly worse than epoch, where only a thread blocked INSIDE
// a guard freezes it), and garbage is unbounded in the interim.  Threads
// never go offline on their own; collect_all() (quiescent-only) force-
// resets every announcement, and threads re-online on their next guard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/arch.hpp"
#include "core/asymmetric_fence.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <bool Asymmetric = kAsymmetricFencesAllowed>
class BasicQsbrDomain {
  static_assert(!Asymmetric || kAsymmetricFencesAllowed,
                "asymmetric-fence QSBR domain selected in a build where "
                "asymmetric fences are unsound (CCDS_TSAN_SOUND): use the "
                "default Asymmetric=kAsymmetricFencesAllowed or "
                "SeqCstQsbrDomain");

 public:
  static constexpr std::size_t kSlots = 8;  // ignored; API parity with HP

  class Guard {
   public:
    explicit Guard(BasicQsbrDomain& d) noexcept
        : dom_(&d), slot_(&d.announce_[thread_id()].value) {
      // relaxed: own slot — only this thread writes it outside quiescent
      // collect_all, and a racy kOffline read just re-runs the onlining.
      announced_ = slot_->load(std::memory_order_relaxed);
      if (announced_ == kOffline) {
        d.online();
        announced_ = slot_->load(std::memory_order_relaxed);
      }
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    // Operation boundary: the quiescent-state announcement QSBR is named
    // for.  This is the entire per-operation overhead of the scheme —
    // the slot pointer and its announced value are carried from the ctor,
    // so the boundary is one epoch load plus (only when it moved) one
    // release store, with no TLS re-resolution.
    ~Guard() {
      // acquire: pairs with the advance CAS chain; the ops after this
      // boundary must see every unlink this announcement lets age out.
      const std::uint64_t e =
          dom_->global_epoch_.load(std::memory_order_acquire);
      if (announced_ != e) {
        // release: reads of the finished operation complete before the
        // announcement that lets their referents be freed.
        slot_->store(e, std::memory_order_release);
      }
    }

    template <typename Atom>
    auto protect(std::size_t /*slot*/, const Atom& src) noexcept {
      // The read path QSBR exists for: a plain acquire load, bit-for-bit
      // the leaky baseline.  Generic over the atomic type so the model
      // checker's instrumented Atomic<T*> works unchanged.
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void protect_raw(std::size_t /*slot*/, T* /*p*/) noexcept {}
    template <typename T>
    void set(std::size_t slot, T* p) noexcept {  // legacy alias
      protect_raw(slot, p);
    }
    void clear(std::size_t /*slot*/) noexcept {}

   private:
    BasicQsbrDomain* dom_;
    Atomic<std::uint64_t>* slot_;
    std::uint64_t announced_;
  };

  Guard guard() noexcept { return Guard(*this); }

  // Amortized read path, mirroring EpochDomain::Lease: a lease leaves the
  // announcement standing and SKIPS the boundary at scope exit, so
  // back-to-back leases in an unchanged epoch cost two cached loads total.
  // The ctor re-onlines (validated) whenever the epoch moved — a lease is
  // taken at operation start, when the thread holds no references, so that
  // announcement is itself a legal quiescent state.  Same trade-off as the
  // epoch lease: reclamation lags until every leasing thread leases again
  // after an advance.
  class Lease {
   public:
    explicit Lease(BasicQsbrDomain& d) noexcept {
      // acquire: pairs with the advance CAS so post-lease loads see the
      // unlinks of every epoch this announcement retires.
      const std::uint64_t e =
          d.global_epoch_.load(std::memory_order_acquire);
      // relaxed: own slot (see Guard).
      if (d.announce_[thread_id()]->load(std::memory_order_relaxed) != e) {
        d.online();
      }
    }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    template <typename Atom>
    auto protect(std::size_t /*slot*/, const Atom& src) noexcept {
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void protect_raw(std::size_t /*slot*/, T* /*p*/) noexcept {}
    template <typename T>
    void set(std::size_t slot, T* p) noexcept {  // legacy alias
      protect_raw(slot, p);
    }
    void clear(std::size_t /*slot*/) noexcept {}
  };

  Lease lease() noexcept { return Lease(*this); }

  // Hand over a detached node; freed once the epoch advances enough.
  // May be called inside or outside a guard.
  template <typename T>
  void retire(T* p) {
    auto& bag = limbo_[thread_id()].value;
    // seq_cst: the freshest stamp we can get; collect_bag's +3 covers the
    // one boundary of announce lag (header comment).
    bag.push_back({p, [](void* q) { delete static_cast<T*>(q); },
                   global_epoch_.load(std::memory_order_seq_cst)});
    if (bag.size() >= kCollectThreshold) {
      try_advance();
      // Rescan only if the epoch moved since the last scan: a thread that
      // stopped passing boundaries freezes the epoch, and rescanning an
      // ever-growing bag every threshold retires would be quadratic (the
      // unbounded-garbage window is QSBR's inherent cost).
      const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
      auto& last = last_scan_epoch_[thread_id()].value;
      if (e != last) {
        last = e;
        collect_bag(bag);
      }
    }
  }

  // Announce a quiescent state for the calling thread (it must hold no
  // guard/lease on this domain), attempt an advance, and reclaim what the
  // calling thread can.  The explicit-checkpoint shape matches liburcu's
  // rcu_quiescent_state(): without it a thread that retires but never
  // opens another guard could never see its own garbage age out.
  void collect() {
    quiescent_checkpoint();
    try_advance();
    collect_bag(limbo_[thread_id()].value);
  }

  // Force-offline every thread, advance repeatedly, and reclaim EVERY
  // thread's bag.  Only safe at quiescence (no live guards or leases, no
  // concurrent retires, by any thread): a standing lease or a stopped
  // thread would otherwise block the epoch forever, and this is the one
  // place the domain writes another thread's announcement slot.  Threads
  // re-online on their next guard (the Guard ctor checks the slot itself).
  void collect_all() {
    const std::size_t nthreads = registered_ceiling();
    for (std::size_t t = 0; t < nthreads; ++t) {
      // release: quiescent contract — nothing concurrent pairs with this;
      // ordering matters only against our own try_advance below.
      announce_[t]->store(kOffline, std::memory_order_release);
    }
    for (int i = 0; i < 4; ++i) try_advance();
    for (auto& bag : limbo_) collect_bag(bag.value);
  }

  std::size_t retired_count() const {
    std::size_t n = 0;
    for (const auto& bag : limbo_) n += bag->size();
    return n;
  }

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_relaxed);  // relaxed: observational read
  }

  ~BasicQsbrDomain() {
    // Quiescent teardown frees unconditionally; drain to a fixpoint since
    // deleters may retire() further nodes mid-teardown.
    for (bool again = true; again;) {
      again = false;
      for (auto& bag : limbo_) {
        while (!bag->empty()) {
          again = true;
          Retired r = bag->back();
          bag->pop_back();
          r.del(r.ptr);
        }
      }
    }
  }

  BasicQsbrDomain() = default;
  BasicQsbrDomain(const BasicQsbrDomain&) = delete;
  BasicQsbrDomain& operator=(const BasicQsbrDomain&) = delete;

 private:
  struct Retired {
    void* ptr;
    void (*del)(void*);
    std::uint64_t epoch;
  };

  static constexpr std::size_t kCollectThreshold = 256;

  // Validated announcement — epoch pin's Dekker, verbatim.  Used for
  // onlining (and lease refresh), where claiming a FRESH epoch without
  // proof the sweep can see the claim would let an advancer pass a thread
  // that is about to start reading (the seeded missed-quiescence bug the
  // model tests replay).
  void online() noexcept {
    auto& slot = announce_[thread_id()].value;
    for (;;) {
      const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
      if constexpr (Asymmetric) {
        // release + light barrier: a plain store on x86/ARM; advancer
        // visibility is try_advance()'s heavy barrier's job.
        slot.store(e, std::memory_order_release);
        asymmetric_light();
      } else {
        // asymmetric: OFF — classic protocol, the announcement pays the
        // full fence itself (seq_cst store).
        slot.store(e, std::memory_order_seq_cst);
      }
      // seq_cst: the validate must read the CURRENT epoch or the advancer
      // could already be one step further than the announcement admits —
      // same freshness requirement as epoch's pin().
      if (global_epoch_.load(std::memory_order_seq_cst) == e) return;
    }
  }

  // Boundary announcement: unvalidated and fence-free (see header — a
  // stale or missed boundary only delays the advance, never unfrees).
  void quiescent_checkpoint() noexcept {
    auto& slot = announce_[thread_id()].value;
    // acquire: pairs with the advance CAS chain; the ops after this
    // boundary must see every unlink this announcement lets age out.
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    // relaxed: own slot; kOffline check keeps a guard-less collect() from
    // onlining an otherwise idle thread (offline never blocks advances).
    const std::uint64_t a = slot.load(std::memory_order_relaxed);
    if (a != kOffline && a != e) {
      // release: reads of the finished operation complete before the
      // announcement that lets their referents be freed.
      slot.store(e, std::memory_order_release);
    }
  }

  // Advance the global epoch iff every ONLINE thread has announced it.
  void try_advance() noexcept {
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    if constexpr (Asymmetric) {
      // One heavy barrier pays for every onlining's elided fence (and for
      // the boundary stores' visibility, though those only need it for
      // progress, not safety).
      asymmetric_heavy();
    }
    // Ceiling read after the barrier: see thread_registry.hpp for why any
    // announcement visible to this sweep is covered by the bound.
    const std::size_t nthreads = registered_ceiling();
    for (std::size_t t = 0; t < nthreads; ++t) {
      const std::uint64_t l =
          announce_[t]->load(Asymmetric ? std::memory_order_acquire
                                        : std::memory_order_seq_cst);
      if (l != kOffline && l != e) return;  // straggler: cannot advance
    }
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);  // relaxed: failure means someone advanced
  }

  void collect_bag(std::vector<Retired>& bag) {
    Scratch& scratch = scratch_[thread_id()].value;
    // Reentrant call (a deleter below retired past the threshold): defer —
    // same latch-and-swap discipline as epoch's collect_bag.
    if (scratch.in_collect) return;
    scratch.in_collect = true;
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    // Move the bag aside BEFORE running any deleter (deleters may retire
    // on this domain); survivors go back into the emptied bag and the swap
    // trades capacity both ways, so steady-state reclamation stays
    // malloc-free.
    std::vector<Retired>& work = scratch.work;
    work.clear();
    work.swap(bag);
    for (auto& r : work) {
      // stamp + 3 <= E: every online thread has passed a boundary strictly
      // after the retiring thread's post-retire boundary (header comment).
      if (r.epoch + 3 <= e) {
        r.del(r.ptr);  // may reenter retire()/collect_bag() — see latch
      } else {
        bag.push_back(r);
      }
    }
    work.clear();
    scratch.in_collect = false;
  }

  static constexpr std::uint64_t kOffline = ~0ull;

  CCDS_CACHELINE_ALIGNED Atomic<std::uint64_t> global_epoch_{2};
  Padded<Atomic<std::uint64_t>> announce_[kMaxThreads] = {};
  Padded<std::vector<Retired>> limbo_[kMaxThreads];
  // Epoch at each thread's last bag scan (owner-thread access only).
  Padded<std::uint64_t> last_scan_epoch_[kMaxThreads] = {};
  struct Scratch {
    std::vector<Retired> work;
    bool in_collect = false;
  };
  Padded<Scratch> scratch_[kMaxThreads];

  // announce_ default-initializes atomics to 0, which must mean offline;
  // fix them up here.
  struct Init {
    explicit Init(Padded<Atomic<std::uint64_t>>* slots) {
      for (std::size_t i = 0; i < kMaxThreads; ++i) {
        slots[i].value.store(kOffline, std::memory_order_relaxed);  // relaxed: startup, before any sharing
      }
    }
  } init_{announce_};
};

// Default domain: asymmetric announcement path.
using QsbrDomain = BasicQsbrDomain<>;

// Classic fully-fenced onlining — the E11 before/after baseline.
using SeqCstQsbrDomain = BasicQsbrDomain</*Asymmetric=*/false>;

// Lease-amortized flavor: guard() hands out leases (no boundary at scope
// exit), mirroring EpochLeaseDomain.
using QsbrLeaseDomain = LeasedDomain<QsbrDomain>;

static_assert(reclaimer<QsbrDomain>);
static_assert(reclaimer<SeqCstQsbrDomain>);
static_assert(reclaimer<LeasedDomain<QsbrDomain>>);
static_assert(!reclaimer_traits<QsbrDomain>::pointer_based);
static_assert(reclaimer_traits<QsbrDomain>::has_lease);

}  // namespace ccds

// Leaky "reclamation": never frees retired nodes on any operation path.
//
// Baseline for benchmarking the overhead of real reclamation schemes
// (experiment E11), and a valid choice for bounded-lifetime structures
// (arena-style usage).  Retire is a per-thread vector push — no
// synchronization on the hot path.  Guards carry no state at all, so the
// protected-read cost IS the raw acquire load.
//
// Concept conformance (reclaim/reclaim.hpp): collect() is a no-op — with
// no guard tracking there is never evidence a node is unreferenced — and
// collect_all() frees unconditionally, which is sound only under its
// quiescent contract (no live guards anywhere).  That keeps the unified
// drain invariant (`collect_all()` at quiescence → `retired_count() == 0`)
// without putting any reclamation on a concurrent path.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

class LeakyDomain {
 public:
  static constexpr std::size_t kSlots = 8;

  class Guard {
   public:
    template <typename Atom>
    auto protect(std::size_t /*slot*/, const Atom& src) noexcept {
      // Generic over the atomic type (std::atomic or the model shim).
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void protect_raw(std::size_t /*slot*/, T* /*p*/) noexcept {}
    template <typename T>
    void set(std::size_t slot, T* p) noexcept {  // legacy alias
      protect_raw(slot, p);
    }
    void clear(std::size_t /*slot*/) noexcept {}
  };

  Guard guard() noexcept { return Guard{}; }

  template <typename T>
  void retire(T* p) {
    graveyard_[thread_id()]->push_back(
        {p, [](void* q) { delete static_cast<T*>(q); }});
  }

  // No-op: nothing tracks guards, so no retired node can ever be proven
  // unreferenced while threads run.  That is the whole point of the leaky
  // baseline.
  void collect() noexcept {}

  // Free EVERY thread's bag.  Only safe at quiescence (no live guards, no
  // concurrent retires) — the caller asserts no reference to any retired
  // node survives.  Drains to a fixpoint: deleters may retire() more nodes
  // on this domain mid-pass.
  void collect_all() {
    for (bool again = true; again;) {
      again = false;
      for (auto& bag : graveyard_) {
        while (!bag->empty()) {
          again = true;
          Retired r = bag->back();
          bag->pop_back();
          r.del(r.ptr);
        }
      }
    }
  }

  // Number of nodes waiting (i.e., leaked until collect_all/destruction).
  // Only accurate when no thread is concurrently retiring.
  std::size_t retired_count() const {
    std::size_t n = 0;
    for (const auto& bag : graveyard_) n += bag->size();
    return n;
  }

  ~LeakyDomain() { collect_all(); }

  LeakyDomain() = default;
  LeakyDomain(const LeakyDomain&) = delete;
  LeakyDomain& operator=(const LeakyDomain&) = delete;

 private:
  struct Retired {
    void* ptr;
    void (*del)(void*);
  };
  Padded<std::vector<Retired>> graveyard_[kMaxThreads];
};

static_assert(reclaimer<LeakyDomain>);
static_assert(!reclaimer_traits<LeakyDomain>::pointer_based);
static_assert(!reclaimer_traits<LeakyDomain>::has_lease);

}  // namespace ccds

// Leaky "reclamation": never frees retired nodes until domain destruction.
//
// Baseline for benchmarking the overhead of real reclamation schemes
// (experiment E11), and a valid choice for bounded-lifetime structures
// (arena-style usage).  Retire is a per-thread vector push — no
// synchronization on the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

class LeakyDomain {
 public:
  static constexpr std::size_t kSlots = 8;

  class Guard {
   public:
    template <typename Atom>
    auto protect(std::size_t /*slot*/, const Atom& src) noexcept {
      // Generic over the atomic type (std::atomic or the model shim).
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void set(std::size_t /*slot*/, T* /*p*/) noexcept {}
    void clear(std::size_t /*slot*/) noexcept {}
  };

  Guard guard() noexcept { return Guard{}; }

  template <typename T>
  void retire(T* p) {
    graveyard_[thread_id()]->push_back(
        {p, [](void* q) { delete static_cast<T*>(q); }});
  }

  // Number of nodes waiting (i.e., leaked until destruction).  Only accurate
  // when no thread is concurrently retiring.
  std::size_t retired_count() const {
    std::size_t n = 0;
    for (const auto& bag : graveyard_) n += bag->size();
    return n;
  }

  ~LeakyDomain() {
    for (auto& bag : graveyard_) {
      for (auto& r : *bag) r.del(r.ptr);
    }
  }

  LeakyDomain() = default;
  LeakyDomain(const LeakyDomain&) = delete;
  LeakyDomain& operator=(const LeakyDomain&) = delete;

 private:
  struct Retired {
    void* ptr;
    void (*del)(void*);
  };
  Padded<std::vector<Retired>> graveyard_[kMaxThreads];
};

}  // namespace ccds

// Epoch-based reclamation (Fraser 2004; the scheme behind crossbeam-epoch)
// with an asymmetric-fence announcement path (liburcu's sys_membarrier
// flavor).
//
// Readers "pin" the current global epoch for the duration of an operation;
// retired nodes are stamped with the epoch at retirement and freed once the
// global epoch has advanced enough steps past it, which implies no pinned
// thread can still hold a reference.  Reads inside a pinned region cost a
// plain acquire load (no per-pointer publication) — the flip side is that
// one stalled pinned thread blocks all reclamation.
//
// The classic pin() pays a seq_cst store/load (a full fence on x86) per
// operation: the announcement must be advancer-visible before the validating
// re-read of the global epoch.  The default protocol here is ASYMMETRIC:
// pin announces with a release store plus asymmetric_light() — compiler-only
// where membarrier backs the heavy side; a real fence on fallback platforms,
// where the pair degrades to the classic symmetric protocol
// (core/asymmetric_fence.hpp) — and
// try_advance() — the rare side, amortized over a whole retirement batch —
// issues one process-wide heavy barrier before sweeping the announcement
// slots.  Correctness (same Dekker resolution as hazard.hpp): after
// asymmetric_heavy() either a pinner's announcement is visible to the sweep
// (the advance is blocked or the pinner is counted at the current epoch), or
// the announcement comes after the barrier — and since the validating
// re-read of `global_epoch_` stays seq_cst (free on the hot path: a seq_cst
// LOAD is a plain load on x86 and ldar on ARM; only the seq_cst STORE was
// expensive), such a late pinner validates against the true current epoch,
// so the advancer can never get more than one step ahead of any announced
// pinner, which is exactly what the grace-period arithmetic in
// collect_bag() assumes.  `Asymmetric = false` keeps the classic protocol
// as the E11 before/after baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/arch.hpp"
#include "core/asymmetric_fence.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <bool Asymmetric = kAsymmetricFencesAllowed>
class BasicEpochDomain {
  static_assert(!Asymmetric || kAsymmetricFencesAllowed,
                "asymmetric-fence epoch domain selected in a build where "
                "asymmetric fences are unsound (CCDS_TSAN_SOUND): use the "
                "default Asymmetric=kAsymmetricFencesAllowed or "
                "SeqCstEpochDomain");

 public:
  static constexpr std::size_t kSlots = 8;  // ignored; API parity with HP

  class Guard {
   public:
    explicit Guard(BasicEpochDomain& d) noexcept : dom_(&d) { dom_->pin(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    ~Guard() { dom_->unpin(); }

    template <typename Atom>
    auto protect(std::size_t /*slot*/, const Atom& src) noexcept {
      // Pinning already protects every node unlinked after the pin; a plain
      // acquire load suffices.  Generic over the atomic type so the model
      // checker's instrumented Atomic<T*> works unchanged.
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void protect_raw(std::size_t /*slot*/, T* /*p*/) noexcept {}
    template <typename T>
    void set(std::size_t slot, T* p) noexcept {  // legacy alias
      protect_raw(slot, p);
    }
    void clear(std::size_t /*slot*/) noexcept {}

   private:
    BasicEpochDomain* dom_;
  };

  Guard guard() noexcept { return Guard(*this); }

  // Amortized pinning for read-dominated structures (QSBR flavor).  A Lease
  // announces the current epoch exactly like Guard, but LEAVES the
  // announcement in place at scope exit: the next lease on this thread
  // skips the publication entirely unless the global epoch moved in
  // between, collapsing the per-operation pin cost to two cached loads.
  //
  // Safety is the same argument as pinning: while this thread stays
  // announced at epoch e the global epoch cannot pass e+1, so anything it
  // loaded from the structure after announcing can only have been retired
  // with stamp >= e — never reclaimable before the thread re-announces.
  //
  // Trade-off: between operations the thread still counts as pinned, so
  // reclamation lags until every leasing thread performs another lease (or
  // the domain is destroyed, which frees unconditionally).  Use only where
  // retired garbage is rare and bounded — e.g. swiss_hash_map tables,
  // whose cumulative size is a geometric series under doubling — and never
  // on a domain shared with latency-sensitive reclaimers.
  class Lease {
   public:
    explicit Lease(BasicEpochDomain& d) noexcept { d.pin_lease(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    template <typename Atom>
    auto protect(std::size_t /*slot*/, const Atom& src) noexcept {
      // Same as Guard::protect: the announcement does the protecting.
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void protect_raw(std::size_t /*slot*/, T* /*p*/) noexcept {}
    template <typename T>
    void set(std::size_t slot, T* p) noexcept {  // legacy alias
      protect_raw(slot, p);
    }
    void clear(std::size_t /*slot*/) noexcept {}
  };

  Lease lease() noexcept { return Lease(*this); }

  // Hand over a detached node; freed once the epoch advances enough.
  // May be called inside or outside a pinned region.
  template <typename T>
  void retire(T* p) {
    auto& bag = limbo_[thread_id()].value;
    // seq_cst: the freshest stamp we can get.  Even so, the stamp may lag
    // the instantaneous epoch by one while the caller is pinned, which is
    // why collect_bag() demands THREE advances, not the textbook two.
    bag.push_back({p, [](void* q) { delete static_cast<T*>(q); },
                   global_epoch_.load(std::memory_order_seq_cst)});
    if (bag.size() >= kCollectThreshold) {
      try_advance();
      // Scan the bag only if the epoch moved since our last scan: while a
      // stalled reader freezes the epoch, nothing new can become freeable,
      // and rescanning an ever-growing bag every threshold retires would
      // be quadratic (the bag still grows — that unbounded-garbage window
      // is EBR's inherent cost; this just avoids burning CPU on it).
      const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
      auto& last = last_scan_epoch_[thread_id()].value;
      if (e != last) {
        last = e;
        collect_bag(bag);
      }
    }
  }

  // Attempt an epoch advance and reclaim what the calling thread can.
  void collect() {
    try_advance();
    collect_bag(limbo_[thread_id()].value);
  }

  // Advance repeatedly and reclaim EVERY thread's bag.  Only safe at
  // quiescence (no live guards or leases, no concurrent retires, by any
  // thread).  Announcements are force-reset first: a standing lease — or a
  // stale announcement left by an exited thread — would otherwise freeze
  // the epoch and make the drain contract (retired_count() == 0 after)
  // unreachable.  Same discipline as QSBR's collect_all.
  void collect_all() {
    const std::size_t nthreads = registered_ceiling();
    for (std::size_t t = 0; t < nthreads; ++t) {
      // release: quiescent contract — nothing concurrent pairs with this;
      // ordering matters only against our own try_advance below.
      local_epoch_[t]->store(kInactive, std::memory_order_release);
    }
    for (int i = 0; i < 4; ++i) try_advance();
    for (auto& bag : limbo_) collect_bag(bag.value);
  }

  std::size_t retired_count() const {
    std::size_t n = 0;
    for (const auto& bag : limbo_) n += bag->size();
    return n;
  }

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_relaxed);  // relaxed: observational read
  }

  ~BasicEpochDomain() {
    // Quiescent teardown frees unconditionally.  Deleters may retire()
    // further nodes mid-teardown (they land in the destructing thread's
    // bag, possibly one already visited), so drain to a fixpoint, popping
    // each record before running its deleter.
    for (bool again = true; again;) {
      again = false;
      for (auto& bag : limbo_) {
        while (!bag->empty()) {
          again = true;
          Retired r = bag->back();
          bag->pop_back();
          r.del(r.ptr);
        }
      }
    }
  }

  BasicEpochDomain() = default;
  BasicEpochDomain(const BasicEpochDomain&) = delete;
  BasicEpochDomain& operator=(const BasicEpochDomain&) = delete;

 private:
  struct Retired {
    void* ptr;
    void (*del)(void*);
    std::uint64_t epoch;
  };

  static constexpr std::size_t kCollectThreshold = 256;

  void pin() noexcept {
    auto& local = local_epoch_[thread_id()].value;
    for (;;) {
      const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
      if constexpr (Asymmetric) {
        // release + light barrier: a plain store on x86/ARM.  The
        // advancer-visibility of this announcement is try_advance()'s
        // heavy barrier's job (see header comment).
        local.store(e, std::memory_order_release);
        asymmetric_light();
      } else {
        // asymmetric: OFF — classic protocol, the announcement pays the
        // full fence itself (seq_cst store) so it is advancer-visible
        // before the validating re-read below.
        local.store(e, std::memory_order_seq_cst);
      }
      // seq_cst: the validate must read the CURRENT epoch (not a stale
      // one), or a pinner could believe itself announced at e while the
      // epoch had already left e behind — one step of lag the grace-period
      // arithmetic does not budget for.  A seq_cst load is free on the
      // architectures we target; only the seq_cst STORE was the hot-path
      // cost the asymmetric protocol removes.
      if (global_epoch_.load(std::memory_order_seq_cst) == e) return;
    }
  }

  // Lease fast path: re-announce only when the epoch moved since this
  // thread's standing announcement (see Lease for the safety argument).
  void pin_lease() noexcept {
    auto& local = local_epoch_[thread_id()].value;
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    // relaxed: own slot — only this thread stores meaningful values here,
    // and a stale/foreign read merely falls through to the full pin.
    if (local.load(std::memory_order_relaxed) == e) return;
    for (;;) {
      const std::uint64_t g = global_epoch_.load(std::memory_order_acquire);
      if constexpr (Asymmetric) {
        // release + light: same announcement protocol as pin().
        local.store(g, std::memory_order_release);
        asymmetric_light();
      } else {
        // asymmetric: OFF — classic seq_cst publication (see pin()).
        local.store(g, std::memory_order_seq_cst);
      }
      // seq_cst: same validate-freshness requirement as pin().
      if (global_epoch_.load(std::memory_order_seq_cst) == g) return;
    }
  }

  void unpin() noexcept {
    // release: reads made inside the pinned region complete before the
    // announcement clears.
    local_epoch_[thread_id()].value.store(kInactive,
                                          std::memory_order_release);
  }

  // Advance the global epoch if every pinned thread has observed it.
  void try_advance() noexcept {
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    if constexpr (Asymmetric) {
      // The one heavy barrier that pays for every pin's elided fence:
      // every announcement made before this point is visible to the sweep
      // below; an announcement made after it validated against the current
      // epoch (seq_cst re-read in pin), so missing it here is benign — the
      // pinner is at e, and advancing to e+1 keeps it within one step.
      asymmetric_heavy();
    }
    // Ceiling read after the barrier: see thread_registry.hpp for why any
    // announcement visible to this sweep is covered by the bound.
    const std::size_t nthreads = registered_ceiling();
    for (std::size_t t = 0; t < nthreads; ++t) {
      const std::uint64_t l =
          local_epoch_[t]->load(Asymmetric ? std::memory_order_acquire
                                           : std::memory_order_seq_cst);
      if (l != kInactive && l != e) return;  // straggler: cannot advance
    }
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);  // relaxed: failure means someone advanced
  }

  void collect_bag(std::vector<Retired>& bag) {
    Scratch& scratch = scratch_[thread_id()].value;
    // Reentrant call (a deleter below retired past the threshold): defer.
    // A nested pass would clear/swap the scratch vector the outer pass is
    // mid-iteration on, and the nested node is freshly stamped — nothing
    // this pass could free anyway.
    if (scratch.in_collect) return;
    scratch.in_collect = true;
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    // Move the bag aside BEFORE running any deleter: a deleter that
    // retires on this domain appends to the live bag, which therefore must
    // not be the list being iterated.  Survivors go back into the (now
    // empty) bag; the swap trades capacity both ways, so steady-state
    // reclamation stays malloc-free.
    std::vector<Retired>& work = scratch.work;
    work.clear();
    work.swap(bag);
    for (auto& r : work) {
      // Safety: a retiring thread pinned at epoch ep reads a stamp
      // s >= ep while the true epoch is at most ep+1, so a reader that still
      // holds the node announces at most s+1; the epoch can never advance to
      // s+3 while that reader stays pinned.  (The textbook +2 rule assumes a
      // stamp taken at the instantaneous epoch; the extra +1 covers the lag.
      // The asymmetric protocol preserves the "at most one step ahead"
      // invariant this rests on — see try_advance.)
      if (r.epoch + 3 <= e) {
        r.del(r.ptr);  // may reenter retire()/collect_bag() — see latch above
      } else {
        bag.push_back(r);
      }
    }
    work.clear();
    scratch.in_collect = false;
  }

  static constexpr std::uint64_t kInactive = ~0ull;

  CCDS_CACHELINE_ALIGNED Atomic<std::uint64_t> global_epoch_{2};
  Padded<Atomic<std::uint64_t>> local_epoch_[kMaxThreads] = {};
  Padded<std::vector<Retired>> limbo_[kMaxThreads];
  // Epoch at each thread's last bag scan (owner-thread access only).
  Padded<std::uint64_t> last_scan_epoch_[kMaxThreads] = {};
  // Scratch for collect_bag (indexed by the COLLECTING thread's id), reused
  // across passes so steady-state reclamation performs no allocation.
  // `in_collect` is the reentrancy latch: a deleter may retire() on this
  // domain and cross the threshold mid-pass.
  struct Scratch {
    std::vector<Retired> work;
    bool in_collect = false;
  };
  Padded<Scratch> scratch_[kMaxThreads];

  // local_epoch_ default-initializes atomics to 0, which must mean inactive;
  // fix them up here.
  struct Init {
    explicit Init(Padded<Atomic<std::uint64_t>>* slots) {
      for (std::size_t i = 0; i < kMaxThreads; ++i) {
        slots[i].value.store(kInactive, std::memory_order_relaxed);  // relaxed: startup, before any sharing
      }
    }
  } init_{local_epoch_};
};

// Default domain used across the library: asymmetric announcement path.
using EpochDomain = BasicEpochDomain<>;

// Classic fully-fenced protocol — the E11 before/after baseline.
using SeqCstEpochDomain = BasicEpochDomain</*Asymmetric=*/false>;

// "Epoch+Lease" ablation policy: every guard() is a standing lease, so the
// per-operation read path collapses to two cached loads (reclaim.hpp's
// LeasedDomain has the trade-off discussion).
using EpochLeaseDomain = LeasedDomain<EpochDomain>;

static_assert(reclaimer<EpochDomain>);
static_assert(reclaimer<SeqCstEpochDomain>);
static_assert(reclaimer<EpochLeaseDomain>);
static_assert(!reclaimer_traits<EpochDomain>::pointer_based);
static_assert(reclaimer_traits<EpochDomain>::has_lease);

}  // namespace ccds

// Epoch-based reclamation (Fraser 2004; the scheme behind crossbeam-epoch).
//
// Readers "pin" the current global epoch for the duration of an operation;
// retired nodes are stamped with the epoch at retirement and freed once the
// global epoch has advanced two steps past it, which implies no pinned
// thread can still hold a reference.  Reads inside a pinned region cost a
// plain acquire load (no per-pointer publication), making EBR's read side
// much cheaper than hazard pointers — the flip side is that one stalled
// pinned thread blocks all reclamation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

class EpochDomain {
 public:
  static constexpr std::size_t kSlots = 8;  // ignored; API parity with HP

  class Guard {
   public:
    explicit Guard(EpochDomain& d) noexcept : dom_(&d) { dom_->pin(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    ~Guard() { dom_->unpin(); }

    template <typename Atom>
    auto protect(std::size_t /*slot*/, const Atom& src) noexcept {
      // Pinning already protects every node unlinked after the pin; a plain
      // acquire load suffices.  Generic over the atomic type so the model
      // checker's instrumented Atomic<T*> works unchanged.
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void set(std::size_t /*slot*/, T* /*p*/) noexcept {}
    void clear(std::size_t /*slot*/) noexcept {}

   private:
    EpochDomain* dom_;
  };

  Guard guard() noexcept { return Guard(*this); }

  // Amortized pinning for read-dominated structures (QSBR flavor).  A Lease
  // announces the current epoch exactly like Guard, but LEAVES the
  // announcement in place at scope exit: the next lease on this thread
  // skips the seq_cst publication entirely unless the global epoch moved
  // in between, collapsing the per-operation pin cost to two cached loads.
  //
  // Safety is the same argument as pinning: while this thread stays
  // announced at epoch e the global epoch cannot pass e+1, so anything it
  // loaded from the structure after announcing can only have been retired
  // with stamp >= e — never reclaimable before the thread re-announces.
  //
  // Trade-off: between operations the thread still counts as pinned, so
  // reclamation lags until every leasing thread performs another lease (or
  // the domain is destroyed, which frees unconditionally).  Use only where
  // retired garbage is rare and bounded — e.g. swiss_hash_map tables,
  // whose cumulative size is a geometric series under doubling — and never
  // on a domain shared with latency-sensitive reclaimers.
  class Lease {
   public:
    explicit Lease(EpochDomain& d) noexcept { d.pin_lease(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    template <typename Atom>
    auto protect(std::size_t /*slot*/, const Atom& src) noexcept {
      // Same as Guard::protect: the announcement does the protecting.
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void set(std::size_t /*slot*/, T* /*p*/) noexcept {}
    void clear(std::size_t /*slot*/) noexcept {}
  };

  Lease lease() noexcept { return Lease(*this); }

  // Hand over a detached node; freed once the epoch advances twice.
  // May be called inside or outside a pinned region.
  template <typename T>
  void retire(T* p) {
    auto& bag = limbo_[thread_id()].value;
    // seq_cst: the freshest stamp we can get.  Even so, the stamp may lag
    // the instantaneous epoch by one while the caller is pinned, which is
    // why collect_bag() demands THREE advances, not the textbook two.
    bag.push_back({p, [](void* q) { delete static_cast<T*>(q); },
                   global_epoch_.load(std::memory_order_seq_cst)});
    if (bag.size() >= kCollectThreshold) {
      try_advance();
      // Scan the bag only if the epoch moved since our last scan: while a
      // stalled reader freezes the epoch, nothing new can become freeable,
      // and rescanning an ever-growing bag every threshold retires would
      // be quadratic (the bag still grows — that unbounded-garbage window
      // is EBR's inherent cost; this just avoids burning CPU on it).
      const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
      auto& last = last_scan_epoch_[thread_id()].value;
      if (e != last) {
        last = e;
        collect_bag(bag);
      }
    }
  }

  // Attempt an epoch advance and reclaim what the calling thread can.
  void collect() {
    try_advance();
    collect_bag(limbo_[thread_id()].value);
  }

  // Advance repeatedly and reclaim EVERY thread's bag.  Only safe at
  // quiescence (no concurrent retires or pins by other threads).
  void collect_all() {
    for (int i = 0; i < 4; ++i) try_advance();
    for (auto& bag : limbo_) collect_bag(bag.value);
  }

  std::size_t retired_count() const {
    std::size_t n = 0;
    for (const auto& bag : limbo_) n += bag->size();
    return n;
  }

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_relaxed);  // relaxed: observational read
  }

  ~EpochDomain() {
    for (auto& bag : limbo_) {
      for (auto& r : *bag) r.del(r.ptr);
    }
  }

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

 private:
  struct Retired {
    void* ptr;
    void (*del)(void*);
    std::uint64_t epoch;
  };

  static constexpr std::size_t kCollectThreshold = 256;

  void pin() noexcept {
    auto& local = local_epoch_[thread_id()].value;
    for (;;) {
      const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
      // seq_cst store/load: the announcement must be visible to advancers
      // before we validate that the epoch did not move under us (store-load
      // ordering, same shape as the hazard-pointer publication).
      local.store(e, std::memory_order_seq_cst);
      if (global_epoch_.load(std::memory_order_seq_cst) == e) return;
    }
  }

  // Lease fast path: re-announce only when the epoch moved since this
  // thread's standing announcement (see Lease for the safety argument).
  void pin_lease() noexcept {
    auto& local = local_epoch_[thread_id()].value;
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    // relaxed: own slot — only this thread stores meaningful values here,
    // and a stale/foreign read merely falls through to the full pin.
    if (local.load(std::memory_order_relaxed) == e) return;
    for (;;) {
      const std::uint64_t g = global_epoch_.load(std::memory_order_acquire);
      // seq_cst: same store-load publication as pin() — the announcement
      // must be advancer-visible before the validating re-read.
      local.store(g, std::memory_order_seq_cst);
      if (global_epoch_.load(std::memory_order_seq_cst) == g) return;
    }
  }

  void unpin() noexcept {
    // release: reads made inside the pinned region complete before the
    // announcement clears.
    local_epoch_[thread_id()].value.store(kInactive,
                                          std::memory_order_release);
  }

  // Advance the global epoch if every pinned thread has observed it.
  void try_advance() noexcept {
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    for (auto& slot : local_epoch_) {
      const std::uint64_t l = slot->load(std::memory_order_acquire);
      if (l != kInactive && l != e) return;  // straggler: cannot advance
    }
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);  // relaxed: failure means someone advanced
  }

  void collect_bag(std::vector<Retired>& bag) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    std::vector<Retired> keep;
    keep.reserve(bag.size());
    for (auto& r : bag) {
      // Safety: a retiring thread pinned at epoch ep reads a stamp
      // s >= ep while the true epoch is at most ep+1, so a reader that still
      // holds the node announces at most s+1; the epoch can never advance to
      // s+3 while that reader stays pinned.  (The textbook +2 rule assumes a
      // stamp taken at the instantaneous epoch; the extra +1 covers the lag.)
      if (r.epoch + 3 <= e) {
        r.del(r.ptr);
      } else {
        keep.push_back(r);
      }
    }
    bag.swap(keep);
  }

  static constexpr std::uint64_t kInactive = ~0ull;

  CCDS_CACHELINE_ALIGNED Atomic<std::uint64_t> global_epoch_{2};
  Padded<Atomic<std::uint64_t>> local_epoch_[kMaxThreads] = {};
  Padded<std::vector<Retired>> limbo_[kMaxThreads];
  // Epoch at each thread's last bag scan (owner-thread access only).
  Padded<std::uint64_t> last_scan_epoch_[kMaxThreads] = {};

  // local_epoch_ default-initializes atomics to 0, which must mean inactive;
  // fix them up here.
  struct Init {
    explicit Init(Padded<Atomic<std::uint64_t>>* slots) {
      for (std::size_t i = 0; i < kMaxThreads; ++i) {
        slots[i].value.store(kInactive, std::memory_order_relaxed);  // relaxed: startup, before any sharing
      }
    }
  } init_{local_epoch_};
};

}  // namespace ccds

// ccds — Concurrent C++ Data Structures: umbrella header.
//
// Include this to get the whole library, or include individual module
// headers (core/, sync/, reclaim/, counter/, stack/, queue/, list/, hash/,
// skiplist/, tree/, pool/) to keep compile times down.
#pragma once

// core: architecture utilities, padding, backoff, RNG, thread ids, barrier.
#include "core/arch.hpp"
#include "core/backoff.hpp"
#include "core/barrier.hpp"
#include "core/group_probe.hpp"
#include "core/hash.hpp"
#include "core/padded.hpp"
#include "core/rng.hpp"
#include "core/thread_registry.hpp"

// sync: the mutual-exclusion spectrum and combining.
#include "sync/anderson_lock.hpp"
#include "sync/atomic_snapshot.hpp"
#include "sync/ccsynch.hpp"
#include "sync/clh_lock.hpp"
#include "sync/combiner.hpp"
#include "sync/flat_combining.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/rwlock.hpp"
#include "sync/seqlock.hpp"
#include "sync/peterson.hpp"
#include "sync/spinlock.hpp"
#include "sync/ticket_lock.hpp"

// reclaim: safe memory reclamation for lock-free structures.
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/rcu_cell.hpp"
#include "reclaim/reclaim.hpp"

// counter: shared counters.
#include "counter/combining_counter.hpp"
#include "counter/combining_tree.hpp"
#include "counter/counters.hpp"
#include "counter/counting_network.hpp"

// stack: LIFO structures.
#include "stack/coarse_stack.hpp"
#include "stack/combining_stack.hpp"
#include "stack/elimination_stack.hpp"
#include "stack/treiber_stack.hpp"

// queue: FIFO structures, rings, and work-stealing deques.
#include "queue/blocking_queue.hpp"
#include "queue/coarse_queue.hpp"
#include "queue/combining_queue.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "queue/two_lock_queue.hpp"
#include "queue/ws_deque.hpp"

// list: the list-based set spectrum.
#include "list/coarse_list.hpp"
#include "list/harris_list.hpp"
#include "list/hoh_list.hpp"
#include "list/lazy_list.hpp"
#include "list/optimistic_list.hpp"

// hash: hash maps and the split-ordered lock-free set.
#include "hash/coarse_hash_map.hpp"
#include "hash/split_ordered_set.hpp"
#include "hash/striped_hash_map.hpp"
#include "hash/swiss_hash_map.hpp"

// skiplist: concurrent skip lists and priority queues.
#include "skiplist/batched_map.hpp"
#include "skiplist/batched_skiplist.hpp"
#include "skiplist/lazy_skiplist.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "skiplist/seq_skiplist.hpp"

// tree: search-tree baselines and the lock-free tombstone BST.
#include "tree/fine_bst.hpp"
#include "tree/seq_avl.hpp"
#include "tree/tombstone_bst.hpp"

// pool: unordered pools and exchangers.
#include "pool/exchanger.hpp"
#include "pool/stealing_pool.hpp"

// Unordered pool ("bag") with per-thread stacks and stealing, plus a
// bulk-submitting helper-thread executor built on it.
//
// The survey's answer to "what if you don't need FIFO/LIFO at all": an
// unordered put/get pool can shard perfectly.  Each thread puts into and
// gets from its own Treiber stack; a thread whose own stack is empty steals
// from the others, scanning from a random start to avoid herding.  A
// put/get pair on one thread touches no shared state with other threads at
// all in the common case.
//
// StealingExecutor is the fan-out engine BatchedSkipListSet uses: a small
// crew of worker threads pulls tasks from a StealingPool; submit_bulk
// publishes a whole span of tasks with ONE CAS (TreiberStack::push_bulk)
// and wait() lets the submitter HELP — it runs pending tasks itself until
// its completion latch drains, so progress never depends on a worker being
// scheduled (essential on an oversubscribed or single-CPU host, and it
// keeps the submitter from idling while its own work is runnable).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/arch.hpp"
#include "core/rng.hpp"
#include "core/thread_registry.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "stack/treiber_stack.hpp"

namespace ccds {

// Epoch reclamation by default: stealing pops run concurrently with the
// owner's, so the per-thread stacks need a real domain; any `reclaimer`
// works (each shard owns its own domain instance).
template <typename T, reclaimer Domain = EpochDomain>
class StealingPool {
 public:
  void put(T v) { stacks_[thread_id()].push(std::move(v)); }

  // Publish a whole batch with one CAS on the caller's own stack (see
  // TreiberStack::push_bulk) — fan-out pays one synchronization action per
  // sub-batch span, not one per task.
  void put_bulk(std::span<const T> vs) {
    stacks_[thread_id()].push_bulk(vs);
  }

  std::optional<T> try_get() {
    const std::size_t me = thread_id();
    if (auto v = stacks_[me].try_pop()) return v;
    // Steal: scan all other stacks from a random starting point.
    const std::size_t start = thread_rng().next_below(kMaxThreads);
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      const std::size_t victim = (start + i) % kMaxThreads;
      if (victim == me) continue;
      if (auto v = stacks_[victim].try_pop()) return v;
    }
    return std::nullopt;
  }

  // Quiescent-only exact check.
  bool empty() const {
    for (const auto& s : stacks_) {
      if (!s.empty()) return false;
    }
    return true;
  }

  // Quiescent-only: drain every shard's reclamation domain and report what
  // is still pending (the typed reclaim suites assert 0 after a churn run).
  void collect_all() {
    for (auto& s : stacks_) s.domain().collect_all();
  }
  std::size_t retired_count() {
    std::size_t n = 0;
    for (auto& s : stacks_) n += s.domain().retired_count();
    return n;
  }

 private:
  TreiberStack<T, Domain> stacks_[kMaxThreads];
};

// Completion latch for one bulk submission: armed with the task count
// before the tasks are published, dropped once per executed task.  drained
// uses acquire so the waiter observes every task's side effects.
class BulkLatch {
 public:
  void arm(std::size_t n) {
    pending_.fetch_add(n, std::memory_order_relaxed);  // relaxed: armed before tasks publish
  }
  void done() {
    pending_.fetch_sub(1, std::memory_order_release);
  }
  bool drained() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

 private:
  // unpadded: one latch per bulk submit, armed once and decremented once
  // per task — contention is bounded by design, padding would bloat the
  // caller's stack frame.
  std::atomic<std::size_t> pending_{0};
};

// Helper-thread crew over a StealingPool.  Tasks are plain (fn, ctx) pairs
// tied to a BulkLatch; whoever runs a task (worker or helping waiter)
// drops the latch afterwards.  Domain parametrizes the pool's reclamation
// policy so the typed reclaim suites can drive the whole fan-out path
// under every policy.
template <reclaimer Domain = EpochDomain>
class StealingExecutor {
 public:
  // Nested aliases let callers (BatchedSkipListSet::attach_executor) drive
  // any conforming executor without naming this header's types.
  using Latch = BulkLatch;

  struct Task {
    void (*fn)(void* ctx) = nullptr;
    void* ctx = nullptr;
    BulkLatch* latch = nullptr;
  };

  explicit StealingExecutor(std::size_t workers = 1) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  StealingExecutor(const StealingExecutor&) = delete;
  StealingExecutor& operator=(const StealingExecutor&) = delete;

  // Callers must wait() their latches out before destruction; any task
  // still pooled here is dropped unrun.
  ~StealingExecutor() {
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) w.join();
    while (auto t = pool_.try_get()) {
      if (t->latch != nullptr) t->latch->done();
    }
  }

  // Arm `latch` for all of `tasks` and publish them with one CAS.  The
  // latch fields of the incoming tasks are overwritten; an empty span
  // leaves the latch drained.
  void submit_bulk(std::span<Task> tasks, BulkLatch& latch) {
    if (tasks.empty()) return;
    for (Task& t : tasks) t.latch = &latch;
    latch.arm(tasks.size());
    pool_.put_bulk(std::span<const Task>(tasks.data(), tasks.size()));
  }

  // Help until the latch drains: the waiter runs pending tasks itself
  // (possibly other submitters' — harmless, it only speeds them up) rather
  // than spinning, so a bulk completes even with zero runnable workers.
  void wait(BulkLatch& latch) {
    std::uint32_t spins = 0;
    while (!latch.drained()) {
      if (help_one()) {
        spins = 0;
      } else {
        spin_wait(spins);
      }
    }
  }

  // Pop and run one pending task; false if none was available.
  bool help_one() {
    if (auto t = pool_.try_get()) {
      run(*t);
      return true;
    }
    return false;
  }

  std::size_t worker_count() const { return workers_.size(); }

  // Tasks executed by the worker crew (not by helping waiters): the
  // structural witness that fan-out actually crossed threads.
  std::uint64_t worker_executed() const {
    return worker_executed_.load(std::memory_order_relaxed);  // relaxed: stats
  }

  StealingPool<Task, Domain>& pool() { return pool_; }

 private:
  static void run(const Task& t) {
    t.fn(t.ctx);
    if (t.latch != nullptr) t.latch->done();
  }

  void worker_loop() {
    std::uint32_t spins = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      if (auto t = pool_.try_get()) {
        run(*t);
        worker_executed_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stats
        spins = 0;
      } else {
        spin_wait(spins);
      }
    }
  }

  StealingPool<Task, Domain> pool_;
  std::atomic<bool> stop_{false};  // unpadded: written once, at shutdown
  // unpadded: statistics counter bumped between pool CASes, not on a spin
  // path; readers poll it off the hot loop.
  std::atomic<std::uint64_t> worker_executed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace ccds

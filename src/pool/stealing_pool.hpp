// Unordered pool ("bag") with per-thread stacks and stealing.
//
// The survey's answer to "what if you don't need FIFO/LIFO at all": an
// unordered put/get pool can shard perfectly.  Each thread puts into and
// gets from its own Treiber stack; a thread whose own stack is empty steals
// from the others, scanning from a random start to avoid herding.  A
// put/get pair on one thread touches no shared state with other threads at
// all in the common case.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "core/rng.hpp"
#include "core/thread_registry.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "stack/treiber_stack.hpp"

namespace ccds {

// Epoch reclamation by default: stealing pops run concurrently with the
// owner's, so the per-thread stacks need a real domain; any `reclaimer`
// works (each shard owns its own domain instance).
template <typename T, reclaimer Domain = EpochDomain>
class StealingPool {
 public:
  void put(T v) { stacks_[thread_id()].push(std::move(v)); }

  std::optional<T> try_get() {
    const std::size_t me = thread_id();
    if (auto v = stacks_[me].try_pop()) return v;
    // Steal: scan all other stacks from a random starting point.
    const std::size_t start = thread_rng().next_below(kMaxThreads);
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      const std::size_t victim = (start + i) % kMaxThreads;
      if (victim == me) continue;
      if (auto v = stacks_[victim].try_pop()) return v;
    }
    return std::nullopt;
  }

  // Quiescent-only exact check.
  bool empty() const {
    for (const auto& s : stacks_) {
      if (!s.empty()) return false;
    }
    return true;
  }

 private:
  TreiberStack<T, Domain> stacks_[kMaxThreads];
};

}  // namespace ccds

// Lock-free pairwise exchanger (Herlihy & Shavit ch. 11).
//
// Two threads meet at a slot and swap values within a bounded wait; the
// building block of elimination arrays and of the elimination pool.  The
// slot packs a state tag and a pointer to the first party's offer frame.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/arch.hpp"

namespace ccds {

template <typename T>
class Exchanger {
 public:
  // Attempt to swap `mine` with a partner within ~spin_budget spins.
  // Returns the partner's value, or nullopt on timeout.
  std::optional<T> exchange(T mine, int spin_budget = 1024) {
    Offer my_offer{std::move(mine), {}, {}};

    std::uintptr_t s = slot_.load(std::memory_order_acquire);
    if (s == kEmpty) {
      // First party: publish the offer and wait for a match.
      std::uintptr_t expected = kEmpty;
      const auto mine_tag = reinterpret_cast<std::uintptr_t>(&my_offer);
      if (slot_.compare_exchange_strong(expected, mine_tag,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {  // relaxed: failure re-examines the slot
        for (int i = 0; i < spin_budget; ++i) {
          // acquire: pairs with the matcher's release after filling reply.
          if (my_offer.matched.load(std::memory_order_acquire)) {
            slot_.store(kEmpty, std::memory_order_release);
            return std::move(my_offer.reply);
          }
          cpu_relax();
        }
        // Timeout: withdraw unless a matcher beat us to it.
        expected = mine_tag;
        if (slot_.compare_exchange_strong(expected, kEmpty,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {  // relaxed: failure re-examines the slot
          return std::nullopt;
        }
        // A matcher claimed the offer (slot moved to kBusy); wait for it.
        while (!my_offer.matched.load(std::memory_order_acquire)) {
          cpu_relax();
        }
        slot_.store(kEmpty, std::memory_order_release);
        return std::move(my_offer.reply);
      }
      s = expected;  // somebody's offer appeared; try to match it below
    }

    if (s != kEmpty && s != kBusy) {
      // Second party: claim the published offer.
      Offer* theirs = reinterpret_cast<Offer*>(s);
      std::uintptr_t expected = s;
      if (slot_.compare_exchange_strong(expected, kBusy,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {  // relaxed: failure re-examines the slot
        T value = std::move(theirs->value);
        theirs->reply = std::move(my_offer.value);
        // release: the reply must be visible before `matched` flips.
        theirs->matched.store(true, std::memory_order_release);
        return value;
      }
    }
    return std::nullopt;  // busy or raced out
  }

 private:
  struct Offer {
    T value;
    T reply{};
    std::atomic<bool> matched{false};
  };

  static constexpr std::uintptr_t kEmpty = 0;
  static constexpr std::uintptr_t kBusy = 1;

  CCDS_CACHELINE_ALIGNED std::atomic<std::uintptr_t> slot_{kEmpty};
};

}  // namespace ccds

// Best-effort CPU pinning for shard-per-core deployments.
//
// The serving tier (service/kv_service.hpp) gets its contention-free hot
// path from ownership: shard s's map is touched by shard s's worker only.
// Pinning each worker to its own core completes the picture — the shard's
// working set stays resident in one core's private cache and the worker
// never migrates away from it.  Pinning is strictly an optimization: the
// ownership argument holds wherever the scheduler puts the threads, so
// every caller treats failure (unsupported platform, restricted affinity
// mask, fewer cores than shards) as advisory and carries on unpinned.
#pragma once

#include <cstddef>

#include "core/topology.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ccds {

// Pin the calling thread to `cpu` (mod the addressable set).  Returns true
// iff the affinity mask was actually installed.
inline bool pin_current_thread(std::size_t cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

// True when a shard-per-core layout of `shards` workers can give each its
// own core on this host; callers use it to decide whether pinning is worth
// requesting (pinning MORE workers than cores just handcuffs the scheduler).
// Core counting is the topology service's job (core/topology.hpp) — one
// place answers "what does this machine look like", and its cpu_count()
// already floors the can't-tell case at 1.
inline bool cores_cover(std::size_t shards) noexcept {
  return shards <= topology::cpu_count();
}

}  // namespace ccds

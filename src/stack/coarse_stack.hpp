// Coarse-grained lock-based stack: the baseline "synchronized wrapper".
//
// Every operation takes one global lock; correctness is immediate from the
// sequential std::vector underneath, throughput collapses under contention
// (experiment E3's strawman).
#pragma once

#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace ccds {

template <typename T, typename Lock = std::mutex>
class LockStack {
 public:
  void push(T v) {
    std::lock_guard<Lock> g(lock_);
    items_.push_back(std::move(v));
  }

  std::optional<T> try_pop() {
    std::lock_guard<Lock> g(lock_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.back());
    items_.pop_back();
    return v;
  }

  bool empty() const {
    std::lock_guard<Lock> g(lock_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<Lock> g(lock_);
    return items_.size();
  }

 private:
  mutable Lock lock_;
  std::vector<T> items_;
};

}  // namespace ccds

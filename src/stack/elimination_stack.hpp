// Elimination-backoff stack (Hendler, Shavit, Yerushalmi 2004).
//
// Under contention, a failed CAS on the Treiber head does not just back off:
// the thread visits a random slot of an *elimination array*, where a
// concurrent push and pop can cancel each other without ever touching the
// stack (push immediately followed by pop of the same value is a legal
// linearization).  Successful eliminations turn contention into parallelism,
// which is why the elimination stack keeps scaling where Treiber saturates
// (experiment E3).
//
// Slot encoding (single atomic word, pointers are >= 8-aligned):
//   0            — empty
//   1 (kPopWait) — a popper is parked waiting for a node
//   ptr          — a pusher is parked offering node `ptr`
//   2 (kDone)    — a parked pusher's node was taken by a passing popper
//   ptr|1        — a parked popper's wait fulfilled with node `ptr`
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "core/rng.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

// ElimSlots / SpinBudget are exposed for the ablation bench (E15): more
// slots lower collision-per-slot rates but also lower the chance two
// threads meet at all; the spin budget bounds how long a parked operation
// waits for a partner before falling back to the main stack.
template <typename T, reclaimer Domain = HazardDomain, int ElimSlots = 16,
          int SpinBudget = 512>
class EliminationBackoffStack {
 public:
  EliminationBackoffStack() = default;
  EliminationBackoffStack(const EliminationBackoffStack&) = delete;
  EliminationBackoffStack& operator=(const EliminationBackoffStack&) = delete;

  ~EliminationBackoffStack() {
    Node* n = head_.load(std::memory_order_relaxed);  // relaxed: destructor
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  void push(T v) {
    Node* n = new Node{std::move(v), nullptr};
    Node* h = head_.load(std::memory_order_relaxed);  // relaxed: the CAS below validates
    for (;;) {
      n->next = h;
      if (head_.compare_exchange_weak(h, n, std::memory_order_release,
                                      std::memory_order_relaxed)) {  // relaxed: failure re-reads via expected
        return;
      }
      // Contention: try to hand the node directly to a popper.
      if (try_eliminate_push(n)) return;
      h = head_.load(std::memory_order_relaxed);  // relaxed: retry hint; the CAS validates
    }
  }

  std::optional<T> try_pop() {
    auto guard = domain_.guard();
    for (;;) {
      Node* h = guard.protect(0, head_);
      if (h == nullptr) return std::nullopt;
      Node* next = h->next;
      if (head_.compare_exchange_strong(h, next, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {  // relaxed: failure re-runs the loop
        std::optional<T> v(std::move(h->value));
        domain_.retire(h);
        return v;
      }
      // Contention: try to catch a node straight from a pusher.  Eliminated
      // nodes were never reachable from head_, so no hazard can reference
      // them and we may delete directly instead of retiring.
      if (Node* taken = try_eliminate_pop()) {
        std::optional<T> v(std::move(taken->value));
        delete taken;
        return v;
      }
    }
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    T value;
    Node* next;
  };

  static constexpr std::uintptr_t kEmpty = 0;
  static constexpr std::uintptr_t kPopWait = 1;
  static constexpr std::uintptr_t kDone = 2;
  static constexpr int kElimSlots = ElimSlots;
  static constexpr int kSpinBudget = SpinBudget;

  static bool is_node(std::uintptr_t s) noexcept {
    return s > kDone && (s & 1) == 0;
  }

  std::atomic<std::uintptr_t>& random_slot() noexcept {
    return slots_[thread_rng().next_below(kElimSlots)].value;
  }

  // Pusher side: offer `n`; true iff a popper took it.
  bool try_eliminate_push(Node* n) noexcept {
    auto& slot = random_slot();
    std::uintptr_t s = slot.load(std::memory_order_acquire);

    if (s == kPopWait) {
      // Fulfill a parked popper in place.  release: publish node contents.
      std::uintptr_t expected = kPopWait;
      return slot.compare_exchange_strong(
          expected, reinterpret_cast<std::uintptr_t>(n) | 1,
          std::memory_order_release, std::memory_order_relaxed);  // relaxed: failure re-examines the slot
    }
    if (s != kEmpty) return false;

    // Park our node and wait briefly for a popper.
    std::uintptr_t expected = kEmpty;
    const std::uintptr_t mine = reinterpret_cast<std::uintptr_t>(n);
    if (!slot.compare_exchange_strong(expected, mine,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {  // relaxed: failure falls back to the stack
      return false;
    }
    for (int i = 0; i < kSpinBudget; ++i) {
      if (slot.load(std::memory_order_acquire) == kDone) {
        slot.store(kEmpty, std::memory_order_release);
        return true;
      }
      cpu_relax();
    }
    // Timeout: withdraw the offer — unless a popper just took it.
    expected = mine;
    if (slot.compare_exchange_strong(expected, kEmpty,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {  // relaxed: failure falls back to the stack
      return false;
    }
    CCDS_ASSERT(expected == kDone);
    slot.store(kEmpty, std::memory_order_release);
    return true;
  }

  // Popper side: non-null iff a pusher's node was captured.
  Node* try_eliminate_pop() noexcept {
    auto& slot = random_slot();
    std::uintptr_t s = slot.load(std::memory_order_acquire);

    if (is_node(s)) {
      // A pusher is parked: take its node.
      if (slot.compare_exchange_strong(s, kDone, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {  // relaxed: failure re-examines the slot
        return reinterpret_cast<Node*>(s);
      }
      return nullptr;
    }
    if (s != kEmpty) return nullptr;

    // Park a pop request and wait briefly for a pusher.
    std::uintptr_t expected = kEmpty;
    if (!slot.compare_exchange_strong(expected, kPopWait,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {  // relaxed: failure re-examines the slot
      return nullptr;
    }
    for (int i = 0; i < kSpinBudget; ++i) {
      const std::uintptr_t v = slot.load(std::memory_order_acquire);
      if (v != kPopWait) {
        CCDS_ASSERT((v & 1) == 1 && v > kDone);
        slot.store(kEmpty, std::memory_order_release);
        return reinterpret_cast<Node*>(v & ~std::uintptr_t{1});
      }
      cpu_relax();
    }
    // Timeout: withdraw — unless a pusher just fulfilled us.
    expected = kPopWait;
    if (slot.compare_exchange_strong(expected, kEmpty,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {  // relaxed: failure falls back to the stack
      return nullptr;
    }
    CCDS_ASSERT((expected & 1) == 1 && expected > kDone);
    slot.store(kEmpty, std::memory_order_release);
    return reinterpret_cast<Node*>(expected & ~std::uintptr_t{1});
  }

  CCDS_CACHELINE_ALIGNED std::atomic<Node*> head_{nullptr};
  Padded<std::atomic<std::uintptr_t>> slots_[kElimSlots] = {};
  Domain domain_;
};

}  // namespace ccds

// Treiber's lock-free stack (Treiber 1986).
//
// head is a single CAS'd pointer; push links a new node in front, pop swings
// head to head->next.  Nodes are reclaimed through the domain (hazard
// pointers by default), which also forecloses the ABA hazard: a node address
// can only reappear at head after being freed and reallocated, and it cannot
// be freed while any pop protects it.  Popped nodes are never re-pushed, so
// no other ABA source exists.
#pragma once

#include <optional>
#include <span>
#include <utility>

#include "core/atomic.hpp"
#include "core/backoff.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <typename T, reclaimer Domain = HazardDomain>
class TreiberStack {
 public:
  TreiberStack() = default;
  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;

  ~TreiberStack() {
    Node* n = head_.load(std::memory_order_relaxed);  // relaxed: destructor
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  void push(T v) {
    Node* n = new Node{std::move(v), nullptr};
    Node* h = head_.load(std::memory_order_relaxed);  // relaxed: the CAS below validates
    Backoff backoff;
    for (;;) {
      n->next = h;
      // release: publish n (value + link) to the popper's acquire load.
      if (head_.compare_exchange_weak(h, n, std::memory_order_release,
                                      std::memory_order_relaxed)) {  // relaxed: failure re-reads via expected
        return;
      }
      backoff.spin();
    }
  }

  // Splice a whole batch in with ONE successful CAS: the chain is linked
  // privately (vs[0] ends on top, so pops see span order), then its bottom
  // is pointed at head and the head CAS installs all of it.  This
  // is what makes bulk task submission O(1) synchronization instead of one
  // contended CAS per element.
  void push_bulk(std::span<const T> vs) {
    if (vs.empty()) return;
    Node* top = nullptr;
    Node* bottom = nullptr;
    for (std::size_t i = vs.size(); i-- > 0;) {
      top = new Node{vs[i], top};
      if (bottom == nullptr) bottom = top;
    }
    Node* h = head_.load(std::memory_order_relaxed);  // relaxed: the CAS below validates
    Backoff backoff;
    for (;;) {
      bottom->next = h;
      // release: publish the whole chain (values + links) to poppers.
      if (head_.compare_exchange_weak(h, top, std::memory_order_release,
                                      std::memory_order_relaxed)) {  // relaxed: failure re-reads via expected
        return;
      }
      backoff.spin();
    }
  }

  std::optional<T> try_pop() {
    auto guard = domain_.guard();
    Backoff backoff;
    for (;;) {
      Node* h = guard.protect(0, head_);
      if (h == nullptr) return std::nullopt;
      Node* next = h->next;  // safe: h is protected
      // acquire on success: not needed for h's fields (protect's load
      // ordered them) but orders this pop before our read of h->value for
      // TSan clarity; failure can stay relaxed.
      if (head_.compare_exchange_strong(h, next, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        std::optional<T> v(std::move(h->value));
        domain_.retire(h);
        return v;
      }
      backoff.spin();
    }
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    T value;
    Node* next;
  };

  CCDS_CACHELINE_ALIGNED Atomic<Node*> head_{nullptr};
  Domain domain_;
};

}  // namespace ccds

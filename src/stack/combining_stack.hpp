// Combining-backed LIFO stack front.
//
// A sequential std::vector behind a combining engine (CcSynch by default,
// FlatCombiner as a drop-in alternative — sync/combiner.hpp).  A stack top
// is the worst case for CAS-based designs (every operation fights over one
// word); a combiner instead executes whole convoys of pushes/pops against
// the vector in one episode, paying one exchange per operation and scaling
// where TreiberStack's retry loop collapses (EXPERIMENTS.md E16).
//
// apply_batch(span<StackOp>) is the OBATCHER-style entry point: k operations
// submitted as one combining request, executed back-to-back with no foreign
// operation interleaved.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sync/ccsynch.hpp"
#include "sync/combiner.hpp"

namespace ccds {

// One stack operation for the batch interface; pop results are routed back
// through the op itself.
template <typename T>
struct StackOp {
  enum class Kind : std::uint8_t { kPush, kPop };

  static StackOp push(T v) { return {Kind::kPush, std::move(v), {}}; }
  static StackOp pop() { return {Kind::kPop, T{}, {}}; }

  void operator()(std::vector<T>& s) {
    if (kind == Kind::kPush) {
      s.push_back(std::move(value));
      return;
    }
    if (s.empty()) {
      result.reset();
    } else {
      result = std::move(s.back());
      s.pop_back();
    }
  }

  Kind kind = Kind::kPush;
  T value{};                  // push payload
  std::optional<T> result{};  // pop result (nullopt: stack was empty)
};

template <typename T, template <typename> class Engine = CcSynch>
class CombiningStack {
  using State = std::vector<T>;
  static_assert(CombinerFor<Engine<State>, State>,
                "Engine must model the Combiner policy (sync/combiner.hpp)");

 public:
  CombiningStack() = default;

  void push(T v) {
    // By-value capture: engines may copy the op and re-execute it against a
    // different state copy (PSim helpers), so it must not reference locals.
    engine_.apply([v = std::move(v)](State& s) { s.push_back(v); });
  }

  std::optional<T> try_pop() {
    return engine_.apply([](State& s) -> std::optional<T> {
      if (s.empty()) return std::nullopt;
      std::optional<T> v(std::move(s.back()));
      s.pop_back();
      return v;
    });
  }

  bool empty() const {
    return engine_.apply([](State& s) { return s.empty(); });
  }

  std::size_t size() const {
    return engine_.apply([](State& s) { return s.size(); });
  }

  // Execute all of `ops` as one combining request (in span order).
  void apply_batch(std::span<StackOp<T>> ops) { engine_.apply_batch(ops); }

 private:
  // mutable: combining serializes logically-const reads through apply too.
  mutable Engine<State> engine_;
};

}  // namespace ccds

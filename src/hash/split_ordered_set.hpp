// Split-ordered lock-free hash set (Shalev & Shavit, "Split-Ordered Lists:
// Lock-Free Extensible Hash Tables", JACM 2006).
//
// The trick: keep ALL elements in one Harris-Michael list sorted by the
// *bit-reversal* of their hash ("split order"), and make buckets mere
// shortcuts — dummy nodes inserted at the position where each bucket's
// region begins.  Doubling the table never moves an element: bucket b's
// region simply splits off the tail of its parent bucket's region
// (parent(b) = b with its top set bit cleared), so growth is a matter of
// lazily inserting one new dummy per new bucket.
//
// Key encoding: regular nodes carry so_key = reverse(hash) | 1 (odd); bucket
// dummies carry so_key = reverse(b) (even, unique per bucket).  Hash
// collisions (same so_key, different keys) are resolved by scanning the
// equal-so_key run with operator==.
//
// The bucket table is a static array of lazily-allocated fixed-size
// segments, so it also never moves.  Dummy nodes are never deleted, which
// keeps bucket pointers eternally valid.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "core/arch.hpp"
#include "core/hash.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <typename Key, typename Hash = MixHash<Key>,
          reclaimer Domain = HazardDomain>
class SplitOrderedHashSet {
  static_assert(!reclaimer_traits<Domain>::pointer_based ||
                    Domain::kSlots >= 3,
                "the traversal window needs prev/curr/next slots");
 public:
  SplitOrderedHashSet() {
    // Bucket 0's dummy (so_key 0) is the list head anchor.
    Node* d0 = new Node(0);
    // relaxed: constructor; the set is unpublished.
    list_head_.store(d0, std::memory_order_relaxed);
    segment_for(0)[0].store(d0, std::memory_order_relaxed);
  }

  SplitOrderedHashSet(const SplitOrderedHashSet&) = delete;
  SplitOrderedHashSet& operator=(const SplitOrderedHashSet&) = delete;

  ~SplitOrderedHashSet() {
    Node* n = list_head_.load(std::memory_order_relaxed);  // relaxed: destructor
    while (n != nullptr) {
      Node* next = unmark(n->next.load(std::memory_order_relaxed));  // relaxed: destructor
      delete n;
      n = next;
    }
    for (auto& seg : segments_) {
      delete[] seg.load(std::memory_order_relaxed);  // relaxed: destructor
    }
  }

  bool contains(const Key& key) {
    const std::uint64_t h = hash_(key);
    Node* bucket = bucket_for(h);
    auto g = domain_.guard();
    Window w = find(&bucket->next, so_regular(h), &key, g);
    return w.found;
  }

  bool insert(const Key& key) {
    const std::uint64_t h = hash_(key);
    Node* bucket = bucket_for(h);
    Node* n = new Node(so_regular(h), key);
    auto g = domain_.guard();
    for (;;) {
      Window w = find(&bucket->next, n->so_key, &key, g);
      if (w.found) {
        delete n;
        return false;
      }
      n->next.store(w.curr, std::memory_order_relaxed);  // relaxed: published by the CAS below
      if (w.prev->compare_exchange_strong(w.curr, n,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {  // relaxed: failure re-runs the search
        const std::uint64_t count =
            size_.fetch_add(1, std::memory_order_relaxed) + 1;  // relaxed: size is a statistic
        maybe_grow(count);
        return true;
      }
    }
  }

  bool remove(const Key& key) {
    const std::uint64_t h = hash_(key);
    Node* bucket = bucket_for(h);
    auto g = domain_.guard();
    for (;;) {
      Window w = find(&bucket->next, so_regular(h), &key, g);
      if (!w.found) return false;
      Node* next = w.curr->next.load(std::memory_order_acquire);
      if (is_marked(next)) continue;
      if (!w.curr->next.compare_exchange_strong(
              next, mark(next), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {  // relaxed: failure retraverses
        continue;
      }
      Node* expected = w.curr;
      if (w.prev->compare_exchange_strong(expected, next,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {  // relaxed: failure retraverses
        domain_.retire(w.curr);
      } else {
        find(&bucket->next, so_regular(h), &key, g);  // help unlink
      }
      size_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: size is a statistic
      return true;
    }
  }

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);  // relaxed: snapshot read by contract
  }

  std::size_t bucket_count() const noexcept {
    return bucket_count_.load(std::memory_order_relaxed);  // relaxed: approximate by design
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    const std::uint64_t so_key;
    const bool dummy;
    Key key{};  // valid iff !dummy
    std::atomic<Node*> next{nullptr};

    explicit Node(std::uint64_t so) : so_key(so), dummy(true) {}
    Node(std::uint64_t so, const Key& k) : so_key(so), dummy(false), key(k) {}
  };

  struct Window {
    std::atomic<Node*>* prev;
    Node* curr;
    bool found;
  };

  // ----- marked pointers -----
  static bool is_marked(Node* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1u) != 0;
  }
  static Node* mark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) | 1u);
  }
  static Node* unmark(Node* p) noexcept {
    return reinterpret_cast<Node*>(reinterpret_cast<std::uintptr_t>(p) &
                                   ~std::uintptr_t{1});
  }

  // ----- split-order keys -----
  static std::uint64_t so_regular(std::uint64_t h) noexcept {
    return reverse_bits64(h) | 1u;  // odd
  }
  static std::uint64_t so_dummy(std::uint64_t b) noexcept {
    return reverse_bits64(b);  // even (b < 2^63)
  }
  static std::uint64_t parent_bucket(std::uint64_t b) noexcept {
    // Clear the most significant set bit (b > 0).
    return b & ~(1ull << (63 - __builtin_clzll(b)));
  }

  // ----- bucket table (segmented, never moves) -----
  static constexpr std::size_t kSegmentBits = 9;  // 512 buckets per segment
  static constexpr std::size_t kSegmentSize = 1ull << kSegmentBits;
  static constexpr std::size_t kMaxSegments = 1024;  // up to 2^19 buckets
  static constexpr std::uint64_t kInitialBuckets = 2;
  static constexpr std::uint64_t kMaxBuckets = kSegmentSize * kMaxSegments;

  std::atomic<Node*>* segment_for(std::uint64_t bucket) {
    auto& slot = segments_[bucket >> kSegmentBits];
    std::atomic<Node*>* seg = slot.load(std::memory_order_acquire);
    if (seg == nullptr) {
      auto* fresh = new std::atomic<Node*>[kSegmentSize] {};
      if (slot.compare_exchange_strong(seg, fresh,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        seg = fresh;
      } else {
        delete[] fresh;  // lost the race; `seg` holds the winner
      }
    }
    return seg;
  }

  // Dummy node for the bucket of hash h, initializing the bucket (and,
  // recursively, its ancestors) on first touch.  Must be called with no live
  // guard (it opens its own).
  Node* bucket_for(std::uint64_t h) {
    const std::uint64_t b =
        h & (bucket_count_.load(std::memory_order_acquire) - 1);
    return get_bucket(b);
  }

  Node* get_bucket(std::uint64_t b) {
    std::atomic<Node*>& slot = segment_for(b)[b & (kSegmentSize - 1)];
    Node* d = slot.load(std::memory_order_acquire);
    if (d != nullptr) return d;
    return initialize_bucket(b, slot);
  }

  Node* initialize_bucket(std::uint64_t b, std::atomic<Node*>& slot) {
    CCDS_ASSERT(b != 0);  // bucket 0 is created in the constructor
    Node* parent = get_bucket(parent_bucket(b));
    Node* dummy = new Node(so_dummy(b));
    Node* winner;
    {
      auto g = domain_.guard();
      for (;;) {
        Window w = find(&parent->next, dummy->so_key, nullptr, g);
        if (w.found) {
          delete dummy;
          winner = w.curr;
          break;
        }
        dummy->next.store(w.curr, std::memory_order_relaxed);  // relaxed: published by the CAS below
        if (w.prev->compare_exchange_strong(w.curr, dummy,
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {  // relaxed: another initializer won
          winner = dummy;
          break;
        }
      }
    }
    Node* expected = nullptr;
    slot.compare_exchange_strong(expected, winner,
                                 std::memory_order_acq_rel,
                                 std::memory_order_relaxed);  // relaxed: loser frees its dummy below
    // Either we set it or a concurrent initializer found the same (unique)
    // dummy; the slot is authoritative now.
    return slot.load(std::memory_order_acquire);
  }

  void maybe_grow(std::uint64_t count) {
    std::uint64_t buckets = bucket_count_.load(std::memory_order_relaxed);  // relaxed: growth check is a heuristic
    // Load factor 2: double when count exceeds 2x buckets.
    if (count > buckets * 2 && buckets < kMaxBuckets) {
      bucket_count_.compare_exchange_strong(buckets, buckets * 2,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed);  // relaxed: a concurrent grower won
    }
  }

  // guard() may return a Guard or (via LeasedDomain) a Lease.
  using GuardT = decltype(std::declval<Domain&>().guard());

  // Harris-Michael window search over split-order keys, starting at `start`
  // (a never-removed dummy's next link).  `key == nullptr` targets the
  // (unique) dummy with so_key == so; otherwise targets a regular node with
  // this so_key and an equal key, scanning the collision run.
  Window find(std::atomic<Node*>* start, std::uint64_t so, const Key* key,
              GuardT& g) {
  retry:
    std::atomic<Node*>* prev = start;
    g.clear(0);
    Node* curr = g.protect(1, *prev);
    // `start` is a dummy's next link and dummies are never deleted, so the
    // link itself is never mark-tagged (a mark on X->next tags X, not the
    // successor).
    CCDS_ASSERT(!is_marked(curr));
    for (;;) {
      if (curr == nullptr) return {prev, nullptr, false};
      Node* next_raw = curr->next.load(std::memory_order_acquire);
      if (is_marked(next_raw)) {
        Node* next = unmark(next_raw);
        g.protect_raw(2, next);
        if (curr->next.load(std::memory_order_acquire) != next_raw) {
          goto retry;
        }
        Node* expected = curr;
        if (!prev->compare_exchange_strong(expected, next,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {  // relaxed: failure re-runs the search
          goto retry;
        }
        domain_.retire(curr);
        curr = next;
        g.protect_raw(1, curr);
        continue;
      }
      if (prev->load(std::memory_order_acquire) != curr) goto retry;
      if (curr->so_key > so) return {prev, curr, false};
      if (curr->so_key == so) {
        if (key == nullptr) {
          // Dummy target: dummies are unique per so_key.
          if (curr->dummy) return {prev, curr, true};
          // A regular node cannot share an (even) dummy so_key.
          return {prev, curr, false};
        }
        if (!curr->dummy && curr->key == *key) return {prev, curr, true};
        // Collision run: fall through and keep scanning while so_key == so.
      }
      // Advance.
      Node* next = unmark(next_raw);
      g.protect_raw(0, curr);
      g.protect_raw(2, next);
      if (curr->next.load(std::memory_order_acquire) != next_raw) goto retry;
      prev = &curr->next;
      curr = next;
      g.protect_raw(1, curr);
    }
  }

  CCDS_CACHELINE_ALIGNED std::atomic<Node*> list_head_{nullptr};
  CCDS_CACHELINE_ALIGNED std::atomic<std::uint64_t> bucket_count_{
      kInitialBuckets};
  CCDS_CACHELINE_ALIGNED std::atomic<std::uint64_t> size_{0};
  std::atomic<std::atomic<Node*>*> segments_[kMaxSegments] = {};  // unpadded: read-mostly segment directory
  Domain domain_;
  [[no_unique_address]] Hash hash_{};
};

}  // namespace ccds

// Work counters + preemption injection for the hash maps (E19).
//
// Wall-clock throughput on an oversubscribed 1-CPU host measures the
// scheduler, not the structure (EXPERIMENTS.md methodology, E17/E18).  The
// YCSB serving experiment therefore gates on a scheduler-noise-free work
// counter instead: how much probing and how much contention-induced retry
// work each tier performs per operation.  This header owns those counters
// and the injection hook that makes contention visible at all on one CPU.
//
//   probes     — structure-examination work units: one per 16-slot group a
//     SwissHashMap operation visits (including a writer's locked group),
//     one per bucket head + one per chain node a StripedHashMap operation
//     traverses.  Units are design-relative — a swiss "probe" covers 16
//     keys where a chained one covers 1 — so cross-DESIGN probe counts are
//     not comparable; the E19 gate only ever compares swiss against swiss
//     (sharded partitions vs one shared map), where the unit is identical.
//   cas_fails  — contention episodes: a group-lock waiter blocked by a
//     writer session, a seqlock reader waiting out a writer or retrying a
//     torn snapshot, a stripe lock whose try_lock failed.  Counted once
//     per DISTINCT colliding operation, never per spin iteration.  The
//     swiss paths count by seqlock generation distance: every dirty
//     unlock advances the group's generation, so the distance observed
//     between entering a group and leaving it is exactly the number of
//     writer sessions that raced the operation.  A waiter parked behind
//     one descheduled holder spins (or sleeps) a whole scheduling quantum
//     and still counts one episode — iteration counts would be
//     proportional to scheduler latency, the noise this counter exists to
//     exclude — while a waiter that sits through a convoy of k successive
//     holders counts k, because it lost k real races.  The tally is
//     therefore bounded by how often operations collide, the quantity a
//     genuinely concurrent host would also produce.
//
// Preemption injection (same rationale and discipline as E17's
// PreemptLess): on this repo's 1-CPU measurement host a map operation is
// essentially never interrupted mid-flight — critical sections span ~100ns
// while scheduling quanta span milliseconds — so cross-thread interleaving
// inside an operation, the thing a multicore host produces constantly,
// rounds to zero and every tier's contention counters read ~0.  maybe_stall
// restores that interleaving at a controlled, tier-blind rate: every Nth
// PROBE by an opted-in thread cedes the CPU for a burst of yields.  The
// injection is unbiased by construction — it triggers per work unit
// executed, with no key-, tier-, or code-path-dependent condition — so a
// tier that executes the same probe count faces the same stall count, and
// the residual counter difference is exactly the contention each tier's
// architecture does or does not admit.  (A shard-owned partition cannot
// contend however often its worker stalls; a shared map turns every
// mid-critical-section stall into waiters.)
//
// Everything here is compiled out unless the including TU defines
// CCDS_HASH_STATS (bench_ycsb.cpp does); the hooks are empty inlines
// otherwise, so the maps pay nothing in normal builds.
#pragma once

#include <atomic>
#include <cstdint>

#ifdef CCDS_HASH_STATS
#include <thread>
#endif

namespace ccds {

struct HashStats {
#ifdef CCDS_HASH_STATS
  static inline std::atomic<std::uint64_t> probes{0};
  static inline std::atomic<std::uint64_t> cas_fails{0};

  // Injection knobs.  stall_every == 0 disables injection; `enabled` is
  // per-thread so benchmark infrastructure threads (and the gbench timer
  // thread) never stall.  Both measured client threads and shard workers
  // opt in, so the stall rate per probe is identical across tiers.
  static inline int stall_every = 0;
  static inline int stall_burst = 2;
  static inline thread_local bool enabled = false;
  static inline thread_local std::uint64_t ticks = 0;

  static void probe() noexcept {
    probes.fetch_add(1, std::memory_order_relaxed);  // relaxed: stats
    if (enabled && stall_every != 0 && ++ticks % stall_every == 0) {
      for (int i = 0; i < stall_burst; ++i) std::this_thread::yield();
    }
  }

  static void contended(std::uint64_t n = 1) noexcept {
    cas_fails.fetch_add(n, std::memory_order_relaxed);  // relaxed: stats
  }

  static void reset() noexcept {
    probes.store(0, std::memory_order_relaxed);     // relaxed: stats
    cas_fails.store(0, std::memory_order_relaxed);  // relaxed: stats
  }
#else
  static void probe() noexcept {}
  static void contended(std::uint64_t = 1) noexcept {}
  static void reset() noexcept {}
#endif
};

}  // namespace ccds

// Swiss-table concurrent flat hash map: open addressing over 16-slot groups
// of inline key/value pairs, one byte of probe metadata per slot
// (core/group_probe.hpp), group-granular locking for writers, seqlock-style
// lock-free readers, and a cooperative striped rehash that migrates the old
// table through the reclamation layer instead of stopping the world.
//
// Layout.  The table is an array of `Group`s.  Each group owns one cache
// line of metadata — a combined seqlock/lock/migration version word plus 16
// one-byte tags packed into two 64-bit words — followed by 16 inline
// (key, value) slots.  A warm `get` therefore touches exactly one metadata
// line and one data line: no per-node cache miss chain, which is what makes
// flat layouts dominate the chained maps on read-heavy mixes.
//
// Version word (per group).  Bit 0 = writer lock; bit 1 = kMoved (group
// drained by rehash; contents dead); bit 2 = kTerminal (group contained an
// empty slot when drained — probe chains ended here); bits 3+ = seqlock
// generation, bumped on every mutating unlock.  Readers snapshot the word,
// read tags/slots with relaxed loads, and accept the snapshot only if the
// word is unchanged afterwards (same fence discipline as sync/seqlock.hpp,
// and UB/TSan-free for the same reason: every shared byte is an atomic).
//
// Probe invariant.  A key's groups are probed linearly from its home group.
// Lookups/inserts stop at the first group containing an EMPTY slot; erase
// writes a TOMB tag, never an EMPTY one, so the set of empty slots only
// ever shrinks within a table.  That monotonicity is the whole correctness
// argument for lock-free readers and duplicate-free inserts:
//   * a present key can never sit beyond the current first-empty group
//     (empties never appear in front of it after insertion), so a reader's
//     early stop is always justified;
//   * two racing inserts of the same key must both arrive at the same
//     terminal group and serialize on its lock (the second sees the first's
//     slot and updates in place).
// TOMB slots are reclaimed on reuse in the terminal group and wholesale at
// rehash; when tombstones (not live entries) are what filled the table, the
// rehash keeps the same size — a cooperative in-place purge — instead of
// doubling, so erase-heavy churn cannot balloon the table's cache reach.
//
// Cooperative rehash.  When occupancy crosses the growth threshold (or
// tombstone mass crosses the purge threshold) a writer installs a successor
// table — double-size if live entries fill half the current one, same-size
// otherwise — whose `old` pointer names the current one.
// From then on every writer (a) drains its own key's probe chain in the old
// table — moving those entries into the new table so the key's state lives
// in exactly one place before the write — and (b) migrates a fixed quantum
// of additional old groups, so the rebuild is striped across all writers
// and no thread ever stalls behind a full-table copy.  Readers probe old
// then new, skipping drained groups; the drained-group publication rides
// the same version word the seqlock already validates.  The fully-drained
// old table is retired through the Reclaimer (epoch by default), which is
// what makes the `old` pointer safe to chase without locks.
//
// Restrictions: Key and Value must be trivially copyable and at most 8
// bytes (they are stored in relaxed atomics so torn reads cannot exist even
// formally; this is also what keeps the map checkable under -DCCDS_MODEL=1,
// where every ccds::Atomic is the instrumented model shim).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/group_probe.hpp"
#include "core/hash.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "hash/hash_stats.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <typename Key, typename Value, typename Hash = MixHash<Key>,
          reclaimer Reclaimer = EpochDomain>
class SwissHashMap {
  static_assert(!reclaimer_traits<Reclaimer>::pointer_based ||
                    Reclaimer::kSlots >= 2,
                "probes protect the table and its old predecessor");
  static_assert(std::is_trivially_copyable_v<Key> && sizeof(Key) <= 8,
                "SwissHashMap keys must be trivially copyable and <= 8 bytes");
  static_assert(std::is_trivially_copyable_v<Value> && sizeof(Value) <= 8,
                "SwissHashMap values must be trivially copyable and <= 8 "
                "bytes");

 public:
  explicit SwissHashMap(std::size_t initial_slots = 4 * kGroupSlots)
      : table_(new Table(groups_for(initial_slots))) {}

  SwissHashMap(const SwissHashMap&) = delete;
  SwissHashMap& operator=(const SwissHashMap&) = delete;

  ~SwissHashMap() {
    // relaxed: destruction is externally synchronized by contract.
    delete table_.load(std::memory_order_relaxed);
  }

  // Insert or overwrite.  Returns true iff the key was newly inserted
  // (same contract as the other ccds maps).
  bool insert(const Key& key, Value value) {
    const std::uint64_t h = hash_(key);
    auto guard = acquire_guard();
    for (;;) {
      Table* t = guard.protect(0, table_);
      if (Table* old_t = guard.protect(1, t->old)) {
        drain_probe_chain(old_t, t, h);
        help_migrate(t, old_t);
      }
      switch (write_in(t, h, key, value)) {
        case Wr::kInserted:
          bump_size(+1);
          maybe_grow(t);
          return true;
        case Wr::kUpdated:
          return false;
        case Wr::kFull:
          // Start (or finish helping) a rehash, then retry in the bigger
          // table.  If a migration is still draining, the next loop pass
          // migrates another quantum, so this converges.
          start_grow(t);
          continue;
        default:  // kStale: the table doubled under us; reload the root
          continue;
      }
    }
  }

  std::optional<Value> get(const Key& key) const {
    const std::uint64_t h = hash_(key);
    auto guard = acquire_guard();
    for (;;) {
      Table* t = guard.protect(0, table_);
      Value out{};
      // Probe old-then-new: an entry migrates old -> new under the old
      // group's lock, so a reader that misses it in the old table is
      // guaranteed (by the version-word acquire) to see it in the new one.
      if (Table* old_t = guard.protect(1, t->old)) {
        if (find_in(old_t, h, key, /*is_old=*/true, &out) == Probe::kFound) {
          return out;
        }
      }
      switch (find_in(t, h, key, /*is_old=*/false, &out)) {
        case Probe::kFound:
          return out;
        case Probe::kAbsent:
          return std::nullopt;
        default:  // kStale: a drained group in the current table means the
                  // root pointer moved on; restart with a fresh snapshot
          continue;
      }
    }
  }

  bool contains(const Key& key) const { return get(key).has_value(); }

  bool erase(const Key& key) {
    const std::uint64_t h = hash_(key);
    auto guard = acquire_guard();
    for (;;) {
      Table* t = guard.protect(0, table_);
      if (Table* old_t = guard.protect(1, t->old)) {
        drain_probe_chain(old_t, t, h);
        help_migrate(t, old_t);
      }
      switch (erase_in(t, h, key)) {
        case Wr::kErased:
          bump_size(-1);
          maybe_grow(t);  // tombstone mass can warrant a purge rehash
          return true;
        case Wr::kAbsent:
          return false;
        default:  // kStale
          continue;
      }
    }
  }

  // Exact at quiescence; consistent estimate while writers run.
  std::size_t size() const {
    long long total = 0;
    for (std::size_t i = 0; i < kSizeStripes; ++i) {
      // relaxed: striped statistic, no ordering against map contents.
      total += sizes_[i].value.load(std::memory_order_relaxed);
    }
    return total < 0 ? 0 : static_cast<std::size_t>(total);
  }

  // Slots in the current table (grows by doubling).
  std::size_t capacity() const {
    auto guard = acquire_guard();
    const Table* t = guard.protect(0, table_);
    return t->group_count * kGroupSlots;
  }

  bool rehash_in_progress() const {
    auto guard = acquire_guard();
    Table* t = guard.protect(0, table_);
    return t->old.load(std::memory_order_acquire) != nullptr;
  }

  // Force a doubling rehash to start (writers complete it cooperatively).
  // No-op if a migration is already in progress.
  void grow() {
    auto guard = acquire_guard();
    start_grow(guard.protect(0, table_), /*force_double=*/true);
  }

  Reclaimer& domain() noexcept { return domain_; }

 private:
  // ---- layout ------------------------------------------------------------

  static constexpr std::uint64_t kLockedBit = 1;
  static constexpr std::uint64_t kMovedBit = 2;
  static constexpr std::uint64_t kTerminalBit = 4;
  static constexpr std::uint64_t kSeqStep = 8;

  struct GroupHeader {
    Atomic<std::uint64_t> version{0};
    Atomic<std::uint64_t> tags[2] = {};
  };

  struct Slot {
    Atomic<Key> key{};
    Atomic<Value> value{};
  };

  struct Group {
    // Padded<> gives the metadata its own cache line(s): the version word
    // and tag words writers hammer never false-share with slot data.
    Padded<GroupHeader> header;
    Slot slots[kGroupSlots];

    GroupHeader& hdr() noexcept { return header.value; }
    const GroupHeader& hdr() const noexcept { return header.value; }
  };

  struct Table {
    const std::size_t group_count;  // power of two
    const std::size_t group_mask;
    const std::size_t grow_threshold;  // claimed slots triggering a double
    Group* const groups;
    // Predecessor still being drained (null when no rehash in flight).
    // Retired through the Reclaimer once every group is migrated.
    // unpadded: old/migrate_next/migrated only see writes during a
    // migration window (rare and short); the hot-path insert counters
    // used/tombs are Padded off this line, which is what matters.
    Atomic<Table*> old{nullptr};
    // Next old-group index to claim for migration; may overshoot.
    Atomic<std::uint64_t> migrate_next{0};
    // Old groups fully drained (compared against group_count to detach).
    Atomic<std::uint64_t> migrated{0};
    // EMPTY slots claimed so far; tomb reuse does not count (a tomb was
    // already counted when first claimed).  Padded: bumped by every
    // fresh-key insert, keep it off the migration words' line.
    Padded<Atomic<std::uint64_t>> used{};
    // Live tombstones (erases minus tomb reuses).  used - tombs is the
    // exact live-entry count of this table, which start_grow uses to pick
    // between doubling and a same-size tombstone purge.
    Padded<Atomic<std::uint64_t>> tombs{};

    explicit Table(std::size_t n)
        : group_count(n),
          group_mask(n - 1),
          grow_threshold(n * kGroupSlots * 13 / 16),
          groups(new Group[n]) {}

    Table(const Table&) = delete;
    Table& operator=(const Table&) = delete;

    ~Table() {
      // relaxed: a table is only destroyed at map teardown (externally
      // synchronized) or unpublished after a lost install race.
      delete old.load(std::memory_order_relaxed);
      delete[] groups;
    }
  };

  enum class Probe { kFound, kAbsent, kStale };
  enum class Wr { kInserted, kUpdated, kErased, kAbsent, kFull, kStale };

  // Prefer the reclaimer's amortized read lease (EpochDomain::lease —
  // standing announcement, two cached loads per op) over a full guard.
  // Reclaimers without one (hazard pointers, leaky) fall back to guard().
  auto acquire_guard() const { return lease_of(domain_); }

  // Fetch a group's first slot line in parallel with the demand loads of
  // its metadata line, before the dependent chain (version -> tags ->
  // matching slot) serializes them.  Two deliberate omissions: the metadata
  // line itself (the version load issues immediately after, so a prefetch
  // is a dead uop) and the line of slots 8-15 (claims always take the
  // lowest free slot, so occupancy — and therefore probe resolution —
  // concentrates in the first slot line, and fetching the second line on
  // every probe measurably costs more in cache traffic than its occasional
  // hit saves).
  static void prefetch_group_ro(const Group& g) {
    prefetch_ro(reinterpret_cast<const char*>(&g) + kCacheLineSize);
  }

  static void prefetch_group_rw(const Group& g) {
    prefetch_rw(reinterpret_cast<const char*>(&g) + kCacheLineSize);
  }

  static std::size_t groups_for(std::size_t slots) {
    const std::size_t g = (slots + kGroupSlots - 1) / kGroupSlots;
    return static_cast<std::size_t>(next_pow2(g == 0 ? 1 : g));
  }

  // ---- group locking (writers) -------------------------------------------

  // Acquire the group's writer lock; returns the locked version word, or
  // nullopt (lock NOT taken) if the group has been drained by migration.
  std::optional<std::uint64_t> lock_group(Group& g) const {
    std::uint32_t spins = 0;
    // E19 stats: one episode per DISTINCT race lost, never per spin
    // iteration.  Every dirty unlock advances the seqlock generation
    // (version / kSeqStep), so the generation distance observed between
    // entering this loop and acquiring the lock is exactly the number of
    // writer sessions that completed while we waited — each one a real
    // race we lost.  Counting the distance (rather than "was I ever
    // blocked") makes the tally immune to the waiter itself being
    // descheduled: a waiter asleep through a convoy of k holders still
    // counts k on its next load, while a waiter spinning a whole quantum
    // behind one parked holder still counts 1.  (A clean unlock does not
    // bump the generation; losing to a no-op writer is conservatively
    // uncounted.)
    std::uint64_t seen_gen = std::uint64_t(-1);
    for (;;) {
      // acquire: pairs with the releasing unlock so the critical section
      // we enter sees the previous writer's slot/tag stores.
      std::uint64_t v = g.hdr().version.load(std::memory_order_acquire);
      const std::uint64_t gen = v / kSeqStep;
      if (seen_gen == std::uint64_t(-1)) {
        seen_gen = gen;
      } else if (gen > seen_gen) {
        HashStats::contended(gen - seen_gen);
        seen_gen = gen;
      }
      if (v & kMovedBit) return std::nullopt;
      if (v & kLockedBit) {
        spin_wait(spins);
        continue;
      }
      if (g.hdr().version.compare_exchange_weak(
              v, v | kLockedBit, std::memory_order_acquire,
              std::memory_order_relaxed)) {  // relaxed: failure just retries
        // release fence: the odd (locked) version word must become visible
        // before any payload store below — the load-bearing seqlock fence
        // that lets readers reject mid-write snapshots.
        ccds::atomic_thread_fence(std::memory_order_release);
        return v | kLockedBit;
      }
      // Lost the lock CAS to another writer: the winner's dirty unlock
      // bumps the generation, so the next load counts it; no separate
      // count here.
      spin_wait(spins);
    }
  }

  // Release the lock, optionally publishing migration state bits.  `dirty`
  // bumps the seqlock generation so concurrent readers discard snapshots.
  void unlock_group(Group& g, std::uint64_t locked_v, std::uint64_t set_bits,
                    bool dirty) const {
    std::uint64_t next = (locked_v & ~kLockedBit) | set_bits;
    if (dirty) next += kSeqStep;
    // release: publishes every tag/slot store of the critical section to
    // the next acquirer and to validating readers.
    g.hdr().version.store(next, std::memory_order_release);
  }

  void set_tag(Group& g, int slot, std::uint8_t tag) {
    Atomic<std::uint64_t>& word = g.hdr().tags[slot >> 3];
    const int shift = 8 * (slot & 7);
    // relaxed: tag words are mutated only under the group lock and
    // published by the unlock release store; readers discard torn
    // combinations via the version re-check.
    std::uint64_t w = word.load(std::memory_order_relaxed);
    w = (w & ~(0xffull << shift)) |
        (static_cast<std::uint64_t>(tag) << shift);
    word.store(w, std::memory_order_relaxed);  // relaxed: see above
  }

  // ---- lock-free read side -----------------------------------------------

  // Probe one table for `key`.  In an old (draining) table, kMoved groups
  // are skipped — their former contents are in the new table — and a moved
  // group that was terminal ends the chain.  In the current table a moved
  // group means this table was superseded while we probed: kStale.
  Probe find_in(const Table* t, std::uint64_t h, const Key& key, bool is_old,
                Value* out) const {
    const std::uint8_t tag = tag_of_hash(h);
    const std::size_t home = h & t->group_mask;
    for (std::size_t i = 0; i < t->group_count; ++i) {
      const Group& g = t->groups[(home + i) & t->group_mask];
      prefetch_group_ro(g);
      HashStats::probe();  // E19: one work unit per group visited
      std::uint32_t spins = 0;
      // E19 stats: one contention episode per DISTINCT writer session this
      // read collides with (same generation-distance discipline as
      // lock_group).  Every dirty unlock advances the generation, so the
      // distance between the first version load in this group and the one
      // that finally validates counts exactly the writer sessions that
      // raced this read — a torn snapshot, a waited-out writer, and a
      // convoy slept through all fall out of the same rule, and spin
      // iterations behind one parked writer still count once.
      std::uint64_t seen_gen = std::uint64_t(-1);
      for (;;) {  // per-group seqlock retry loop
        // acquire: tag/slot loads below cannot float above this snapshot.
        const std::uint64_t v1 =
            g.hdr().version.load(std::memory_order_acquire);
        const std::uint64_t gen = v1 / kSeqStep;
        if (seen_gen == std::uint64_t(-1)) {
          seen_gen = gen;
        } else if (gen > seen_gen) {
          HashStats::contended(gen - seen_gen);
          seen_gen = gen;
        }
        if (v1 & kLockedBit) {  // writer in the group; wait it out
          spin_wait(spins);
          continue;
        }
        if (v1 & kMovedBit) {
          if (!is_old) return Probe::kStale;
          if (v1 & kTerminalBit) return Probe::kAbsent;
          break;  // drained mid-chain group: probe the next one
        }
        // relaxed: ordered collectively by the acquire above and the
        // acquire fence below; torn snapshots fail the version re-check.
        const std::uint64_t w0 =
            g.hdr().tags[0].load(std::memory_order_relaxed);
        const std::uint64_t w1 =
            g.hdr().tags[1].load(std::memory_order_relaxed);
        std::uint32_t m = group_match_tag(w0, w1, tag);
        bool found = false;
        Value val{};
        while (m != 0) {
          const int s = group_first_slot(m);
          m = group_clear_lowest(m);
          // relaxed (both): same seqlock discipline as the tag words.  The
          // value is loaded unconditionally — before the key compare
          // resolves — so the two same-line loads issue in parallel instead
          // of the value load waiting out a dependent branch; a mismatched
          // candidate just discards it.
          const Key k = g.slots[s].key.load(std::memory_order_relaxed);
          const Value v = g.slots[s].value.load(std::memory_order_relaxed);
          if (k == key) {
            val = v;
            found = true;
            break;
          }
        }
        // acquire fence: every relaxed load above completes before the
        // version re-check; with the writer's post-lock release fence this
        // guarantees a matching re-check implies an untorn snapshot.
        ccds::atomic_thread_fence(std::memory_order_acquire);
        if (g.hdr().version.load(std::memory_order_relaxed) != v1) {  // relaxed: the fence orders it
          // Torn snapshot: a writer raced this read.  Its dirty unlock
          // bumped the generation, so the retry's reload counts it.
          spin_wait(spins);
          continue;  // torn: retry this group
        }
        if (found) {
          *out = val;
          return Probe::kFound;
        }
        // Derived from the validated w0/w1 snapshot; computed only on the
        // miss path so the common found path skips the extra byte scan.
        if (group_match_empty(w0, w1) != 0) {
          return Probe::kAbsent;  // probe chain ends here
        }
        break;  // full group without the key: continue the chain
      }
    }
    return Probe::kAbsent;  // walked every group (pathological fill)
  }

  // ---- locked write side -------------------------------------------------

  Wr write_in(Table* t, std::uint64_t h, const Key& key, const Value& value) {
    const std::uint8_t tag = tag_of_hash(h);
    const std::size_t home = h & t->group_mask;
    for (std::size_t i = 0; i < t->group_count; ++i) {
      Group& g = t->groups[(home + i) & t->group_mask];
      prefetch_group_rw(g);
      const auto lv = lock_group(g);
      if (!lv) return Wr::kStale;  // current table drained under us
      // E19: probe counted inside the critical section so an injected stall
      // parks this writer while it holds the group lock — the interleaving
      // that makes shared-map contention visible on a 1-CPU host.
      HashStats::probe();
      // relaxed: we hold the group lock; the lock CAS acquired the previous
      // writer's stores and our unlock will publish ours.
      const std::uint64_t w0 = g.hdr().tags[0].load(std::memory_order_relaxed);
      const std::uint64_t w1 = g.hdr().tags[1].load(std::memory_order_relaxed);
      std::uint32_t m = group_match_tag(w0, w1, tag);
      while (m != 0) {
        const int s = group_first_slot(m);
        m = group_clear_lowest(m);
        if (g.slots[s].key.load(std::memory_order_relaxed) == key) {  // relaxed: lock held
          g.slots[s].value.store(value, std::memory_order_relaxed);  // relaxed: lock held
          unlock_group(g, *lv, 0, /*dirty=*/true);
          return Wr::kUpdated;
        }
      }
      const std::uint32_t empty = group_match_empty(w0, w1);
      if (empty != 0) {
        // Terminal group: the key is nowhere in the table (the probe
        // invariant says no key can live beyond the first empty-bearing
        // group), so claim a slot — reuse a tomb first, else an empty.
        const std::uint32_t tombs = group_match_tag(w0, w1, kTagTomb);
        const int s = tombs != 0 ? group_first_slot(tombs)
                                 : group_first_slot(empty);
        g.slots[s].key.store(key, std::memory_order_relaxed);    // relaxed: lock held
        g.slots[s].value.store(value, std::memory_order_relaxed);  // relaxed: lock held
        set_tag(g, s, tag);
        unlock_group(g, *lv, 0, /*dirty=*/true);
        if (tombs == 0) {
          // relaxed: occupancy heuristic feeding maybe_grow; no ordering.
          t->used.value.fetch_add(1, std::memory_order_relaxed);
        } else {
          // relaxed: same heuristic counter as `used`.
          t->tombs.value.fetch_sub(1, std::memory_order_relaxed);
        }
        return Wr::kInserted;
      }
      unlock_group(g, *lv, 0, /*dirty=*/false);  // full group: keep walking
    }
    return Wr::kFull;
  }

  Wr erase_in(Table* t, std::uint64_t h, const Key& key) {
    const std::uint8_t tag = tag_of_hash(h);
    const std::size_t home = h & t->group_mask;
    for (std::size_t i = 0; i < t->group_count; ++i) {
      Group& g = t->groups[(home + i) & t->group_mask];
      prefetch_group_rw(g);
      const auto lv = lock_group(g);
      if (!lv) return Wr::kStale;
      HashStats::probe();  // E19: in-lock, same rationale as write_in
      // relaxed: group lock held (see write_in).
      const std::uint64_t w0 = g.hdr().tags[0].load(std::memory_order_relaxed);
      const std::uint64_t w1 = g.hdr().tags[1].load(std::memory_order_relaxed);
      std::uint32_t m = group_match_tag(w0, w1, tag);
      while (m != 0) {
        const int s = group_first_slot(m);
        m = group_clear_lowest(m);
        if (g.slots[s].key.load(std::memory_order_relaxed) == key) {  // relaxed: lock held
          // Tombstone, never empty: empties may only shrink, or probe
          // chains of keys placed further along would break.
          set_tag(g, s, kTagTomb);
          unlock_group(g, *lv, 0, /*dirty=*/true);
          // relaxed: heuristic counter feeding the purge trigger.
          t->tombs.value.fetch_add(1, std::memory_order_relaxed);
          return Wr::kErased;
        }
      }
      const bool has_empty = group_match_empty(w0, w1) != 0;
      unlock_group(g, *lv, 0, /*dirty=*/false);
      if (has_empty) return Wr::kAbsent;
    }
    return Wr::kAbsent;
  }

  // ---- cooperative rehash ------------------------------------------------

  static constexpr int kMigrateQuantum = 8;  // old groups per writer op

  void maybe_grow(Table* t) {
    // Two triggers: claimed slots near capacity (grow or purge, start_grow
    // decides which), or tombstones wasting an eighth of the table —
    // erase-heavy churn degrades probe chains long before the claimed-slot
    // threshold fires, so purge on tombstone mass alone.  An eighth keeps
    // the purge cheap relative to the churn that produced it while holding
    // effective occupancy well under the point where probe chains start
    // spilling past the home group.
    // relaxed (both): heuristic reads; a stale value merely starts the
    // (idempotent, already-needed) rehash one trigger late or early.
    if (t->used.value.load(std::memory_order_relaxed) >= t->grow_threshold ||
        t->tombs.value.load(std::memory_order_relaxed) >=
            t->group_count * kGroupSlots / 8) {
      start_grow(t);
    }
  }

  void start_grow(Table* t, bool force_double = false) {
    // unguarded: `t` is pinned by the caller's operation guard (every
    // mutating op holds one across maybe_grow/grow before calling here).
    // One migration at a time: finish draining before doubling again.
    if (t->old.load(std::memory_order_acquire) != nullptr) return;
    if (table_.load(std::memory_order_acquire) != t) return;  // superseded
    // Doubling a table whose occupancy is mostly tombstones just halves the
    // load factor of an already-sparse table and doubles the cache reach of
    // every probe; what such a table needs is a same-size rehash that drops
    // the tombstones (drain_group copies live entries only).  Double only
    // when live entries alone fill half the table.
    // relaxed (both): heuristic counters; a racy read picks a size one
    // doubling off, which the next trigger corrects.
    const std::uint64_t live =
        t->used.value.load(std::memory_order_relaxed) -
        t->tombs.value.load(std::memory_order_relaxed);
    const bool dbl =
        force_double || live * 2 >= t->group_count * kGroupSlots;
    Table* bigger = new Table(t->group_count * (dbl ? 2 : 1));
    // relaxed, unguarded: `bigger` is thread-private until the CAS below
    // publishes it (and `t` is pinned by the caller's guard, see above).
    bigger->old.store(t, std::memory_order_relaxed);
    Table* expected = t;
    if (!table_.compare_exchange_strong(
            expected, bigger, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {  // relaxed: lost race, no ordering
      // Another thread installed a table first; ours was never visible.
      // relaxed, unguarded: never-published private table.
      bigger->old.store(nullptr, std::memory_order_relaxed);
      delete bigger;
    }
  }

  // Move every live entry of old group `g` into `t` and mark it moved.
  // Returns true iff this call performed the transition.
  bool drain_group(Table* t, Group& g) {
    const auto lv = lock_group(g);
    if (!lv) return false;  // already drained
    // relaxed: group lock held.
    const std::uint64_t w0 = g.hdr().tags[0].load(std::memory_order_relaxed);
    const std::uint64_t w1 = g.hdr().tags[1].load(std::memory_order_relaxed);
    std::uint32_t full = ~group_match_free(w0, w1) & 0xffffu;
    while (full != 0) {
      const int s = group_first_slot(full);
      full = group_clear_lowest(full);
      const Key k = g.slots[s].key.load(std::memory_order_relaxed);    // relaxed: lock held
      const Value v = g.slots[s].value.load(std::memory_order_relaxed);  // relaxed: lock held
      // Inserting while holding the old group's lock is deadlock-free:
      // lock order is always old-table -> new-table, and write_in holds at
      // most one new-table lock at a time.  The entry cannot already exist
      // in `t` (writers drain a key's old chain before touching `t`), and
      // `t` cannot be full (it has twice the capacity and growth triggers
      // at 13/16) — both enforced below.
      const Wr r = write_in(t, hash_(k), k, v);
      CCDS_ASSERT(r == Wr::kInserted);
    }
    // Publish the drained state.  Terminal records whether probe chains
    // ended here pre-drain, which old-table walkers still rely on.
    const bool terminal = group_match_empty(w0, w1) != 0;
    unlock_group(g, *lv, kMovedBit | (terminal ? kTerminalBit : 0),
                 /*dirty=*/true);
    return true;
  }

  // Before writing key h into the new table, empty the key's entire probe
  // chain in the old one so no stale copy can survive (or be migrated over
  // a fresher value later).
  void drain_probe_chain(Table* old_t, Table* t, std::uint64_t h) {
    const std::size_t home = h & old_t->group_mask;
    for (std::size_t i = 0; i < old_t->group_count; ++i) {
      Group& g = old_t->groups[(home + i) & old_t->group_mask];
      // acquire: a moved group's terminal bit decides chain termination,
      // and must be read no earlier than the drainer's publication.
      std::uint64_t v = g.hdr().version.load(std::memory_order_acquire);
      if (!(v & kMovedBit)) {
        if (drain_group(t, g)) {
          // acq_rel: the detach CAS in help_migrate must observe this
          // increment no earlier than the drain it counts.
          old_t->migrated.fetch_add(1, std::memory_order_acq_rel);
        }
        v = g.hdr().version.load(std::memory_order_acquire);  // re-read: now moved
      }
      if (v & kTerminalBit) return;  // chain ends at this group
    }
  }

  // Claim and drain a quantum of old groups, then detach + retire the old
  // table once every group is migrated.
  void help_migrate(Table* t, Table* old_t) {
    const std::uint64_t n = old_t->group_count;
    for (int q = 0; q < kMigrateQuantum; ++q) {
      // relaxed: the cursor only partitions work; the moved bit under the
      // group lock is what makes each drain exactly-once.
      const std::uint64_t idx =
          old_t->migrate_next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= n) break;
      if (drain_group(t, old_t->groups[idx])) {
        // acq_rel: see drain_probe_chain.
        old_t->migrated.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    // acquire: pairs with the drainers' acq_rel increments so the retire
    // happens-after every group's migration completed.
    // unguarded: `t` (and through it `old_t`) is pinned by the caller's
    // operation guard for the duration of help_migrate.
    if (old_t->migrated.load(std::memory_order_acquire) == n) {
      Table* expected = old_t;
      if (t->old.compare_exchange_strong(
              expected, nullptr, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {  // relaxed: already detached
        domain_.retire(old_t);
      }
    }
  }

  // ---- size accounting ---------------------------------------------------

  static constexpr std::size_t kSizeStripes = 32;

  void bump_size(long long d) {
    // relaxed: striped statistic, summed without ordering in size().
    sizes_[thread_id() & (kSizeStripes - 1)].value.fetch_add(
        d, std::memory_order_relaxed);
  }

  // ---- members -----------------------------------------------------------

  CCDS_CACHELINE_ALIGNED Atomic<Table*> table_;
  Padded<Atomic<long long>> sizes_[kSizeStripes] = {};
  mutable Reclaimer domain_;
  [[no_unique_address]] Hash hash_{};
};

}  // namespace ccds

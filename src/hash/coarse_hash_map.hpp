// Coarse-grained chained hash map: one lock around a sequential table.
//
// Baseline for experiment E7.  Resizing is trivial because the single lock
// already excludes everyone.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/hash.hpp"

namespace ccds {

template <typename Key, typename Value, typename Hash = MixHash<Key>,
          typename Lock = std::mutex>
class CoarseHashMap {
 public:
  explicit CoarseHashMap(std::size_t initial_buckets = 16)
      : buckets_(next_pow2(initial_buckets)) {}

  CoarseHashMap(const CoarseHashMap&) = delete;
  CoarseHashMap& operator=(const CoarseHashMap&) = delete;

  ~CoarseHashMap() {
    for (auto& head : buckets_) {
      Node* n = head;
      while (n != nullptr) {
        Node* next = n->next;
        delete n;
        n = next;
      }
    }
  }

  // Returns true if a new entry was created (false: value overwritten).
  bool insert(const Key& key, Value value) {
    std::lock_guard<Lock> g(lock_);
    if (size_ + 1 > buckets_.size() * 2) rehash(buckets_.size() * 2);
    Node*& head = bucket(key);
    for (Node* n = head; n != nullptr; n = n->next) {
      if (n->key == key) {
        n->value = std::move(value);
        return false;
      }
    }
    head = new Node{key, std::move(value), head};
    ++size_;
    return true;
  }

  std::optional<Value> get(const Key& key) const {
    std::lock_guard<Lock> g(lock_);
    for (Node* n = bucket(key); n != nullptr; n = n->next) {
      if (n->key == key) return n->value;
    }
    return std::nullopt;
  }

  bool contains(const Key& key) const {
    std::lock_guard<Lock> g(lock_);
    for (Node* n = bucket(key); n != nullptr; n = n->next) {
      if (n->key == key) return true;
    }
    return false;
  }

  bool erase(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    Node** prev = &bucket(key);
    for (Node* n = *prev; n != nullptr; prev = &n->next, n = n->next) {
      if (n->key == key) {
        *prev = n->next;
        delete n;
        --size_;
        return true;
      }
    }
    return false;
  }

  std::size_t size() const {
    std::lock_guard<Lock> g(lock_);
    return size_;
  }

 private:
  struct Node {
    Key key;
    Value value;
    Node* next;
  };

  Node*& bucket(const Key& key) {
    return buckets_[hash_(key) & (buckets_.size() - 1)];
  }
  Node* bucket(const Key& key) const {
    return buckets_[hash_(key) & (buckets_.size() - 1)];
  }

  void rehash(std::size_t new_count) {
    std::vector<Node*> fresh(new_count, nullptr);
    for (Node* head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        Node*& slot = fresh[hash_(head->key) & (new_count - 1)];
        head->next = slot;
        slot = head;
        head = next;
      }
    }
    buckets_.swap(fresh);
  }

  mutable Lock lock_;
  std::vector<Node*> buckets_;
  std::size_t size_ = 0;
  [[no_unique_address]] Hash hash_{};
};

}  // namespace ccds

// Striped (lock-per-stripe) chained hash map — the design behind the
// original java.util.concurrent.ConcurrentHashMap (Herlihy & Shavit ch. 13,
// "lock striping").
//
// A fixed power-of-two number of stripe locks is allocated up front; bucket
// b is protected by stripe b mod S.  Because the bucket count is always a
// multiple of S, a key's stripe never changes across resizes, so an
// operation locks exactly one stripe while a resize (rare) takes all of
// them in index order.  Reads on different stripes never contend.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/hash.hpp"
#include "core/padded.hpp"
#include "hash/hash_stats.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Value, typename Hash = MixHash<Key>,
          typename Lock = TtasLock, std::size_t kStripes = 64>
class StripedHashMap {
  static_assert((kStripes & (kStripes - 1)) == 0,
                "stripe count must be a power of two");

 public:
  explicit StripedHashMap(std::size_t initial_buckets = kStripes * 4)
      : buckets_(std::max(next_pow2(initial_buckets),
                          static_cast<std::uint64_t>(kStripes))) {
    bucket_count_.store(buckets_.size(), std::memory_order_relaxed);  // relaxed: ctor, map unpublished
  }

  StripedHashMap(const StripedHashMap&) = delete;
  StripedHashMap& operator=(const StripedHashMap&) = delete;

  ~StripedHashMap() {
    for (auto& head : buckets_) {
      Node* n = head;
      while (n != nullptr) {
        Node* next = n->next;
        delete n;
        n = next;
      }
    }
  }

  bool insert(const Key& key, Value value) {
    const std::uint64_t h = hash_(key);
    maybe_resize(h);
    auto g = lock_stripe(h);
    HashStats::probe();  // E19: bucket-head work unit, counted in-lock
    Node*& head = buckets_[h & (buckets_.size() - 1)];
    for (Node* n = head; n != nullptr; n = n->next) {
      HashStats::probe();  // E19: one work unit per chain node examined
      if (n->key == key) {
        n->value = std::move(value);
        return false;
      }
    }
    head = new Node{key, std::move(value), head};
    // relaxed: mutated only under the stripe lock; atomic so the unlocked
    // resize heuristic may peek without a data race.
    sizes_[h & (kStripes - 1)].value.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::optional<Value> get(const Key& key) const {
    const std::uint64_t h = hash_(key);
    auto g = lock_stripe(h);
    HashStats::probe();  // E19: bucket-head work unit
    for (Node* n = buckets_[h & (buckets_.size() - 1)]; n != nullptr;
         n = n->next) {
      HashStats::probe();  // E19: per chain node
      if (n->key == key) return n->value;
    }
    return std::nullopt;
  }

  bool contains(const Key& key) const {
    const std::uint64_t h = hash_(key);
    auto g = lock_stripe(h);
    HashStats::probe();  // E19: bucket-head work unit
    for (Node* n = buckets_[h & (buckets_.size() - 1)]; n != nullptr;
         n = n->next) {
      HashStats::probe();  // E19: per chain node
      if (n->key == key) return true;
    }
    return false;
  }

  bool erase(const Key& key) {
    const std::uint64_t h = hash_(key);
    auto g = lock_stripe(h);
    HashStats::probe();  // E19: bucket-head work unit
    Node** prev = &buckets_[h & (buckets_.size() - 1)];
    for (Node* n = *prev; n != nullptr; prev = &n->next, n = n->next) {
      HashStats::probe();  // E19: per chain node
      if (n->key == key) {
        *prev = n->next;
        delete n;
        sizes_[h & (kStripes - 1)].value.fetch_sub(1,
                                                   std::memory_order_relaxed);  // relaxed: stripe lock held
        return true;
      }
    }
    return false;
  }

  // Exact at quiescence; consistent estimate while writers run.
  std::size_t size() const {
    long long total = 0;
    for (std::size_t i = 0; i < kStripes; ++i) {
      std::lock_guard<Lock> g(locks_[i].value);
      total += sizes_[i].value.load(std::memory_order_relaxed);  // relaxed: stripe lock held
    }
    return total < 0 ? 0 : static_cast<std::size_t>(total);
  }

  std::size_t bucket_count() const {
    return bucket_count_.load(std::memory_order_acquire);
  }

 private:
  struct Node {
    Key key;
    Value value;
    Node* next;
  };

  Lock& stripe(std::uint64_t h) const {
    return locks_[h & (kStripes - 1)].value;
  }

  // Acquire the key's stripe, counting one contention episode when the
  // uncontended try_lock fast path loses (E19 work counters; free when
  // CCDS_HASH_STATS is off — try_lock on an uncontended TtasLock is the
  // same single CAS lock() would issue).
  std::lock_guard<Lock> lock_stripe(std::uint64_t h) const {
    Lock& l = stripe(h);
    if (!l.try_lock()) {
      HashStats::contended();
      l.lock();
    }
    return std::lock_guard<Lock>(l, std::adopt_lock);
  }

  // Double the table when the caller's stripe looks overloaded.  Takes every
  // stripe lock in index order (deadlock-free; concurrent resizes serialize
  // on stripe 0 and re-check under the locks).
  void maybe_resize(std::uint64_t h) {
    // O(1) heuristic peek: hashes spread uniformly over stripes, so the
    // caller's own stripe exceeding (2 * buckets / stripes) is a good proxy
    // for global load factor 2.  Race-free (atomic relaxed reads); the real
    // decision is re-made under all the locks.
    const long long per_stripe_limit =
        2 *
        static_cast<long long>(bucket_count_.load(std::memory_order_relaxed)) /
        static_cast<long long>(kStripes);
    if (sizes_[h & (kStripes - 1)].value.load(std::memory_order_relaxed) <=
        per_stripe_limit) {
      return;
    }

    for (std::size_t i = 0; i < kStripes; ++i) locks_[i].value.lock();
    long long total = 0;
    for (std::size_t i = 0; i < kStripes; ++i) {
      total += sizes_[i].value.load(std::memory_order_relaxed);  // relaxed: approximate sum
    }
    if (total >= static_cast<long long>(buckets_.size()) * 2) {
      const std::size_t new_count = buckets_.size() * 2;
      std::vector<Node*> fresh(new_count, nullptr);
      for (Node* head : buckets_) {
        while (head != nullptr) {
          Node* next = head->next;
          Node*& slot = fresh[hash_(head->key) & (new_count - 1)];
          head->next = slot;
          slot = head;
          head = next;
        }
      }
      buckets_.swap(fresh);
      bucket_count_.store(new_count, std::memory_order_release);
    }
    for (std::size_t i = kStripes; i-- > 0;) locks_[i].value.unlock();
  }

  mutable Padded<Lock> locks_[kStripes];
  // Per-stripe element counts.  Mutated only under the corresponding stripe
  // lock; atomic so the resize heuristic can peek lock-free.
  Padded<std::atomic<long long>> sizes_[kStripes] = {};
  std::vector<Node*> buckets_;
  std::atomic<std::size_t> bucket_count_{0};  // unpadded: written once in the ctor
  [[no_unique_address]] Hash hash_{};
};

}  // namespace ccds

// Reader-writer spin lock with writer preference.
//
// State word: bit 31 = writer holds; low bits = active reader count.  A
// separate waiting-writer counter lets arriving readers defer to queued
// writers so that a steady stream of readers cannot starve writers.
// Meets SharedLockable (lock_shared/unlock_shared) plus BasicLockable, so it
// composes with std::shared_lock and std::lock_guard.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/arch.hpp"

namespace ccds {

class RwSpinLock {
 public:
  void lock() noexcept {  // exclusive
    std::uint32_t spins = 0;
    writers_waiting_.fetch_add(1, std::memory_order_relaxed);  // relaxed: advisory counter for deference
    for (;;) {
      std::uint32_t expected = 0;
      if (state_.compare_exchange_weak(expected, kWriterBit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {  // relaxed: failure re-enters the spin loop
        break;
      }
      while (state_.load(std::memory_order_relaxed) != 0) spin_wait(spins);  // relaxed: spin hint; the CAS acquires
    }
    writers_waiting_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: advisory counter
  }

  bool try_lock() noexcept {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriterBit,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);  // relaxed: failure just returns false
  }

  void unlock() noexcept {
    state_.store(0, std::memory_order_release);
  }

  void lock_shared() noexcept {
    std::uint32_t spins = 0;
    for (;;) {
      // Defer to queued writers (writer preference).
      while (writers_waiting_.load(std::memory_order_relaxed) != 0 ||  // relaxed: heuristic gate
             (state_.load(std::memory_order_relaxed) & kWriterBit) != 0) {  // relaxed: heuristic gate
        spin_wait(spins);
      }
      const std::uint32_t prev =
          state_.fetch_add(1, std::memory_order_acquire);
      if ((prev & kWriterBit) == 0) return;
      // Raced with a writer; undo and retry.
      state_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: undoing our own optimistic add
    }
  }

  bool try_lock_shared() noexcept {
    const std::uint32_t prev = state_.fetch_add(1, std::memory_order_acquire);
    if ((prev & kWriterBit) == 0) return true;
    state_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: undoing our own optimistic add
    return false;
  }

  void unlock_shared() noexcept {
    state_.fetch_sub(1, std::memory_order_release);
  }

 private:
  static constexpr std::uint32_t kWriterBit = 1u << 31;
  CCDS_CACHELINE_ALIGNED std::atomic<std::uint32_t> state_{0};
  CCDS_CACHELINE_ALIGNED std::atomic<std::uint32_t> writers_waiting_{0};
};

}  // namespace ccds

// The Combiner engine protocol: the policy concept, the engine-traits
// layer, and the shared plumbing every combining engine builds on.
//
// ccds has four combining engines — FlatCombiner (scan-all-slots, Hendler
// et al. 2010), CcSynch (swap-append list, Fatourou & Kallimanis 2012),
// HSynch (per-topology-node CC-Synch lists under a global lock, the
// NUMA-aware member of the Synch framework) and PSim (the P-Sim wait-free
// universal construction: announce array + copy-apply-SC) — and all four
// expose the same surface:
//
//   * apply(op)          — execute `op(state)` atomically, return its result;
//   * apply_batch(ops)   — submit a contiguous batch of operations as ONE
//                          combining request (the OBATCHER entry point: the
//                          batch is executed back-to-back with no other
//                          operation interleaved, paying one synchronization
//                          episode for k operations);
//   * apply_sorted_batch(ops)
//                        — the ordered-structure extension point: the
//                          submitter pre-sorts its run (Op::prepare), the
//                          request is published as MERGEABLE, and a combiner
//                          that finds several pending runs of the same Op
//                          type executes them as one Op::apply_runs call —
//                          the OBATCHER shape, where the combining episode
//                          sees the union of all pending batches and can
//                          apply it in key order / fan it out by key range;
//   * apply_locked(op)   — direct exclusive access for initialization and
//                          inspection, serialized with combining passes.
//
// `CombinerFor<Engine, State>` spells that contract out as a C++20 concept
// so the combining fronts (CombiningQueue / CombiningStack /
// CombiningCounter / BatchedSkipListSet) can accept any engine as a
// drop-in template argument.  The list-based engines get apply_batch and
// apply_sorted_batch from the CombinerBatchOps CRTP base below, so the
// batch-episode semantics are identical by construction; each engine only
// implements the mergeable-request publication (submit_merged) its protocol
// requires.  (PSim implements the batch surface directly: its helpers
// re-execute operations against discarded state copies, so batches are
// snapshotted into the announce record rather than run in place.)
//
// The engine-TRAITS layer (`combiner_traits<E>`) is how callers pick an
// engine without reading its header: every engine publishes
//
//   kIsWaitFree      — operations complete in a bounded number of the
//                      CALLING thread's steps, regardless of scheduling
//                      (PSim; the lock/handoff engines are blocking);
//   kIsHierarchical  — the engine consults core/topology.hpp and routes
//                      requests through per-node structures (HSynch);
//   kMaxEngineThreads— the dense-thread-id capacity the engine's fixed
//                      per-thread structures are sized for.
//
// sync/engines.hpp is the single enrollment point: the
// CCDS_COMBINER_ENGINES X-macro and the typed-test/bench helpers there are
// what fronts, typed suites, model suites and benches consume, so a new
// engine enrolls everywhere by one edit.
//
// This header also owns detail::ResultSlot<R>: aligned storage for a
// combined-op result that the *combiner* constructs in place.  Results are
// therefore not required to be default-constructible (they used to be, via
// value-initialized detail::FcResult) — any move-constructible R works, and
// for void nothing is stored at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

#include "core/thread_registry.hpp"

namespace ccds {

namespace detail {

// Preemption-injection hook, shared by every engine: combiners call
// preemption_point() between serving steps (and PSim between building a
// state copy and its SC attempt), so tests and benches can park or delay a
// combiner exactly where a real preemption would hurt most.  Unset costs
// one relaxed load; the model checker needs no hook (its scheduler explores
// preemptions natively), so this stays a plain std::atomic.
using PreemptHook = void (*)(void* arg);

inline std::atomic<PreemptHook>& preempt_hook() noexcept {
  static std::atomic<PreemptHook> hook{nullptr};
  return hook;
}

inline std::atomic<void*>& preempt_hook_arg() noexcept {
  static std::atomic<void*> arg{nullptr};
  return arg;
}

// Install order matters: arg first, then fn (a caller seeing the fn sees
// its arg).  Passing nullptr uninstalls.
inline void set_preemption_hook(PreemptHook fn, void* arg) noexcept {
  if (fn == nullptr) {
    preempt_hook().store(nullptr, std::memory_order_release);
    preempt_hook_arg().store(nullptr, std::memory_order_release);
    return;
  }
  preempt_hook_arg().store(arg, std::memory_order_release);
  preempt_hook().store(fn, std::memory_order_release);
}

inline void preemption_point() noexcept {
  // relaxed: the fast path must be one load; installers synchronize with
  // the hooked threads externally (install-before-start / uninstall-after-
  // join, or an always-safe hook body).
  if (PreemptHook fn = preempt_hook().load(std::memory_order_relaxed)) {
    fn(preempt_hook_arg().load(std::memory_order_acquire));
  }
}

// Uninitialized, correctly-aligned storage for one combined-op result.  The
// submitting thread owns the slot (it lives on its stack); the combiner
// constructs the value with construct_from(); the submitter moves it out
// with take() after observing its completion flag.  The combining protocol
// guarantees construct_from() happens-before take() and each runs exactly
// once, so no constructed-flag is needed; combined ops must not throw (they
// run inside another thread's combining pass).
template <typename R>
class ResultSlot {
 public:
  ResultSlot() = default;
  ResultSlot(const ResultSlot&) = delete;
  ResultSlot& operator=(const ResultSlot&) = delete;

  template <typename F, typename State>
  void construct_from(F& fn, State& s) {
    ::new (static_cast<void*>(buf_)) R(fn(s));
  }

  R take() {
    R* p = std::launder(reinterpret_cast<R*>(buf_));
    R out = std::move(*p);
    p->~R();
    return out;
  }

 private:
  alignas(R) unsigned char buf_[sizeof(R)];
};

template <>
class ResultSlot<void> {};

// Type-erased trampoline shared by both engines' request records: `ctx`
// points at the caller's callable, `res` at its ResultSlot (null/ignored for
// void results).
template <typename State, typename F>
void run_erased(void* ctx, void* res, State& s) {
  using R = std::invoke_result_t<F&, State&>;
  auto& fn = *static_cast<F*>(ctx);
  if constexpr (std::is_void_v<R>) {
    (void)res;
    fn(s);
  } else {
    static_cast<ResultSlot<R>*>(res)->construct_from(fn, s);
  }
}

// A mergeable sorted run as published to the engine: the submitter's
// contiguous Op array, already sorted by Op::prepare.  Lives on the
// submitter's stack for the duration of the request.
struct SortedRun {
  void* data;
  std::size_t len;
};

// The type-erased entry point a combiner calls for a GROUP of pending
// sorted runs of the same Op type: each ctx is a SortedRun*, in combining
// (linearization) order.
template <typename State>
using MergedRunFn = void (*)(void* const* ctxs, std::size_t n, State& s);

template <typename State, typename Op>
void run_merged_erased(void* const* ctxs, std::size_t n, State& s) {
  std::span<Op> runs[kMaxThreads];
  for (std::size_t i = 0; i < n; ++i) {
    const SortedRun& r = *static_cast<const SortedRun*>(ctxs[i]);
    runs[i] = std::span<Op>(static_cast<Op*>(r.data), r.len);
  }
  Op::apply_runs(std::span<std::span<Op>>(runs, n), s);
}

// Concept archetype for the sorted-batch surface (a function pointer cannot
// carry the static prepare/apply_runs hooks a real batch Op type provides).
template <typename State>
struct BatchProbeOp {
  static void prepare(std::span<BatchProbeOp>) {}
  static void apply_runs(std::span<std::span<BatchProbeOp>>, State&) {}
  void operator()(State&) {}
};

}  // namespace detail

// Shared batch-episode surface, CRTP'd onto both engines so their semantics
// are identical by construction:
//
//   * apply_batch: the whole span runs back-to-back inside one combining
//     request (one publication, one spin episode), no foreign op inside;
//   * apply_sorted_batch: Op::prepare sorts the caller's run on the
//     SUBMITTING thread (so sort work parallelizes across submitters), then
//     the run is published as a mergeable request via the engine's
//     submit_merged.  A combiner that encounters several pending runs of
//     the same Op type hands them ALL to one Op::apply_runs call, in
//     combining order — that call merges the sorted runs and applies the
//     union in key order (and may fan disjoint key ranges out to helper
//     threads; see skiplist/batched_skiplist.hpp).  Per-op results live in
//     the ops themselves; every member request completes only after
//     apply_runs returns, so results are fully written before any
//     submitter's wait drops.
template <typename Derived, typename State>
class CombinerBatchOps {
 public:
  template <typename Op>
  void apply_batch(std::span<Op> ops) {
    if (ops.empty()) return;
    derived().apply([ops](State& s) {
      for (Op& op : ops) op(s);
    });
  }

  template <typename Op>
  void apply_sorted_batch(std::span<Op> ops) {
    if (ops.empty()) return;
    Op::prepare(ops);
    detail::SortedRun run{ops.data(), ops.size()};
    derived().submit_merged(&detail::run_merged_erased<State, Op>, &run);
  }

 private:
  Derived& derived() { return static_cast<Derived&>(*this); }
};

// The engine-traits layer: a uniform, compile-time view of what an engine
// guarantees, read off constants every engine must publish.  Callers pick
// engines by traits (docs/choosing_a_structure.md has the selection table)
// and the typed trait suite pins each engine's row down.
template <typename E>
struct combiner_traits {
  static constexpr bool is_wait_free = E::kIsWaitFree;
  static constexpr bool is_hierarchical = E::kIsHierarchical;
  static constexpr std::size_t max_threads = E::kMaxEngineThreads;
};

// A combining engine over sequential `State`.  Modeled by FlatCombiner,
// CcSynch, HSynch and PSim; the structure fronts static_assert it so a
// further engine (e.g. a future DSM-Synch for cacheless machines) plugs in
// by conforming.  The trait constants are part of the protocol: an engine
// that cannot state its progress guarantee does not enroll.
template <typename C, typename State>
concept CombinerFor =
    std::is_default_constructible_v<C> &&
    requires(C c, void (*vop)(State&), int (*iop)(State&),
             std::span<void (*)(State&)> batch,
             std::span<detail::BatchProbeOp<State>> sorted) {
      { c.apply(vop) } -> std::same_as<void>;
      { c.apply(iop) } -> std::same_as<int>;
      { c.apply_locked(iop) } -> std::same_as<int>;
      { c.apply_batch(batch) } -> std::same_as<void>;
      { c.apply_sorted_batch(sorted) } -> std::same_as<void>;
      { combiner_traits<C>::is_wait_free } -> std::convertible_to<bool>;
      { combiner_traits<C>::is_hierarchical } -> std::convertible_to<bool>;
      { combiner_traits<C>::max_threads } -> std::convertible_to<std::size_t>;
    };

}  // namespace ccds

// The Combiner policy concept and shared plumbing for combining engines.
//
// ccds has two combining engines — FlatCombiner (scan-all-slots, Hendler et
// al. 2010) and CcSynch (swap-append list, Fatourou & Kallimanis 2012) — and
// both expose the same surface:
//
//   * apply(op)          — execute `op(state)` atomically, return its result;
//   * apply_batch(ops)   — submit a contiguous batch of operations as ONE
//                          combining request (the OBATCHER entry point: the
//                          batch is executed back-to-back with no other
//                          operation interleaved, paying one synchronization
//                          episode for k operations);
//   * apply_sorted_batch(ops)
//                        — the ordered-structure extension point: the
//                          submitter pre-sorts its run (Op::prepare), the
//                          request is published as MERGEABLE, and a combiner
//                          that finds several pending runs of the same Op
//                          type executes them as one Op::apply_runs call —
//                          the OBATCHER shape, where the combining episode
//                          sees the union of all pending batches and can
//                          apply it in key order / fan it out by key range;
//   * apply_locked(op)   — direct exclusive access for initialization and
//                          inspection, serialized with combining passes.
//
// `CombinerFor<Engine, State>` spells that contract out as a C++20 concept
// so the combining fronts (CombiningQueue / CombiningStack /
// CombiningCounter / BatchedSkipListSet) can accept either engine as a
// drop-in template argument.  Both engines get apply_batch and
// apply_sorted_batch from the CombinerBatchOps CRTP base below, so the
// batch-episode semantics are identical by construction; each engine only
// implements the mergeable-request publication (submit_merged) its protocol
// requires.
//
// This header also owns detail::ResultSlot<R>: aligned storage for a
// combined-op result that the *combiner* constructs in place.  Results are
// therefore not required to be default-constructible (they used to be, via
// value-initialized detail::FcResult) — any move-constructible R works, and
// for void nothing is stored at all.
#pragma once

#include <cstddef>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

#include "core/thread_registry.hpp"

namespace ccds {

namespace detail {

// Uninitialized, correctly-aligned storage for one combined-op result.  The
// submitting thread owns the slot (it lives on its stack); the combiner
// constructs the value with construct_from(); the submitter moves it out
// with take() after observing its completion flag.  The combining protocol
// guarantees construct_from() happens-before take() and each runs exactly
// once, so no constructed-flag is needed; combined ops must not throw (they
// run inside another thread's combining pass).
template <typename R>
class ResultSlot {
 public:
  ResultSlot() = default;
  ResultSlot(const ResultSlot&) = delete;
  ResultSlot& operator=(const ResultSlot&) = delete;

  template <typename F, typename State>
  void construct_from(F& fn, State& s) {
    ::new (static_cast<void*>(buf_)) R(fn(s));
  }

  R take() {
    R* p = std::launder(reinterpret_cast<R*>(buf_));
    R out = std::move(*p);
    p->~R();
    return out;
  }

 private:
  alignas(R) unsigned char buf_[sizeof(R)];
};

template <>
class ResultSlot<void> {};

// Type-erased trampoline shared by both engines' request records: `ctx`
// points at the caller's callable, `res` at its ResultSlot (null/ignored for
// void results).
template <typename State, typename F>
void run_erased(void* ctx, void* res, State& s) {
  using R = std::invoke_result_t<F&, State&>;
  auto& fn = *static_cast<F*>(ctx);
  if constexpr (std::is_void_v<R>) {
    (void)res;
    fn(s);
  } else {
    static_cast<ResultSlot<R>*>(res)->construct_from(fn, s);
  }
}

// A mergeable sorted run as published to the engine: the submitter's
// contiguous Op array, already sorted by Op::prepare.  Lives on the
// submitter's stack for the duration of the request.
struct SortedRun {
  void* data;
  std::size_t len;
};

// The type-erased entry point a combiner calls for a GROUP of pending
// sorted runs of the same Op type: each ctx is a SortedRun*, in combining
// (linearization) order.
template <typename State>
using MergedRunFn = void (*)(void* const* ctxs, std::size_t n, State& s);

template <typename State, typename Op>
void run_merged_erased(void* const* ctxs, std::size_t n, State& s) {
  std::span<Op> runs[kMaxThreads];
  for (std::size_t i = 0; i < n; ++i) {
    const SortedRun& r = *static_cast<const SortedRun*>(ctxs[i]);
    runs[i] = std::span<Op>(static_cast<Op*>(r.data), r.len);
  }
  Op::apply_runs(std::span<std::span<Op>>(runs, n), s);
}

// Concept archetype for the sorted-batch surface (a function pointer cannot
// carry the static prepare/apply_runs hooks a real batch Op type provides).
template <typename State>
struct BatchProbeOp {
  static void prepare(std::span<BatchProbeOp>) {}
  static void apply_runs(std::span<std::span<BatchProbeOp>>, State&) {}
  void operator()(State&) {}
};

}  // namespace detail

// Shared batch-episode surface, CRTP'd onto both engines so their semantics
// are identical by construction:
//
//   * apply_batch: the whole span runs back-to-back inside one combining
//     request (one publication, one spin episode), no foreign op inside;
//   * apply_sorted_batch: Op::prepare sorts the caller's run on the
//     SUBMITTING thread (so sort work parallelizes across submitters), then
//     the run is published as a mergeable request via the engine's
//     submit_merged.  A combiner that encounters several pending runs of
//     the same Op type hands them ALL to one Op::apply_runs call, in
//     combining order — that call merges the sorted runs and applies the
//     union in key order (and may fan disjoint key ranges out to helper
//     threads; see skiplist/batched_skiplist.hpp).  Per-op results live in
//     the ops themselves; every member request completes only after
//     apply_runs returns, so results are fully written before any
//     submitter's wait drops.
template <typename Derived, typename State>
class CombinerBatchOps {
 public:
  template <typename Op>
  void apply_batch(std::span<Op> ops) {
    if (ops.empty()) return;
    derived().apply([ops](State& s) {
      for (Op& op : ops) op(s);
    });
  }

  template <typename Op>
  void apply_sorted_batch(std::span<Op> ops) {
    if (ops.empty()) return;
    Op::prepare(ops);
    detail::SortedRun run{ops.data(), ops.size()};
    derived().submit_merged(&detail::run_merged_erased<State, Op>, &run);
  }

 private:
  Derived& derived() { return static_cast<Derived&>(*this); }
};

// A combining engine over sequential `State`.  Modeled by FlatCombiner and
// CcSynch; the structure fronts static_assert it so a third engine (e.g. a
// future DSM-Synch for cacheless/NUMA machines) plugs in by conforming.
template <typename C, typename State>
concept CombinerFor =
    std::is_default_constructible_v<C> &&
    requires(C c, void (*vop)(State&), int (*iop)(State&),
             std::span<void (*)(State&)> batch,
             std::span<detail::BatchProbeOp<State>> sorted) {
      { c.apply(vop) } -> std::same_as<void>;
      { c.apply(iop) } -> std::same_as<int>;
      { c.apply_locked(iop) } -> std::same_as<int>;
      { c.apply_batch(batch) } -> std::same_as<void>;
      { c.apply_sorted_batch(sorted) } -> std::same_as<void>;
    };

}  // namespace ccds

// The Combiner policy concept and shared plumbing for combining engines.
//
// ccds has two combining engines — FlatCombiner (scan-all-slots, Hendler et
// al. 2010) and CcSynch (swap-append list, Fatourou & Kallimanis 2012) — and
// both expose the same surface:
//
//   * apply(op)          — execute `op(state)` atomically, return its result;
//   * apply_batch(ops)   — submit a contiguous batch of operations as ONE
//                          combining request (the OBATCHER entry point: the
//                          batch is executed back-to-back with no other
//                          operation interleaved, paying one synchronization
//                          episode for k operations);
//   * apply_locked(op)   — direct exclusive access for initialization and
//                          inspection, serialized with combining passes.
//
// `CombinerFor<Engine, State>` spells that contract out as a C++20 concept
// so the combining fronts (CombiningQueue / CombiningStack /
// CombiningCounter) can accept either engine as a drop-in template argument.
//
// This header also owns detail::ResultSlot<R>: aligned storage for a
// combined-op result that the *combiner* constructs in place.  Results are
// therefore not required to be default-constructible (they used to be, via
// value-initialized detail::FcResult) — any move-constructible R works, and
// for void nothing is stored at all.
#pragma once

#include <cstddef>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

namespace ccds {

namespace detail {

// Uninitialized, correctly-aligned storage for one combined-op result.  The
// submitting thread owns the slot (it lives on its stack); the combiner
// constructs the value with construct_from(); the submitter moves it out
// with take() after observing its completion flag.  The combining protocol
// guarantees construct_from() happens-before take() and each runs exactly
// once, so no constructed-flag is needed; combined ops must not throw (they
// run inside another thread's combining pass).
template <typename R>
class ResultSlot {
 public:
  ResultSlot() = default;
  ResultSlot(const ResultSlot&) = delete;
  ResultSlot& operator=(const ResultSlot&) = delete;

  template <typename F, typename State>
  void construct_from(F& fn, State& s) {
    ::new (static_cast<void*>(buf_)) R(fn(s));
  }

  R take() {
    R* p = std::launder(reinterpret_cast<R*>(buf_));
    R out = std::move(*p);
    p->~R();
    return out;
  }

 private:
  alignas(R) unsigned char buf_[sizeof(R)];
};

template <>
class ResultSlot<void> {};

// Type-erased trampoline shared by both engines' request records: `ctx`
// points at the caller's callable, `res` at its ResultSlot (null/ignored for
// void results).
template <typename State, typename F>
void run_erased(void* ctx, void* res, State& s) {
  using R = std::invoke_result_t<F&, State&>;
  auto& fn = *static_cast<F*>(ctx);
  if constexpr (std::is_void_v<R>) {
    (void)res;
    fn(s);
  } else {
    static_cast<ResultSlot<R>*>(res)->construct_from(fn, s);
  }
}

}  // namespace detail

// A combining engine over sequential `State`.  Modeled by FlatCombiner and
// CcSynch; the structure fronts static_assert it so a third engine (e.g. a
// future DSM-Synch for cacheless/NUMA machines) plugs in by conforming.
template <typename C, typename State>
concept CombinerFor =
    std::is_default_constructible_v<C> &&
    requires(C c, void (*vop)(State&), int (*iop)(State&),
             std::span<void (*)(State&)> batch) {
      { c.apply(vop) } -> std::same_as<void>;
      { c.apply(iop) } -> std::same_as<int>;
      { c.apply_locked(iop) } -> std::same_as<int>;
      { c.apply_batch(batch) } -> std::same_as<void>;
    };

}  // namespace ccds

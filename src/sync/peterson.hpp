// Classic software mutual exclusion: Peterson's two-thread lock and the
// n-thread Filter lock (Peterson 1981; presentation follows Herlihy &
// Shavit ch. 2).
//
// These are the survey's *pedagogical* locks: starvation-free mutual
// exclusion from reads and writes alone, no RMW instructions.  On modern
// hardware they need sequentially-consistent atomics (the algorithm's
// correctness rests on store-load ordering that acquire/release does not
// provide), which makes them slower than a TAS lock — they are here for
// completeness and for the memory-model test they embody, not for use.
//
// PetersonLock: exactly two parties, addressed by slot 0/1 (pass the slot
// explicitly — thread ids don't map to 0/1).  FilterLock: up to N parties
// addressed by ccds::thread_id().
#pragma once

#include <atomic>
#include <cstddef>

#include "core/arch.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

class PetersonLock {
 public:
  void lock(int me) noexcept {
    CCDS_ASSERT(me == 0 || me == 1);
    const int other = 1 - me;
    // seq_cst throughout: the proof needs flag[me]=true to be globally
    // ordered before the read of flag[other] (store-load), which x86 TSO
    // would already reorder without a fence.  asymmetric: not applicable —
    // both sides of this Dekker are equally hot (there is no rare
    // "reclaimer" side to push the fence onto), so the symmetric fence
    // stays.
    flag_[me].store(true, std::memory_order_seq_cst);
    victim_.store(me, std::memory_order_seq_cst);
    std::uint32_t spins = 0;
    while (flag_[other].load(std::memory_order_seq_cst) &&
           victim_.load(std::memory_order_seq_cst) == me) {
      spin_wait(spins);
    }
  }

  void unlock(int me) noexcept {
    flag_[me].store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_[2] = {};  // unpadded: textbook lock; contention is the point
  std::atomic<int> victim_{0};  // unpadded: textbook lock; contention is the point
};

// Filter lock: n-1 levels, each filtering out at least one thread; level
// n-1 admits exactly one.  O(n) space and O(n) lock time — quadratic total
// work under full contention, the price of no-RMW mutual exclusion.
class FilterLock {
 public:
  void lock() noexcept {
    const std::size_t me = thread_id();
    for (std::size_t lvl = 1; lvl < kMaxThreads; ++lvl) {
      level_[me].store(lvl, std::memory_order_seq_cst);
      victim_[lvl].store(me, std::memory_order_seq_cst);
      // Wait while someone else is at this level or higher AND we are the
      // victim of this level.
      std::uint32_t spins = 0;
      for (;;) {
        bool conflict = false;
        for (std::size_t k = 0; k < kMaxThreads; ++k) {
          if (k != me &&
              level_[k].load(std::memory_order_seq_cst) >= lvl) {
            conflict = true;
            break;
          }
        }
        if (!conflict ||
            victim_[lvl].load(std::memory_order_seq_cst) != me) {
          break;
        }
        spin_wait(spins);
      }
    }
  }

  void unlock() noexcept {
    level_[thread_id()].store(0, std::memory_order_release);
  }

 private:
  std::atomic<std::size_t> level_[kMaxThreads] = {};  // unpadded: pedagogical; arrays scanned whole
  std::atomic<std::size_t> victim_[kMaxThreads] = {};  // unpadded: pedagogical; arrays scanned whole
};

}  // namespace ccds

// Ticket lock: FIFO-fair spin lock.
//
// Threads take a ticket with fetch_add and spin until the grant counter
// reaches their ticket.  Fair (no starvation, unlike TAS variants) and a
// single uncontended RMW to acquire, but all waiters spin on the same grant
// word, so it still scales poorly past a handful of cores — the motivation
// the survey gives for queue locks (MCS/CLH).
#pragma once

#include <cstdint>

#include "core/arch.hpp"
#include "core/atomic.hpp"

namespace ccds {

class TicketLock {
 public:
  void lock() noexcept {
    std::uint32_t spins = 0;
    const std::uint32_t my =
        next_.fetch_add(1, std::memory_order_relaxed);  // relaxed: ticket handout; grant load acquires
    for (;;) {
      const std::uint32_t cur = grant_.load(std::memory_order_acquire);
      if (cur == my) return;
      // Proportional backoff: pause roughly in proportion to queue position
      // so far-away waiters poll less often (yielding periodically so a
      // preempted holder can run).
      const std::uint32_t dist = my - cur;
      for (std::uint32_t i = 0; i < dist * 16; ++i) spin_wait(spins);
    }
  }

  bool try_lock() noexcept {
    std::uint32_t cur = grant_.load(std::memory_order_acquire);
    std::uint32_t expected = cur;
    // Lock is free iff next == grant; claim by bumping next.
    return next_.compare_exchange_strong(expected, cur + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);  // relaxed: failure just returns false
  }

  void unlock() noexcept {
    grant_.store(grant_.load(std::memory_order_relaxed) + 1,  // relaxed: we hold the lock; grant_ is ours
                 std::memory_order_release);
  }

 private:
  CCDS_CACHELINE_ALIGNED Atomic<std::uint32_t> next_{0};
  CCDS_CACHELINE_ALIGNED Atomic<std::uint32_t> grant_{0};
};

}  // namespace ccds

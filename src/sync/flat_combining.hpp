// Flat combining (Hendler, Incze, Shavit, Tzafrir 2010).
//
// Instead of every thread acquiring a lock for its own operation, a thread
// publishes its operation in a per-thread slot; whichever thread currently
// holds the combiner lock scans the slots and executes everyone's pending
// operations against the sequential state.  This amortizes the lock handoff
// over many operations and keeps the data structure itself single-threaded.
//
// FlatCombiner<State> wraps any sequential state; operations are arbitrary
// callables `R(State&)`, executed with mutual exclusion but submitted
// concurrently.  The linearization point of an operation is its execution by
// the combiner.
//
// FlatCombiner models the Combiner policy (sync/combiner.hpp), so it is
// drop-in interchangeable with the other engines (CcSynch / HSynch / PSim —
// sync/engines.hpp) in the combining fronts (CombiningQueue /
// CombiningStack / CombiningCounter / BatchedSkipListSet).  Structurally it
// differs in how requests reach the combiner: FlatCombiner scans ALL
// kMaxThreads publication slots per pass and arbitrates the combiner role
// with a lock; the list engines swap-append requests onto a list and walk
// exactly the pending ones.  Under high thread counts the O(threads) scan
// and the lock handoff are what CC-Synch's single-exchange protocol
// removes.
#pragma once

#include <atomic>
#include <span>
#include <type_traits>
#include <utility>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "sync/combiner.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename State>
class FlatCombiner : public CombinerBatchOps<FlatCombiner<State>, State> {
  friend class CombinerBatchOps<FlatCombiner<State>, State>;

 public:
  // Engine traits (sync/combiner.hpp): a preempted lock-holding combiner
  // stalls every spinning requester, so flat combining is blocking; one
  // flat slot array, so it is not topology-aware.
  static constexpr bool kIsWaitFree = false;
  static constexpr bool kIsHierarchical = false;
  static constexpr std::size_t kMaxEngineThreads = kMaxThreads;

  FlatCombiner() = default;
  explicit FlatCombiner(State initial) : state_(std::move(initial)) {}

  // Execute `op(state)` with combining; returns op's result.  The result is
  // constructed in place by the combiner (detail::ResultSlot), so R only
  // needs to be move-constructible, not default-constructible.
  template <typename F>
  auto apply(F&& op) -> std::invoke_result_t<F&, State&> {
    using R = std::invoke_result_t<F&, State&>;
    detail::ResultSlot<R> result;
    Record rec;
    rec.run = &detail::run_erased<State, std::remove_reference_t<F>>;
    rec.ctx = &op;
    rec.result = &result;

    Padded<std::atomic<Record*>>& slot = slots_[thread_id()];
    // release: publish the fully-initialized record to the combiner.
    slot->store(&rec, std::memory_order_release);

    std::uint32_t spins = 0;
    while (!rec.done.load(std::memory_order_acquire)) {
      if (lock_.try_lock()) {
        combine();
        lock_.unlock();
        // We held the lock with our record published, so combine() ran it.
        CCDS_ASSERT(rec.done.load(std::memory_order_relaxed));  // relaxed: re-check of an observed flag
        break;
      }
      spin_wait(spins);
    }

    if constexpr (!std::is_void_v<R>) return result.take();
  }

  // apply_batch / apply_sorted_batch come from CombinerBatchOps (the shared
  // batch-episode surface, identical across engines).

  // Direct exclusive access (initialization / inspection).  Takes the
  // combiner lock, so it serializes with combining passes.
  template <typename F>
  auto apply_locked(F&& op) -> std::invoke_result_t<F&, State&> {
    lock_.lock();
    struct Unlock {
      TtasLock& l;
      ~Unlock() { l.unlock(); }
    } guard{lock_};
    return op(state_);
  }

 private:
  struct Record {
    void (*run)(void* ctx, void* res, State& s) = nullptr;
    void* ctx = nullptr;
    void* result = nullptr;
    // Non-null marks a mergeable sorted-run request (apply_sorted_batch);
    // `ctx` then points at the submitter's detail::SortedRun.  Records are
    // stack-fresh per call, so the default null is the non-merged case.
    detail::MergedRunFn<State> run_merged = nullptr;
    std::atomic<bool> done{false};
  };

  // Mergeable publication for CombinerBatchOps::apply_sorted_batch: same
  // protocol as apply(), with the merged-run tag set and no result slot
  // (results live inside the submitter's ops).
  void submit_merged(detail::MergedRunFn<State> fn, detail::SortedRun* run) {
    Record rec;
    rec.ctx = run;
    rec.run_merged = fn;

    Padded<std::atomic<Record*>>& slot = slots_[thread_id()];
    // release: publish the fully-initialized record to the combiner.
    slot->store(&rec, std::memory_order_release);

    std::uint32_t spins = 0;
    while (!rec.done.load(std::memory_order_acquire)) {
      if (lock_.try_lock()) {
        combine();
        lock_.unlock();
        CCDS_ASSERT(rec.done.load(std::memory_order_relaxed));  // relaxed: re-check of an observed flag
        break;
      }
      spin_wait(spins);
    }
  }

  void combine() {
    // A few passes per lock tenure: each pass picks up operations published
    // while the previous pass ran, improving combining density.  Mergeable
    // sorted-run records found in a pass are grouped by their entry point
    // and executed as ONE merged application per group (slot-scan order =
    // combining order), completing every member only after the group ran —
    // the same batch-episode semantics CcSynch::combine provides.
    for (int pass = 0; pass < kCombinePasses; ++pass) {
      detail::preemption_point();
      bool any = false;
      Record* merged[kMaxThreads];
      std::size_t n_merged = 0;
      for (std::size_t i = 0; i < kMaxThreads; ++i) {
        // acquire: pairs with the publisher's release store.
        Record* rec = slots_[i]->load(std::memory_order_acquire);
        if (rec == nullptr) continue;
        slots_[i]->store(nullptr, std::memory_order_relaxed);  // relaxed: combiner holds the lock
        if (rec->run_merged != nullptr) {
          merged[n_merged++] = rec;  // grouped and executed after the scan
          any = true;
          continue;
        }
        rec->run(rec->ctx, rec->result, state_);
        // release: publish both the result and slot consumption.
        rec->done.store(true, std::memory_order_release);
        any = true;
      }
      for (std::size_t i = 0; i < n_merged; ++i) {
        if (merged[i] == nullptr) continue;
        const detail::MergedRunFn<State> fn = merged[i]->run_merged;
        void* ctxs[kMaxThreads];
        Record* group[kMaxThreads];
        std::size_t count = 0;
        for (std::size_t j = i; j < n_merged; ++j) {
          if (merged[j] != nullptr && merged[j]->run_merged == fn) {
            group[count] = merged[j];
            ctxs[count] = merged[j]->ctx;
            ++count;
            merged[j] = nullptr;
          }
        }
        fn(ctxs, count, state_);
        for (std::size_t j = 0; j < count; ++j) {
          // release: publish the results written by the merged application.
          group[j]->done.store(true, std::memory_order_release);
        }
      }
      if (!any) break;
    }
  }

  static constexpr int kCombinePasses = 3;

  TtasLock lock_;
  State state_{};
  Padded<std::atomic<Record*>> slots_[kMaxThreads]{};
};

}  // namespace ccds

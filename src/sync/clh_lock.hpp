// Craig / Landin-Hagersten (CLH) queue lock.
//
// Like MCS, waiters spin locally — but on the *predecessor's* node, which
// lets release be a single store with no successor discovery.  Node
// ownership rotates: a releasing thread adopts its predecessor's (now
// retired) node for its next acquisition.
#pragma once

#include <atomic>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

class ClhLock {
 public:
  ClhLock() noexcept {
    // relaxed: constructor; the lock is unpublished.
    dummy_.value.locked.store(false, std::memory_order_relaxed);
    tail_.store(&dummy_.value, std::memory_order_relaxed);
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      mine_[i].value = &initial_[i].value;
    }
  }

  void lock() noexcept {
    const std::size_t tid = thread_id();
    QNode* me = mine_[tid].value;
    me->locked.store(true, std::memory_order_relaxed);  // relaxed: published by the exchange below
    // acq_rel: release publishes our node's `locked=true`; acquire pairs with
    // the predecessor's enqueue so our spin reads its final node.
    QNode* pred = tail_.exchange(me, std::memory_order_acq_rel);
    std::uint32_t spins = 0;
    while (pred->locked.load(std::memory_order_acquire)) spin_wait(spins);
    pred_[tid].value = pred;
  }

  void unlock() noexcept {
    const std::size_t tid = thread_id();
    QNode* me = mine_[tid].value;
    me->locked.store(false, std::memory_order_release);
    // Recycle the predecessor's node for our next acquisition; ours is now
    // being spun on (or will be reclaimed the same way) by our successor.
    mine_[tid].value = pred_[tid].value;
  }

 private:
  struct QNode {
    std::atomic<bool> locked{false};
  };

  CCDS_CACHELINE_ALIGNED std::atomic<QNode*> tail_{nullptr};
  Padded<QNode> dummy_;
  Padded<QNode> initial_[kMaxThreads];
  Padded<QNode*> mine_[kMaxThreads];
  Padded<QNode*> pred_[kMaxThreads];
};

}  // namespace ccds

// CC-Synch combining engine (Fatourou & Kallimanis, PPoPP 2012).
//
// Like flat combining, CC-Synch turns a sequential State into a scalable
// concurrent object by letting one thread (the combiner) execute many
// threads' operations in one lock-free episode.  What it fixes is the two
// scalability sinks of the classic flat combiner:
//
//   * publication: instead of writing into a per-thread slot and racing for
//     a combiner lock, a thread swap-appends a cache-line-padded request
//     node onto a global list with ONE atomic exchange — there is no lock
//     acquisition anywhere in the protocol;
//   * discovery: the combiner walks the request list in arrival order, so
//     it touches exactly the pending requests, not all kMaxThreads slots
//     (FlatCombiner::combine is O(kMaxThreads) per pass even with one
//     thread active).
//
// Protocol (per apply):
//   1. re-arm a privately-owned node F (next=null, wait=true,
//      completed=false) and publish it: C = tail_.exchange(F).  F is now the
//      global tail; C — the previous tail — becomes OUR request node, and we
//      adopt it as our spare for the next call (nodes migrate between
//      threads; the total population is fixed at kMaxThreads + 1, all owned
//      by this engine instance).
//   2. write the request into C and link C->next = F (release: this is what
//      hands the request to a combiner).
//   3. spin on C->wait — a field of OUR node only, so the spin is strictly
//      local (MCS-style; no shared flag is hammered).
//   4. when wait drops: if completed, the result is in our ResultSlot —
//      return.  Otherwise we ARE the combiner: walk the list from C,
//      executing each request whose `next` link is present, up to Window
//      requests, then hand off by dropping `wait` on the first node we did
//      not serve (its owner — present or future — inherits the combiner
//      role exactly as we did).
//
// The linearization point of an operation is its execution by the combiner;
// list order makes the combining order the arrival (exchange) order, which
// also gives starvation freedom: a published request is at most Window
// executions away from the list head.
//
// The `Window` bound caps combiner tenure so one thread is not captured
// forever serving a firehose of arrivals; larger windows amortize handoffs
// better, smaller ones bound latency (and let the model checker exercise
// the window-exhausted handoff with a tiny state space).
//
// The request-list mechanism itself — node lifecycle, publication, local
// wait, window-bounded serving with merged-run gathering, handoff — lives
// in sync/combining_core.hpp (detail::CombiningList), shared with the
// hierarchical HSynch engine; CcSynch is that machinery over exactly one
// list and the engine protocol glue.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/thread_registry.hpp"
#include "sync/combiner.hpp"
#include "sync/combining_core.hpp"

namespace ccds {

// Default combining window: a few full pipelines of every possible thread.
// Handoff cost is amortized over up to this many requests; any request
// admitted to the list is served after at most Window executions.
inline constexpr int kCcSynchWindow = 3 * static_cast<int>(kMaxThreads);

template <typename State, int Window = kCcSynchWindow>
class CcSynch : public CombinerBatchOps<CcSynch<State, Window>, State> {
  friend class CombinerBatchOps<CcSynch<State, Window>, State>;
  using List = detail::CombiningList<State, Window>;
  using Node = typename List::Node;

 public:
  // Engine traits (sync/combiner.hpp): a preempted combiner stalls every
  // spinning requester, so CC-Synch is blocking; one flat list, so it is
  // not topology-aware.
  static constexpr bool kIsWaitFree = false;
  static constexpr bool kIsHierarchical = false;
  static constexpr std::size_t kMaxEngineThreads = kMaxThreads;

  CcSynch() : CcSynch(State{}) {}

  explicit CcSynch(State initial) : state_(std::move(initial)) {}

  CcSynch(const CcSynch&) = delete;
  CcSynch& operator=(const CcSynch&) = delete;

  // Execute `op(state)` with combining; returns op's result.
  template <typename F>
  auto apply(F&& op) -> std::invoke_result_t<F&, State&> {
    using R = std::invoke_result_t<F&, State&>;
    detail::ResultSlot<R> result;
    Node* mine = list_.publish(
        thread_id(), &detail::run_erased<State, std::remove_reference_t<F>>,
        &op, &result, nullptr);
    if (!List::await(mine)) {
      List::handoff(list_.serve_window(mine, state_));
    }
    if constexpr (!std::is_void_v<R>) return result.take();
  }

  // apply_batch / apply_sorted_batch come from CombinerBatchOps (the shared
  // batch-episode surface, identical across engines).

  // Direct exclusive access (initialization / inspection).  Combining is
  // already a total serialization of operations, so this is just apply.
  template <typename F>
  auto apply_locked(F&& op) -> std::invoke_result_t<F&, State&> {
    return apply(std::forward<F>(op));
  }

 private:
  // Mergeable publication for CombinerBatchOps::apply_sorted_batch: same
  // protocol as apply(), but the request is tagged with the merged-run
  // entry point instead of a per-op trampoline, and carries no result slot
  // (results live inside the submitter's ops).
  void submit_merged(detail::MergedRunFn<State> fn, detail::SortedRun* run) {
    Node* mine = list_.publish(thread_id(), nullptr, run, nullptr, fn);
    if (!List::await(mine)) {
      List::handoff(list_.serve_window(mine, state_));
    }
  }

  State state_;
  List list_;
};

}  // namespace ccds

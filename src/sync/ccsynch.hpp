// CC-Synch combining engine (Fatourou & Kallimanis, PPoPP 2012).
//
// Like flat combining, CC-Synch turns a sequential State into a scalable
// concurrent object by letting one thread (the combiner) execute many
// threads' operations in one lock-free episode.  What it fixes is the two
// scalability sinks of the classic flat combiner:
//
//   * publication: instead of writing into a per-thread slot and racing for
//     a combiner lock, a thread swap-appends a cache-line-padded request
//     node onto a global list with ONE atomic exchange — there is no lock
//     acquisition anywhere in the protocol;
//   * discovery: the combiner walks the request list in arrival order, so
//     it touches exactly the pending requests, not all kMaxThreads slots
//     (FlatCombiner::combine is O(kMaxThreads) per pass even with one
//     thread active).
//
// Protocol (per apply):
//   1. re-arm a privately-owned node F (next=null, wait=true,
//      completed=false) and publish it: C = tail_.exchange(F).  F is now the
//      global tail; C — the previous tail — becomes OUR request node, and we
//      adopt it as our spare for the next call (nodes migrate between
//      threads; the total population is fixed at kMaxThreads + 1, all owned
//      by this engine instance).
//   2. write the request into C and link C->next = F (release: this is what
//      hands the request to a combiner).
//   3. spin on C->wait — a field of OUR node only, so the spin is strictly
//      local (MCS-style; no shared flag is hammered).
//   4. when wait drops: if completed, the result is in our ResultSlot —
//      return.  Otherwise we ARE the combiner: walk the list from C,
//      executing each request whose `next` link is present, up to Window
//      requests, then hand off by dropping `wait` on the first node we did
//      not serve (its owner — present or future — inherits the combiner
//      role exactly as we did).
//
// The linearization point of an operation is its execution by the combiner;
// list order makes the combining order the arrival (exchange) order, which
// also gives starvation freedom: a published request is at most Window
// executions away from the list head.
//
// The `Window` bound caps combiner tenure so one thread is not captured
// forever serving a firehose of arrivals; larger windows amortize handoffs
// better, smaller ones bound latency (and let the model checker exercise
// the window-exhausted handoff with a tiny state space).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "sync/combiner.hpp"

namespace ccds {

// Default combining window: a few full pipelines of every possible thread.
// Handoff cost is amortized over up to this many requests; any request
// admitted to the list is served after at most Window executions.
inline constexpr int kCcSynchWindow = 3 * static_cast<int>(kMaxThreads);

template <typename State, int Window = kCcSynchWindow>
class CcSynch : public CombinerBatchOps<CcSynch<State, Window>, State> {
  static_assert(Window >= 1, "combining window must admit the own request");
  friend class CombinerBatchOps<CcSynch<State, Window>, State>;

 public:
  CcSynch() : CcSynch(State{}) {}

  explicit CcSynch(State initial) : state_(std::move(initial)) {
    // pool_[i] starts as thread i's spare; the extra node is the initial
    // global tail.  The tail node must read as "combiner role free":
    // wait=false / completed=false, so the first arrival combines.
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      spare_[i].value = &pool_[i];
    }
    tail_.store(&pool_[kMaxThreads], std::memory_order_relaxed);  // relaxed: constructor, pre-publication
  }

  CcSynch(const CcSynch&) = delete;
  CcSynch& operator=(const CcSynch&) = delete;

  // Execute `op(state)` with combining; returns op's result.
  template <typename F>
  auto apply(F&& op) -> std::invoke_result_t<F&, State&> {
    using R = std::invoke_result_t<F&, State&>;
    detail::ResultSlot<R> result;

    const std::size_t tid = thread_id();
    Node* fresh = spare_[tid].value;
    // Re-arm the node we are about to install as the global tail.
    // relaxed: all three stores are published by the exchange's release.
    fresh->next.store(nullptr, std::memory_order_relaxed);
    fresh->wait.store(true, std::memory_order_relaxed);
    fresh->completed.store(false, std::memory_order_relaxed);

    // Swap-append: the only global synchronization action of the fast path.
    // acq_rel: release publishes fresh's re-armed fields to the next
    // arrival; acquire pairs with the previous arrival's release so cur's
    // fields are ours to write.
    Node* cur = tail_.exchange(fresh, std::memory_order_acq_rel);
    // cur is now our request node; recycle it as our spare for the next
    // call (it is quiescent by the time this call returns — see combine()).
    spare_[tid].value = cur;

    cur->run = &detail::run_erased<State, std::remove_reference_t<F>>;
    cur->ctx = &op;
    cur->result = &result;
    cur->run_merged = nullptr;  // nodes recycle: clear the mergeable tag
    // release: hand the fully-written request to whichever combiner follows
    // this link (its acquire load of `next` pairs with this).
    cur->next.store(fresh, std::memory_order_release);

    // Local spin on our own node.  The waiter can make no progress until
    // the current combiner executes (or hands off to) its request, so the
    // spin must eventually yield: on an oversubscribed host a pure
    // cpu_relax loop burns the combiner's own scheduler quantum.
    // spin_wait is spin-then-yield natively and a deterministic scheduler
    // yield under the model checker.
    std::uint32_t spins = 0;
    // acquire: pairs with the combiner's releasing wait-drop, making the
    // result (completed path) or all prior state mutations (handoff path)
    // visible.
    while (cur->wait.load(std::memory_order_acquire)) {
      spin_wait(spins);
    }

    // relaxed: the acquire above ordered this flag; it was written before
    // the wait-drop we just observed.
    if (!cur->completed.load(std::memory_order_relaxed)) {
      combine(cur);
    }
    if constexpr (!std::is_void_v<R>) return result.take();
  }

  // apply_batch / apply_sorted_batch come from CombinerBatchOps (the shared
  // batch-episode surface, identical across engines).

  // Direct exclusive access (initialization / inspection).  Combining is
  // already a total serialization of operations, so this is just apply.
  template <typename F>
  auto apply_locked(F&& op) -> std::invoke_result_t<F&, State&> {
    return apply(std::forward<F>(op));
  }

 private:
  // A combining request node.  `wait` is spun on by its owner and dropped
  // remotely by the combiner, so the node owns a full cache line (the
  // memory-order lint's unpadded-combining-node rule enforces this shape).
  struct CCDS_CACHELINE_ALIGNED Node {
    Atomic<Node*> next{nullptr};
    Atomic<bool> wait{false};
    Atomic<bool> completed{false};
    void (*run)(void* ctx, void* res, State& s) = nullptr;
    void* ctx = nullptr;
    void* result = nullptr;
    // Non-null marks a mergeable sorted-run request (apply_sorted_batch):
    // the combiner may execute a consecutive group of requests bearing the
    // SAME function through one call (see combine()).  `ctx` then points at
    // the submitter's detail::SortedRun.
    detail::MergedRunFn<State> run_merged = nullptr;
  };

  // Mergeable publication for CombinerBatchOps::apply_sorted_batch: same
  // protocol as apply(), but the request is tagged with the merged-run
  // entry point instead of a per-op trampoline, and carries no result slot
  // (results live inside the submitter's ops).
  void submit_merged(detail::MergedRunFn<State> fn, detail::SortedRun* run) {
    const std::size_t tid = thread_id();
    Node* fresh = spare_[tid].value;
    // unguarded: nodes are the engine's fixed pool, recycled via handoff,
    // never freed — no reclaimer in play (same as apply()).
    // relaxed: all three stores are published by the exchange's release.
    fresh->next.store(nullptr, std::memory_order_relaxed);
    fresh->wait.store(true, std::memory_order_relaxed);
    fresh->completed.store(false, std::memory_order_relaxed);
    Node* cur = tail_.exchange(fresh, std::memory_order_acq_rel);
    spare_[tid].value = cur;

    cur->run = nullptr;
    cur->ctx = run;
    cur->result = nullptr;
    cur->run_merged = fn;
    // release: hand the fully-written request to whichever combiner follows
    // this link (its acquire load of `next` pairs with this).  unguarded:
    // fixed-pool node, see above.
    cur->next.store(fresh, std::memory_order_release);

    std::uint32_t spins = 0;
    // acquire: pairs with the combiner's releasing wait-drop (results /
    // handoff visibility, as in apply()).
    while (cur->wait.load(std::memory_order_acquire)) {
      spin_wait(spins);
    }
    // relaxed: the acquire above ordered this flag.
    if (!cur->completed.load(std::memory_order_relaxed)) {
      combine(cur);
    }
  }

  // Serve requests from `head` (our own, always first) in list order.
  void combine(Node* head) {
    // unguarded: Nodes are per-thread slots recycled through the handoff
    // protocol, never freed while the lock is live — no reclaimer in play.
    Node* node = head;
    int served = 0;
    while (served < Window) {
      // acquire: pairs with the requester's release link store — if we see
      // `next`, we see the request fields written before it.  unguarded:
      // fixed-pool node, see above.
      Node* next = node->next.load(std::memory_order_acquire);
      if (next == nullptr) break;  // `node` is the tail: no request in it yet
      if (node->run_merged != nullptr) {
        // Gather the consecutive run of mergeable requests with the same
        // entry point and execute them as ONE merged application.  A thread
        // has at most one pending request, so kMaxThreads bounds the group.
        const detail::MergedRunFn<State> fn = node->run_merged;
        void* ctxs[kMaxThreads];
        Node* members[kMaxThreads];
        std::size_t count = 0;
        Node* n = node;
        Node* n_next = next;
        for (;;) {
          members[count] = n;
          ctxs[count] = n->ctx;
          ++count;
          if (served + static_cast<int>(count) >= Window ||
              count == kMaxThreads) {
            break;
          }
          Node* cand = n_next;
          // acquire: cand's request fields (run_merged, ctx) are only
          // published — and safe to read — once its next link is set.
          // unguarded: fixed-pool node, see above.
          Node* cand_next = cand->next.load(std::memory_order_acquire);
          if (cand_next == nullptr || cand->run_merged != fn) break;
          n = cand;
          n_next = cand_next;
        }
        fn(ctxs, count, state_);
        // Complete every member only now: all runs' results are written
        // before any submitter's wait drops.  Each member's `next` was read
        // during the gather, before its owner can re-arm the node.
        for (std::size_t i = 0; i < count; ++i) {
          // relaxed: sequenced before the wait release, which publishes it.
          members[i]->completed.store(true, std::memory_order_relaxed);
          // release: publishes results and state mutations to the owner.
          members[i]->wait.store(false, std::memory_order_release);
        }
        served += static_cast<int>(count);
        node = n_next;  // first node NOT in the merged group
        continue;
      }
      node->run(node->ctx, node->result, state_);
      // Read order matters: `next` was loaded above, BEFORE the wait-drop —
      // after it the owner may return and re-arm the node for its next call.
      // relaxed: sequenced before the wait release below, which publishes it.
      node->completed.store(true, std::memory_order_relaxed);
      // release: publishes the result and all state mutations to the owner.
      node->wait.store(false, std::memory_order_release);
      node = next;
      ++served;
    }
    // Hand off.  `node` is either the current tail (its future owner will
    // find the combiner role free and self-serve) or, when the window is
    // exhausted, a pending request whose spinning owner now becomes the
    // combiner.  completed stays false in both cases.
    // release: the next combiner's acquire of `wait` inherits our state
    // mutations.
    node->wait.store(false, std::memory_order_release);
  }

  State state_;
  CCDS_CACHELINE_ALIGNED Atomic<Node*> tail_{nullptr};
  // Node pool: one per possible thread plus the initial tail.  Nodes
  // migrate between threads via the exchange but never leave the pool, so
  // destruction frees everything wholesale and no reclamation is needed.
  Node pool_[kMaxThreads + 1];
  // spare_[t] is thread t's private node for its next apply.  Only the
  // owner of dense id t touches entry t (the registry hands each id to one
  // live thread at a time), so the entries are plain pointers; padding
  // keeps neighbouring threads' re-arm writes off each other's line.
  Padded<Node*> spare_[kMaxThreads];
};

}  // namespace ccds

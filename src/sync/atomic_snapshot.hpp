// Wait-free atomic snapshot (Afek, Attiya, Dolev, Gafni, Merritt, Shavit
// 1993; presentation follows Herlihy & Shavit ch. 4.3).
//
// An array of single-writer registers supporting scan(): an atomic
// (linearizable) view of ALL registers, without locking writers out.
//
//   * Clean double collect: if two successive collects observe identical
//     revisions, nothing moved in between — the collect is a snapshot.
//   * Helping: every update embeds the snapshot its writer took just
//     before writing.  If a scanner sees the same register move TWICE, the
//     second revision's embedded snapshot was taken entirely within the
//     scanner's interval, so the scanner can return it (that is what makes
//     scan wait-free: each register can spoil at most two collects).
//
// Registers are immutable revision objects swapped in by pointer; old
// revisions are reclaimed through the domain (epoch by default).  Under a
// pointer-based domain a scan must keep TWO whole collects protected at
// once (old and fresh), so the guard's slots are split into two banks of
// `registers` each and collects alternate banks — which bounds the register
// count at Domain::kSlots / 2 (asserted in the constructor; WideHazardDomain
// covers larger arrays).
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <typename T, reclaimer Domain = EpochDomain>
class AtomicSnapshot {
 public:
  explicit AtomicSnapshot(std::size_t registers)
      : regs_(registers) {
    if constexpr (reclaimer_traits<Domain>::pointer_based) {
      // Two protection banks per scan (see header).
      CCDS_ASSERT(2 * registers <= Domain::kSlots);
    }
    // relaxed: constructor; the snapshot is unpublished.
    for (auto& r : regs_) {
      r->store(new Revision{}, std::memory_order_relaxed);
    }
  }

  AtomicSnapshot(const AtomicSnapshot&) = delete;
  AtomicSnapshot& operator=(const AtomicSnapshot&) = delete;

  ~AtomicSnapshot() {
    for (auto& r : regs_) delete r->load(std::memory_order_relaxed);  // relaxed: destructor
  }

  std::size_t size() const noexcept { return regs_.size(); }

  // Single-writer-per-register update (concurrent updates to DIFFERENT
  // registers are fine; two concurrent writers to the same register are a
  // usage error, as in the original model).
  void update(std::size_t i, T value) {
    // The embedded snapshot must be taken before the write (it is what
    // lets a double-moved register's revision stand in for a scan).
    // scan()'s guard is closed by the time ours opens (one live guard per
    // thread per domain).
    std::vector<T> snap = scan();
    auto guard = domain_.guard();
    Revision* old = guard.protect(0, regs_[i].value);
    auto* fresh = new Revision{std::move(value), old->seq + 1,
                               std::move(snap)};
    // release: publish the revision's contents.
    regs_[i]->store(fresh, std::memory_order_release);
    domain_.retire(old);
  }

  // Wait-free linearizable snapshot of all registers.
  std::vector<T> scan() {
    auto guard = domain_.guard();
    const std::size_t n = regs_.size();
    std::vector<bool> moved(n, false);
    // Bank 0 first; each subsequent collect targets the other bank, so the
    // protections backing `old` (the previous collect) stay published
    // until `old` is overwritten.
    bool bank = false;
    std::vector<const Revision*> old = collect(guard, bank ? n : 0);
    for (;;) {
      bank = !bank;
      std::vector<const Revision*> fresh = collect(guard, bank ? n : 0);
      bool clean = true;
      for (std::size_t i = 0; i < n; ++i) {
        if (fresh[i]->seq != old[i]->seq) {
          clean = false;
          if (moved[i]) {
            // Second observed move of register i: its embedded snapshot
            // was taken inside our interval — return a copy of it.
            return fresh[i]->snap;
          }
          moved[i] = true;
        }
      }
      if (clean) {
        std::vector<T> out;
        out.reserve(n);
        for (auto* r : fresh) out.push_back(r->value);
        return out;
      }
      old = std::move(fresh);
    }
  }

  // Convenience read of one register.
  T load(std::size_t i) {
    auto guard = domain_.guard();
    return guard.protect(0, regs_[i].value)->value;
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Revision {
    T value{};
    std::uint64_t seq = 0;
    std::vector<T> snap;  // the writer's scan, taken just before writing
  };

  // guard() may return a Guard or (via LeasedDomain) a Lease.
  using GuardT = decltype(std::declval<Domain&>().guard());

  std::vector<const Revision*> collect(GuardT& guard, std::size_t base) {
    std::vector<const Revision*> out;
    out.reserve(regs_.size());
    for (std::size_t i = 0; i < regs_.size(); ++i) {
      out.push_back(guard.protect(base + i, regs_[i].value));
    }
    return out;
  }

  std::vector<Padded<std::atomic<Revision*>>> regs_;
  Domain domain_;
};

}  // namespace ccds

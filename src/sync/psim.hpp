// P-Sim: the practical wait-free universal construction (Fatourou &
// Kallimanis, "A Highly-Efficient Wait-Free Universal Construction", SPAA
// 2011 — the wait-free member of the Synch framework, PPoPP 2012).
//
// Every other ccds combining engine is BLOCKING: a combiner preempted
// mid-episode stalls every spinning requester.  P-Sim removes the spin
// entirely.  The object's authoritative value is one atomic pointer to an
// immutable state cell; an operation is:
//
//   1. ANNOUNCE — publish a self-contained request record (op + sequence
//      number) in the caller's announce slot;
//   2. COPY-APPLY — read the current cell, build a private copy, apply
//      EVERY pending announced request (own and others') to the copy,
//      recording per-thread applied sequence numbers and result bytes
//      inside it;
//   3. SC — compare-and-swap the cell pointer from the observed cell to the
//      copy.  Success installs everyone's operations at once; failure means
//      some other thread's SC succeeded — at most TWO attempts later the
//      caller's request is guaranteed applied in the current cell (if our
//      second CAS fails, the SC that beat it loaded the pointer after our
//      first failed CAS, hence after our announce, so its copy-apply saw
//      our request), and the caller just reads its result out of the
//      current cell.  No step waits on another thread's schedule.
//
// The classic Sim construction manages its cells with a hand-rolled buffer
// pool and raw memcpy state; ccds instead builds the cell lifecycle on the
// library's own reclamation tier: cells and request records are immutable
// once published and retired through a blanket `reclaimer` domain
// (EpochDomain by default), so a helper can never read recycled memory and
// the whole engine is sound for arbitrary copy-constructible State — a
// deque, or a BatchedSkipState full of owning pointers — not just flat
// bytes.  The trade: operations allocate (the paper's bounded pool is
// traded for allocator-backed safety), so "wait-free" here is modulo
// malloc, and a stalled reader delays reclamation (EBR's usual cost), never
// progress.
//
// Requirements this surface places on operations, beyond the list engines':
//
//   * ops are COPIED into the announce record and may be RE-EXECUTED (each
//     time on a fresh copy of the op, against a different state copy;
//     helpers may run them even after the submitting call returned, against
//     a copy that loses its SC).  Capture by value; results must depend
//     only on (op, state).  The ccds fronts all comply.
//   * results and batch Op types must be trivially copyable (they travel
//     cell-to-cell as bytes) and at most max_align_t-aligned.
//
// apply_sorted_batch note: merging happens per-request (each batch is one
// apply_runs call on the helper's copy — Op::prepare runs there too, so the
// run's intra-batch pointers target the copy).  Cross-submitter merging
// buys nothing under P-Sim: every episode re-copies the state anyway, and
// the union of pending batches still lands in one successful SC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "sync/combiner.hpp"

namespace ccds {

template <typename State, reclaimer Domain = EpochDomain>
class PSim {
  // Helpers follow the current-cell pointer and every announce slot inside
  // ONE guard; only blanket domains protect everything reachable after the
  // pin (a pointer-based domain would need a slot per announce).
  static_assert(!reclaimer_traits<Domain>::pointer_based,
                "PSim requires a blanket (epoch/QSBR-style) domain");

 public:
  // Engine traits (sync/combiner.hpp): this is the library's wait-free
  // engine — no spin on another thread's flag anywhere in the protocol.
  static constexpr bool kIsWaitFree = true;
  static constexpr bool kIsHierarchical = false;
  static constexpr std::size_t kMaxEngineThreads = kMaxThreads;

  PSim() : PSim(State{}) {}

  explicit PSim(State initial) {
    // relaxed: constructor, pre-publication.
    cur_.store(new Cell(std::move(initial)), std::memory_order_relaxed);
  }

  PSim(const PSim&) = delete;
  PSim& operator=(const PSim&) = delete;

  ~PSim() {
    // Quiescent teardown: every apply returned, so every request record was
    // retired; the domain member's destructor drains them and the retired
    // cells.  Only the live cell remains ours to free.
    delete cur_.load(std::memory_order_relaxed);  // relaxed: quiescent teardown
  }

  // Execute `op(state)` wait-free; returns op's result.
  template <typename F>
  auto apply(F&& op) -> std::invoke_result_t<F&, State&> {
    using Fn = std::remove_reference_t<F>;
    using R = std::invoke_result_t<Fn&, State&>;
    static_assert(std::is_copy_constructible_v<Fn>,
                  "PSim ops are copied into the announce record");
    const std::size_t tid = thread_id();
    auto* req = new ScalarRequest<Fn>(std::forward<F>(op));
    req->seq = next_seq(tid);
    req->exec = &exec_scalar<Fn>;
    if constexpr (std::is_void_v<R>) {
      complete(tid, req, nullptr, 0);
      return;
    } else {
      static_assert(std::is_trivially_copyable_v<R> &&
                        alignof(R) <= alignof(std::max_align_t),
                    "PSim results travel between state cells as bytes");
      alignas(R) std::byte out[sizeof(R)];
      complete(tid, req, out, sizeof(R));
      return *std::launder(reinterpret_cast<R*>(out));
    }
  }

  // Direct exclusive access (initialization / inspection).  Installing a
  // cell is already a total serialization of operations, so this is apply.
  template <typename F>
  auto apply_locked(F&& op) -> std::invoke_result_t<F&, State&> {
    return apply(std::forward<F>(op));
  }

  // One announce, one episode, the whole span applied back-to-back with no
  // foreign op inside — the same batch-episode semantics CombinerBatchOps
  // gives the list engines, via a snapshot of the ops in the request record
  // (helpers may re-execute after this call returns; see header comment).
  // Results are copied back into the caller's ops from the installed cell.
  template <typename Op>
  void apply_batch(std::span<Op> ops) {
    if (ops.empty()) return;
    submit_batch<Op, /*Sorted=*/false>(ops);
  }

  // The sorted-run surface.  Op::prepare runs on the HELPER's copy of the
  // run (its intra-run pointers must target the copy), not on the
  // submitting thread — under P-Sim, submitter-side sorting would hand
  // helpers a run threaded through shared memory they must not mutate.
  template <typename Op>
  void apply_sorted_batch(std::span<Op> ops) {
    if (ops.empty()) return;
    submit_batch<Op, /*Sorted=*/true>(ops);
  }

 private:
  struct Cell;

  // A self-contained announced request.  Immutable once published (the
  // release store of the announce slot), retired through the domain after
  // the submitter collects its result, so a lagging helper can always
  // dereference what it loaded from a slot inside its guard.  The domain's
  // deleter destroys through this base (retire() captures the static type),
  // so the destructor must be virtual or derived payloads (the op copy, a
  // batch's vector) would never be destroyed.
  struct RequestBase {
    virtual ~RequestBase() = default;
    std::uint64_t seq = 0;
    void (*exec)(const RequestBase* req, Cell& cell, std::size_t tid) =
        nullptr;
  };

  template <typename Fn>
  struct ScalarRequest : RequestBase {
    explicit ScalarRequest(Fn f) : op(std::move(f)) {}
    Fn op;
  };

  template <typename Op, bool Sorted>
  struct BatchRequest : RequestBase {
    std::vector<Op> ops;  // snapshot of the submitter's span
  };

  // The immutable state cell: a full copy of the sequential state plus, per
  // thread, the sequence number of its last applied request and that
  // request's result bytes.  Result bytes ride along from cell to cell
  // until overwritten — that is how a thread whose SC lost still finds its
  // result in whichever cell won.
  struct Cell {
    explicit Cell(State s) : state(std::move(s)) {}

    Cell(const Cell& o, std::size_t ceiling) : state(o.state) {
      for (std::size_t t = 0; t < ceiling; ++t) {
        applied[t] = o.applied[t];
        rbuf[t] = o.rbuf[t];
      }
    }

    State state;
    std::uint64_t applied[kMaxThreads] = {};
    std::vector<std::byte> rbuf[kMaxThreads];
  };

  struct CCDS_CACHELINE_ALIGNED AnnounceSlot {
    Atomic<RequestBase*> req{nullptr};
    std::uint64_t next_seq = 0;  // owner-only: the slot's request counter
  };

  template <typename Fn>
  static void exec_scalar(const RequestBase* base, Cell& cell,
                          std::size_t tid) {
    const auto* req = static_cast<const ScalarRequest<Fn>*>(base);
    using R = std::invoke_result_t<Fn&, State&>;
    // Fresh op copy per execution: helpers re-execute, and a mutable op
    // must never mutate the shared record.
    Fn op(req->op);
    if constexpr (std::is_void_v<R>) {
      op(cell.state);
    } else {
      cell.rbuf[tid].resize(sizeof(R));
      ::new (static_cast<void*>(cell.rbuf[tid].data())) R(op(cell.state));
    }
  }

  template <typename Op, bool Sorted>
  static void exec_batch(const RequestBase* base, Cell& cell,
                         std::size_t tid) {
    const auto* req = static_cast<const BatchRequest<Op, Sorted>*>(base);
    const std::size_t n = req->ops.size();
    cell.rbuf[tid].resize(n * sizeof(Op));
    // Trivially-copyable Op (asserted at submit): memcpy both copies the
    // values and starts their lifetimes in the byte buffer.
    std::memcpy(cell.rbuf[tid].data(), req->ops.data(), n * sizeof(Op));
    std::span<Op> run(reinterpret_cast<Op*>(cell.rbuf[tid].data()), n);
    if constexpr (Sorted) {
      Op::prepare(run);
      detail::SortedRun sr{run.data(), run.size()};
      void* ctx = &sr;
      detail::run_merged_erased<State, Op>(&ctx, 1, cell.state);
    } else {
      for (Op& op : run) op(cell.state);
    }
  }

  template <typename Op, bool Sorted>
  void submit_batch(std::span<Op> ops) {
    static_assert(std::is_trivially_copyable_v<Op> &&
                      alignof(Op) <= alignof(std::max_align_t),
                  "PSim batch ops travel between state cells as bytes");
    const std::size_t tid = thread_id();
    auto* req = new BatchRequest<Op, Sorted>;
    req->ops.assign(ops.begin(), ops.end());
    req->seq = next_seq(tid);
    req->exec = &exec_batch<Op, Sorted>;
    complete(tid, req, reinterpret_cast<std::byte*>(ops.data()),
             ops.size() * sizeof(Op));
  }

  std::uint64_t next_seq(std::size_t tid) noexcept {
    return ++announce_[tid]->next_seq;
  }

  // Announce, attempt twice, collect, clean up.  After two failed SCs the
  // request is provably applied in the current cell (see header comment),
  // so the trailing collect loop runs at most once on any real schedule;
  // it is a loop only to stay robust, and it never waits on a flag.
  void complete(std::size_t tid, RequestBase* req, std::byte* out,
                std::size_t out_len) {
    // release: publish seq/exec/payload to helpers loading the slot.
    announce_[tid]->req.store(req, std::memory_order_release);
    bool done = false;
    for (int i = 0; i < 2 && !done; ++i) {
      done = attempt(tid, req->seq, out, out_len);
    }
    std::uint32_t spins = 0;
    while (!done) {
      spin_wait(spins);
      done = collect(tid, req->seq, out, out_len);
    }
    // Unlink before retiring (the standard discipline): a helper that
    // loaded the slot before this store holds a guard older than the
    // retirement, so the record outlives its read.
    announce_[tid]->req.store(nullptr, std::memory_order_release);
    domain_.retire(req);
  }

  // One copy-apply-SC episode.  True = the current (or just-installed) cell
  // carries our request's result, copied to `out`.
  bool attempt(std::size_t tid, std::uint64_t seq, std::byte* out,
               std::size_t out_len) {
    auto g = domain_.guard();
    // acquire: pairs with the installing CAS's release — the cell and
    // everything it references are immutable and fully visible.
    Cell* cur = cur_.load(std::memory_order_acquire);
    if (cur->applied[tid] >= seq) {
      copy_out(*cur, tid, out, out_len);
      return true;
    }
    const std::size_t ceiling = registered_ceiling();
    Cell* cand = new Cell(*cur, ceiling);
    for (std::size_t t = 0; t < ceiling; ++t) {
      // acquire: pairs with the announcing release store; the record is
      // immutable after it.
      RequestBase* r = announce_[t]->req.load(std::memory_order_acquire);
      if (r == nullptr || cand->applied[t] >= r->seq) continue;
      r->exec(r, *cand, t);
      cand->applied[t] = r->seq;
    }
    detail::preemption_point();
    // acq_rel on success: release publishes the candidate cell; acquire
    // orders the retirement of the displaced cell.  acquire on failure:
    // the winning cell is read below.
    if (cur_.compare_exchange_strong(cur, cand, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      domain_.retire(cur);
      copy_out(*cand, tid, out, out_len);
      return true;
    }
    delete cand;  // never published: ours to free directly
    // `cur` was reloaded by the failed CAS; the winner may already have
    // applied us.
    if (cur->applied[tid] >= seq) {
      copy_out(*cur, tid, out, out_len);
      return true;
    }
    return false;
  }

  bool collect(std::size_t tid, std::uint64_t seq, std::byte* out,
               std::size_t out_len) {
    auto g = domain_.guard();
    // acquire: see attempt().
    Cell* cur = cur_.load(std::memory_order_acquire);
    if (cur->applied[tid] < seq) return false;
    copy_out(*cur, tid, out, out_len);
    return true;
  }

  static void copy_out(const Cell& c, std::size_t tid, std::byte* out,
                       std::size_t out_len) {
    if (out_len == 0) return;
    CCDS_ASSERT(c.rbuf[tid].size() >= out_len);
    std::memcpy(out, c.rbuf[tid].data(), out_len);
  }

  CCDS_CACHELINE_ALIGNED Atomic<Cell*> cur_{nullptr};
  Padded<AnnounceSlot> announce_[kMaxThreads];
  // mutable-free: the domain outlives every cell/request it manages; its
  // destructor drains whatever is still retired (quiescent by then).
  Domain domain_;
};

}  // namespace ccds

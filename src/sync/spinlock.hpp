// Test-and-set spin locks.
//
// The bottom of the lock spectrum: TasLock issues an atomic exchange on every
// spin iteration and therefore generates continuous coherence traffic;
// TtasLock spins on a local read and only attempts the exchange when the lock
// looks free; TtasBackoffLock adds randomized exponential backoff after a
// failed attempt.  All three meet the C++ BasicLockable requirements and so
// compose with std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/backoff.hpp"

namespace ccds {

// Naive test-and-set lock.  Correct but collapses under contention.
class TasLock {
 public:
  void lock() noexcept {
    // acquire on success orders the critical section after the acquisition.
    std::uint32_t spins = 0;
    while (locked_.exchange(true, std::memory_order_acquire)) {
      spin_wait(spins);
    }
  }

  bool try_lock() noexcept {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept {
    // release publishes the critical section to the next acquirer.
    locked_.store(false, std::memory_order_release);
  }

 private:
  CCDS_CACHELINE_ALIGNED Atomic<bool> locked_{false};
};

// Test-and-test-and-set: spin on a shared read (cache-local after the first
// miss), exchange only when the lock appears free.
class TtasLock {
 public:
  void lock() noexcept {
    std::uint32_t spins = 0;
    for (;;) {
      // relaxed is fine for the inner read: it is only a heuristic; the
      // exchange below carries the acquire.
      while (locked_.load(std::memory_order_relaxed)) spin_wait(spins);
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&  // relaxed: peek; the exchange acquires
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  CCDS_CACHELINE_ALIGNED Atomic<bool> locked_{false};
};

// TTAS plus randomized exponential backoff after each failed acquisition
// attempt (Anderson 1990): colliding threads de-synchronize, trading a little
// latency for much less coherence traffic.
class TtasBackoffLock {
 public:
  void lock() noexcept {
    Backoff backoff;
    std::uint32_t spins = 0;
    for (;;) {
      while (locked_.load(std::memory_order_relaxed)) spin_wait(spins);  // relaxed: spin read; the exchange acquires
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      backoff.spin();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&  // relaxed: peek; the exchange acquires
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  CCDS_CACHELINE_ALIGNED Atomic<bool> locked_{false};
};

}  // namespace ccds

// One-shot completion slot: the future half of a submit/complete pair.
//
// A requester allocates a OneShot<R> (typically on its own stack), attaches
// a pointer to it to a request record, and hands the record to a server —
// a shard worker, a combiner, any thread that will eventually produce the
// result.  The server constructs the value with complete(); the requester
// observes readiness with ready() or blocks in take()/wait().
//
// This is the same storage discipline as detail::ResultSlot in
// sync/combiner.hpp — the value is constructed in place by the COMPLETING
// thread, so R need not be default-constructible — plus the publication
// protocol ResultSlot leaves to the combining engines: a release store of
// the state word after construction, paired with the requester's acquire
// load, so observing ready() == true happens-after the value (and
// everything the server did before completing, e.g. the map mutation the
// response describes) is fully written.  That ordering is the
// complete-after-apply invariant the service tier's model suite checks
// (tests/model/test_model_service.cpp).
//
// Lifecycle: empty -> complete() -> ready -> take() -> empty (reusable).
// complete() must be called exactly once per cycle, by one thread; any
// number of threads may poll ready(), but one consumer takes.  The waiting
// loops use spin_wait, which under the model checker yields to the
// deterministic scheduler — so a model thread blocked in take() is explored
// like any other waiter instead of deadlocking the exploration.
#pragma once

#include <cstdint>
#include <new>
#include <utility>

#include "core/arch.hpp"
#include "core/atomic.hpp"

namespace ccds {

template <typename R>
class OneShot {
 public:
  OneShot() = default;
  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;

  ~OneShot() {
    if (state_.load(std::memory_order_acquire) != 0) value_ptr()->~R();
  }

  // Server side: construct the result and publish it.  Exactly once per
  // cycle.
  void complete(R value) {
    ::new (static_cast<void*>(buf_)) R(std::move(value));
    // release: the requester's acquire of state_ must see the constructed
    // value and every store the server made before completing.
    state_.store(1, std::memory_order_release);
  }

  // acquire: pairs with complete()'s release (see above).
  bool ready() const noexcept {
    return state_.load(std::memory_order_acquire) != 0;
  }

  // Block (spin-then-yield) until completed, then move the value out and
  // reset the slot for reuse.
  R take() {
    std::uint32_t spins = 0;
    while (!ready()) spin_wait(spins);
    R out = std::move(*value_ptr());
    value_ptr()->~R();
    // relaxed: the slot returns to the empty state for this thread's next
    // cycle; handing it to a *different* server afterwards is synchronized
    // by whatever channel carries the request record.
    state_.store(0, std::memory_order_relaxed);
    return out;
  }

 private:
  R* value_ptr() noexcept { return std::launder(reinterpret_cast<R*>(buf_)); }

  // unpadded: a OneShot is a caller-owned single-use result slot — exactly
  // one completer and one waiter ever touch it, and callers embed arrays of
  // them (bench windows, request tails) where a cache line per slot would
  // multiply the footprint 8x for no contention win.
  Atomic<std::uint32_t> state_{0};
  alignas(R) unsigned char buf_[sizeof(R)];
};

}  // namespace ccds

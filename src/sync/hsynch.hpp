// H-Synch: hierarchical (topology-aware) combining (Fatourou & Kallimanis,
// PPoPP 2012 — the NUMA member of the Synch framework).
//
// On a multi-socket machine a flat request list makes every combining
// episode ping the list tail and the request nodes across sockets.  H-Synch
// keeps the request traffic local: each topology node (core/topology.hpp —
// a NUMA node when sysfs says so, a fixed-arity cache cluster otherwise)
// has its OWN CC-Synch request list, and only the per-node combiner (the
// "node winner") competes for a global lock.  Per apply:
//
//   1. publish on the local node's list and spin locally — the swap-append,
//      the request node, and the wait flag all stay inside one node's cache
//      hierarchy;
//   2. a thread whose wait drops un-completed is its node's combiner: it
//      acquires the global lock, serves its local list (up to Window
//      requests) against the shared state, releases the lock, and only
//      then hands the local combiner role off — so the handoff wake-up
//      never happens while the state is still locked.
//
// The request-list mechanics are the extracted detail::CombiningList
// (sync/combining_core.hpp), byte-for-byte the protocol CcSynch runs; the
// hierarchy is just WHERE the lists live and the global-lock bracket around
// serve_window().  With one topology node (the fallback on small hosts)
// H-Synch degenerates to CC-Synch plus an uncontended lock acquisition per
// episode.
//
// current_node() is an affinity HINT (threads migrate): a request published
// on the "wrong" node's list is still served correctly — the node index
// only decides which list absorbs the thread's cache traffic.  Correctness
// never depends on the topology map.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "core/thread_registry.hpp"
#include "core/topology.hpp"
#include "sync/ccsynch.hpp"
#include "sync/combiner.hpp"
#include "sync/combining_core.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

// Cap on per-engine node lists: each list owns a kMaxThreads+1 node pool,
// so unbounded node counts would make one engine instance enormous.  Hosts
// with more topology nodes fold them modulo the cap (coarser locality, same
// protocol).
inline constexpr std::size_t kHSynchMaxNodes = 8;

template <typename State, int Window = kCcSynchWindow>
class HSynch : public CombinerBatchOps<HSynch<State, Window>, State> {
  friend class CombinerBatchOps<HSynch<State, Window>, State>;
  using List = detail::CombiningList<State, Window>;
  using Node = typename List::Node;

 public:
  // Engine traits (sync/combiner.hpp): the global lock and the local
  // handoff both block behind a preempted holder, and the whole point is
  // consulting the topology service.
  static constexpr bool kIsWaitFree = false;
  static constexpr bool kIsHierarchical = true;
  static constexpr std::size_t kMaxEngineThreads = kMaxThreads;

  HSynch() : HSynch(State{}) {}

  // The per-node list count is fixed at construction from the topology
  // service (tests install topology::ScopedOverride BEFORE constructing).
  explicit HSynch(State initial) : state_(std::move(initial)) {
    std::size_t n = topology::node_count();
    if (n > kHSynchMaxNodes) n = kHSynchMaxNodes;
    if (n == 0) n = 1;
    nodes_ = n;
    lists_ = std::make_unique<List[]>(nodes_);
  }

  HSynch(const HSynch&) = delete;
  HSynch& operator=(const HSynch&) = delete;

  // Execute `op(state)` with hierarchical combining; returns op's result.
  template <typename F>
  auto apply(F&& op) -> std::invoke_result_t<F&, State&> {
    using R = std::invoke_result_t<F&, State&>;
    detail::ResultSlot<R> result;
    List& list = local_list();
    Node* mine = list.publish(
        thread_id(), &detail::run_erased<State, std::remove_reference_t<F>>,
        &op, &result, nullptr);
    if (!List::await(mine)) {
      serve_as_node_winner(list, mine);
    }
    if constexpr (!std::is_void_v<R>) return result.take();
  }

  // apply_batch / apply_sorted_batch come from CombinerBatchOps (the shared
  // batch-episode surface, identical across engines).

  // How many per-node request lists this instance actually built (the
  // topology's node count, clamped; diagnostics and tests).
  std::size_t node_list_count() const noexcept { return nodes_; }

  // Direct exclusive access (initialization / inspection).  Combining is
  // already a total serialization of operations, so this is just apply.
  template <typename F>
  auto apply_locked(F&& op) -> std::invoke_result_t<F&, State&> {
    return apply(std::forward<F>(op));
  }

 private:
  // Mergeable publication for CombinerBatchOps::apply_sorted_batch — the
  // CcSynch shape, on the local node's list.
  void submit_merged(detail::MergedRunFn<State> fn, detail::SortedRun* run) {
    List& list = local_list();
    Node* mine = list.publish(thread_id(), nullptr, run, nullptr, fn);
    if (!List::await(mine)) {
      serve_as_node_winner(list, mine);
    }
  }

  List& local_list() noexcept {
    return lists_[topology::current_node() % nodes_];
  }

  // The node winner's episode: global lock -> serve the LOCAL list ->
  // unlock -> local handoff.  Unlocking before the handoff keeps the woken
  // successor from immediately blocking on a lock we still hold; state
  // visibility to it is carried by the lock itself once it acquires.
  void serve_as_node_winner(List& list, Node* head) {
    global_lock_.lock();
    Node* next = list.serve_window(head, state_);
    global_lock_.unlock();
    List::handoff(next);
  }

  State state_;
  TtasLock global_lock_;
  std::size_t nodes_ = 1;
  // One request list per topology node, heap-held (each list embeds its
  // kMaxThreads+1 node pool; sizing is runtime, from the topology service).
  std::unique_ptr<List[]> lists_;
};

}  // namespace ccds

// Extracted building blocks of the list-based combining protocol.
//
// CcSynch and HSynch share one request-list mechanism — the Fatourou &
// Kallimanis swap-append list: a thread publishes a cache-line-padded
// request node with a single atomic exchange, spins locally on its own
// node, and either finds its result (a combiner served it) or inherits the
// combiner role and serves the list itself.  detail::CombiningList owns
// that mechanism end to end:
//
//   publish()       re-arm the caller's spare node, swap-append it, write
//                   the request into the adopted predecessor node;
//   await()         local spin on the caller's own node; true = a combiner
//                   completed the request, false = the caller IS now the
//                   combiner and must serve from its node;
//   serve_window()  walk the list in arrival order for up to Window
//                   requests, executing scalar requests directly and
//                   gathering consecutive mergeable sorted runs with the
//                   same entry point into ONE merged application; returns
//                   the first unserved node (the handoff point);
//   handoff()       drop the handoff node's wait flag, transferring the
//                   combiner role (or, on the tail sentinel, leaving it
//                   free for the next arrival).
//
// CcSynch is publish + await + serve + handoff over one list; HSynch runs
// one list per topology node and brackets serve_window() in a global lock
// so node winners serialize against each other (sync/hsynch.hpp).  Keeping
// the machinery here means a protocol fix lands in every list-based engine
// at once — and the model suites exercising CcSynch cover the shared core
// HSynch runs on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"
#include "sync/combiner.hpp"

namespace ccds {
namespace detail {

template <typename State, int Window>
class CombiningList {
  static_assert(Window >= 1, "combining window must admit the own request");

 public:
  // A combining request node.  `wait` is spun on by its owner and dropped
  // remotely by the combiner, so the node owns a full cache line (the
  // memory-order lint's unpadded-combining-node rule enforces this shape).
  struct CCDS_CACHELINE_ALIGNED Node {
    Atomic<Node*> next{nullptr};
    Atomic<bool> wait{false};
    Atomic<bool> completed{false};
    void (*run)(void* ctx, void* res, State& s) = nullptr;
    void* ctx = nullptr;
    void* result = nullptr;
    // Non-null marks a mergeable sorted-run request (apply_sorted_batch):
    // the combiner may execute a consecutive group of requests bearing the
    // SAME function through one call (see serve_window()).  `ctx` then
    // points at the submitter's detail::SortedRun.
    MergedRunFn<State> run_merged = nullptr;
  };

  CombiningList() {
    // pool_[i] starts as thread i's spare; the extra node is the initial
    // list tail.  The tail node must read as "combiner role free":
    // wait=false / completed=false, so the first arrival combines.
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      spare_[i].value = &pool_[i];
    }
    tail_.store(&pool_[kMaxThreads], std::memory_order_relaxed);  // relaxed: constructor, pre-publication
  }

  CombiningList(const CombiningList&) = delete;
  CombiningList& operator=(const CombiningList&) = delete;

  // Publish one request and return OUR node (the adopted predecessor).
  // A null `run` with non-null `run_merged` publishes a mergeable sorted
  // run; `result` may be null for void/merged requests.
  Node* publish(std::size_t tid, void (*run)(void*, void*, State&), void* ctx,
                void* result, MergedRunFn<State> run_merged) {
    Node* fresh = spare_[tid].value;
    // Re-arm the node we are about to install as the list tail.
    // unguarded: nodes are the list's fixed pool, recycled via handoff,
    // never freed — no reclaimer in play.
    // relaxed: all three stores are published by the exchange's release.
    fresh->next.store(nullptr, std::memory_order_relaxed);
    fresh->wait.store(true, std::memory_order_relaxed);
    fresh->completed.store(false, std::memory_order_relaxed);

    // Swap-append: the only global synchronization action of the fast path.
    // acq_rel: release publishes fresh's re-armed fields to the next
    // arrival; acquire pairs with the previous arrival's release so cur's
    // fields are ours to write.
    Node* cur = tail_.exchange(fresh, std::memory_order_acq_rel);
    // cur is now our request node; recycle it as our spare for the next
    // call (it is quiescent by the time the call returns — see
    // serve_window()).
    spare_[tid].value = cur;

    cur->run = run;
    cur->ctx = ctx;
    cur->result = result;
    cur->run_merged = run_merged;  // nodes recycle: always (re)written
    // release: hand the fully-written request to whichever combiner follows
    // this link (its acquire load of `next` pairs with this).  unguarded:
    // fixed-pool node, see above.
    cur->next.store(fresh, std::memory_order_release);
    return cur;
  }

  // Local spin on our own node until a combiner serves it or hands the
  // combiner role to us.  True = completed (result ready); false = we are
  // the combiner and must serve starting from `mine`.
  static bool await(Node* mine) {
    // The waiter can make no progress until the current combiner executes
    // (or hands off to) its request, so the spin must eventually yield: on
    // an oversubscribed host a pure cpu_relax loop burns the combiner's own
    // scheduler quantum.  spin_wait is spin-then-yield natively and a
    // deterministic scheduler yield under the model checker.
    std::uint32_t spins = 0;
    // acquire: pairs with the combiner's releasing wait-drop, making the
    // result (completed path) or all prior state mutations (handoff path)
    // visible.
    while (mine->wait.load(std::memory_order_acquire)) {
      spin_wait(spins);
    }
    // relaxed: the acquire above ordered this flag; it was written before
    // the wait-drop we just observed.
    return mine->completed.load(std::memory_order_relaxed);
  }

  // Serve requests from `head` (our own, always first) in list order, up to
  // Window of them, against `state`.  Returns the first UNSERVED node: the
  // current tail (whose future owner will find the combiner role free) or,
  // when the window is exhausted, a pending request whose spinning owner
  // inherits the role via handoff().
  Node* serve_window(Node* head, State& state) {
    // unguarded: Nodes are per-thread slots recycled through the handoff
    // protocol, never freed while the list is live — no reclaimer in play.
    Node* node = head;
    int served = 0;
    while (served < Window) {
      preemption_point();
      // acquire: pairs with the requester's release link store — if we see
      // `next`, we see the request fields written before it.  unguarded:
      // fixed-pool node, see above.
      Node* next = node->next.load(std::memory_order_acquire);
      if (next == nullptr) break;  // `node` is the tail: no request in it yet
      if (node->run_merged != nullptr) {
        // Gather the consecutive run of mergeable requests with the same
        // entry point and execute them as ONE merged application.  A thread
        // has at most one pending request, so kMaxThreads bounds the group.
        const MergedRunFn<State> fn = node->run_merged;
        void* ctxs[kMaxThreads];
        Node* members[kMaxThreads];
        std::size_t count = 0;
        Node* n = node;
        Node* n_next = next;
        for (;;) {
          members[count] = n;
          ctxs[count] = n->ctx;
          ++count;
          if (served + static_cast<int>(count) >= Window ||
              count == kMaxThreads) {
            break;
          }
          Node* cand = n_next;
          // acquire: cand's request fields (run_merged, ctx) are only
          // published — and safe to read — once its next link is set.
          // unguarded: fixed-pool node, see above.
          Node* cand_next = cand->next.load(std::memory_order_acquire);
          if (cand_next == nullptr || cand->run_merged != fn) break;
          n = cand;
          n_next = cand_next;
        }
        fn(ctxs, count, state);
        // Complete every member only now: all runs' results are written
        // before any submitter's wait drops.  Each member's `next` was read
        // during the gather, before its owner can re-arm the node.
        for (std::size_t i = 0; i < count; ++i) {
          // relaxed: sequenced before the wait release, which publishes it.
          members[i]->completed.store(true, std::memory_order_relaxed);
          // release: publishes results and state mutations to the owner.
          members[i]->wait.store(false, std::memory_order_release);
        }
        served += static_cast<int>(count);
        node = n_next;  // first node NOT in the merged group
        continue;
      }
      node->run(node->ctx, node->result, state);
      // Read order matters: `next` was loaded above, BEFORE the wait-drop —
      // after it the owner may return and re-arm the node for its next call.
      // relaxed: sequenced before the wait release below, which publishes it.
      node->completed.store(true, std::memory_order_relaxed);
      // release: publishes the result and all state mutations to the owner.
      node->wait.store(false, std::memory_order_release);
      node = next;
      ++served;
    }
    return node;
  }

  // Transfer the combiner role (completed stays false: the woken owner —
  // present or future — serves, exactly as the original combiner did).
  static void handoff(Node* node) {
    // release: the next combiner's acquire of `wait` inherits our state
    // mutations.
    node->wait.store(false, std::memory_order_release);
  }

 private:
  CCDS_CACHELINE_ALIGNED Atomic<Node*> tail_{nullptr};
  // Node pool: one per possible thread plus the initial tail.  Nodes
  // migrate between threads via the exchange but never leave the pool, so
  // destruction frees everything wholesale and no reclamation is needed.
  Node pool_[kMaxThreads + 1];
  // spare_[t] is thread t's private node for its next publish.  Only the
  // owner of dense id t touches entry t (the registry hands each id to one
  // live thread at a time), so the entries are plain pointers; padding
  // keeps neighbouring threads' re-arm writes off each other's line.
  Padded<Node*> spare_[kMaxThreads];
};

}  // namespace detail
}  // namespace ccds

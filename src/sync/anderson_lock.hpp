// Anderson's array-based queue lock.
//
// Each waiter spins on its own padded flag in a circular array, so the
// release invalidates exactly one waiter's line instead of all of them.
// FIFO-fair like the ticket lock, but with local spinning.  The array is
// sized to kMaxThreads, which bounds the number of simultaneous waiters.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/arch.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

class AndersonLock {
 public:
  AndersonLock() noexcept {
    // relaxed: constructor; the lock is unpublished.
    flags_[0]->store(true, std::memory_order_relaxed);
    for (std::size_t i = 1; i < kSlots; ++i) {
      flags_[i]->store(false, std::memory_order_relaxed);
    }
  }

  void lock() noexcept {
    const std::uint32_t slot =
        tail_.fetch_add(1, std::memory_order_relaxed) % kSlots;  // relaxed: slot handout; flag load acquires
    std::uint32_t spins = 0;
    while (!flags_[slot]->load(std::memory_order_acquire)) spin_wait(spins);
    my_slot_[thread_id()].value = slot;
  }

  void unlock() noexcept {
    const std::uint32_t slot = my_slot_[thread_id()].value;
    // Reset own flag first (relaxed: only re-read kSlots acquisitions later,
    // ordered by the intervening release below and the tail RMW chain).
    flags_[slot]->store(false, std::memory_order_relaxed);
    flags_[(slot + 1) % kSlots]->store(true, std::memory_order_release);
  }

 private:
  static constexpr std::size_t kSlots = kMaxThreads;
  CCDS_CACHELINE_ALIGNED std::atomic<std::uint32_t> tail_{0};
  Padded<std::atomic<bool>> flags_[kSlots];
  Padded<std::uint32_t> my_slot_[kMaxThreads];
};

}  // namespace ccds

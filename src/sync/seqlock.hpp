// Seqlock: optimistic reader / serialized-writer protection for small
// trivially-copyable records.
//
// Writers bump a sequence counter to odd, mutate, bump back to even;
// readers copy the record and retry if the sequence changed or was odd.
// Readers are wait-free with respect to each other and never write shared
// memory — the survey's example of trading read-side scalability against
// write cost.
//
// Unlike the textbook construction (which reads the payload non-atomically
// and relies on the sequence re-check to discard torn values — a formal
// data race in the C++ memory model), this implementation stores the
// payload in relaxed atomic words, so it is UB-free and ThreadSanitizer-
// clean while compiling to the same plain loads/stores on mainstream
// hardware.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "core/arch.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename T>
class SeqLock {
  static_assert(std::is_trivially_copyable_v<T>,
                "SeqLock protects trivially copyable records only");

 public:
  SeqLock() { store_words(shadow_); }
  explicit SeqLock(const T& initial) : shadow_(initial) {
    store_words(shadow_);
  }

  // Optimistic read: loops until it obtains a torn-free snapshot.
  T read() const noexcept {
    std::uint32_t spins = 0;
    for (;;) {
      // acquire: the word loads below cannot float above this check.
      const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1) {  // write in progress
        spin_wait(spins);
        continue;
      }
      std::uint64_t buf[kWords];
      for (std::size_t w = 0; w < kWords; ++w) {
        // relaxed: ordered collectively by the acquire above and the
        // acquire fence below; torn combinations are discarded by the
        // sequence re-check.
        buf[w] = words_[w].load(std::memory_order_relaxed);
      }
      // acquire fence: the word loads above complete before the re-check.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {  // relaxed: the fence above orders the re-read
        T out;
        std::memcpy(&out, buf, sizeof(T));
        return out;
      }
      spin_wait(spins);
    }
  }

  // Exclusive write (writers are serialized by an internal lock; the
  // non-atomic shadow copy is writer-private under that lock).
  template <typename F>
  void write(F&& mutate) noexcept {
    writer_lock_.lock();
    mutate(shadow_);
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);  // relaxed: writer lock held; seq_ is ours
    seq_.store(s + 1, std::memory_order_relaxed);  // relaxed: odd marker; fence below orders it
    // release fence: the odd sequence becomes visible before any word
    // store below.
    std::atomic_thread_fence(std::memory_order_release);
    store_words(shadow_);
    // release: all word stores complete before the even sequence appears.
    seq_.store(s + 2, std::memory_order_release);
    writer_lock_.unlock();
  }

  void store(const T& v) noexcept {
    write([&](T& slot) { slot = v; });
  }

 private:
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  void store_words(const T& v) noexcept {
    std::uint64_t buf[kWords] = {};
    std::memcpy(buf, &v, sizeof(T));
    for (std::size_t w = 0; w < kWords; ++w) {
      words_[w].store(buf[w], std::memory_order_relaxed);  // relaxed: ordered by the surrounding fences
    }
  }

  CCDS_CACHELINE_ALIGNED mutable std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> words_[kWords] = {};  // unpadded: payload; seq_ is the contended word
  T shadow_{};  // writer-private master copy, guarded by writer_lock_
  TtasLock writer_lock_;
};

}  // namespace ccds

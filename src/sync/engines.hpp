// The single combining-engine enrollment point.
//
// Everything that is generic over "a combining engine" — the typed front
// suites, the model suites' generic sections, the batched-structure policy
// rows, the combining benches, the traits suite — consumes the X-macro
// below instead of keeping its own engine list.  Enrolling a new engine is
// ONE edit here (plus its header include); every suite and bench picks it
// up on the next build, and the CombinerFor concept check in each front
// rejects an engine that does not honor the protocol.
//
// Engines are named by their class template (all take State as the first
// parameter with any extras defaulted, so they bind to the fronts'
// `template <typename> class Engine` slot):
//
//   FlatCombiner — slot-scan combining under a TTAS lock (Hendler et al.)
//   CcSynch      — swap-append request list, lock-free publication
//   HSynch       — per-topology-node CC-Synch lists + global lock
//   PSim         — wait-free universal construction (announce + copy-SC)
//
// Usage patterns:
//
//   // Apply a macro to every engine identifier (statement-ish contexts):
//   #define ROW(E) do_something_with<ccds::E>(#E);
//   CCDS_COMBINER_ENGINES(ROW)
//   #undef ROW
//
//   // Build a comma-separated list (typelists, ::testing::Types<...>):
//   #define WRAP(E) MyFixture<ccds::E>
//   using EngineFixtures = ::testing::Types<CCDS_COMBINER_ENGINE_LIST(WRAP)>;
//   #undef WRAP
//
//   // Display name for bench rows / diagnostics:
//   ccds::combining_engine_name<ccds::CcSynch>::value  // "CcSynch"
#pragma once

#include "sync/ccsynch.hpp"
#include "sync/flat_combining.hpp"
#include "sync/hsynch.hpp"
#include "sync/psim.hpp"

// Every combining engine, in documentation order.  X receives the bare
// engine identifier (unqualified; expand inside namespace ccds or qualify
// in the macro you pass).
#define CCDS_COMBINER_ENGINES(X) \
  X(FlatCombiner)                \
  X(CcSynch)                     \
  X(HSynch)                      \
  X(PSim)

// The same list comma-separated, for typelist contexts.
#define CCDS_COMBINER_ENGINE_LIST(W) \
  W(FlatCombiner), W(CcSynch), W(HSynch), W(PSim)

namespace ccds {

// Compile-time display name per engine template, for bench row names and
// typed-test diagnostics.
template <template <typename> class E>
struct combining_engine_name;

#define CCDS_ENGINE_NAME_SPEC(E)               \
  template <>                                  \
  struct combining_engine_name<E> {            \
    static constexpr const char* value = #E;   \
  };
CCDS_COMBINER_ENGINES(CCDS_ENGINE_NAME_SPEC)
#undef CCDS_ENGINE_NAME_SPEC

}  // namespace ccds

// Mellor-Crummey & Scott (MCS) list-based queue lock.
//
// Each waiter enqueues a node and spins on a flag in *its own* node, giving
// purely local spinning and O(1) coherence traffic per handoff; this is the
// survey's canonical scalable lock.  Nodes are per-(lock, thread) slots so
// the lock meets BasicLockable without threading a node through the API.
#pragma once

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/padded.hpp"
#include "core/thread_registry.hpp"

namespace ccds {

class McsLock {
 public:
  void lock() noexcept {
    QNode* me = &nodes_[thread_id()].value;
    // relaxed: node fields are published by the exchange's release.
    me->next.store(nullptr, std::memory_order_relaxed);
    me->locked.store(true, std::memory_order_relaxed);
    // acq_rel: acquire pairs with the releasing unlock of the predecessor we
    // observe; release publishes our node initialization to that predecessor.
    QNode* pred = tail_.exchange(me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      pred->next.store(me, std::memory_order_release);
      std::uint32_t spins = 0;
      while (me->locked.load(std::memory_order_acquire)) spin_wait(spins);
    }
  }

  bool try_lock() noexcept {
    QNode* me = &nodes_[thread_id()].value;
    me->next.store(nullptr, std::memory_order_relaxed);  // relaxed: published by the CAS on success
    QNode* expected = nullptr;
    return tail_.compare_exchange_strong(expected, me,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);  // relaxed: failure means contention; give up
  }

  void unlock() noexcept {
    QNode* me = &nodes_[thread_id()].value;
    QNode* succ = me->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      // No known successor: try to swing tail back to empty.
      QNode* expected = me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {  // relaxed: failure means a successor exists
        return;
      }
      // A successor is in the middle of enqueueing; wait for its link.
      std::uint32_t spins = 0;
      while ((succ = me->next.load(std::memory_order_acquire)) == nullptr) {
        spin_wait(spins);
      }
    }
    succ->locked.store(false, std::memory_order_release);
  }

 private:
  // unpadded: next and locked each take exactly one remote write per
  // handoff (successor links itself; predecessor drops the latch), and
  // the whole QNode sits inside a Padded<> array slot below — splitting
  // the two fields would double the per-thread footprint for nothing.
  struct QNode {
    Atomic<QNode*> next{nullptr};
    Atomic<bool> locked{false};
  };

  CCDS_CACHELINE_ALIGNED Atomic<QNode*> tail_{nullptr};
  Padded<QNode> nodes_[kMaxThreads];
};

}  // namespace ccds

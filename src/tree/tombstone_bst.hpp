// Lock-free tombstone binary search tree set.
//
// Structural simplification used by several practical concurrent trees:
// nodes, once linked, are immortal — remove() only flips an atomic
// "tombstone" flag, and insert() of a tombstoned key revives the node in
// place.  This eliminates the two hard problems of concurrent BSTs in one
// stroke: physical deletion (no unlink, so no reclamation and no ABA) and
// rebalancing (none; the tree's shape is whatever the insertion order
// produced, as in an unbalanced sequential BST).
//
//   contains — wait-free pure traversal (no CAS, no protection needed);
//   insert   — lock-free: one CAS to link a new leaf or revive a tombstone;
//   remove   — wait-free: one atomic exchange on the tombstone flag.
//
// The trade-offs: memory is proportional to the historical key-set, and
// expected depth relies on insertion-order randomness (adversarial sorted
// insertion degrades to O(n), as with any unbalanced BST).  For churn over
// a bounded key universe — the benchmark workloads of experiment E8 — both
// are non-issues.
#pragma once

#include <atomic>
#include <functional>

#include "core/arch.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>>
class TombstoneBstSet {
 public:
  TombstoneBstSet() = default;
  TombstoneBstSet(const TombstoneBstSet&) = delete;
  TombstoneBstSet& operator=(const TombstoneBstSet&) = delete;

  ~TombstoneBstSet() { destroy(root_.load(std::memory_order_relaxed)); }  // relaxed: destructor

  bool contains(const Key& key) const {
    Node* n = root_.load(std::memory_order_acquire);
    while (n != nullptr) {
      if (comp_(key, n->key)) {
        n = n->left.load(std::memory_order_acquire);
      } else if (comp_(n->key, key)) {
        n = n->right.load(std::memory_order_acquire);
      } else {
        return !n->dead.load(std::memory_order_acquire);
      }
    }
    return false;
  }

  bool insert(const Key& key) {
    std::atomic<Node*>* link = &root_;
    Node* n = link->load(std::memory_order_acquire);
    Node* fresh = nullptr;
    for (;;) {
      if (n == nullptr) {
        if (fresh == nullptr) fresh = new Node(key);
        // release: publish the node's key to traversals.
        if (link->compare_exchange_strong(n, fresh,
                                          std::memory_order_release,
                                          std::memory_order_acquire)) {
          return true;
        }
        // n now holds the racing winner; fall through and keep descending.
        continue;
      }
      if (comp_(key, n->key)) {
        link = &n->left;
      } else if (comp_(n->key, key)) {
        link = &n->right;
      } else {
        delete fresh;
        // Revive: we "inserted" iff the node was dead and we flipped it.
        return n->dead.exchange(false, std::memory_order_acq_rel);
      }
      n = link->load(std::memory_order_acquire);
    }
  }

  bool remove(const Key& key) {
    Node* n = root_.load(std::memory_order_acquire);
    while (n != nullptr) {
      if (comp_(key, n->key)) {
        n = n->left.load(std::memory_order_acquire);
      } else if (comp_(n->key, key)) {
        n = n->right.load(std::memory_order_acquire);
      } else {
        // Removed iff it was alive and we are the one who killed it.
        return !n->dead.exchange(true, std::memory_order_acq_rel);
      }
    }
    return false;
  }

  // Number of live keys (linear walk; exact at quiescence).
  std::size_t size() const {
    return count_live(root_.load(std::memory_order_relaxed));  // relaxed: quiescent by contract
  }

 private:
  struct Node {
    const Key key;
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    std::atomic<bool> dead{false};
    explicit Node(const Key& k) : key(k) {}
  };

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.load(std::memory_order_relaxed));  // relaxed: destructor
    destroy(n->right.load(std::memory_order_relaxed));  // relaxed: destructor
    delete n;
  }

  static std::size_t count_live(Node* n) {
    if (n == nullptr) return 0;
    // relaxed: exact counts require caller-side quiescence.
    return (n->dead.load(std::memory_order_relaxed) ? 0 : 1) +
           count_live(n->left.load(std::memory_order_relaxed)) +
           count_live(n->right.load(std::memory_order_relaxed));
  }

  CCDS_CACHELINE_ALIGNED std::atomic<Node*> root_{nullptr};
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

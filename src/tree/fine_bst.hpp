// Fine-grained external binary search tree with hand-over-hand locking and
// TRUE physical deletion.
//
// External (leaf-oriented) layout: all keys live in leaves; internal nodes
// are pure routing (key = smallest key of the right subtree's range; go
// left iff search key < routing key).  This is the layout concurrent BSTs
// (Ellen et al. 2010, Natarajan & Mittal 2014) use, because it makes
// deletion LOCAL: removing leaf L with parent P just swings grandparent
// G's child pointer from P to L's sibling — no successor swaps, no
// rebalancing cascade.
//
// Synchronization is triple-lock coupling: descents hold locks on
// (grandparent, parent, current) and acquire each child before releasing
// the great-grandparent, so every mutation happens under the locks of all
// nodes it touches and physical deletion can free nodes immediately (any
// competitor is blocked at or above the grandparent; no reclamation domain
// needed).  Locks are always taken downward along tree paths, so lock
// order is consistent and deadlock-free.
//
// Two permanent sentinels above the tree (anchor -> root -> actual tree,
// with infinity-ranked routing keys) guarantee every real leaf has both a
// parent and a grandparent, eliminating all root special cases.
#pragma once

#include <functional>
#include <mutex>

#include "core/arch.hpp"
#include "sync/spinlock.hpp"

namespace ccds {

template <typename Key, typename Compare = std::less<Key>,
          typename Lock = TtasLock>
class FineBstSet {
 public:
  FineBstSet() {
    // anchor(inf3) -> left: root(inf2) -> left: empty-marker leaf(inf1).
    Node* empty_leaf = new Node(Key{}, 1);
    root_ = new Node(Key{}, 2, empty_leaf, nullptr);
    anchor_ = new Node(Key{}, 3, root_, nullptr);
  }

  FineBstSet(const FineBstSet&) = delete;
  FineBstSet& operator=(const FineBstSet&) = delete;

  ~FineBstSet() { destroy(anchor_); }

  bool contains(const Key& key) {
    // Lock-coupled read: two locks at a time suffice for queries.
    anchor_->lock.lock();
    Node* p = anchor_;
    Node* c = anchor_->child(goes_left(key, anchor_));
    c->lock.lock();
    while (!c->is_leaf()) {
      Node* next = c->child(goes_left(key, c));
      next->lock.lock();
      p->lock.unlock();
      p = c;
      c = next;
    }
    const bool found = leaf_matches(c, key);
    c->lock.unlock();
    p->lock.unlock();
    return found;
  }

  bool insert(const Key& key) {
    anchor_->lock.lock();
    Node* p = anchor_;
    Node* c = anchor_->child(goes_left(key, anchor_));
    c->lock.lock();
    while (!c->is_leaf()) {
      Node* next = c->child(goes_left(key, c));
      next->lock.lock();
      p->lock.unlock();
      p = c;
      c = next;
    }
    // p (parent, internal) and c (leaf) are locked.
    bool inserted = false;
    if (!leaf_matches(c, key)) {
      // Split the leaf: new internal routes between the new leaf and c.
      // Routing key/rank = the larger of the two (so "< key goes left").
      Node* fresh = new Node(key, 0);
      Node* internal;
      if (c->rank > 0 || comp_(key, c->key)) {
        // key < c: new leaf goes left, c right; route on c's key.
        internal = new Node(c->key, c->rank, fresh, c);
      } else {
        internal = new Node(key, 0, c, fresh);
      }
      p->replace_child(c, internal);
      inserted = true;
    }
    c->lock.unlock();
    p->lock.unlock();
    return inserted;
  }

  bool remove(const Key& key) {
    anchor_->lock.lock();
    Node* gp = nullptr;
    Node* p = anchor_;
    Node* c = anchor_->child(goes_left(key, anchor_));
    c->lock.lock();
    while (!c->is_leaf()) {
      Node* next = c->child(goes_left(key, c));
      next->lock.lock();
      if (gp != nullptr) gp->lock.unlock();
      gp = p;
      p = c;
      c = next;
    }
    // gp, p, c locked; c is the target leaf, p its parent (internal).
    bool removed = false;
    if (gp != nullptr && leaf_matches(c, key)) {
      Node* sibling = p->left == c ? p->right : p->left;
      gp->replace_child(p, sibling);
      // Safe immediate frees: everyone else is blocked at or above gp and
      // will re-route through `sibling`.
      p->lock.unlock();
      c->lock.unlock();
      delete p;
      delete c;
      gp->lock.unlock();
      return true;
    }
    // gp can never be null here: the anchor's child is the permanent root
    // sentinel (internal), so the descent loop runs at least once.
    CCDS_ASSERT(gp != nullptr);
    c->lock.unlock();
    p->lock.unlock();
    if (gp != nullptr) gp->lock.unlock();
    return removed;
  }

  // Quiescent-only: walk and count real leaves.
  std::size_t size() const { return count_leaves(anchor_); }

 private:
  struct Node {
    const Key key;
    // 0 = real key; 1..3 = +infinity sentinels of increasing order (any
    // rank > 0 compares greater than every real key; among sentinels the
    // rank decides).
    const int rank;
    Node* left;
    Node* right;
    Lock lock;

    Node(const Key& k, int r) : key(k), rank(r), left(nullptr),
                                right(nullptr) {}
    Node(const Key& k, int r, Node* l, Node* rt)
        : key(k), rank(r), left(l), right(rt) {}

    bool is_leaf() const { return left == nullptr; }
    Node* child(bool go_left) const { return go_left ? left : right; }
    void replace_child(Node* old_child, Node* fresh) {
      if (left == old_child) {
        left = fresh;
      } else {
        CCDS_ASSERT(right == old_child);
        right = fresh;
      }
    }
  };

  // True iff `key` routes into `node`'s left subtree (key < node).
  bool goes_left(const Key& key, const Node* node) const {
    if (node->rank > 0) return true;  // every real key < any sentinel
    return comp_(key, node->key);
  }

  bool leaf_matches(const Node* leaf, const Key& key) const {
    return leaf->rank == 0 && !comp_(leaf->key, key) &&
           !comp_(key, leaf->key);
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  static std::size_t count_leaves(const Node* n) {
    if (n == nullptr) return 0;
    if (n->is_leaf()) return n->rank == 0 ? 1 : 0;
    return count_leaves(n->left) + count_leaves(n->right);
  }

  Node* anchor_;  // rank-3 sentinel: permanent grandparent of everything
  Node* root_;    // rank-2 sentinel
  [[no_unique_address]] Compare comp_{};
};

}  // namespace ccds

// Sequential AVL tree set (Adelson-Velsky & Landis 1962) and its
// coarse-grained wrapper.
//
// The balanced-search-tree baseline for experiment E8's family: guaranteed
// O(log n) operations, strict rebalancing on every update — exactly the
// rebalancing coupling that makes fine-grained concurrent balanced trees so
// hard, and that skip lists avoid.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <mutex>

namespace ccds {

template <typename Key, typename Compare = std::less<Key>>
class SeqAvlSet {
 public:
  SeqAvlSet() = default;
  SeqAvlSet(const SeqAvlSet&) = delete;
  SeqAvlSet& operator=(const SeqAvlSet&) = delete;
  ~SeqAvlSet() { destroy(root_); }

  bool contains(const Key& key) const {
    Node* n = root_;
    while (n != nullptr) {
      if (comp_(key, n->key)) {
        n = n->left;
      } else if (comp_(n->key, key)) {
        n = n->right;
      } else {
        return true;
      }
    }
    return false;
  }

  bool insert(const Key& key) {
    bool inserted = false;
    root_ = insert_at(root_, key, inserted);
    if (inserted) ++size_;
    return inserted;
  }

  bool remove(const Key& key) {
    bool removed = false;
    root_ = remove_at(root_, key, removed);
    if (removed) --size_;
    return removed;
  }

  std::size_t size() const { return size_; }

  // Height of the root (0 for empty): exposed for balance tests.
  int height() const { return height_of(root_); }

  // Structural invariant check (tests): BST order + AVL balance.
  bool check_invariants() const {
    bool ok = true;
    check(root_, nullptr, nullptr, ok);
    return ok;
  }

 private:
  struct Node {
    Key key;
    Node* left = nullptr;
    Node* right = nullptr;
    int height = 1;
  };

  static int height_of(Node* n) { return n == nullptr ? 0 : n->height; }
  static void update(Node* n) {
    n->height = 1 + std::max(height_of(n->left), height_of(n->right));
  }
  static int balance_of(Node* n) {
    return n == nullptr ? 0 : height_of(n->left) - height_of(n->right);
  }

  static Node* rotate_right(Node* y) {
    Node* x = y->left;
    y->left = x->right;
    x->right = y;
    update(y);
    update(x);
    return x;
  }

  static Node* rotate_left(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    y->left = x;
    update(x);
    update(y);
    return y;
  }

  static Node* rebalance(Node* n) {
    update(n);
    const int bal = balance_of(n);
    if (bal > 1) {
      if (balance_of(n->left) < 0) n->left = rotate_left(n->left);
      return rotate_right(n);
    }
    if (bal < -1) {
      if (balance_of(n->right) > 0) n->right = rotate_right(n->right);
      return rotate_left(n);
    }
    return n;
  }

  Node* insert_at(Node* n, const Key& key, bool& inserted) {
    if (n == nullptr) {
      inserted = true;
      return new Node{key};
    }
    if (comp_(key, n->key)) {
      n->left = insert_at(n->left, key, inserted);
    } else if (comp_(n->key, key)) {
      n->right = insert_at(n->right, key, inserted);
    } else {
      return n;  // duplicate
    }
    return rebalance(n);
  }

  Node* remove_at(Node* n, const Key& key, bool& removed) {
    if (n == nullptr) return nullptr;
    if (comp_(key, n->key)) {
      n->left = remove_at(n->left, key, removed);
    } else if (comp_(n->key, key)) {
      n->right = remove_at(n->right, key, removed);
    } else {
      removed = true;
      if (n->left == nullptr || n->right == nullptr) {
        Node* child = n->left != nullptr ? n->left : n->right;
        delete n;
        return child;  // may be null
      }
      // Two children: replace with in-order successor's key.
      Node* succ = n->right;
      while (succ->left != nullptr) succ = succ->left;
      n->key = succ->key;
      bool dummy = false;
      n->right = remove_key_min(n->right, dummy);
    }
    return rebalance(n);
  }

  // Remove the minimum node of the subtree (helper for two-child deletion).
  Node* remove_key_min(Node* n, bool& removed) {
    if (n->left == nullptr) {
      removed = true;
      Node* right = n->right;
      delete n;
      return right;
    }
    n->left = remove_key_min(n->left, removed);
    return rebalance(n);
  }

  void check(Node* n, const Key* lo, const Key* hi, bool& ok) const {
    if (n == nullptr || !ok) return;
    if (lo != nullptr && !comp_(*lo, n->key)) ok = false;
    if (hi != nullptr && !comp_(n->key, *hi)) ok = false;
    if (std::abs(balance_of(n)) > 1) ok = false;
    if (n->height != 1 + std::max(height_of(n->left), height_of(n->right))) {
      ok = false;
    }
    check(n->left, lo, &n->key, ok);
    check(n->right, &n->key, hi, ok);
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare comp_{};
};

// Coarse-grained AVL: the classic "wrap the sequential tree in one lock".
template <typename Key, typename Compare = std::less<Key>,
          typename Lock = std::mutex>
class CoarseAvlSet {
 public:
  bool contains(const Key& key) const {
    std::lock_guard<Lock> g(lock_);
    return impl_.contains(key);
  }
  bool insert(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    return impl_.insert(key);
  }
  bool remove(const Key& key) {
    std::lock_guard<Lock> g(lock_);
    return impl_.remove(key);
  }
  std::size_t size() const {
    std::lock_guard<Lock> g(lock_);
    return impl_.size();
  }

 private:
  mutable Lock lock_;
  SeqAvlSet<Key, Compare> impl_;
};

}  // namespace ccds

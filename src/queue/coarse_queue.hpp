// Coarse-grained lock-based FIFO queue: the baseline "synchronized wrapper".
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ccds {

template <typename T, typename Lock = std::mutex>
class LockQueue {
 public:
  void enqueue(T v) {
    std::lock_guard<Lock> g(lock_);
    items_.push_back(std::move(v));
  }

  std::optional<T> try_dequeue() {
    std::lock_guard<Lock> g(lock_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  bool empty() const {
    std::lock_guard<Lock> g(lock_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<Lock> g(lock_);
    return items_.size();
  }

 private:
  mutable Lock lock_;
  std::deque<T> items_;
};

}  // namespace ccds

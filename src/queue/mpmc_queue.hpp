// Bounded multi-producer / multi-consumer queue (Dmitry Vyukov's design).
//
// Each cell carries a sequence number that encodes, relative to the global
// enqueue/dequeue tickets, whether the cell is free, full, or being visited
// a lap later.  Producers and consumers claim tickets with one fetch-add
// each and then synchronize only through *their own cell's* sequence word,
// so unrelated operations never contend.  Not strictly lock-free (a stalled
// ticket holder stalls that cell's lap) but in practice the
// highest-throughput MPMC design that needs no reclamation (experiment E5).
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>

#include "core/arch.hpp"
#include "core/hash.hpp"
#include "core/padded.hpp"

namespace ccds {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : cap_(next_pow2(capacity)),
        mask_(cap_ - 1),
        cells_(static_cast<Cell*>(::operator new[](
            cap_ * sizeof(Cell), std::align_val_t{alignof(Cell)}))) {
    for (std::size_t i = 0; i < cap_; ++i) {
      new (&cells_[i]) Cell;
      cells_[i].seq.store(i, std::memory_order_relaxed);  // relaxed: ctor, queue unpublished
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  ~MpmcQueue() {
    // Destroy remaining elements: cells whose seq == ticket+1 hold values.
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);  // relaxed: destructor
    const std::size_t end = enqueue_pos_.load(std::memory_order_relaxed);  // relaxed: destructor
    for (; pos != end; ++pos) {
      Cell& c = cells_[pos & mask_];
      c.get()->~T();
    }
    for (std::size_t i = 0; i < cap_; ++i) cells_[i].~Cell();
    ::operator delete[](cells_, std::align_val_t{alignof(Cell)});
  }

  bool try_enqueue(T v) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);  // relaxed: hint; seq handshake orders
    for (;;) {
      cell = &cells_[pos & mask_];
      // acquire: pairs with the consumer's release that recycles the cell.
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // Cell free on our lap: claim the ticket.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {  // relaxed: seq handshake carries ordering
          break;
        }
      } else if (dif < 0) {
        return false;  // full: consumer of the previous lap hasn't finished
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);  // relaxed: hint refresh
      }
    }
    new (cell->raw) T(std::move(v));
    // release: publish the element to the dequeuer of this lap.
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Enqueue up to `n` contiguous items with ONE ticket CAS for the whole
  // run (ISSUE 9 satellite).  Returns the number enqueued (0 when full);
  // items [0, returned) are moved from.  Scans forward from the enqueue
  // cursor counting cells that are free on this lap, claims that many
  // tickets with a single compare_exchange, then fills the claimed cells —
  // so a batch of B costs one RMW plus B cell publications, where B
  // try_enqueue calls cost B RMWs racing every other producer each time.
  // Caveat (same class as the base design): a producer stalled between the
  // claim and a cell's publication stalls the consumer of that cell's lap.
  std::size_t try_push_bulk(T* items, std::size_t n) {
    if (n == 0) return 0;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);  // relaxed: hint; seq handshake orders
    for (;;) {
      std::size_t k = 0;
      bool full = false;
      while (k < n) {
        Cell& cell = cells_[(pos + k) & mask_];
        // acquire: pairs with the consumer's release that recycles the cell.
        const std::size_t seq = cell.seq.load(std::memory_order_acquire);
        const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                  static_cast<std::intptr_t>(pos + k);
        if (dif != 0) {
          full = dif < 0 && k == 0;
          break;
        }
        ++k;
      }
      if (k == 0) {
        if (full) return 0;  // cell of a previous lap still being consumed
        pos = enqueue_pos_.load(std::memory_order_relaxed);  // relaxed: hint refresh
        continue;
      }
      // One CAS claims tickets [pos, pos+k): no other producer can touch
      // those cells afterwards, and a free cell only transitions when its
      // ticket holder (now us) writes it, so the scan above cannot go stale.
      if (enqueue_pos_.compare_exchange_weak(pos, pos + k,
                                             std::memory_order_relaxed)) {  // relaxed: seq handshake carries ordering
        for (std::size_t i = 0; i < k; ++i) {
          Cell& cell = cells_[(pos + i) & mask_];
          new (cell.raw) T(std::move(items[i]));
          // release: publish the element to the dequeuer of this lap.
          cell.seq.store(pos + i + 1, std::memory_order_release);
        }
        return k;
      }
    }
  }

  // Dequeue up to `max` items into `out` with ONE ticket CAS for the whole
  // run.  Returns the number dequeued (0 when empty).  Mirror image of
  // try_push_bulk: scan forward counting cells published for this lap,
  // claim the run with a single compare_exchange, then consume and recycle
  // each claimed cell.
  std::size_t try_pop_bulk(T* out, std::size_t max) {
    if (max == 0) return 0;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);  // relaxed: hint; seq handshake orders
    for (;;) {
      std::size_t k = 0;
      bool empty = false;
      while (k < max) {
        Cell& cell = cells_[(pos + k) & mask_];
        const std::size_t seq = cell.seq.load(std::memory_order_acquire);
        const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                  static_cast<std::intptr_t>(pos + k + 1);
        if (dif != 0) {
          empty = dif < 0 && k == 0;
          break;
        }
        ++k;
      }
      if (k == 0) {
        if (empty) return 0;
        pos = dequeue_pos_.load(std::memory_order_relaxed);  // relaxed: hint refresh
        continue;
      }
      if (dequeue_pos_.compare_exchange_weak(pos, pos + k,
                                             std::memory_order_relaxed)) {  // relaxed: seq handshake carries ordering
        for (std::size_t i = 0; i < k; ++i) {
          Cell& cell = cells_[(pos + i) & mask_];
          T* p = cell.get();
          out[i] = std::move(*p);
          p->~T();
          // release + lap bump: hand the cell to the producer one lap ahead.
          cell.seq.store(pos + i + mask_ + 1, std::memory_order_release);
        }
        return k;
      }
    }
  }

  std::optional<T> try_dequeue() {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);  // relaxed: hint; seq handshake orders
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {  // relaxed: seq handshake carries ordering
          break;
        }
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);  // relaxed: hint refresh
      }
    }
    T* p = cell->get();
    std::optional<T> v(std::move(*p));
    p->~T();
    // release + lap bump: hand the cell to the producer one lap ahead.
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return v;
  }

  std::size_t capacity() const noexcept { return cap_; }

  std::size_t size_approx() const noexcept {
    const std::size_t e = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t d = dequeue_pos_.load(std::memory_order_acquire);
    return e >= d ? e - d : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    alignas(T) unsigned char raw[sizeof(T)];
    T* get() noexcept { return std::launder(reinterpret_cast<T*>(raw)); }
  };

  const std::size_t cap_;
  const std::size_t mask_;
  Cell* const cells_;

  CCDS_CACHELINE_ALIGNED std::atomic<std::size_t> enqueue_pos_{0};
  CCDS_CACHELINE_ALIGNED std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace ccds

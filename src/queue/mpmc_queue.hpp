// Bounded multi-producer / multi-consumer queue (Dmitry Vyukov's design).
//
// Each cell carries a sequence number that encodes, relative to the global
// enqueue/dequeue tickets, whether the cell is free, full, or being visited
// a lap later.  Producers and consumers claim tickets with one fetch-add
// each and then synchronize only through *their own cell's* sequence word,
// so unrelated operations never contend.  Not strictly lock-free (a stalled
// ticket holder stalls that cell's lap) but in practice the
// highest-throughput MPMC design that needs no reclamation (experiment E5).
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>

#include "core/arch.hpp"
#include "core/hash.hpp"
#include "core/padded.hpp"

namespace ccds {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : cap_(next_pow2(capacity)),
        mask_(cap_ - 1),
        cells_(static_cast<Cell*>(::operator new[](
            cap_ * sizeof(Cell), std::align_val_t{alignof(Cell)}))) {
    for (std::size_t i = 0; i < cap_; ++i) {
      new (&cells_[i]) Cell;
      cells_[i].seq.store(i, std::memory_order_relaxed);  // relaxed: ctor, queue unpublished
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  ~MpmcQueue() {
    // Destroy remaining elements: cells whose seq == ticket+1 hold values.
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);  // relaxed: destructor
    const std::size_t end = enqueue_pos_.load(std::memory_order_relaxed);  // relaxed: destructor
    for (; pos != end; ++pos) {
      Cell& c = cells_[pos & mask_];
      c.get()->~T();
    }
    for (std::size_t i = 0; i < cap_; ++i) cells_[i].~Cell();
    ::operator delete[](cells_, std::align_val_t{alignof(Cell)});
  }

  bool try_enqueue(T v) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);  // relaxed: hint; seq handshake orders
    for (;;) {
      cell = &cells_[pos & mask_];
      // acquire: pairs with the consumer's release that recycles the cell.
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // Cell free on our lap: claim the ticket.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {  // relaxed: seq handshake carries ordering
          break;
        }
      } else if (dif < 0) {
        return false;  // full: consumer of the previous lap hasn't finished
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);  // relaxed: hint refresh
      }
    }
    new (cell->raw) T(std::move(v));
    // release: publish the element to the dequeuer of this lap.
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_dequeue() {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);  // relaxed: hint; seq handshake orders
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {  // relaxed: seq handshake carries ordering
          break;
        }
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);  // relaxed: hint refresh
      }
    }
    T* p = cell->get();
    std::optional<T> v(std::move(*p));
    p->~T();
    // release + lap bump: hand the cell to the producer one lap ahead.
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return v;
  }

  std::size_t capacity() const noexcept { return cap_; }

  std::size_t size_approx() const noexcept {
    const std::size_t e = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t d = dequeue_pos_.load(std::memory_order_acquire);
    return e >= d ? e - d : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    alignas(T) unsigned char raw[sizeof(T)];
    T* get() noexcept { return std::launder(reinterpret_cast<T*>(raw)); }
  };

  const std::size_t cap_;
  const std::size_t mask_;
  Cell* const cells_;

  CCDS_CACHELINE_ALIGNED std::atomic<std::size_t> enqueue_pos_{0};
  CCDS_CACHELINE_ALIGNED std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace ccds

// Chase–Lev work-stealing deque (2005), with the C11 memory-order placement
// from Lê, Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing
// for Weak Memory Models" (PPoPP 2013).
//
// The owner pushes and takes at the bottom with no RMW in the common case;
// thieves steal from the top with a CAS.  Owner/thief conflict exists only
// on the last element.  This is the engine of Cilk-style schedulers and of
// the task_scheduler example (experiments E10).
//
// T must be trivially copyable (elements are stored in atomic cells and may
// be read racily by a thief whose steal subsequently fails; the CAS decides
// ownership).  Schedulers store task pointers or indices, which fit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/arch.hpp"
#include "core/hash.hpp"

namespace ccds {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "Chase-Lev cells are read speculatively; elements must be "
                "trivially copyable (store a pointer or index otherwise)");

 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0), array_(new Ring(next_pow2(initial_capacity))) {}

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  ~WorkStealingDeque() {
    delete array_.load(std::memory_order_relaxed);  // relaxed: destructor
    for (Ring* r : retired_) delete r;
  }

  // ----- owner operations -------------------------------------------------

  void push(T v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);  // relaxed: owner owns bottom_
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* a = array_.load(std::memory_order_relaxed);  // relaxed: only the owner swaps array_
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, b, t);
    }
    a->put(b, v);
    // release fence + relaxed store: publish the element before the new
    // bottom becomes visible to thieves.
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  std::optional<T> try_pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;  // relaxed: owner owns bottom_
    Ring* a = array_.load(std::memory_order_relaxed);  // relaxed: only the owner swaps array_
    bottom_.store(b, std::memory_order_relaxed);  // relaxed: the seq_cst fence below orders
    // seq_cst fence: the bottom decrement must be visible to thieves before
    // we read top — the crux of the owner/thief race on the last element.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);  // relaxed: the fence above orders this read
    if (t <= b) {
      T v = a->get(b);
      if (t == b) {
        // Single element left: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {  // relaxed: failure means the thief won
          // Lost: a thief took it.
          bottom_.store(b + 1, std::memory_order_relaxed);  // relaxed: owner-only write
          return std::nullopt;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);  // relaxed: owner-only write
      }
      return v;
    }
    // Deque was empty.
    bottom_.store(b + 1, std::memory_order_relaxed);  // relaxed: owner-only write
    return std::nullopt;
  }

  // ----- thief operation --------------------------------------------------

  std::optional<T> try_steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst fence: order the top read before the bottom read so we never
    // see a bottom from before a concurrent take's decrement with a stale
    // top (the mirror of try_pop's fence).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      // Non-empty: speculatively read, then claim with a CAS on top.  The
      // array pointer is re-read after top: grow() never frees rings while
      // the deque lives, so even a stale ring yields the correct cell for
      // index t (grow copies [top, bottom)).
      Ring* a = array_.load(std::memory_order_acquire);
      T v = a->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {  // relaxed: failure aborts the steal
        return std::nullopt;  // lost the race; caller may retry elsewhere
      }
      return v;
    }
    return std::nullopt;
  }

  // Owner-side size estimate.
  std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);  // relaxed: approximate by contract
    const std::int64_t t = top_.load(std::memory_order_relaxed);  // relaxed: approximate by contract
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T>[cap]) {}
    ~Ring() { delete[] cells; }

    void put(std::int64_t i, T v) noexcept {
      // relaxed: the publishing release fence in push() orders this store.
      cells[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const noexcept {
      return cells[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }

    const std::size_t capacity;
    const std::size_t mask;
    std::atomic<T>* const cells;
  };

  Ring* grow(Ring* a, std::int64_t b, std::int64_t t) {
    Ring* bigger = new Ring(a->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, a->get(i));
    // Old ring stays alive until destruction: a thief may still be reading
    // from it (epoch-free by construction; memory cost is bounded since
    // rings double).
    retired_.push_back(a);
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  CCDS_CACHELINE_ALIGNED std::atomic<std::int64_t> top_;
  CCDS_CACHELINE_ALIGNED std::atomic<std::int64_t> bottom_;
  CCDS_CACHELINE_ALIGNED std::atomic<Ring*> array_;
  std::vector<Ring*> retired_;  // owner-only
};

}  // namespace ccds

// Bounded blocking MPMC queue (the java.util.concurrent ArrayBlockingQueue
// analogue): mutex + two condition variables over a circular buffer.
//
// The survey's point of comparison for *blocking* coordination: when
// producers or consumers must wait (backpressure), condition variables beat
// any spin-based design — the waiting thread releases its core.  Supports
// closing: after close(), pushes fail and pops drain the remainder then
// return nullopt, which is the shutdown idiom pipelines need.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/hash.hpp"

namespace ccds {

template <typename T>
class BlockingBoundedQueue {
 public:
  explicit BlockingBoundedQueue(std::size_t capacity)
      : cap_(next_pow2(capacity)), mask_(cap_ - 1), buf_(cap_) {}

  // Blocks while full.  Returns false iff the queue was closed.
  bool push(T v) {
    std::unique_lock<std::mutex> l(mu_);
    not_full_.wait(l, [&] { return size_ < cap_ || closed_; });
    if (closed_) return false;
    buf_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
    l.unlock();
    not_empty_.notify_one();
    return true;
  }

  bool try_push(T v) {
    {
      std::lock_guard<std::mutex> l(mu_);
      if (closed_ || size_ == cap_) return false;
      buf_[(head_ + size_) & mask_] = std::move(v);
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty.  Returns nullopt iff closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> l(mu_);
    not_empty_.wait(l, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;  // closed and drained
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    l.unlock();
    not_full_.notify_one();
    return v;
  }

  std::optional<T> try_pop() {
    std::optional<T> v;
    {
      std::lock_guard<std::mutex> l(mu_);
      if (size_ == 0) return std::nullopt;
      v.emplace(std::move(buf_[head_]));
      head_ = (head_ + 1) & mask_;
      --size_;
    }
    not_full_.notify_one();
    return v;
  }

  // After close(): pushes fail immediately, pops drain then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> l(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> l(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> l(mu_);
    return size_;
  }

  std::size_t capacity() const noexcept { return cap_; }

 private:
  const std::size_t cap_;
  const std::size_t mask_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace ccds

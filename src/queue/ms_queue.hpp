// Michael & Scott's lock-free queue (1996) — the algorithm behind
// java.util.concurrent's ConcurrentLinkedQueue.
//
// Singly-linked list with a dummy head; enqueue CASes the tail node's next
// link then swings tail (any thread may help swing a lagging tail); dequeue
// CASes head forward and takes the value from the *new* dummy.  Reclamation
// through the domain (hazard pointers by default) also prevents ABA on the
// head/tail CASes, since a node's address cannot recycle while protected.
#pragma once

#include <optional>
#include <utility>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/backoff.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaim.hpp"

namespace ccds {

template <typename T, reclaimer Domain = HazardDomain>
class MSQueue {
  static_assert(!reclaimer_traits<Domain>::pointer_based ||
                    Domain::kSlots >= 2,
                "dequeue protects head and its successor");
 public:
  MSQueue() {
    Node* dummy = new Node;
    // relaxed: constructor; the queue is unpublished.
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  MSQueue(const MSQueue&) = delete;
  MSQueue& operator=(const MSQueue&) = delete;

  ~MSQueue() {
    Node* n = head_.load(std::memory_order_relaxed);  // relaxed: destructor
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  void enqueue(T v) {
    Node* n = new Node;
    n->value.emplace(std::move(v));
    auto guard = domain_.guard();
    Backoff backoff;
    for (;;) {
      Node* t = guard.protect(0, tail_);
      Node* next = t->next.load(std::memory_order_acquire);
      // Re-validate: tail_ may have moved while we read t->next; without
      // this check we could CAS a next pointer on a node already retired
      // from the tail position (harmless with HP, but wasteful).
      if (t != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        // Tail really is last: link our node.  release publishes the value.
        if (t->next.compare_exchange_weak(next, n,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {  // relaxed: failure re-reads tail
          // Swing tail; failure means someone helped us — fine either way.
          tail_.compare_exchange_strong(t, n, std::memory_order_release,
                                        std::memory_order_relaxed);  // relaxed: helped; failure is fine
          return;
        }
        backoff.spin();
      } else {
        // Tail is lagging: help swing it and retry.
        tail_.compare_exchange_strong(t, next, std::memory_order_release,
                                      std::memory_order_relaxed);  // relaxed: helping CAS; failure is fine
      }
    }
  }

  std::optional<T> try_dequeue() {
    auto guard = domain_.guard();
    Backoff backoff;
    for (;;) {
      Node* h = guard.protect(0, head_);
      Node* t = tail_.load(std::memory_order_acquire);
      Node* next = guard.protect(1, h->next);
      if (h != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) return std::nullopt;  // empty (dummy only)
      if (h == t) {
        // Tail lagging behind a non-empty list: help before retrying.
        tail_.compare_exchange_strong(t, next, std::memory_order_release,
                                      std::memory_order_relaxed);  // relaxed: helping CAS; failure is fine
        continue;
      }
      // acquire on success: pairs with the enqueuer's release of `next`'s
      // value so the move below reads initialized data.
      if (head_.compare_exchange_strong(h, next, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {  // relaxed: failure re-runs the loop
        // `next` is the new dummy; only this (winning) dequeuer touches its
        // value, and our guard keeps `next` alive through the move.
        std::optional<T> v(std::move(next->value));
        domain_.retire(h);
        return v;
      }
      backoff.spin();
    }
  }

  bool empty() noexcept {
    // Needs a guard: the dummy head may be retired by a concurrent dequeue
    // between the head load and the next dereference.
    auto guard = domain_.guard();
    Node* h = guard.protect(0, head_);
    return h->next.load(std::memory_order_acquire) == nullptr;
  }

  Domain& domain() noexcept { return domain_; }

 private:
  struct Node {
    std::optional<T> value;
    Atomic<Node*> next{nullptr};
  };

  CCDS_CACHELINE_ALIGNED Atomic<Node*> head_;
  CCDS_CACHELINE_ALIGNED Atomic<Node*> tail_;
  Domain domain_;
};

}  // namespace ccds

// Combining-backed FIFO queue front.
//
// A sequential std::deque behind a combining engine (CcSynch by default,
// FlatCombiner as a drop-in alternative — see sync/combiner.hpp).  Under
// bursty multi-producer/multi-consumer load the combiner executes whole
// convoys of enqueues/dequeues in one episode, so the structure pays one
// synchronization action (a single exchange for CcSynch) per operation
// instead of a lock handoff or a contended CAS retry loop per operation —
// the survey's combining argument, and the reason this front overtakes the
// MS queue at high thread counts (EXPERIMENTS.md E16).
//
// The OBATCHER-style apply_batch(span<QueueOp>) entry point submits k
// operations as ONE combining request: the batch executes back-to-back with
// no foreign operation interleaved, and the whole batch costs one
// publication.  Batch ops linearize consecutively at the batch's execution.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <utility>

#include "sync/ccsynch.hpp"
#include "sync/combiner.hpp"

namespace ccds {

// One queue operation for the batch interface; results of dequeues are
// routed back through the op itself.
template <typename T>
struct QueueOp {
  enum class Kind : std::uint8_t { kEnqueue, kDequeue };

  static QueueOp enqueue(T v) { return {Kind::kEnqueue, std::move(v), {}}; }
  static QueueOp dequeue() { return {Kind::kDequeue, T{}, {}}; }

  void operator()(std::deque<T>& q) {
    if (kind == Kind::kEnqueue) {
      q.push_back(std::move(value));
      return;
    }
    if (q.empty()) {
      result.reset();
    } else {
      result = std::move(q.front());
      q.pop_front();
    }
  }

  Kind kind = Kind::kEnqueue;
  T value{};                  // enqueue payload
  std::optional<T> result{};  // dequeue result (nullopt: queue was empty)
};

template <typename T, template <typename> class Engine = CcSynch>
class CombiningQueue {
  using State = std::deque<T>;
  static_assert(CombinerFor<Engine<State>, State>,
                "Engine must model the Combiner policy (sync/combiner.hpp)");

 public:
  CombiningQueue() = default;

  void enqueue(T v) {
    // By-value capture: engines may copy the op and re-execute it against a
    // different state copy (PSim helpers), so it must not reference locals.
    engine_.apply([v = std::move(v)](State& q) { q.push_back(v); });
  }

  std::optional<T> try_dequeue() {
    return engine_.apply([](State& q) -> std::optional<T> {
      if (q.empty()) return std::nullopt;
      std::optional<T> v(std::move(q.front()));
      q.pop_front();
      return v;
    });
  }

  bool empty() const {
    return engine_.apply([](State& q) { return q.empty(); });
  }

  std::size_t size() const {
    return engine_.apply([](State& q) { return q.size(); });
  }

  // Execute all of `ops` as one combining request (in span order).
  void apply_batch(std::span<QueueOp<T>> ops) { engine_.apply_batch(ops); }

 private:
  // mutable: combining serializes logically-const reads through apply too.
  mutable Engine<State> engine_;
};

}  // namespace ccds

// Lamport's single-producer / single-consumer ring buffer (1983), with the
// modern index-caching refinement.
//
// With exactly one producer and one consumer, a bounded circular buffer
// needs no RMW operations at all: the producer owns `tail`, the consumer
// owns `head`, and each side only *reads* the other's index.  Caching the
// last-seen remote index means most operations touch no shared cache line —
// the fastest point in the whole queue design space (experiment E5).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <utility>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/hash.hpp"

namespace ccds {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two; the ring holds up to
  // `capacity` elements.
  explicit SpscRing(std::size_t capacity)
      : cap_(next_pow2(capacity)),
        mask_(cap_ - 1),
        slots_(static_cast<Slot*>(
            ::operator new[](cap_ * sizeof(Slot), std::align_val_t{alignof(Slot)}))) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  ~SpscRing() {
    // Drain remaining constructed elements (single-threaded at destruction).
    const std::size_t h = head_.load(std::memory_order_relaxed);  // relaxed: destructor
    const std::size_t t = tail_.load(std::memory_order_relaxed);  // relaxed: destructor
    for (std::size_t i = h; i != t; ++i) {
      slots_[i & mask_].get()->~T();
    }
    ::operator delete[](slots_, std::align_val_t{alignof(Slot)});
  }

  // Producer side only.
  bool try_push(T v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);  // relaxed: producer owns tail_
    if (t - cached_head_ == cap_) {
      // Looks full: refresh the cached consumer index.
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ == cap_) return false;
    }
    new (slots_[t & mask_].raw) T(std::move(v));
    // release: publish the constructed element to the consumer.
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side only: pop up to `max` elements, invoking `f(T&&)` on each,
  // in FIFO order.  Returns the number consumed.
  //
  // This is the mailbox bulk-drain primitive (ISSUE 9 satellite): the whole
  // run pays ONE acquire of the producer's tail (at most — usually zero, via
  // the cached index) and ONE releasing publication of the consumer's head,
  // instead of one release per element.  A shard worker draining B requests
  // therefore performs a single synchronization episode where B try_pop
  // calls would perform B, and the producer's next full-check sees all B
  // slots returned at once.  `f` must not throw (elements would be lost).
  template <typename F>
  std::size_t drain(F&& f, std::size_t max) {
    const std::size_t h = head_.load(std::memory_order_relaxed);  // relaxed: consumer owns head_
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return 0;
    }
    const std::size_t avail = cached_tail_ - h;
    const std::size_t n = avail < max ? avail : max;
    for (std::size_t i = 0; i < n; ++i) {
      T* p = slots_[(h + i) & mask_].get();
      f(std::move(*p));
      p->~T();
    }
    // release: hand all n slots back to the producer in one publication.
    head_.store(h + n, std::memory_order_release);
    return n;
  }

  // Consumer side only.
  std::optional<T> try_pop() {
    const std::size_t h = head_.load(std::memory_order_relaxed);  // relaxed: consumer owns head_
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return std::nullopt;
    }
    T* p = slots_[h & mask_].get();
    std::optional<T> v(std::move(*p));
    p->~T();
    // release: hand the slot back to the producer.
    head_.store(h + 1, std::memory_order_release);
    return v;
  }

  std::size_t capacity() const noexcept { return cap_; }

  // Approximate (exact only from the owning side's perspective).
  std::size_t size_approx() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    alignas(T) unsigned char raw[sizeof(T)];
    T* get() noexcept { return std::launder(reinterpret_cast<T*>(raw)); }
  };

  const std::size_t cap_;
  const std::size_t mask_;
  Slot* const slots_;

  // Producer's line: its own index plus the cached consumer index.
  CCDS_CACHELINE_ALIGNED Atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  // Consumer's line.
  CCDS_CACHELINE_ALIGNED Atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
};

}  // namespace ccds

// Michael & Scott's two-lock queue (1996).
//
// A dummy head node decouples the head and tail: enqueuers take only the
// tail lock, dequeuers only the head lock, so one producer and one consumer
// never contend with each other.  The survey's example of *fine-grained
// locking* for queues — a strict improvement over the coarse queue at the
// cost of one extra node and a slightly trickier invariant.
//
// The `next` link is atomic because when the queue is empty an enqueuer
// writes tail_->next while a dequeuer reads head_->next on the *same* dummy
// node, under different locks: the original algorithm's one benign race,
// made well-defined here with release/acquire.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <utility>

#include "core/arch.hpp"

namespace ccds {

template <typename T, typename Lock = std::mutex>
class TwoLockQueue {
 public:
  TwoLockQueue() {
    Node* dummy = new Node;
    head_ = tail_ = dummy;
  }

  TwoLockQueue(const TwoLockQueue&) = delete;
  TwoLockQueue& operator=(const TwoLockQueue&) = delete;

  ~TwoLockQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);  // relaxed: destructor
      delete n;
      n = next;
    }
  }

  void enqueue(T v) {
    Node* n = new Node;
    n->value.emplace(std::move(v));
    std::lock_guard<Lock> g(tail_lock_);
    // release: publish the node's value to the dequeuer's acquire load.
    tail_->next.store(n, std::memory_order_release);
    tail_ = n;
  }

  std::optional<T> try_dequeue() {
    std::lock_guard<Lock> g(head_lock_);
    Node* dummy = head_;
    Node* first = dummy->next.load(std::memory_order_acquire);
    if (first == nullptr) return std::nullopt;
    // `first` becomes the new dummy; move its value out and free the old
    // dummy.  Safe without the tail lock: tail_ never points behind head_.
    std::optional<T> v(std::move(first->value));
    first->value.reset();
    head_ = first;
    delete dummy;
    return v;
  }

  bool empty() const {
    std::lock_guard<Lock> g(head_lock_);
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::atomic<Node*> next{nullptr};
  };

  CCDS_CACHELINE_ALIGNED mutable Lock head_lock_;
  Node* head_;
  CCDS_CACHELINE_ALIGNED Lock tail_lock_;
  Node* tail_;
};

}  // namespace ccds

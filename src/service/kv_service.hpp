// Shard-per-core KV serving tier: batch-drained mailboxes over partitioned
// swiss tables.
//
// The scalable-commutativity lesson running through this repo's combining
// work (sync/combiner.hpp, E12/E15) is that the cheapest synchronization is
// the synchronization you amortize; the partitioning lesson behind this
// tier is that the cheapest synchronization is the synchronization you
// DELETE.  A KvService splits the key space across S shards by hash; shard
// s's SwissHashMap partition is mutated by shard s's worker thread only, so
// the map hot path runs contention-free regardless of client count — no
// group-lock collisions, no seqlock retries, no CAS failures, ever.  What
// remains is moving requests to their owner, and that is a QUEUE problem,
// which this repo already solved well:
//
//     client c                         shard worker s
//        |                                   |
//        |  route: shard_of(hash(key))       |
//        v                                   v
//   [SpscRing (c,s)] ----\             +-- pump_shard(s) --+
//   [SpscRing (c',s)] ----+--> drain ->| collect batch     |
//   [MpmcQueue fallback]--/            | apply ALL to map  |
//                                      | THEN complete ALL |
//                                      +-------------------+
//
// Each (client slot, shard) pair gets a private SpscRing mailbox — wait-free
// on both sides, no RMW at all (E5) — and clients beyond the configured
// slot count fall back to a per-shard MpmcQueue so the tier degrades to
// "one Vyukov queue per shard" instead of refusing admission.  The worker
// drains every mailbox in one pass (SpscRing::drain and
// MpmcQueue::try_pop_bulk each take ONE synchronization episode per batch),
// applies the whole batch to its private map, and only THEN completes the
// requests' OneShot result slots.  Complete-after-apply is the tier's
// linearization discipline — a requester that observes ready() observes a
// map state in which its operation has happened (the model suite,
// tests/model/test_model_service.cpp, falsifies the inverted order) — and
// batching the completions keeps the response stores off the apply loop's
// critical path, the CombinerBatchOps amortization argument applied to a
// partitioned rather than a combined structure.
//
// What the tier does NOT buy: single-operation latency (a request crosses
// two queues instead of touching the map directly), cross-shard atomicity
// (each request touches one key; multi-key transactions would need 2PC on
// top), or wall-clock wins on a 1-CPU host (EXPERIMENTS.md E19 measures
// the architecture by scheduler-noise-free work counters instead).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/arch.hpp"
#include "core/hash.hpp"
#include "hash/swiss_hash_map.hpp"
#include "pool/affinity.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaim.hpp"
#include "sync/oneshot.hpp"

namespace ccds {

template <typename Key, typename Value, typename Hash = MixHash<Key>,
          reclaimer Reclaimer = EpochDomain>
class KvService {
 public:
  enum class Op : std::uint8_t { kGet, kPut, kErase };

  struct Response {
    Value value{};   // kGet: the value when found; kPut: the value written
    bool found{false};  // kGet: present; kPut: pre-existing; kErase: erased
  };

  struct Request {
    Key key{};
    Value value{};
    Op op{Op::kGet};
    OneShot<Response>* done{nullptr};  // may be null: fire-and-forget write
  };

  struct Config {
    std::size_t shards = 4;            // rounded up to a power of two
    std::size_t client_slots = 8;      // ring-backed client handles
    std::size_t ring_capacity = 128;   // per (client slot, shard) mailbox
    std::size_t fallback_capacity = 1024;  // per-shard shared overflow queue
    std::size_t drain_batch = 64;      // max drained per mailbox per pump
    std::size_t initial_slots_per_shard = 64;
    bool spawn_workers = true;   // false: caller pumps manually (tests/model)
    bool pin_workers = false;    // best-effort shard-per-core affinity
    std::function<void(std::size_t)> worker_init{};  // runs in worker threads
  };

  // Per-shard observability: written only by the shard's pump holder, read
  // racily by monitors — these are the occupancy/queue-depth witnesses the
  // E19 harness reports alongside its work counters.
  struct ShardStats {
    std::uint64_t ops = 0;           // requests applied
    std::uint64_t episodes = 0;      // pumps that found work
    std::uint64_t max_batch = 0;     // largest single-pump batch
    std::uint64_t fallback_ops = 0;  // subset of ops arriving via fallback
  };

  explicit KvService(const Config& cfg)
      : cfg_(normalize(cfg)),
        free_slots_(cfg_.client_slots),
        rings_(cfg_.client_slots * cfg_.shards) {
    shards_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(
          cfg_.initial_slots_per_shard, cfg_.fallback_capacity));
    }
    for (auto& r : rings_) {
      r = std::make_unique<SpscRing<Request>>(cfg_.ring_capacity);
    }
    for (std::size_t c = 0; c < cfg_.client_slots; ++c) {
      free_slots_.try_enqueue(c);  // capacity covers all slots by ctor
    }
    if (cfg_.spawn_workers) {
      const bool pin = cfg_.pin_workers && cores_cover(cfg_.shards);
      workers_.reserve(cfg_.shards);
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        workers_.emplace_back([this, s, pin] { worker_main(s, pin); });
      }
    }
  }

  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  // Graceful shutdown: workers keep pumping until every mailbox and
  // fallback queue is drained, so every request submitted before
  // destruction is applied and completed.  Clients must be destroyed (or
  // at least quiescent) first — a submit racing the destructor may block
  // forever on a full mailbox nobody drains.
  ~KvService() {
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) w.join();
  }

  // ---- client handles ------------------------------------------------------

  // A Client is a single-threaded submission endpoint (it is the single
  // producer of its mailboxes).  Handles beyond `client_slots` share the
  // per-shard fallback queues instead — functionally identical, one
  // amortized CAS slower per submit.
  class Client {
   public:
    Client(Client&& o) noexcept
        : svc_(o.svc_), slot_(o.slot_) {
      o.svc_ = nullptr;
    }
    Client& operator=(Client&&) = delete;
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    ~Client() {
      if (svc_ != nullptr && slot_ != kNoSlot) {
        // A released slot's rings may still hold in-flight requests; the
        // shard workers drain them regardless.  The slot itself only
        // becomes reusable once returned here (enqueue cannot fail: the
        // free list's capacity covers every slot).
        svc_->free_slots_.try_enqueue(slot_);
      }
    }

    bool uses_fallback() const noexcept { return slot_ == kNoSlot; }

    // Asynchronous submission: the caller owns `done` (may be stack
    // storage) and must keep it alive until ready().  Null `done` makes
    // the request fire-and-forget.  Blocks (spin-then-yield) while the
    // route's mailbox is full — spilling to another queue instead would
    // reorder this client's requests to that shard and break per-client
    // program order.
    void submit(const Key& key, const Value& value, Op op,
                OneShot<Response>* done) {
      KvService& svc = *svc_;
      const std::size_t s = svc.shard_of(svc.hash_(key));
      const Request r{key, value, op, done};
      std::uint32_t spins = 0;
      if (slot_ != kNoSlot) {
        auto& ring = *svc.rings_[slot_ * svc.cfg_.shards + s];
        while (!ring.try_push(r)) spin_wait(spins);
      } else {
        auto& q = svc_->shards_[s]->fallback;
        while (!q.try_enqueue(r)) spin_wait(spins);
      }
    }

    void get_async(const Key& key, OneShot<Response>* done) {
      submit(key, Value{}, Op::kGet, done);
    }
    void put_async(const Key& key, const Value& value,
                   OneShot<Response>* done) {
      submit(key, value, Op::kPut, done);
    }
    void erase_async(const Key& key, OneShot<Response>* done) {
      submit(key, Value{}, Op::kErase, done);
    }

    // Synchronous convenience wrappers (submit + wait on a private slot).
    // Only meaningful when workers are pumping (spawn_workers, or another
    // thread driving pump_shard).
    std::optional<Value> get(const Key& key) {
      OneShot<Response> done;
      submit(key, Value{}, Op::kGet, &done);
      const Response r = done.take();
      if (!r.found) return std::nullopt;
      return r.value;
    }
    bool put(const Key& key, const Value& value) {  // true iff newly inserted
      OneShot<Response> done;
      submit(key, value, Op::kPut, &done);
      return !done.take().found;
    }
    bool erase(const Key& key) {
      OneShot<Response> done;
      submit(key, Value{}, Op::kErase, &done);
      return done.take().found;
    }

   private:
    friend class KvService;
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    Client(KvService* svc, std::size_t slot) : svc_(svc), slot_(slot) {}

    KvService* svc_;
    std::size_t slot_;
  };

  Client make_client() {
    const auto slot = free_slots_.try_dequeue();
    return Client(this, slot ? *slot : Client::kNoSlot);
  }

  // ---- shard pump (the server side) ---------------------------------------

  // Drain every mailbox routed to shard s, apply the whole batch to the
  // shard's map, THEN complete the result slots.  Returns the number of
  // requests applied.  Normally called only by shard s's worker; the
  // `pumping` guard makes concurrent manual pumps (tests) mutually
  // exclusive rather than corrupting, preserving the single-toucher
  // discipline the tier is built on.
  std::size_t pump_shard(std::size_t s) {
    Shard& sh = *shards_[s];
    if (sh.pumping.exchange(1, std::memory_order_acquire) != 0) return 0;
    auto& batch = sh.batch;
    batch.clear();

    // Collect: one synchronization episode per non-empty source.
    for (std::size_t c = 0; c < cfg_.client_slots; ++c) {
      rings_[c * cfg_.shards + s]->drain(
          [&](Request&& r) { batch.push_back(std::move(r)); },
          cfg_.drain_batch);
    }
    if (sh.take_scratch.size() < cfg_.drain_batch) {
      sh.take_scratch.resize(cfg_.drain_batch);
    }
    const std::size_t nf =
        sh.fallback.try_pop_bulk(sh.take_scratch.data(), cfg_.drain_batch);
    for (std::size_t i = 0; i < nf; ++i) {
      batch.push_back(sh.take_scratch[i]);
    }

    // Apply: every request in the batch, against the private map, before
    // any completion is published.
    auto& results = sh.results;
    results.clear();
    results.reserve(batch.size());
    for (const Request& r : batch) {
      if (shard_of(hash_(r.key)) != s) {
        // A mis-routed request would silently partition one key across two
        // maps (lost updates, phantom misses).  Count it loudly; the model
        // suite seeds exactly this bug and catches it here.
        // relaxed: diagnostic tally, no ordering carried.
        route_violations_.fetch_add(1, std::memory_order_relaxed);
      }
      results.push_back(apply(sh, r));
    }

    // Complete: publication strictly after application (release store in
    // OneShot::complete pairs with the requester's acquire).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].done != nullptr) {
        batch[i].done->complete(results[i]);
      }
    }

    const std::size_t n = batch.size();
    if (n != 0) {
      // relaxed (all stats below): single writer under the pumping guard;
      // readers are monitoring witnesses, not synchronization.
      sh.stats_ops.store(sh.stats_ops.load(std::memory_order_relaxed) + n,
                         std::memory_order_relaxed);  // relaxed: stats
      sh.stats_episodes.store(
          sh.stats_episodes.load(std::memory_order_relaxed) + 1,  // relaxed: stats
          std::memory_order_relaxed);
      if (n > sh.stats_max_batch.load(std::memory_order_relaxed)) {  // relaxed: stats
        sh.stats_max_batch.store(n, std::memory_order_relaxed);  // relaxed: stats
      }
      sh.stats_fallback.store(
          sh.stats_fallback.load(std::memory_order_relaxed) + nf,  // relaxed: stats
          std::memory_order_relaxed);
    }
    sh.pumping.store(0, std::memory_order_release);
    return n;
  }

  // ---- setup & observation -------------------------------------------------

  // Direct insert into the owning partition, bypassing the mailboxes.
  // Safe at any time — SwissHashMap is itself thread-safe, so shard
  // ownership is a contention architecture, not a memory-safety
  // precondition — but intended for prefill before traffic starts.
  void prefill(const Key& key, const Value& value) {
    shards_[shard_of(hash_(key))]->map.insert(key, value);
  }

  std::size_t shards() const noexcept { return cfg_.shards; }
  std::size_t client_slots() const noexcept { return cfg_.client_slots; }

  std::size_t shard_of(std::uint64_t h) const noexcept {
    // Middle bits: the swiss table derives its home group from the LOW
    // hash bits and its tag byte from the TOP seven, so taking shard bits
    // from either end would correlate shard choice with in-map placement
    // (shard s's partition would only populate every S-th group).
    return (h >> 32) & (cfg_.shards - 1);
  }

  // The shard's partition, for occupancy witnesses and read-only probes.
  const SwissHashMap<Key, Value, Hash, Reclaimer>& shard_map(
      std::size_t s) const {
    return shards_[s]->map;
  }

  ShardStats shard_stats(std::size_t s) const {
    const Shard& sh = *shards_[s];
    ShardStats st;
    // relaxed (all four): monitoring snapshot of single-writer counters;
    // cross-counter consistency is not promised to callers.
    st.ops = sh.stats_ops.load(std::memory_order_relaxed);  // relaxed: stats
    st.episodes = sh.stats_episodes.load(std::memory_order_relaxed);  // relaxed: stats
    st.max_batch = sh.stats_max_batch.load(std::memory_order_relaxed);  // relaxed: stats
    st.fallback_ops = sh.stats_fallback.load(std::memory_order_relaxed);  // relaxed: stats
    return st;
  }

  std::uint64_t route_violations() const noexcept {
    // relaxed: diagnostic read; a nonzero value is the signal, not an edge.
    return route_violations_.load(std::memory_order_relaxed);
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->map.size();
    return total;
  }

 private:
  struct Shard {
    Shard(std::size_t initial_slots, std::size_t fallback_capacity)
        : map(initial_slots), fallback(fallback_capacity) {}

    SwissHashMap<Key, Value, Hash, Reclaimer> map;
    MpmcQueue<Request> fallback;

    // Pump-holder-private scratch (guarded by `pumping`), reused across
    // episodes so the steady state allocates nothing.
    std::vector<Request> batch;
    std::vector<Request> take_scratch;
    std::vector<Response> results;

    std::atomic<std::uint32_t> pumping{0};
    // Stats words are plain std::atomic on purpose: they are monitoring
    // witnesses, not synchronization, and must not add model-checker
    // schedule points to every pump.
    std::atomic<std::uint64_t> stats_ops{0};
    std::atomic<std::uint64_t> stats_episodes{0};
    std::atomic<std::uint64_t> stats_max_batch{0};
    std::atomic<std::uint64_t> stats_fallback{0};

    // Shards are heap-allocated individually; pad so two shards' hot words
    // never share a line even if the allocator packs them.
    char pad_[kCacheLineSize];
  };

  static Config normalize(Config cfg) {
    cfg.shards = static_cast<std::size_t>(
        next_pow2(cfg.shards == 0 ? 1 : cfg.shards));
    if (cfg.client_slots == 0) cfg.client_slots = 1;
    if (cfg.drain_batch == 0) cfg.drain_batch = 1;
    return cfg;
  }

  Response apply(Shard& sh, const Request& r) {
    switch (r.op) {
      case Op::kGet: {
        const auto v = sh.map.get(r.key);
        return Response{v ? *v : Value{}, v.has_value()};
      }
      case Op::kPut: {
        const bool inserted = sh.map.insert(r.key, r.value);
        return Response{r.value, !inserted};  // found == pre-existing
      }
      case Op::kErase:
      default:
        return Response{Value{}, sh.map.erase(r.key)};
    }
  }

  void worker_main(std::size_t s, bool pin) {
    if (pin) pin_current_thread(s);
    if (cfg_.worker_init) cfg_.worker_init(s);
    std::uint32_t idle = 0;
    for (;;) {
      if (pump_shard(s) != 0) {
        idle = 0;
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) {
        // Shutdown drain: by the destructor's contract no new submissions
        // arrive after stop_, so one more empty pump proves the shard's
        // mailboxes are dry.
        if (pump_shard(s) == 0) return;
        continue;
      }
      // Idle backoff, escalating to real sleeps: on an oversubscribed host
      // a spinning idle worker steals whole quanta from the threads doing
      // work (the same pathology E13's backoff ablation measures).
      ++idle;
      if (idle < 16) {
        cpu_relax();
      } else if (idle < 64) {
        std::this_thread::yield();
      } else {
        const auto us = std::min<std::uint64_t>(1000, 50ull * (idle - 63));
        std::this_thread::sleep_for(std::chrono::microseconds(us));
      }
    }
  }

  Config cfg_;
  MpmcQueue<std::size_t> free_slots_;
  // Row-major [client_slot][shard]; unique_ptr keeps each ring's padded
  // indices stable and uncopied.
  std::vector<std::unique_ptr<SpscRing<Request>>> rings_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  // unpadded: stop_ is written once at shutdown and route_violations_ only
  // on a seeded-bug path; neither shares a hot line with per-request state
  // (the rings and shards live behind unique_ptr indirection above).
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> route_violations_{0};
  [[no_unique_address]] Hash hash_{};
};

}  // namespace ccds

// Drop-in instrumented atomics for the model checker.
//
// `ccds::model::atomic<T>` mirrors the std::atomic<T> surface the library
// uses (load/store/exchange/CAS/fetch_add, taking std::memory_order), but
// routes every operation through the active ExecutionContext so the explorer
// can interleave threads at each access and model weak-memory staleness.
// Outside an execution (or while an execution unwinds after a failure) the
// operations degrade to plain sequential reads/writes.
//
// Structures opt in through `ccds::Atomic<T>` (src/core/atomic.hpp), which
// aliases std::atomic<T> normally and this type under -DCCDS_MODEL=1 — the
// same header compiles both ways, so the code under test IS the shipped code.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>

#include "model/scheduler.hpp"

namespace ccds::model {

namespace detail {

template <typename T>
std::uint64_t enc(T v) noexcept {
  static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>,
                "model::atomic supports trivially copyable T of <= 8 bytes");
  std::uint64_t r = 0;
  std::memcpy(&r, &v, sizeof(T));
  return r;
}

template <typename T>
T dec(std::uint64_t r) noexcept {
  T v;
  std::memcpy(&v, &r, sizeof(T));
  return v;
}

}  // namespace detail

template <typename T>
class atomic {
 public:
  atomic() noexcept : atomic(T{}) {}

  atomic(T v) noexcept {  // NOLINT(google-explicit-constructor): std parity
    obj_.stores.push_back({detail::enc(v), nullptr});
  }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    ExecutionContext* ctx = active_context();
    if (ctx == nullptr) return detail::dec<T>(obj_.stores.back().value);
    return detail::dec<T>(ctx->atomic_load(obj_, mo));
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    ExecutionContext* ctx = active_context();
    if (ctx == nullptr) {
      obj_.stores.back().value = detail::enc(v);
      return;
    }
    ctx->atomic_store(obj_, detail::enc(v), mo);
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    const std::uint64_t nv = detail::enc(v);
    return rmw([nv](std::uint64_t) { return nv; }, mo, "xchg");
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    ExecutionContext* ctx = active_context();
    if (ctx == nullptr) {
      const std::uint64_t old = obj_.stores.back().value;
      if (old == detail::enc(expected)) {
        obj_.stores.back().value = detail::enc(desired);
        return true;
      }
      expected = detail::dec<T>(old);
      return false;
    }
    auto [old, ok] = ctx->atomic_cas(obj_, detail::enc(expected),
                                     detail::enc(desired), success, failure);
    if (!ok) expected = detail::dec<T>(old);
    return ok;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo, cas_failure_order(mo));
  }

  // The model never fails a weak CAS spuriously: that only removes behaviors
  // relative to real hardware (documented in docs/testing.md §6).
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return compare_exchange_strong(expected, desired, success, failure);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo, cas_failure_order(mo));
  }

  template <typename U = T, typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst) {
    return rmw(
        [d](std::uint64_t old) {
          return detail::enc(static_cast<T>(detail::dec<T>(old) + d));
        },
        mo, "fadd");
  }

  template <typename U = T, typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T d, std::memory_order mo = std::memory_order_seq_cst) {
    return rmw(
        [d](std::uint64_t old) {
          return detail::enc(static_cast<T>(detail::dec<T>(old) - d));
        },
        mo, "fsub");
  }

  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)

  T operator=(T v) {
    store(v);
    return v;
  }

  bool is_lock_free() const noexcept { return true; }

 private:
  static std::memory_order cas_failure_order(std::memory_order mo) {
    if (mo == std::memory_order_acq_rel) return std::memory_order_acquire;
    if (mo == std::memory_order_release) return std::memory_order_relaxed;
    return mo;
  }

  T rmw(const std::function<std::uint64_t(std::uint64_t)>& f,
        std::memory_order mo, const char* opname) {
    ExecutionContext* ctx = active_context();
    if (ctx == nullptr) {
      const std::uint64_t old = obj_.stores.back().value;
      obj_.stores.back().value = f(old);
      return detail::dec<T>(old);
    }
    return detail::dec<T>(ctx->atomic_rmw(obj_, f, mo, opname));
  }

  mutable AtomicObj obj_;
};

// Cooperative mutex (BasicLockable + try_lock); lock/unlock are schedule
// points and carry acquire/release happens-before edges.
class mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() {
    ExecutionContext* ctx = active_context();
    if (ctx != nullptr) ctx->mutex_lock(obj_);
  }

  bool try_lock() {
    ExecutionContext* ctx = active_context();
    if (ctx == nullptr) return true;
    return ctx->mutex_try_lock(obj_);
  }

  void unlock() {
    ExecutionContext* ctx = active_context();
    if (ctx != nullptr) ctx->mutex_unlock(obj_);
  }

 private:
  MutexObj obj_;
};

// Model-scheduled thread handle.  The OS thread is owned by the execution
// context; this is just a join handle.
class thread {
 public:
  explicit thread(std::function<void()> body) {
    ExecutionContext* ctx = active_context();
    if (ctx == nullptr) {
      fail_assert("model::thread spawned outside model::explore", __FILE__,
                  __LINE__);
    }
    id_ = ctx->spawn(std::move(body));
  }

  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;

  void join() {
    if (joined_) return;
    joined_ = true;
    active_context()->join_thread(id_);
  }

  int id() const noexcept { return id_; }

 private:
  int id_ = -1;
  bool joined_ = false;
};

// std::atomic_thread_fence counterpart.
inline void fence(std::memory_order mo) {
  ExecutionContext* ctx = active_context();
  if (ctx != nullptr) ctx->fence(mo);
}

// ccds::asymmetric_heavy counterpart (Linux membarrier): a seq_cst fence on
// behalf of every model thread — see ExecutionContext::heavy_fence for the
// soundness argument.  Outside an execution there is nothing to order.
inline void heavy_fence() {
  ExecutionContext* ctx = active_context();
  if (ctx != nullptr) ctx->heavy_fence();
}

}  // namespace ccds::model

// Deterministic-interleaving model checker (CHESS/loom style).
//
// The explorer runs a small fixed set of "model threads" cooperatively: each
// model thread is an OS thread, but a condition-variable token guarantees
// exactly one runs at a time.  Every instrumented operation (model::atomic
// load/store/RMW, model::mutex lock/unlock, spawn/join, yield) is a
// *schedule point*: the scheduler may hand the token to another runnable
// thread there.  A depth-first search over these decisions enumerates every
// interleaving reachable with at most `preemption_bound` involuntary context
// switches (switches away from a blocked/finished/yielding thread are free),
// which is the CHESS result: almost all real concurrency bugs manifest with
// <= 2 preemptions.
//
// On top of the interleaving search sits a bounded weak-memory layer in the
// loom tradition: each atomic keeps its full store history plus, for
// release-class stores, a snapshot of the storing thread's *view* (a vector
// clock over store indices).  A non-seq_cst load may return any store that
// coherence and happens-before allow — i.e. a `relaxed` load where `acquire`
// is required can observe a stale value in some explored schedule, which is
// exactly the class of bug random stress testing cannot reliably reach.
// Stale-read branching is budgeted (`stale_read_bound`) to keep the state
// space tractable; option 0 at every choice point is the sequentially
// consistent behavior, so exploration degrades gracefully toward plain CHESS
// when budgets are exhausted.
//
// Failure handling: CCDS_MODEL_ASSERT (or a detected deadlock / step-budget
// livelock) records the full choice list of the failing execution.  That
// list *is* the schedule: feed it back through Options::replay to
// deterministically re-run the single failing interleaving.
//
// What this can and cannot catch is documented in docs/testing.md §6.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/thread_registry.hpp"

namespace ccds::model {

// ---------------------------------------------------------------------------
// Views: per-atomic minimum readable store index, joined along
// happens-before edges.  Index i in a view means "stores before i on that
// atomic are hb-overwritten for me: coherence forbids reading them".
// ---------------------------------------------------------------------------
using View = std::vector<std::uint32_t>;

inline void view_join(View& a, const View& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[i] > a[i]) a[i] = b[i];
  }
}

struct Options {
  // Max involuntary context switches per execution (CHESS bound).
  int preemption_bound = 2;
  // Max stale-read *branch points* per execution (loom-style weak memory).
  // 0 disables weak-memory exploration entirely (pure CHESS / SC).
  int stale_read_bound = 3;
  // How many stores back a single load may reach.
  int stale_window = 2;
  // Per-execution schedule-point budget; exceeding it fails the execution
  // (almost always a livelock: a spin loop whose exit condition can never
  // become true in this schedule).
  long max_steps = 50000;
  // Cap on total executions; exploration stops unexhausted beyond this.
  long max_executions = 1000000;
  // Non-empty: skip exploration and replay exactly this schedule (the
  // space-separated choice list from Result::schedule).
  std::string replay;
};

struct Result {
  bool ok = true;
  bool exhausted = false;  // the bounded space was fully explored
  long executions = 0;
  std::string error;     // failure description (empty when ok)
  std::string schedule;  // replayable choice list (failure only)
  std::string trace;     // human-readable failing interleaving (failure only)
};

// Thrown to unwind model threads when an execution aborts.  Never escapes
// the thread wrapper.
struct AbortExecution {};

namespace detail {

struct StoreRec {
  std::uint64_t value = 0;
  // Storing thread's view snapshot for release-class stores (readers that
  // acquire this store join it); null for relaxed stores.
  std::shared_ptr<const View> rel;
};

struct ChoiceRec {
  int chosen = 0;
  int num = 1;
};

struct TraceRec {
  int tid;
  const char* op;
  int obj;                 // atomic/mutex id, -1 if n/a
  std::uint64_t a, b;      // op-specific operands
  const char* mo;          // memory order name, "" if n/a
};

inline const char* mo_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

inline bool mo_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
}

inline bool mo_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

}  // namespace detail

class ExecutionContext;

// The currently active execution, if any.  Model atomics constructed or used
// outside an execution degrade to plain sequential behavior.
inline ExecutionContext*& active_context() {
  static ExecutionContext* ctx = nullptr;
  return ctx;
}

// State backing one model atomic.  Lives inside the atomic object; the
// context only hands out ids (lazily, on first scheduled access).  `ctx`
// tags which execution last touched it so objects that outlive a single
// execution (statics, fixtures reused across explore() calls) are re-seeded
// from their final value instead of leaking ids and store history.
struct AtomicObj {
  const void* ctx = nullptr;
  int id = -1;
  std::vector<detail::StoreRec> stores;
};

struct MutexObj {
  const void* ctx = nullptr;
  int id = -1;
  bool held = false;
  int owner = -1;
  std::shared_ptr<const View> unlock_view;
};

class ExecutionContext {
 public:
  ExecutionContext(const Options& opt, const std::vector<detail::ChoiceRec>& prefix)
      : opt_(opt), prefix_(prefix) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // ---- driver side ---------------------------------------------------------

  void run(const std::function<void()>& fn) {
    {
      std::unique_lock<std::mutex> lk(m_);
      spawn_locked(lk, fn, /*parent=*/-1);
      current_ = 0;
      threads_[0]->cv.notify_one();
      done_cv_.wait(lk, [&] {
        return live_os_ == 0 && (done_ || failed_ || aborting_);
      });
    }
    for (auto& t : threads_) {
      if (t->os.joinable()) t->os.join();
    }
  }

  bool failed() const { return failed_; }
  const std::string& fail_msg() const { return fail_msg_; }
  std::vector<detail::ChoiceRec>& choices() { return choices_; }

  std::string schedule_string() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < choices_.size(); ++i) {
      if (i) os << ' ';
      os << choices_[i].chosen;
    }
    return os.str();
  }

  std::string trace_string() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const auto& r = trace_[i];
      os << '#' << i << "\tT" << r.tid << '\t' << r.op;
      if (r.obj >= 0) os << " obj" << r.obj;
      os << " a=0x" << std::hex << r.a << " b=0x" << r.b << std::dec;
      if (r.mo[0] != '\0') os << " [" << r.mo << ']';
      os << '\n';
    }
    return os.str();
  }

  // ---- model-thread side ---------------------------------------------------

  // Spawn a model thread running `body`; returns its id.  Schedule point.
  int spawn(std::function<void()> body) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) throw AbortExecution{};
    int id = spawn_locked(lk, std::move(body), current_);
    note(current_, "spawn", -1, static_cast<std::uint64_t>(id), 0, "");
    reschedule(lk, /*yielding=*/false);
    return id;
  }

  // Join a model thread.  Blocks (cooperatively) until it finishes.
  void join_thread(int target) {
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      if (aborting_) throw AbortExecution{};
      ThreadState& t = *threads_[target];
      if (t.status == ThreadState::FINISHED) {
        view_join(threads_[current_]->view, t.view);
        note(current_, "join", -1, static_cast<std::uint64_t>(target), 0, "");
        return;
      }
      ThreadState& self = *threads_[current_];
      self.status = ThreadState::BLOCKED_JOIN;
      self.wait_target = target;
      reschedule(lk, false);
    }
  }

  void yield() {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) throw AbortExecution{};
    step(lk);
    reschedule(lk, /*yielding=*/true);
  }

  // ---- atomic operations ---------------------------------------------------

  std::uint64_t atomic_load(AtomicObj& o, std::memory_order mo) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) return o.stores.back().value;  // plain read during unwind
    step(lk);
    reschedule(lk, false);
    ensure(o);
    ThreadState& self = *threads_[current_];
    const std::size_t latest = o.stores.size() - 1;
    std::size_t idx = latest;
    // Weak-memory branch: a non-seq_cst load may read back past stores the
    // loader's view does not yet order before it.
    const std::size_t floor = self.view[o.id];
    if (mo != std::memory_order_seq_cst && latest > floor &&
        stale_branches_ < opt_.stale_read_bound) {
      ++stale_branches_;
      const int window = static_cast<int>(
          std::min<std::size_t>(latest - floor, opt_.stale_window));
      const int c = consume_choice(lk, window + 1);
      idx = latest - static_cast<std::size_t>(c);
    }
    if (idx > self.view[o.id]) self.view[o.id] = static_cast<std::uint32_t>(idx);
    const detail::StoreRec& s = o.stores[idx];
    if (s.rel) {
      if (detail::mo_acquire(mo)) {
        view_join(self.view, *s.rel);
      } else {
        view_join(self.pending_acq, *s.rel);  // harvested by acquire fences
      }
    }
    note(current_, "load", o.id, s.value, idx, detail::mo_name(mo));
    return s.value;
  }

  void atomic_store(AtomicObj& o, std::uint64_t v, std::memory_order mo) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) {
      o.stores.back().value = v;
      return;
    }
    step(lk);
    reschedule(lk, false);
    ensure(o);
    do_store(o, v, mo, /*read_rel=*/nullptr);
    note(current_, "store", o.id, v, o.stores.size() - 1, detail::mo_name(mo));
  }

  // Generic RMW: apply(old) -> new value.  Always reads the latest store
  // (C++ guarantees RMWs read the last value in modification order).
  std::uint64_t atomic_rmw(AtomicObj& o,
                           const std::function<std::uint64_t(std::uint64_t)>& apply,
                           std::memory_order mo, const char* opname) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) {
      const std::uint64_t old = o.stores.back().value;
      o.stores.back().value = apply(old);
      return old;
    }
    step(lk);
    reschedule(lk, false);
    ensure(o);
    ThreadState& self = *threads_[current_];
    const std::size_t latest = o.stores.size() - 1;
    self.view[o.id] = static_cast<std::uint32_t>(latest);
    const detail::StoreRec read = o.stores[latest];
    if (read.rel && detail::mo_acquire(mo)) view_join(self.view, *read.rel);
    if (read.rel && !detail::mo_acquire(mo)) view_join(self.pending_acq, *read.rel);
    do_store(o, apply(read.value), mo, read.rel ? &read.rel : nullptr);
    note(current_, opname, o.id, read.value, o.stores.back().value,
         detail::mo_name(mo));
    return read.value;
  }

  // CAS.  Returns {observed value, success}.
  std::pair<std::uint64_t, bool> atomic_cas(AtomicObj& o, std::uint64_t expected,
                                            std::uint64_t desired,
                                            std::memory_order success,
                                            std::memory_order failure) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) {
      const std::uint64_t old = o.stores.back().value;
      if (old == expected) o.stores.back().value = desired;
      return {old, old == expected};
    }
    step(lk);
    reschedule(lk, false);
    ensure(o);
    ThreadState& self = *threads_[current_];
    const std::size_t latest = o.stores.size() - 1;
    self.view[o.id] = static_cast<std::uint32_t>(latest);
    const detail::StoreRec read = o.stores[latest];
    const bool ok = read.value == expected;
    const std::memory_order mo = ok ? success : failure;
    if (read.rel && detail::mo_acquire(mo)) view_join(self.view, *read.rel);
    if (read.rel && !detail::mo_acquire(mo)) view_join(self.pending_acq, *read.rel);
    if (ok) do_store(o, desired, success, read.rel ? &read.rel : nullptr);
    note(current_, ok ? "cas+" : "cas-", o.id, read.value, desired,
         detail::mo_name(mo));
    return {read.value, ok};
  }

  void fence(std::memory_order mo) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) return;
    step(lk);
    reschedule(lk, false);
    ThreadState& self = *threads_[current_];
    if (detail::mo_acquire(mo)) {
      // Promote every relaxed load since the last acquire edge.
      view_join(self.view, self.pending_acq);
      self.pending_acq.clear();
    }
    if (detail::mo_release(mo)) {
      // Subsequent relaxed stores publish everything before this fence.
      self.fence_rel = std::make_shared<const View>(self.view);
    }
    note(current_, "fence", -1, 0, 0, detail::mo_name(mo));
  }

  // Process-wide heavy barrier (ccds::asymmetric_heavy / Linux membarrier):
  // a seq_cst fence executed on behalf of EVERY model thread at this
  // schedule point.  Operationally membarrier means "each CPU ran smp_mb():
  // all store buffers drained, all invalidation queues flushed" — in this
  // model's terms, every store already appended to any atomic's history
  // becomes mandatory reading for every thread (its view floor rises to the
  // latest store index), and each thread additionally gets the acquire and
  // release effects of a fence at its current suspension point.  This only
  // REMOVES stale-read behaviors relative to not fencing, so modeling it is
  // sound: a protocol verified with heavy_fence() relies on exactly the
  // visibility the real barrier provides, and a seeded bug that downgrades
  // the reclaimer to the light (compiler-only) barrier re-opens the stale
  // branches and is caught (tests/model/test_model_reclaim.cpp).
  void heavy_fence() {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) return;
    step(lk);
    reschedule(lk, false);
    for (auto& t : threads_) {
      // Acquire half of the per-thread fence: promote relaxed-read edges.
      view_join(t->view, t->pending_acq);
      t->pending_acq.clear();
      // Freshness: no thread may read a store older than what was globally
      // visible when the barrier completed.
      if (t->view.size() < latest_idx_.size()) {
        t->view.resize(latest_idx_.size(), 0);
      }
      for (std::size_t i = 0; i < latest_idx_.size(); ++i) {
        if (t->view[i] < latest_idx_[i]) t->view[i] = latest_idx_[i];
      }
      // Release half: the thread's subsequent relaxed stores publish
      // everything it has done up to its current suspension point.
      t->fence_rel = std::make_shared<const View>(t->view);
    }
    note(current_, "heavy_fence", -1, 0, 0, "seq_cst*");
  }

  // ---- mutex ---------------------------------------------------------------

  void mutex_lock(MutexObj& mu) {
    std::unique_lock<std::mutex> lk(m_);
    ensure_mutex(mu);
    for (;;) {
      if (aborting_) throw AbortExecution{};
      step(lk);
      reschedule(lk, false);
      if (!mu.held) {
        mu.held = true;
        mu.owner = current_;
        if (mu.unlock_view) view_join(threads_[current_]->view, *mu.unlock_view);
        note(current_, "mlock", mu.id, 0, 0, "");
        return;
      }
      ThreadState& self = *threads_[current_];
      self.status = ThreadState::BLOCKED_MUTEX;
      self.wait_target = mu.id;
      reschedule(lk, false);
    }
  }

  bool mutex_try_lock(MutexObj& mu) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) throw AbortExecution{};
    ensure_mutex(mu);
    step(lk);
    reschedule(lk, false);
    if (mu.held) {
      note(current_, "mtrylock-", mu.id, 0, 0, "");
      return false;
    }
    mu.held = true;
    mu.owner = current_;
    if (mu.unlock_view) view_join(threads_[current_]->view, *mu.unlock_view);
    note(current_, "mtrylock+", mu.id, 0, 0, "");
    return true;
  }

  void mutex_unlock(MutexObj& mu) {
    std::unique_lock<std::mutex> lk(m_);
    if (aborting_) return;
    step(lk);
    reschedule(lk, false);
    mu.held = false;
    mu.owner = -1;
    mu.unlock_view = std::make_shared<const View>(threads_[current_]->view);
    for (auto& t : threads_) {
      if (t->status == ThreadState::BLOCKED_MUTEX && t->wait_target == mu.id) {
        t->status = ThreadState::RUNNABLE;  // all waiters re-contend
      }
    }
    note(current_, "munlock", mu.id, 0, 0, "");
  }

  // ---- failure -------------------------------------------------------------

  [[noreturn]] void fail(const std::string& msg) {
    std::unique_lock<std::mutex> lk(m_);
    fail_locked(msg);
  }

  // Lazily assign an id and make sure views can index it.  Must be called
  // with the lock held (all call sites above hold it).
  void ensure(AtomicObj& o) {
    if (o.ctx != this) {
      o.ctx = this;
      o.id = next_obj_id_++;
      // An object surviving from a previous execution keeps only its final
      // value as the initial store; old rel views index dead object ids.
      if (o.stores.size() > 1) o.stores.erase(o.stores.begin(), o.stores.end() - 1);
      if (!o.stores.empty()) o.stores.back().rel = nullptr;
    }
    if (latest_idx_.size() <= static_cast<std::size_t>(o.id)) {
      latest_idx_.resize(o.id + 1, 0);
    }
    latest_idx_[o.id] =
        o.stores.empty() ? 0
                         : static_cast<std::uint32_t>(o.stores.size() - 1);
    for (auto& t : threads_) {
      if (t->view.size() <= static_cast<std::size_t>(o.id)) {
        t->view.resize(o.id + 1, 0);
      }
    }
  }

  void ensure_mutex(MutexObj& mu) {
    if (mu.ctx != this) {
      mu.ctx = this;
      mu.id = next_obj_id_++;
      mu.held = false;
      mu.owner = -1;
      mu.unlock_view = nullptr;
    }
  }

 private:
  struct ThreadState {
    enum Status { RUNNABLE, BLOCKED_JOIN, BLOCKED_MUTEX, FINISHED };
    int id = 0;
    Status status = RUNNABLE;
    int wait_target = -1;
    View view;
    View pending_acq;
    std::shared_ptr<const View> fence_rel;
    std::function<void()> body;
    std::thread os;
    std::condition_variable cv;
  };

  // ---- scheduling core -----------------------------------------------------

  void step(std::unique_lock<std::mutex>&) {
    if (++steps_ > opt_.max_steps) {
      fail_locked("step budget exceeded (livelock? raise Options::max_steps)");
    }
  }

  // The schedule point: pick who runs next, hand off if it is not us.
  void reschedule(std::unique_lock<std::mutex>& lk, bool yielding) {
    ThreadState& self = *threads_[current_];
    const bool self_runnable = self.status == ThreadState::RUNNABLE;
    std::vector<int> opts;
    if (self_runnable && !yielding) {
      opts.push_back(current_);
      if (preemptions_ < opt_.preemption_bound) {
        push_others(opts);
      }
    } else {
      push_others(opts);          // free switch: blocked, finished or yielding
      if (opts.empty() && self_runnable) opts.push_back(current_);  // spin alone
    }
    if (opts.empty()) {
      fail_locked("deadlock: no runnable thread");
    }
    int chosen = 0;
    if (opts.size() > 1) {
      chosen = consume_choice(lk, static_cast<int>(opts.size()));
    }
    const int nxt = opts[static_cast<std::size_t>(chosen)];
    if (nxt == current_) return;
    if (self_runnable && !yielding) ++preemptions_;
    switch_to(lk, nxt);
  }

  void push_others(std::vector<int>& opts) {
    // Round-robin order starting after the current thread, for fairness in
    // the default (option-0) schedule.
    const int n = static_cast<int>(threads_.size());
    for (int d = 1; d <= n; ++d) {
      const int t = (current_ + d) % n;
      if (t != current_ && threads_[t]->status == ThreadState::RUNNABLE) {
        opts.push_back(t);
      }
    }
  }

  int consume_choice(std::unique_lock<std::mutex>&, int num) {
    int c = 0;
    if (prefix_pos_ < prefix_.size()) {
      c = prefix_[prefix_pos_].chosen;
      // A recorded num of 0 marks a parsed replay string (count unknown).
      if (prefix_[prefix_pos_].num != 0 && prefix_[prefix_pos_].num != num) {
        fail_locked("internal: nondeterministic replay (choice arity changed)");
      }
      ++prefix_pos_;
      if (c >= num) c = num - 1;
    }
    choices_.push_back({c, num});
    return c;
  }

  void switch_to(std::unique_lock<std::mutex>& lk, int nxt) {
    const int self = current_;
    current_ = nxt;
    threads_[nxt]->cv.notify_one();
    threads_[self]->cv.wait(lk, [&] { return aborting_ || current_ == self; });
    if (aborting_) throw AbortExecution{};
  }

  [[noreturn]] void fail_locked(const std::string& msg) {
    if (!failed_) {
      failed_ = true;
      fail_msg_ = msg;
    }
    aborting_ = true;
    for (auto& t : threads_) t->cv.notify_all();
    done_cv_.notify_all();
    throw AbortExecution{};
  }

  // read_rel: release view of the store an RMW read (release-sequence
  // continuation); null for plain stores.
  void do_store(AtomicObj& o, std::uint64_t v, std::memory_order mo,
                const std::shared_ptr<const View>* read_rel) {
    ThreadState& self = *threads_[current_];
    detail::StoreRec rec;
    rec.value = v;
    const std::uint32_t new_idx = static_cast<std::uint32_t>(o.stores.size());
    if (self.view[o.id] < new_idx) self.view[o.id] = new_idx;
    std::shared_ptr<const View> base;
    if (detail::mo_release(mo)) {
      base = std::make_shared<const View>(self.view);
    } else if (self.fence_rel) {
      // Relaxed store after a release fence publishes the fence's view.
      View merged = *self.fence_rel;
      if (merged.size() <= static_cast<std::size_t>(o.id)) {
        merged.resize(o.id + 1, 0);
      }
      if (merged[o.id] < new_idx) merged[o.id] = new_idx;
      base = std::make_shared<const View>(std::move(merged));
    }
    if (read_rel && *read_rel) {
      View merged = base ? *base : View{};
      view_join(merged, **read_rel);
      base = std::make_shared<const View>(std::move(merged));
    }
    rec.rel = std::move(base);
    o.stores.push_back(std::move(rec));
    latest_idx_[o.id] = static_cast<std::uint32_t>(o.stores.size() - 1);
  }

  void note(int tid, const char* op, int obj, std::uint64_t a, std::uint64_t b,
            const char* mo) {
    trace_.push_back({tid, op, obj, a, b, mo});
  }

  int spawn_locked(std::unique_lock<std::mutex>&, std::function<void()> body,
                   int parent) {
    const int id = static_cast<int>(threads_.size());
    auto ts = std::make_unique<ThreadState>();
    ts->id = id;
    ts->body = std::move(body);
    if (parent >= 0) ts->view = threads_[parent]->view;  // spawn edge
    ThreadState* raw = ts.get();
    threads_.push_back(std::move(ts));
    ++live_os_;
    raw->os = std::thread([this, raw] { thread_main(*raw); });
    return id;
  }

  void thread_main(ThreadState& self) {
    {
      std::unique_lock<std::mutex> lk(m_);
      self.cv.wait(lk, [&] { return aborting_ || current_ == self.id; });
    }
    if (!aborting_) {
      // Pin a dense ccds::thread_id before user code runs so registry slot
      // assignment is a deterministic function of the schedule.
      (void)ccds::thread_id();
      try {
        self.body();
      } catch (const AbortExecution&) {
      } catch (const std::exception& e) {
        std::unique_lock<std::mutex> lk(m_);
        if (!aborting_) {
          try {
            fail_locked(std::string("uncaught exception in model thread: ") +
                        e.what());
          } catch (const AbortExecution&) {
          }
        }
      } catch (...) {
        std::unique_lock<std::mutex> lk(m_);
        if (!aborting_) {
          try {
            fail_locked("uncaught exception in model thread");
          } catch (const AbortExecution&) {
          }
        }
      }
    }
    std::unique_lock<std::mutex> lk(m_);
    self.status = ThreadState::FINISHED;
    for (auto& t : threads_) {
      if (t->status == ThreadState::BLOCKED_JOIN && t->wait_target == self.id) {
        t->status = ThreadState::RUNNABLE;
      }
    }
    if (!aborting_) {
      bool all_done = true;
      for (auto& t : threads_) {
        if (t->status != ThreadState::FINISHED) all_done = false;
      }
      if (all_done) {
        done_ = true;
      } else if (current_ == self.id) {
        // Hand the token onward without waiting for it back.
        try {
          std::vector<int> opts;
          push_others(opts);
          if (opts.empty()) {
            fail_locked("deadlock: all remaining threads blocked");
          }
          int chosen = 0;
          if (opts.size() > 1) {
            chosen = consume_choice(lk, static_cast<int>(opts.size()));
          }
          current_ = opts[static_cast<std::size_t>(chosen)];
          threads_[current_]->cv.notify_one();
        } catch (const AbortExecution&) {
        }
      }
    }
    if (--live_os_ == 0) done_cv_.notify_all();
  }

  const Options& opt_;
  const std::vector<detail::ChoiceRec>& prefix_;
  std::size_t prefix_pos_ = 0;

  std::mutex m_;
  std::condition_variable done_cv_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  int current_ = -1;
  long live_os_ = 0;
  bool done_ = false;
  bool aborting_ = false;
  bool failed_ = false;
  std::string fail_msg_;

  long steps_ = 0;
  int preemptions_ = 0;
  int stale_branches_ = 0;
  int next_obj_id_ = 0;
  // Latest store index per object id (survives node destruction, unlike the
  // AtomicObj itself, so heavy_fence() never chases freed objects).
  std::vector<std::uint32_t> latest_idx_;

  std::vector<detail::ChoiceRec> choices_;
  std::vector<detail::TraceRec> trace_;
};

// ---------------------------------------------------------------------------
// Explorer driver: depth-first search over recorded choice points.
// ---------------------------------------------------------------------------
inline Result explore(const Options& opt, const std::function<void()>& fn) {
  Result res;
  std::vector<detail::ChoiceRec> prefix;
  const bool replay_mode = !opt.replay.empty();
  if (replay_mode) {
    std::istringstream is(opt.replay);
    int c;
    while (is >> c) prefix.push_back({c, 0});  // num 0: arity unchecked
  }
  for (;;) {
    ExecutionContext ctx(opt, prefix);
    active_context() = &ctx;
    ctx.run(fn);
    active_context() = nullptr;
    ++res.executions;
    if (ctx.failed()) {
      res.ok = false;
      res.error = ctx.fail_msg();
      res.schedule = ctx.schedule_string();
      res.trace = ctx.trace_string();
      return res;
    }
    if (replay_mode) return res;
    // Backtrack: deepest choice point with an untried alternative.  Every
    // recorded alternative is legal (preemption and staleness budgets are
    // enforced at recording time), so this is a plain odometer.
    auto& ch = ctx.choices();
    while (!ch.empty() && ch.back().chosen + 1 >= ch.back().num) ch.pop_back();
    if (ch.empty()) {
      res.exhausted = true;
      return res;
    }
    ch.back().chosen += 1;
    prefix = std::move(ch);
    if (res.executions >= opt.max_executions) return res;
  }
}

// Record a model-checker failure from user invariant code.
[[noreturn]] inline void fail_assert(const char* expr, const char* file,
                                     int line) {
  ExecutionContext* ctx = active_context();
  std::ostringstream os;
  os << "CCDS_MODEL_ASSERT failed: " << expr << " at " << file << ':' << line;
  if (ctx != nullptr) ctx->fail(os.str());
  // Outside an execution: fall back to a hard abort.
  std::fprintf(stderr, "%s\n", os.str().c_str());
  std::abort();
}

// Spin-loop hint (wired into ccds::spin_wait under CCDS_MODEL): a voluntary
// reschedule that hands the token to another runnable thread for free.
inline void yield_hint() noexcept {
  ExecutionContext* ctx = active_context();
  if (ctx == nullptr) {
    std::this_thread::yield();
    return;
  }
  ctx->yield();
}

}  // namespace ccds::model

#define CCDS_MODEL_ASSERT(expr)                                   \
  do {                                                            \
    if (!(expr)) {                                                \
      ::ccds::model::fail_assert(#expr, __FILE__, __LINE__);      \
    }                                                             \
  } while (0)

#!/usr/bin/env python3
"""Gate BENCH_ycsb.json on the E19 serving-tier contract.

Two layers, same split as check_batched.py: CI smoke runs (min_time ~1ms)
produce real rows with meaningless timings, so structure is always gated
and performance only under --perf (for the checked-in artifact).

  structural (always):
    - every E19 row is present: {Sharded, SharedSwiss, Striped} x
      read_pct in {50, 95, 100} x alpha_tenths in {9, 12} x
      T in {1, 4, 8}, as median aggregates (54 rows);
    - the context block proves the artifact is honest: ccds_build_type is
      "release", the shard/ring geometry is stamped (ycsb_shard_count,
      ycsb_ring_clients, ycsb_clients_oversubscribe_rings — the T=8
      series runs more clients than ring slots ON PURPOSE and the
      artifact must say so), and the injection knobs are recorded
      (ycsb_stall_every/ycsb_stall_burst: work counters without the
      stall rate are not reproducible);
    - schema: every row carries the scheduler-noise-free work counters
      (probes_per_op, cas_fails_per_op, work_per_op); sharded rows carry
      the per-shard witnesses (shard_ops_min/max, shard_occ_min/max,
      drain_batch_avg/max, fallback_ops) — a sharded row without its
      witnesses could be silently measuring one hot shard;
    - witness sanity: routing balance (every shard owns a non-empty,
      roughly equal slice of the 2M-key population: occ_max/occ_min
      <= 1.1), and oversubscription evidence (T=8 sharded rows show
      fallback_ops > 0 — 8 clients over 4 ring slots must exercise the
      MpmcQueue fallback path even in a single smoke iteration).

  performance (--perf, for real artifacts):
    - the acceptance gate: on the update-heavy A mix (50% reads) at
      alpha=1.2, T=8, the sharded tier does >= WORK_FLOOR x less work
      per op (probes + cas-fails) than the shared SwissHashMap;
    - batching evidence: the same row drained real batches
      (drain_batch_avg > 1.0 — episodes that always carry one request
      mean the mailbox window never amortized anything).

Work counters, unlike wall clock, do not drift with scheduler noise
(see E17/E18 and the header comment of bench_ycsb.cpp), so WORK_FLOOR
is exactly the acceptance bar.  Wall-clock columns are recorded in the
artifact but never gated: on this 1-CPU host the sharded tier pays four
worker threads in scheduling quanta and is EXPECTED to lose wall clock;
EXPERIMENTS.md documents the measured loss.
"""
import json
import sys

WORK_FLOOR = 1.2
OCC_BALANCE = 1.1

TIERS = ("Sharded", "SharedSwiss", "Striped")
MIXES = (50, 95, 100)
ALPHAS = (9, 12)
THREADS = (1, 4, 8)

WORK_KEYS = ("probes_per_op", "cas_fails_per_op", "work_per_op")
WITNESS_KEYS = ("shard_ops_min", "shard_ops_max", "shard_occ_min",
                "shard_occ_max", "drain_batch_avg", "drain_batch_max",
                "fallback_ops")


def row_name(tier, read_pct, alpha, threads):
    return ("BM_Ycsb%s/%d/%d/repeats:3/real_time/threads:%d_median"
            % (tier, read_pct, alpha, threads))


def median_rows(benchmarks):
    rows = {}
    for b in benchmarks:
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        rows[b["name"]] = b
    return rows


def main():
    perf = "--perf" in sys.argv
    path = next((a for a in sys.argv[1:] if not a.startswith("--")),
                "BENCH_ycsb.json")
    data = json.load(open(path))
    errors = []

    ctx = data.get("context", {})
    if ctx.get("ccds_build_type") != "release":
        errors.append("context.ccds_build_type=%r, need 'release'"
                      % ctx.get("ccds_build_type"))
    for key in ("hardware_concurrency", "requested_max_threads",
                "oversubscribed", "ycsb_key_range", "ycsb_shard_count",
                "ycsb_ring_clients", "ycsb_clients_oversubscribe_rings",
                "ycsb_window", "ycsb_stall_every", "ycsb_stall_burst"):
        if key not in ctx:
            errors.append("context missing %r" % key)
    if ctx.get("ycsb_clients_oversubscribe_rings") != "true":
        errors.append("ycsb_clients_oversubscribe_rings=%r: the T=8 series "
                      "must run more clients than ring slots"
                      % ctx.get("ycsb_clients_oversubscribe_rings"))

    rows = median_rows(data.get("benchmarks", []))
    wanted = [row_name(tier, m, a, t) for tier in TIERS for m in MIXES
              for a in ALPHAS for t in THREADS]
    missing = [n for n in wanted if n not in rows]
    if missing:
        errors.append("missing E19 rows: %s" % ", ".join(missing))

    if not missing:
        for name in wanted:
            row = rows[name]
            for key in WORK_KEYS:
                if key not in row:
                    errors.append("%s: missing %s" % (name, key))
            if name.startswith("BM_YcsbSharded"):
                for key in WITNESS_KEYS:
                    if key not in row:
                        errors.append("%s: missing witness %s" % (name, key))
            elif any(k in row for k in WITNESS_KEYS):
                errors.append("%s: shared-tier row carries shard witnesses "
                              "- mislabeled" % name)
        # Routing balance: the 2M-key prefill hash-routes across shards;
        # a lopsided split means shard_of and the map hash disagree.
        for m in MIXES:
            for a in ALPHAS:
                for t in THREADS:
                    row = rows.get(row_name("Sharded", m, a, t), {})
                    lo = row.get("shard_occ_min", 0)
                    hi = row.get("shard_occ_max", 0)
                    if lo <= 0:
                        errors.append("%s: empty shard (occ_min=%r)"
                                      % (row.get("name"), lo))
                    elif hi / lo > OCC_BALANCE:
                        errors.append("%s: shard occupancy imbalance "
                                      "%.0f..%.0f" % (row.get("name"), lo, hi))
        # Oversubscription evidence: with 8 clients over 4 ring slots the
        # fallback MpmcQueue path must carry traffic at T=8.
        for m in MIXES:
            for a in ALPHAS:
                row = rows[row_name("Sharded", m, a, 8)]
                if row.get("fallback_ops", 0) <= 0:
                    errors.append("%s: fallback_ops=0 at T=8 - the "
                                  "oversubscribed fallback path never ran"
                                  % row["name"])

    if perf and not missing:
        for m, a in ((50, 12), (50, 9), (95, 12), (100, 12)):
            shared = rows[row_name("SharedSwiss", m, a, 8)].get("work_per_op", 0)
            sharded = rows[row_name("Sharded", m, a, 8)].get("work_per_op", 0)
            ratio = shared / max(sharded, 1e-9)
            print("work_per_op T=8 mix=%d alpha=%.1f: swiss/sharded = %.3f"
                  % (m, a / 10.0, ratio))
            if (m, a) == (50, 12) and ratio < WORK_FLOOR:
                errors.append("A-mix alpha=1.2 T=8 work ratio %.3f < floor "
                              "%.2f" % (ratio, WORK_FLOOR))
        gate = rows[row_name("Sharded", 50, 12, 8)]
        avg = gate.get("drain_batch_avg", 0)
        print("drain_batch_avg T=8 A-mix alpha=1.2: %.2f" % avg)
        if avg <= 1.0:
            errors.append("drain_batch_avg %.3f <= 1.0 on the gate row - "
                          "mailbox batching never amortized" % avg)

    if errors:
        sys.exit("check_ycsb: FAIL\n  " + "\n  ".join(errors))
    print("check_ycsb: %d E19 rows OK%s"
          % (len(wanted), " (+perf gates)" if perf else ""))


if __name__ == "__main__":
    main()

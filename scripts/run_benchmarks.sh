#!/bin/bash
# Run the full ccds benchmark harness and record the raw output.
#
# Usage: scripts/run_benchmarks.sh [build-dir] [min-time-seconds]
# Output: bench_output.txt in the repository root.
set -u
build=${1:-build}
min_time=${2:-0.05}
root="$(cd "$(dirname "$0")/.." && pwd)"
out="$root/bench_output.txt"
: > "$out"
for b in "$root/$build"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" >> "$out"
  timeout 1800 "$b" --benchmark_min_time="$min_time" >> "$out" 2>&1
  echo "----- exit: $? -----" >> "$out"
done
echo "ALL_BENCHES_DONE" >> "$out"
echo "wrote $out"

#!/bin/bash
# Run the full ccds benchmark harness, one JSON artifact per suite.
#
# Usage: scripts/run_benchmarks.sh [build-dir] [min-time-seconds] [filter]
#
# For every bench binary bench_<suite> the run writes repo-root
# BENCH_<suite>.json (google-benchmark --benchmark_format=json), the
# machine-readable trajectory EXPERIMENTS.md and summarize_benches.py
# consume.  `filter` (optional) restricts which suites run, e.g.
# `scripts/run_benchmarks.sh build 0.05 hashmaps`.
#
# Exits non-zero if any bench binary fails (or none were found), so CI can
# gate on benchmark health instead of silently archiving broken output.
set -u
build=${1:-build}
min_time=${2:-0.05}
filter=${3:-}
root="$(cd "$(dirname "$0")/.." && pwd)"

failures=0
ran=0
for b in "$root/$build"/bench/bench_*; do
  [ -x "$b" ] || continue
  [ -d "$b" ] && continue
  suite="$(basename "$b")"
  suite="${suite#bench_}"
  if [ -n "$filter" ] && [[ "$suite" != *"$filter"* ]]; then
    continue
  fi
  out="$root/BENCH_${suite}.json"
  echo "== bench_${suite} -> $(basename "$out")"
  # Random interleaving spreads the repetitions of repeated benchmarks
  # across the run instead of back-to-back, so slow drift (heap layout,
  # thermal, background load) lands on every benchmark's median instead of
  # whichever ran last.  No-op for suites that register single runs.
  if ! timeout 1800 "$b" \
      --benchmark_min_time="$min_time" \
      --benchmark_enable_random_interleaving=true \
      --benchmark_format=json > "$out.tmp" 2> "$out.err"; then
    echo "!! bench_${suite} FAILED:" >&2
    tail -20 "$out.err" >&2
    rm -f "$out.tmp" "$out.err"
    failures=$((failures + 1))
    continue
  fi
  # Debug-build refusal: a debug-compiled bench binary produces numbers
  # that look plausible and mean nothing.  The binary stamps its own build
  # type into the JSON context as ccds_build_type (bench_util.hpp; the
  # library_build_type key only describes the packaged google-benchmark
  # library, which distros ship as debug).  Refuse to publish the artifact
  # unless our own TUs were built with NDEBUG.
  ctype="$(python3 -c '
import json, sys
print(json.load(open(sys.argv[1]))["context"].get("ccds_build_type", "missing"))
' "$out.tmp")"
  if [ "$ctype" != "release" ]; then
    rm -f "$out.tmp" "$out.err"
    echo "!! bench_${suite}: build dir '$root/$build' is not a release build" \
         "(ccds_build_type=\"$ctype\")." >&2
    echo "!! Reconfigure it with -DCMAKE_BUILD_TYPE=Release (or point this" \
         "script at a release build dir) and re-run; aborting before any" \
         "further suite wastes time producing unpublishable numbers." >&2
    exit 1
  fi
  mv "$out.tmp" "$out"
  rm -f "$out.err"
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "no bench binaries found under $root/$build/bench" >&2
  exit 1
fi
if [ "$failures" -ne 0 ]; then
  echo "$failures bench binar(y/ies) failed" >&2
  exit 1
fi
echo "wrote $ran BENCH_<suite>.json file(s) in $root"

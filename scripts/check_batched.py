#!/usr/bin/env python3
"""Gate BENCH_batched.json on the E18 sorted-batch contract.

Two layers, because CI smoke runs (min_time ~1ms) produce real rows but
meaningless timings:

  structural (always):
    - every E18 row is present: BulkLoad{Seq,Random} x B in {1,8,64,512},
      MixedWrite x B in {1,8,64,512} x T in {1,8}, MixedWriteFanout x
      B in {64,512} x T in {1,8}, and the Lfsl{Local,Restart} baselines at
      T in {1,8}, as median aggregates;
    - the context block proves the artifact is honest: ccds_build_type is
      "release" and the oversubscription facts are recorded;
    - schema: every batched row carries batch_size (== its sweep arg),
      the combining_front flag, and comparisons_per_op; the baselines
      carry comparisons_per_op and do NOT carry batch_size (they are
      point-op rows — a baseline that grew the flag is mislabeled);
    - fan-out evidence: the Fanout B=512 rows dispatched sub-batches
      (fanout_subbatches_per_batch > 0).  One B=512 batch over the 64k
      uniform key space spans all 8 shards, so even a single smoke
      iteration must fan out; zero means the executor attach or the
      threshold plumbing silently broke and the rows are measuring the
      inline path while claiming otherwise.

  performance (--perf, for real artifacts):
    - worker participation: the Fanout B=512 T=8 row shows
      worker_tasks_per_batch > 0 — the pool workers, not just the helping
      combiner, actually executed segment jobs (a smoke run is too short
      to guarantee a worker wins a task; a real run is not);
    - bulk-load amortization: sequential-order bulk load at B=64 does
      >= BULK_FLOOR x fewer comparisons per op than B=1.  This is the
      O(B + B*log(N/B)) claim in its cleanest form — same keys, same
      final structure, only the batch size moves;
    - mixed-write win: the B=512 T=8 batched row does >= MIXED_CPO_FLOOR x
      fewer comparisons per op than the lock-free skip list (kLocal) at
      T=8 under the identical 50/50 insert/erase uniform mix.

Floors are pinned from this repo's 1-CPU measurement host.  Measured
medians: seq bulk-load B1/B64 = 2.06x (deterministic — the counting
comparator's tally has cv 0.0% across repetitions); mixed-write
LfslLocal/Batched512 = 1.21-1.22x at T=8 (batched side cv 0.4%, baseline
cv ~3%, medians-of-5 stable to ~0.1%).  BULK_FLOOR=1.3 leaves the seq leg
a 1.6x cushion; MIXED_CPO_FLOOR=1.2 is the acceptance bar itself with a
~1.5% cushion on this host — comparison counts, unlike wall clock, do not
drift with scheduler noise, so the thin margin is safe for a gate that
only ever sees checked-in artifacts.  Wall-clock rows are recorded in the
artifact but NOT gated: on one CPU a T=8 combining row measures the
preemption storm, and fan-out "parallelism" is time-sliced (the
structural witnesses above are the honest cross-thread claim).  See the
E18 section of EXPERIMENTS.md.
"""
import json
import sys

BULK_FLOOR = 1.3
MIXED_CPO_FLOOR = 1.2

BATCHES = (1, 8, 64, 512)
FAN_BATCHES = (64, 512)
THREADS = (1, 8)


def median_rows(benchmarks):
    rows = {}
    for b in benchmarks:
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        rows[b["name"]] = b
    return rows


def bulk_name(leg, batch):
    return "BM_BatchedBulkLoad%s/%d/repeats:5_median" % (leg, batch)


def mixed_name(batch, threads):
    return ("BM_BatchedMixedWrite/%d/repeats:5/real_time/threads:%d_median"
            % (batch, threads))


def fanout_name(batch, threads):
    return ("BM_BatchedMixedWriteFanout/%d/repeats:5/real_time/"
            "threads:%d_median" % (batch, threads))


def lfsl_name(variant, threads):
    return ("BM_LfslMixedWrite<Lfsl%s>/repeats:5/real_time/threads:%d_median"
            % (variant, threads))


def main():
    perf = "--perf" in sys.argv
    path = next((a for a in sys.argv[1:] if not a.startswith("--")),
                "BENCH_batched.json")
    data = json.load(open(path))
    errors = []

    ctx = data.get("context", {})
    if ctx.get("ccds_build_type") != "release":
        errors.append("context.ccds_build_type=%r, need 'release'"
                      % ctx.get("ccds_build_type"))
    for key in ("hardware_concurrency", "requested_max_threads",
                "oversubscribed"):
        if key not in ctx:
            errors.append("context missing %r (bench_util.hpp stamps it)" % key)

    rows = median_rows(data.get("benchmarks", []))
    batched = [bulk_name(leg, b) for leg in ("Seq", "Random") for b in BATCHES]
    batched += [mixed_name(b, t) for b in BATCHES for t in THREADS]
    batched += [fanout_name(b, t) for b in FAN_BATCHES for t in THREADS]
    baseline = [lfsl_name(v, t) for v in ("Local", "Restart") for t in THREADS]
    missing = [n for n in batched + baseline if n not in rows]
    if missing:
        errors.append("missing E18 rows: %s" % ", ".join(missing))

    if not missing:
        # Schema: batched rows are flagged and counted; baselines are
        # counted but unflagged (a baseline carrying batch_size is
        # mislabeled and would poison downstream batch-size pivots).
        for name in batched:
            row = rows[name]
            want = int(name.split("/")[1])
            if row.get("batch_size") != want:
                errors.append("%s: batch_size=%r, want %d"
                              % (name, row.get("batch_size"), want))
            if row.get("combining_front") != 1:
                errors.append("%s: missing combining_front flag" % name)
            if "comparisons_per_op" not in row:
                errors.append("%s: missing comparisons_per_op" % name)
        for name in baseline:
            if "comparisons_per_op" not in rows[name]:
                errors.append("%s: missing comparisons_per_op" % name)
            if "batch_size" in rows[name]:
                errors.append("%s: point-op baseline carries batch_size"
                              % name)
        # Fan-out evidence: one 512-op uniform batch spans all 8 shards,
        # so every iteration — even a smoke run's single one — must
        # dispatch sub-batches.
        for t in THREADS:
            row = rows[fanout_name(512, t)]
            if row.get("fanout_subbatches_per_batch", 0) <= 0:
                errors.append("%s: no sub-batches dispatched - fan-out path "
                              "not exercised" % row["name"])

    if perf and not missing:
        # Worker participation: helpers (pool workers) executed segment
        # jobs; the combiner's own help path does not count here.
        if rows[fanout_name(512, 8)].get("worker_tasks_per_batch", 0) <= 0:
            errors.append("%s: workers executed no segment tasks"
                          % fanout_name(512, 8))
        for leg in ("Seq", "Random"):
            b1 = rows[bulk_name(leg, 1)].get("comparisons_per_op", 0)
            b64 = rows[bulk_name(leg, 64)].get("comparisons_per_op", 0)
            ratio = b1 / max(b64, 1e-9)
            print("bulk-load %s: B=1/B=64 = %.3f comparisons" % (leg, ratio))
            if leg == "Seq" and ratio < BULK_FLOOR:
                errors.append("bulk-load Seq B1/B64 comparison ratio %.3f < "
                              "floor %.2f" % (ratio, BULK_FLOOR))
        lfsl = rows[lfsl_name("Local", 8)].get("comparisons_per_op", 0)
        bat = rows[mixed_name(512, 8)].get("comparisons_per_op", 0)
        ratio = lfsl / max(bat, 1e-9)
        print("mixed-write T=8: LfslLocal/Batched512 = %.3f comparisons"
              % ratio)
        if ratio < MIXED_CPO_FLOOR:
            errors.append("mixed-write T=8 comparison ratio %.3f < floor %.2f"
                          % (ratio, MIXED_CPO_FLOOR))

    if errors:
        sys.exit("check_batched: FAIL\n  " + "\n  ".join(errors))
    print("check_batched: %d E18 rows OK%s"
          % (len(batched) + len(baseline), " (+perf gates)" if perf else ""))


if __name__ == "__main__":
    main()

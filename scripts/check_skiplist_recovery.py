#!/usr/bin/env python3
"""Gate BENCH_skiplists.json on the E17 recovery-ablation contract.

Two layers, because CI smoke runs (min_time ~1ms) produce real rows but
meaningless timings:

  structural (always):
    - every E17 row is present: Uniform{Local,Restart} x T in {1,4,8} and
      Zipf{Local,Restart}Preempt x alpha in {9,12} x T in {1,4,8}, as
      median aggregates (repetitions are baked into the registrations);
    - the context block proves the artifact is honest: ccds_build_type is
      "release" and the oversubscription facts are recorded;
    - the recovery counters segregate by knob: zipf rows carry the
      *_per_op counter schema, and neither variant leaks the other's
      recovery events (backtracks stay zero under kRestart, head restarts
      stay zero under kLocal) at any run length.

  performance (--perf, for real artifacts):
    - conflict evidence: the contended zipf cells actually recorded
      recovery events (backtracks under kLocal, head restarts under
      kRestart) — a perf artifact with idle counters means the harness
      silently stopped producing conflicts and every ratio below it is
      measuring nothing;
    - comparison-work ratio at T=8: Restart burns >= CPO_FLOOR x the
      comparisons per op of Local for each alpha.  comparisons_per_op
      comes from an instrumented comparator on the measured threads only,
      so it is immune to wall-clock noise (scheduler, churner dilution,
      heap layout) — it is the direct mechanism evidence that restart
      recovery re-pays whole descents where backlinks re-pay 2-3 links;
    - wall-clock at T=8: Local >= RATIO_FLOOR x Restart (median
      items_per_second) for each alpha;
    - uniform legs (the "backlinks are free when idle" claim): Local's
      comparisons_per_op matches Restart's within UNIFORM_CPO_TOLERANCE
      at every thread count — the two variants run identical code until a
      conflict, and the uniform mix's conflicts are negligible, so work
      done must be equal.  Wall clock only backstops gross regressions
      (UNIFORM_TOLERANCE): the uniform rows at T >= 4 are oversubscribed
      fast rows whose median-of-5 wall clock still carries cv 0.12-0.23
      on this host, swamping any real sub-10% effect.

RATIO_FLOOR is 1.05 on this repo's 1-CPU measurement host, NOT the >= 1.5x
a multicore host shows: with an honest restart baseline (full re-descent,
no O(n) strawman) and unbiased preemption injection, conflicts/op are
structurally capped around 0.3 when only one operation can run at a time,
which caps the ablation ratio near 1 + restarts/op ~= 1.2-1.3; measured
medians land at 1.11-1.25x wall clock and 1.11-1.17x comparison work,
with run-to-run wall-clock scatter of ~0.1.  (T=1 legs pin the harness
noise floor: with deterministic keyed towers both variants run identical
instruction streams there and measure within 2% wall / 0.1% comparisons.)
See the E17 section of EXPERIMENTS.md for the model, the measured
counters, and the strawman baselines that were rejected on the way here.
The floors assert the mechanism's direction survives noise; the counters
assert its magnitude evidence is present.
"""
import json
import sys

RATIO_FLOOR = 1.05
CPO_FLOOR = 1.05
UNIFORM_TOLERANCE = 0.25
UNIFORM_CPO_TOLERANCE = 0.02

THREADS = (1, 4, 8)
ALPHAS = (9, 12)


def median_rows(benchmarks):
    rows = {}
    for b in benchmarks:
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        rows[b["name"]] = b
    return rows


def uniform_name(variant, threads):
    return ("BM_SkipRecoveryUniform<LockFreeSkip%s>/repeats:5/"
            "real_time/threads:%d_median" % (variant, threads))


def zipf_name(variant, alpha, threads):
    return ("BM_SkipRecoveryZipf<LockFreeSkip%sPreempt>/%d/repeats:5/"
            "real_time/threads:%d_median" % (variant, alpha, threads))


def main():
    perf = "--perf" in sys.argv
    path = next((a for a in sys.argv[1:] if not a.startswith("--")),
                "BENCH_skiplists.json")
    data = json.load(open(path))
    errors = []

    ctx = data.get("context", {})
    if ctx.get("ccds_build_type") != "release":
        errors.append("context.ccds_build_type=%r, need 'release'"
                      % ctx.get("ccds_build_type"))
    for key in ("hardware_concurrency", "requested_max_threads",
                "oversubscribed"):
        if key not in ctx:
            errors.append("context missing %r (bench_util.hpp stamps it)" % key)

    rows = median_rows(data.get("benchmarks", []))
    need = [uniform_name(v, t) for v in ("Local", "Restart") for t in THREADS]
    need += [zipf_name(v, a, t) for v in ("Local", "Restart")
             for a in ALPHAS for t in THREADS]
    missing = [n for n in need if n not in rows]
    if missing:
        errors.append("missing E17 rows: %s" % ", ".join(missing))

    if not missing:
        # Counter schema + knob purity on every zipf cell (safe at any run
        # length: absence of the other variant's events is expected even in
        # a 1ms smoke run, presence is a leak).
        for a in ALPHAS:
            for t in THREADS:
                loc = rows[zipf_name("Local", a, t)]
                res = rows[zipf_name("Restart", a, t)]
                for row in (loc, res):
                    for c in ("backtracks_per_op", "head_restarts_per_op",
                              "helps_per_op", "comparisons_per_op"):
                        if c not in row:
                            errors.append("%s: missing counter %s"
                                          % (row["name"], c))
                if loc.get("head_restarts_per_op", 0) != 0:
                    errors.append("%s: head restarts on the Local variant "
                                  "(knob leak)" % loc["name"])
                if res.get("backtracks_per_op", 0) != 0:
                    errors.append("%s: backtracks on the Restart variant "
                                  "(knob leak)" % res["name"])
        for v in ("Local", "Restart"):
            for t in THREADS:
                if "comparisons_per_op" not in rows[uniform_name(v, t)]:
                    errors.append("%s: missing counter comparisons_per_op"
                                  % uniform_name(v, t))

    if perf and not missing:
        # Conflict evidence: a perf artifact with idle counters means the
        # contention harness silently stopped producing conflicts and the
        # ratio below is measuring nothing.
        for a in ALPHAS:
            for t in (4, 8):
                if rows[zipf_name("Local", a, t)].get("backtracks_per_op", 0) <= 0:
                    errors.append("%s: no backtracks - harness produced no "
                                  "conflicts" % zipf_name("Local", a, t))
                if rows[zipf_name("Restart", a, t)].get(
                        "head_restarts_per_op", 0) <= 0:
                    errors.append("%s: no head restarts - harness produced "
                                  "no conflicts" % zipf_name("Restart", a, t))
        for a in ALPHAS:
            loc = rows[zipf_name("Local", a, 8)]
            res = rows[zipf_name("Restart", a, 8)]
            cpo = (res.get("comparisons_per_op", 0) /
                   max(loc.get("comparisons_per_op", 0), 1e-9))
            ratio = loc["items_per_second"] / res["items_per_second"]
            print("zipf alpha=%.1f T=8: local/restart = %.3f wall, "
                  "restart/local = %.3f comparisons" % (a / 10, ratio, cpo))
            if cpo < CPO_FLOOR:
                errors.append("zipf alpha=%.1f T=8 comparison-work ratio "
                              "%.3f < floor %.2f" % (a / 10, cpo, CPO_FLOOR))
            if ratio < RATIO_FLOOR:
                errors.append("zipf alpha=%.1f T=8 ratio %.3f < floor %.2f"
                              % (a / 10, ratio, RATIO_FLOOR))
        for t in THREADS:
            loc = rows[uniform_name("Local", t)]
            res = rows[uniform_name("Restart", t)]
            cpo = (loc.get("comparisons_per_op", 0) /
                   max(res.get("comparisons_per_op", 0), 1e-9))
            ratio = loc["items_per_second"] / res["items_per_second"]
            print("uniform T=%d: local/restart = %.3f wall, %.3f comparisons"
                  % (t, ratio, cpo))
            if abs(cpo - 1.0) > UNIFORM_CPO_TOLERANCE:
                errors.append("uniform T=%d: comparison work differs %.1f%% "
                              "(tolerance %.0f%%) - backlinks are not free "
                              "when idle" % (t, abs(cpo - 1) * 100,
                                             UNIFORM_CPO_TOLERANCE * 100))
            if ratio < 1.0 - UNIFORM_TOLERANCE:
                errors.append("uniform T=%d: local regresses %.1f%% vs "
                              "restart (gross-regression backstop %.0f%%)"
                              % (t, (1 - ratio) * 100, UNIFORM_TOLERANCE * 100))

    if errors:
        sys.exit("check_skiplist_recovery: FAIL\n  " + "\n  ".join(errors))
    print("check_skiplist_recovery: %d E17 rows OK%s"
          % (len(need), " (+perf gates)" if perf else ""))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""ccds-analyze: semantic concurrency analyzer for the ccds tree.

Where scripts/lint_memory_orders.py is a fast regex-over-lines pre-commit
tier, this tool parses C++ (libclang when importable, a built-in token/scope
engine otherwise) and runs four checks that need scopes, call sites, and
record layout:

  A1 guard-escape
      A pointer derived from a dereference under a live reclaimer guard
      (Domain::guard(), Lease, lease_of()) must not be RETURNED from the
      function that opened the guard, STORED to a field or global, or used
      after the guard's scope has closed.  This is the paper's central
      hazard — a reader holding a node reference after reclamation is
      allowed to free it — caught at analysis time instead of
      probabilistically under ASan churn.  Pointers derived under a guard
      the function received BY PARAMETER are the caller's responsibility
      and are not flagged.

  A2 memory-order audit
      The R1/R2 house rules re-implemented on real call sites: every atomic
      member call is found on the token stream (multiline calls, calls in
      macros, and order arguments hidden behind ternaries are all visible;
      string/comment text never is), every `memory_order_relaxed` must bind
      to a '// relaxed: ...' justification, and every order-less call must
      bind to a '// seq_cst: ...' justification.  --json emits the full
      relaxation audit (site -> justification text) for CI artifacts.

  A3 layout-true false sharing
      Replaces the R3/R5 name-pattern heuristics with measured offsets: the
      analyzer computes each record's layout (Itanium-ABI rules; libclang's
      record layout when available) and flags two REMOTELY-WRITTEN atomic
      members of the same record that can land on one 64-byte line.  A
      member is "remotely written" when some call site in the analyzed tree
      stores/RMWs through that field name.  Records whose layout depends on
      template parameters are skipped (reported with --stats), not guessed.

  A4 unguarded traversal
      A dereference of a node's atomic link field (`n->next.load(...)` where
      `next` was declared `Atomic<T*>`) outside any live guard scope, guard
      parameter, constructor, or destructor.  Constructors/destructors are
      exempt by contract (the owning structure guarantees quiescence).

Suppressions, in precedence order:
  * an inline comment `// analyze-ok(A1): <why>` on the line or within the
    6 lines above (check name may also be A2, A3, A4);
  * the house justification words the regex lint already honours
    ("relaxed"/"seq_cst" for A2, "unpadded" for A3, "unguarded" for A4);
  * a baseline file (default tools/analyze/baseline.txt) of
    `check | file-suffix | symbol | reason` lines for findings that are
    understood but not yet fixed.  Stale baseline entries are reported.

Usage:
  ccds_analyze.py [paths...]                 analyze (default: src)
  ccds_analyze.py -p build [paths...]        read build/compile_commands.json
                                             (include dirs + TU set for the
                                             libclang backend)
  ccds_analyze.py --json out.json [paths..]  machine-readable findings+audit
  ccds_analyze.py --self-test                run against tools/analyze
                                             fixtures; every seeded bug must
                                             be found, clean fixtures must
                                             stay clean
  ccds_analyze.py --backend internal|libclang|auto
                                             frontend selection (auto =
                                             libclang when importable, with
                                             per-check fallback)

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

CACHE_LINE = 64
COMMENT_WINDOW = 6

CHECKS = ("A1-guard-escape", "A2-memory-order", "A3-false-sharing",
          "A4-unguarded-traversal")

ATOMIC_METHODS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_strong",
    "compare_exchange_weak", "test_and_set", "clear", "wait", "notify_one",
    "notify_all",
}
# Methods whose call means the receiver is written (possibly remotely).
ATOMIC_WRITE_METHODS = {
    "store", "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
    "fetch_xor", "compare_exchange_strong", "compare_exchange_weak",
    "test_and_set",
}
# Methods A2 audits for explicit orders (clear/wait/notify excluded: the
# house style never passes orders there).
ORDERED_METHODS = ATOMIC_WRITE_METHODS | {"load"}

# Mutex RAII types that contain "guard"/"lock" but are NOT reclaimer guards.
NOT_RECLAIMER_GUARDS = {"lock_guard", "scoped_lock", "unique_lock",
                        "shared_lock"}

# Return types through which a tainted pointer cannot escape as a pointer
# (e.g. `return p;` from a bool function is a conversion, not an escape).
NON_POINTER_SCALARS = {
    "bool", "void", "int", "unsigned", "long", "short", "char", "float",
    "double", "size_t", "std::size_t", "uint8_t", "uint16_t", "uint32_t",
    "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t", "ptrdiff_t",
    "std::ptrdiff_t", "uintptr_t", "std::uintptr_t",
}

MO_RELAXED_TOKENS = {"memory_order_relaxed"}
MO_ANY_RE = re.compile(r"^memory_order(_\w+)?$")


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

PUNCT2 = [
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<", ">>", "++",
    "--", ".*",
]

ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
ID_CONT = ID_START | set("0123456789")


class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind, text, line, col):
        self.kind = kind  # id | num | str | chr | punct | pp
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%s,%r,%d)" % (self.kind, self.text, self.line)


def tokenize(text):
    """Return (tokens, comments) where comments maps line -> comment text.

    Strings/chars become single tokens (their content can never trip a
    check); comments are captured for justification binding and never enter
    the token stream; preprocessor directives become 'pp' tokens covering
    the whole logical line (continuations included) — both arms of every
    #if are analyzed.
    """
    tokens = []
    comments = {}

    def add_comment(line, s):
        comments[line] = comments.get(line, "") + " " + s

    i, n = 0, len(text)
    line, col = 1, 1
    at_line_start = True

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        if c in " \t\r\n":
            if c == "\n":
                at_line_start = True
            advance(1)
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            end = n if end < 0 else end
            add_comment(line, text[i + 2:end])
            advance(end - i)
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i)
            end = n - 2 if end < 0 else end
            first = line
            for off, s in enumerate(text[i + 2:end].split("\n")):
                add_comment(first + off, s)
            advance(end + 2 - i)
            continue
        if c == "#" and at_line_start:
            # Whole logical line (backslash continuations glued).
            start, l0, c0 = i, line, col
            while i < n:
                end = text.find("\n", i)
                end = n if end < 0 else end
                advance(end - i)
                if i < n and text[i - 1] == "\\":
                    advance(1)
                    continue
                break
            tokens.append(Token("pp", text[start:i], l0, c0))
            at_line_start = True
            if i < n:
                advance(1)
            continue
        at_line_start = False
        if c == '"' or (c == "R" and text.startswith('R"', i)):
            l0, c0 = line, col
            if c == "R":
                m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = text.find(close, i + m.end())
                    end = n if end < 0 else end + len(close)
                    tokens.append(Token("str", text[i:end], l0, c0))
                    advance(end - i)
                    continue
                # plain identifier starting with R
            else:
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                tokens.append(Token("str", text[i:j + 1], l0, c0))
                advance(j + 1 - i)
                continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("chr", text[i:j + 1], line, col))
            advance(j + 1 - i)
            continue
        if c in ID_START:
            j = i
            while j < n and text[j] in ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line, col))
            advance(j - i)
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = re.match(r"[0-9][0-9a-fA-FxXbB'.uUlLzZ+-]*", text[i:])
            tok = m.group(0) if m else c
            # trim exponent-sign overmatches like "1e+5f;" capturing ';'
            tok = re.sub(r"[+-]+$", "", tok)
            tokens.append(Token("num", tok, line, col))
            advance(len(tok))
            continue
        for p in PUNCT2:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line, col))
                advance(len(p))
                break
        else:
            tokens.append(Token("punct", c, line, col))
            advance(1)
    return tokens, comments


# ---------------------------------------------------------------------------
# Source file wrapper: comments, justification, suppression
# ---------------------------------------------------------------------------

EXPECT_RE = re.compile(r"EXPECT-(A1|A2R1|A2R2|A3|A4)\b")
SUPPRESS_RE = re.compile(r"analyze-ok\s*\(\s*(A1|A2|A3|A4)\s*\)")


class SourceFile:
    def __init__(self, path, text):
        self.path = str(path)
        self.text = text
        self.tokens, self.comments = tokenize(text)

    def comment_at(self, line):
        # EXPECT markers are test metadata: their text must never satisfy a
        # justification search (the marker names the rule it seeds).
        s = self.comments.get(line, "")
        return EXPECT_RE.sub("", s)

    def justified(self, line, word):
        lo = max(1, line - COMMENT_WINDOW)
        return any(word in self.comment_at(l).lower()
                   for l in range(lo, line + 1))

    def justification_text(self, line, word):
        # same [line-6, line] window as justified()
        for l in range(line, max(0, line - COMMENT_WINDOW) - 1, -1):
            c = self.comment_at(l)
            if word in c.lower():
                return c.strip()
        return None

    def suppressed(self, line, check):
        lo = max(1, line - COMMENT_WINDOW)
        short = check.split("-")[0]
        for l in range(lo, line + 1):
            m = SUPPRESS_RE.search(self.comments.get(l, ""))
            if m and m.group(1) == short:
                return True
        return False


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, check, file, line, col, symbol, message):
        self.check = check
        self.file = file
        self.line = line
        self.col = col
        self.symbol = symbol
        self.message = message
        self.baselined = None  # reason when matched by a baseline entry

    def key(self):
        return (self.check, self.file, self.line)

    def text(self):
        return "%s:%d:%d: [%s] %s (symbol: %s)" % (
            self.file, self.line, self.col, self.check, self.message,
            self.symbol)

    def as_json(self):
        d = {"check": self.check, "file": self.file, "line": self.line,
             "col": self.col, "symbol": self.symbol, "message": self.message}
        if self.baselined is not None:
            d["baselined"] = self.baselined
        return d


# ---------------------------------------------------------------------------
# Pass 1 — records, members, constants, atomic fields
# ---------------------------------------------------------------------------

QUALIFIER_TOKENS = {"const", "mutable", "volatile", "inline", "static",
                    "constexpr", "typename", "struct", "class", "explicit",
                    "friend", "using", "extern"}


class Member:
    __slots__ = ("name", "line", "type_tokens", "array", "align64",
                 "is_func", "is_static")

    def __init__(self, name, line, type_tokens, array, align64, is_static):
        self.name = name
        self.line = line
        self.type_tokens = type_tokens  # list of token texts
        self.array = array  # None | token-text list of the [...] contents
        self.align64 = align64
        self.is_static = is_static


class Record:
    def __init__(self, name, file, line, align64, template_params):
        self.name = name
        self.file = file
        self.line = line
        self.align64 = align64
        self.template_params = template_params  # set of type-ish param names
        self.members = []  # data members, declaration order
        self.member_names = set()  # data + function member names


class Model:
    """Whole-analysis symbol knowledge shared by all checks."""

    def __init__(self):
        self.records = {}  # (file, name) -> Record
        self.records_by_name = {}  # name -> [Record]
        self.constants = {"kCacheLineSize": 64}
        self.atomic_fields = {}  # field name -> "ptr" | "val"
        self.written_atomics = set()  # receiver field names seen written
        self.files = []  # SourceFile list

    def add_record(self, rec):
        self.records[(rec.file, rec.name)] = rec
        self.records_by_name.setdefault(rec.name, []).append(rec)

    def lookup_record(self, name, file):
        rec = self.records.get((file, name))
        if rec:
            return rec
        cands = self.records_by_name.get(name, [])
        return cands[0] if len(cands) == 1 else None


def is_atomic_type(type_tokens):
    """('Atomic'|'atomic') '<' ... '>' possibly behind std::/ccds::/model::"""
    ids = [t for t in type_tokens if t not in ("std", "ccds", "model", "::",
                                               "const", "mutable", "typename")]
    return bool(ids) and ids[0] in ("Atomic", "atomic") and "<" in type_tokens


def atomic_inner_tokens(type_tokens):
    """Tokens between the outermost <> of an Atomic<...> type."""
    try:
        i = type_tokens.index("<")
    except ValueError:
        return []
    depth = 0
    out = []
    for t in type_tokens[i:]:
        if t == "<":
            depth += 1
            if depth == 1:
                continue
        elif t == ">":
            depth -= 1
            if depth == 0:
                break
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                break
        out.append(t)
    return out


def collect_structure(sf, model):
    """Populate model with records/members/constants from one file."""
    toks = sf.tokens
    n = len(toks)

    # --- constants: [static] [inline] constexpr <type> name = <expr>; ---
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text == "constexpr":
            j = i + 1
            decl = []
            while j < n and toks[j].text != ";" and toks[j].kind != "pp":
                decl.append(toks[j])
                j += 1
            eq = next((k for k, d in enumerate(decl) if d.text == "="), None)
            if eq is not None and eq >= 1 and decl[eq - 1].kind == "id":
                name = decl[eq - 1].text
                val = eval_const_expr([d.text for d in decl[eq + 1:]],
                                      model.constants)
                if val is not None:
                    model.constants.setdefault(name, val)
            i = j
        i += 1

    # --- records ---
    scope = []  # stack of (kind, Record|None, brace_depth_at_open)
    depth = 0
    template_params = set()
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "pp":
            i += 1
            continue
        if t.kind == "id" and t.text == "template":
            # capture type-ish parameter names up to matching '>'
            j = i + 1
            if j < n and toks[j].text == "<":
                d = 0
                params = []
                while j < n:
                    x = toks[j].text
                    if x == "<":
                        d += 1
                    elif x == ">":
                        d -= 1
                        if d == 0:
                            break
                    elif x == ">>":
                        d -= 2
                        if d <= 0:
                            break
                    params.append(toks[j])
                    j += 1
                prev = None
                for p in params:
                    if p.kind == "id" and prev is not None and \
                            prev.kind == "id" and p.text not in ("std",):
                        template_params.add(p.text)
                    prev = p
                i = j + 1
                continue
        if t.kind == "id" and t.text in ("struct", "class") and \
                i + 1 < n and (i == 0 or toks[i - 1].text != "enum"):
            # find name and the '{' (or bail at ';' / ':' base list ok)
            j = i + 1
            align64 = False
            name = None
            while j < n:
                x = toks[j]
                if x.text in ("CCDS_CACHELINE_ALIGNED",):
                    align64 = True
                elif x.text == "alignas":
                    align64 = True  # house code only ever alignas(line)
                    j = skip_balanced(toks, j + 1, "(", ")")
                    continue
                elif x.kind == "id" and name is None:
                    name = x.text
                elif x.text in ("{", ";"):
                    break
                elif x.text == ":" and name is not None:
                    # base-class list: scan to '{'
                    while j < n and toks[j].text not in ("{", ";"):
                        j += 1
                    break
                j += 1
            if j < n and toks[j].text == "{" and name is not None:
                rec = Record(name, sf.path, t.line, align64,
                             set(template_params))
                template_params = set()
                model.add_record(rec)
                collect_members(sf, toks, j, rec, model)
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
        i += 1


def skip_balanced(toks, i, open_t, close_t):
    """i points at or before open_t; return index just past the match."""
    n = len(toks)
    while i < n and toks[i].text != open_t:
        i += 1
    d = 0
    while i < n:
        if toks[i].text == open_t:
            d += 1
        elif toks[i].text == close_t:
            d -= 1
            if d == 0:
                return i + 1
        i += 1
    return n


def collect_members(sf, toks, brace_i, rec, model):
    """Walk one record body collecting data members at its top level."""
    n = len(toks)
    i = brace_i + 1
    depth = 1
    stmt = []

    def flush():
        parse_member_stmt(sf, stmt, rec, model)
        stmt.clear()

    while i < n and depth > 0:
        t = toks[i]
        if t.kind == "pp":
            i += 1
            continue
        x = t.text
        if x == "{":
            if brace_role(stmt) == "init":
                # init-brace: swallow balanced braces into the statement
                j = skip_balanced(toks, i, "{", "}")
                stmt.extend(toks[i:j])
                i = j
                continue
            # Nested record bodies are skipped but the header tokens are
            # KEPT so `struct Init { ... } init_{...};` still declares the
            # member init_ (the nested record itself is collected by
            # collect_structure's linear walk, which sees every 'struct').
            if any(t2.kind == "id" and t2.text in ("struct", "class",
                                                   "union", "enum")
                   for t2 in stmt):
                i = skip_balanced(toks, i, "{", "}")
                continue
            # a function definition: record its name as a member
            if stmt:
                register_stmt_name(stmt, rec)
                stmt.clear()
            i = skip_balanced(toks, i, "{", "}")
            continue
        if x == "}":
            depth -= 1
            i += 1
            continue
        if x == ";":
            flush()
            i += 1
            continue
        if x in ("public", "private", "protected") and \
                i + 1 < n and toks[i + 1].text == ":":
            stmt.clear()
            i += 2
            continue
        if x == "(":
            j = skip_balanced(toks, i, "(", ")")
            stmt.extend(toks[i:j])
            i = j
            continue
        stmt.append(t)
        i += 1


def brace_role(stmt):
    """Is this '{' a scope opener or an initializer/lambda-body brace?

    Record/namespace/function/control braces open scopes; braces after an
    identifier, '=', 'return', ',', '>', or ']' are aggregate inits or
    lambda bodies and are swallowed into the enclosing statement.
    """
    if not stmt:
        return "scope"
    for t in stmt:
        if t.kind == "id" and t.text in ("struct", "class", "namespace",
                                         "union", "enum"):
            return "scope"
    last = stmt[-1]
    if last.text in (")", "const", "noexcept", "override", "final", "try",
                     "else", "do", ":", "&", "&&", "mutable"):
        return "scope"
    if last.kind in ("id", "num") or last.text in ("=", ",", "(", "[", "]",
                                                   ">", "return"):
        return "init"
    return "scope"


def register_stmt_name(stmt, rec):
    """Best-effort: note the declared name (function) for member_names."""
    for k, t in enumerate(stmt):
        if t.text == "(" and k > 0 and stmt[k - 1].kind == "id":
            rec.member_names.add(stmt[k - 1].text)
            return


def parse_member_stmt(sf, stmt, rec, model):
    """Classify one record-level statement; append data members."""
    if not stmt:
        return
    texts = [t.text for t in stmt]
    if texts[0] in ("using", "typedef", "friend", "template", "static_assert",
                    "enum", "namespace", "public", "private", "protected"):
        return
    if "(" in texts:
        # could be a function decl `T f(args)` or an init `T x{...}`/`T x = f(y)`
        # function: NAME immediately before first '(' and no '=' before it
        p = texts.index("(")
        if p > 0 and stmt[p - 1].kind == "id" and "=" not in texts[:p] and \
                texts[p - 1] not in ("alignas", "decltype"):
            # `Atomic<int> x{0};` has no '('; `int f(int)` lands here.
            # Constructor-style member init `T x(0);` is not house style;
            # `alignas(64) T x;` is a member, not a function named alignas.
            rec.member_names.add(texts[p - 1])
            return
    # strip default init: cut at '=' or the init-brace
    end = len(stmt)
    for k, t in enumerate(stmt):
        if t.text == "=" or (t.text == "{" and k > 0):
            end = k
            break
    decl = stmt[:end]
    # array suffix
    array = None
    if decl and decl[-1].text == "]":
        b = len(decl) - 1
        d = 0
        while b >= 0:
            if decl[b].text == "]":
                d += 1
            elif decl[b].text == "[":
                d -= 1
                if d == 0:
                    break
            b -= 1
        array = [t.text for t in decl[b + 1:-1]]
        decl = decl[:b]
    if not decl or decl[-1].kind != "id":
        return
    name = decl[-1].text
    type_toks = [t.text for t in decl[:-1]]
    type_toks = [t for t in type_toks if t not in ("struct", "class")]
    if not type_toks:
        return  # bare nested-record definition, not a data member
    is_static = "static" in type_toks
    align64 = "CCDS_CACHELINE_ALIGNED" in type_toks or "alignas" in type_toks
    type_toks = [t for t in type_toks
                 if t not in ("CCDS_CACHELINE_ALIGNED", "mutable", "static")]
    if "alignas" in type_toks:
        # drop alignas(...) run
        out, skip_depth, skipping = [], 0, False
        for t in type_toks:
            if t == "alignas":
                skipping = True
                continue
            if skipping:
                if t == "(":
                    skip_depth += 1
                elif t == ")":
                    skip_depth -= 1
                    if skip_depth == 0:
                        skipping = False
                continue
            out.append(t)
        type_toks = out
    m = Member(name, decl[-1].line, type_toks, array, align64, is_static)
    rec.members.append(m)
    rec.member_names.add(name)
    # atomic field registry for A2/A4
    if not is_static and is_atomic_type(type_toks) and \
            not type_toks[-1] == "*":  # Atomic<int>* p is a pointer member
        inner = atomic_inner_tokens(type_toks)
        kind = "ptr" if "*" in inner else "val"
        prev = model.atomic_fields.get(name)
        # pointer-ness wins on conflicts: A4 cares about link fields
        if prev != "ptr":
            model.atomic_fields[name] = kind


# ---------------------------------------------------------------------------
# Constant-expression evaluation (array bounds)
# ---------------------------------------------------------------------------

def eval_const_expr(texts, constants):
    """Evaluate +-*/%<<() over int literals and known constants; None if
    anything is unknown (template parameter, sizeof, ternary...)."""
    expr = []
    for t in texts:
        if re.fullmatch(r"[0-9][0-9a-fA-FxX']*[uUlLzZ]*", t or ""):
            expr.append(t.rstrip("uUlLzZ").replace("'", ""))
        elif t in ("+", "-", "*", "/", "%", "(", ")", "<<", ">>"):
            expr.append(t)
        elif t in constants:
            expr.append(str(constants[t]))
        elif t in ("std", "::", "size_t", "uint64_t", "int", "unsigned",
                   "long", "uint32_t", "bool", "true", "false"):
            if t == "true":
                expr.append("1")
            elif t == "false":
                expr.append("0")
            continue  # casts/qualifiers in simple forms
        else:
            return None
    if not expr:
        return None
    try:
        v = eval("".join(expr), {"__builtins__": {}}, {})  # arithmetic only
        return int(v)
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Layout engine (internal backend)
# ---------------------------------------------------------------------------

SCALARS = {
    "bool": (1, 1), "char": (1, 1), "int8_t": (1, 1), "uint8_t": (1, 1),
    "byte": (1, 1), "short": (2, 2), "int16_t": (2, 2), "uint16_t": (2, 2),
    "int": (4, 4), "unsigned": (4, 4), "int32_t": (4, 4), "uint32_t": (4, 4),
    "float": (4, 4), "long": (8, 8), "int64_t": (8, 8), "uint64_t": (8, 8),
    "size_t": (8, 8), "ptrdiff_t": (8, 8), "intptr_t": (8, 8),
    "uintptr_t": (8, 8), "double": (8, 8),
}


class Layout:
    def __init__(self, size, align):
        self.size = size
        self.align = align
        self.atoms = []  # (leaf name, member line, offset, size)


def align_up(x, a):
    return (x + a - 1) // a * a


def type_layout(type_toks, file, model, rec, depth=0):
    """(size, align, atoms) for a type, or None when unknown.
    atoms lists atomic leaves as (relative offset, size)."""
    if depth > 8:
        return None
    toks = [t for t in type_toks if t not in ("const", "volatile", "typename",
                                              "struct", "class", "::")]
    toks = [t for t in toks if t not in ("std", "ccds", "model")]
    if not toks:
        return None
    if toks[-1] == "*" or toks[-1] == "&":
        return (8, 8, [])
    if toks[0] in ("Atomic", "atomic"):
        inner = atomic_inner_tokens(type_toks)
        il = type_layout(inner, file, model, rec, depth + 1)
        if il is None:
            return None
        s, a, _ = il
        # std::atomic<T> for power-of-two scalar T has T's size/align;
        # 16-byte payloads get 16/16 on x86-64.
        return (s, max(a, s if s in (1, 2, 4, 8, 16) else a), [(0, s)])
    if toks[0] == "Padded":
        inner = atomic_inner_tokens(type_toks)
        il = type_layout(inner, file, model, rec, depth + 1)
        if il is None:
            return None
        s, _, atoms = il
        pad = CACHE_LINE - (s % CACHE_LINE)
        return (s + pad, CACHE_LINE, atoms)
    if toks[0] == "array" and "<" in type_toks:
        inner = atomic_inner_tokens(type_toks)
        # split TYPE , N at top angle depth
        d = 0
        for k, t in enumerate(inner):
            if t == "<":
                d += 1
            elif t == ">":
                d -= 1
            elif t == "," and d == 0:
                elem, cnt = inner[:k], inner[k + 1:]
                break
        else:
            return None
        il = type_layout(elem, file, model, rec, depth + 1)
        cn = eval_const_expr(cnt, model.constants)
        if il is None or cn is None:
            return None
        s, a, atoms = il
        stride = align_up(s, a)
        out = [(e * stride + off, sz) for e in range(min(cn, 256))
               for (off, sz) in atoms]
        return (stride * cn, a, out)
    if len(toks) == 1 or (len(toks) == 2 and toks[0] in ("unsigned", "signed")):
        base = toks[-1]
        if toks == ["unsigned", "long"] or base == "long" and "long" in toks[:-1]:
            return (8, 8, [])
        if base in SCALARS:
            s, a = SCALARS[base]
            return (s, a, [])
        if rec is not None and base in rec.template_params:
            return None
        sub = model.lookup_record(base, file)
        if sub is not None:
            lay = record_layout(sub, model)
            if lay is None:
                return None
            return (lay.size, lay.align,
                    [(off, sz) for (_, _, off, sz) in lay.atoms])
        return None
    return None


_layout_cache = {}


def record_layout(rec, model):
    """Layout of a record, or None when any member's size is unknown."""
    key = (rec.file, rec.name, rec.line)
    if key in _layout_cache:
        return _layout_cache[key]
    _layout_cache[key] = None  # cycle guard
    off = 0
    align = CACHE_LINE if rec.align64 else 1
    lay = Layout(0, align)
    for m in rec.members:
        if m.is_static:
            continue
        tl = type_layout(m.type_tokens, rec.file, model, rec)
        if tl is None:
            return None
        s, a, atoms = tl
        count = 1
        if m.array is not None:
            count = eval_const_expr(m.array, model.constants)
            if count is None:
                return None
        if m.align64:
            a = max(a, CACHE_LINE)
        stride = align_up(s, a)
        off = align_up(off, a)
        is_atomic = is_atomic_type(m.type_tokens)
        for e in range(min(count, 256)):
            base = off + e * stride
            for (ao, asz) in atoms:
                leaf = m.name if count == 1 else "%s[%d]" % (m.name, e)
                lay.atoms.append((leaf, m.line, base + ao, asz))
            if is_atomic and not atoms:
                pass
        off += stride * count if count > 1 else s
        lay.align = max(lay.align, a)
    lay.size = align_up(off, lay.align) if off else lay.align if rec.align64 else 0
    _layout_cache[key] = lay
    return lay


# ---------------------------------------------------------------------------
# A3 — layout-true false sharing
# ---------------------------------------------------------------------------

def check_a3(model, stats):
    findings = []
    sf_by_path = {f.path: f for f in model.files}
    for rec in sorted({id(r): r for rs in model.records_by_name.values()
                       for r in rs}.values(), key=lambda r: (r.file, r.line)):
        lay = record_layout(rec, model)
        if lay is None:
            stats["a3_skipped_unknown_layout"] += 1
            continue
        stats["a3_records_measured"] += 1
        sf = sf_by_path.get(rec.file)
        written = []
        for (leaf, line, off, sz) in lay.atoms:
            base = leaf.split("[")[0]
            if base in model.written_atomics:
                written.append((leaf, base, line, off, sz))
        seen_pairs = set()
        for i in range(len(written)):
            for j in range(i + 1, len(written)):
                l1, b1, ln1, o1, s1 = written[i]
                l2, b2, ln2, o2, s2 = written[j]
                if b1 == b2:
                    continue  # intra-array / same member: container's call
                pair = (b1, b2)
                if pair in seen_pairs:
                    continue
                if lay.align >= CACHE_LINE:
                    share = o1 // CACHE_LINE == o2 // CACHE_LINE
                else:
                    share = (max(o1 + s1, o2 + s2) - min(o1, o2)) <= CACHE_LINE
                if not share:
                    continue
                seen_pairs.add(pair)
                line = max(ln1, ln2)
                if sf and (sf.justified(ln1, "unpadded")
                           or sf.justified(ln2, "unpadded")
                           or sf.justified(rec.line, "unpadded")
                           or sf.suppressed(ln1, "A3")
                           or sf.suppressed(ln2, "A3")
                           or sf.suppressed(rec.line, "A3")):
                    continue
                findings.append(Finding(
                    "A3-false-sharing", rec.file, line,
                    1, "%s::%s+%s" % (rec.name, b1, b2),
                    "atomics '%s' (offset %d, %dB) and '%s' (offset %d, %dB)"
                    " of record '%s' are both remotely written and can share"
                    " one %d-byte cache line; pad with"
                    " CCDS_CACHELINE_ALIGNED/Padded<> or justify with"
                    " '// unpadded: ...'"
                    % (l1, o1, s1, l2, o2, s2, rec.name, CACHE_LINE)))
    return findings


# ---------------------------------------------------------------------------
# A2 — memory-order audit on real call sites
# ---------------------------------------------------------------------------

def receiver_chain(toks, i):
    """Identifiers of the receiver expression ending before toks[i] ('.' or
    '->').  Walks back over id/]/)/ chains: `hazards_[t].value` -> ['value',
    'hazards_']."""
    chain = []
    j = i - 1
    while j >= 0:
        t = toks[j]
        if t.text in ("]", ")"):
            close, open_t = (t.text, "[" if t.text == "]" else "(")
            d = 0
            while j >= 0:
                if toks[j].text == close:
                    d += 1
                elif toks[j].text == open_t:
                    d -= 1
                    if d == 0:
                        break
                j -= 1
            j -= 1
            continue
        if t.kind == "id":
            chain.append(t.text)
            j -= 1
            if j >= 0 and toks[j].text in (".", "->", "::"):
                j -= 1
                continue
            break
        if t.text in (".", "->", "::"):
            j -= 1
            continue
        break
    return chain


def balanced_args(toks, i):
    """toks[i] == '('; return (texts, end_index) of the balanced list."""
    d = 0
    out = []
    n = len(toks)
    while i < n:
        x = toks[i].text
        if x == "(":
            d += 1
            if d == 1:
                i += 1
                continue
        elif x == ")":
            d -= 1
            if d == 0:
                return out, i
        out.append(x)
        i += 1
    return out, n


DEFINE_HEAD_RE = re.compile(r"#\s*define\s+\w+(\([^)]*\))?")


def check_a2(sf, model, audit, stats):
    findings = []

    def scan(toks):
        n = len(toks)
        for i, t in enumerate(toks):
            scan_one(toks, n, i, t)

    def scan_one(toks, n, i, t):
        if t.kind != "id":
            return
        # free fences: atomic_thread_fence / atomic_signal_fence(relaxed)
        if t.text in ("atomic_thread_fence", "atomic_signal_fence") and \
                i + 1 < n and toks[i + 1].text == "(":
            args, _ = balanced_args(toks, i + 1)
            if any(a in MO_RELAXED_TOKENS or a == "relaxed" for a in args):
                if not sf.justified(t.line, "relaxed"):
                    findings.append(Finding(
                        "A2-memory-order", sf.path, t.line, t.col,
                        t.text, "relaxed fence without a '// relaxed: ...'"
                        " justification comment nearby"))
            return
        if t.text not in ORDERED_METHODS:
            return
        if i == 0 or toks[i - 1].text not in (".", "->"):
            return
        if i + 1 >= n or toks[i + 1].text != "(":
            return
        chain = receiver_chain(toks, i - 1)
        recv = chain[0] if chain else "?"
        # `x.value.store(...)`: Padded<Atomic<..>> access — receiver for the
        # written-atomics registry is the padded field's name.
        reg = recv
        if recv == "value" and len(chain) > 1:
            reg = chain[1]
        args, end = balanced_args(toks, i + 1)
        stats["a2_sites"] += 1
        if t.text in ATOMIC_WRITE_METHODS:
            model.written_atomics.add(reg)
        has_order = any(MO_ANY_RE.match(a) or a in
                        ("relaxed", "acquire", "release", "acq_rel", "seq_cst",
                         "consume") for a in args)
        relaxed = any(a in MO_RELAXED_TOKENS for a in args) or \
            ("memory_order" in args and "relaxed" in args)
        symbol = "%s.%s" % (".".join(reversed(chain)) or "?", t.text)
        # In multiline calls the house justification comment rides on the
        # line of the relaxed ARGUMENT, not the method name — bind there too.
        site_lines = [t.line] + sorted(
            {toks[k].line for k in range(i + 1, min(end + 1, n))
             if toks[k].text in MO_RELAXED_TOKENS})
        if relaxed:
            just = None
            for ln in site_lines:
                just = sf.justification_text(ln, "relaxed")
                if just is not None:
                    break
            audit.append({"file": sf.path, "line": t.line, "site": symbol,
                          "order": "relaxed", "justification": just})
            if just is None and not any(sf.suppressed(ln, "A2")
                                        for ln in site_lines):
                findings.append(Finding(
                    "A2-memory-order", sf.path, t.line, t.col, symbol,
                    "memory_order_relaxed on '%s' without a"
                    " '// relaxed: ...' justification comment nearby"
                    % symbol))
        elif not has_order:
            close_line = toks[end].line if end < n else t.line
            if not sf.justified(t.line, "seq_cst") and \
                    not sf.justified(close_line, "seq_cst") and \
                    not sf.suppressed(t.line, "A2"):
                findings.append(Finding(
                    "A2-memory-order", sf.path, t.line, t.col, symbol,
                    "'%s()' call without an explicit memory order (defaults"
                    " to seq_cst; spell the order or justify with"
                    " '// seq_cst: ...')" % t.text))

    scan(sf.tokens)
    # Macro bodies: directive lines are opaque `pp` tokens in the main
    # stream, so atomic call sites inside #define bodies would be invisible
    # — exactly the regex lint's old macro blind spot.  Re-tokenize each
    # define body (line-shifted back to the real file) and scan it too.
    for t in sf.tokens:
        if t.kind != "pp":
            continue
        m = DEFINE_HEAD_RE.match(t.text)
        if m is None:
            continue
        body_toks, _ = tokenize(m.group(0).count("\n") * "\n" +
                                t.text[m.end():])
        shifted = [Token(b.kind, b.text, b.line + t.line - 1, b.col)
                   for b in body_toks]
        scan(shifted)
    return findings


# ---------------------------------------------------------------------------
# A1 + A4 — function-scope analysis
# ---------------------------------------------------------------------------

GUARD_CALLS = {"guard", "lease"}
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else"}


class Scope:
    def __init__(self, kind, depth, record=None, func=None):
        self.kind = kind  # function | record | namespace | block | other
        self.depth = depth
        self.record = record
        self.func = func
        self.guards = {}  # name -> dict(local=bool, line=int)
        self.vars = set()


class FuncCtx:
    def __init__(self, name, ret_tokens, guard_params, record, line):
        self.name = name
        self.ret_tokens = ret_tokens
        self.guard_params = guard_params  # set of param names
        self.record = record  # enclosing Record or None
        self.line = line
        self.taint = {}  # var -> guard name ('<param>' prefixed when param)
        self.stale = {}  # var -> (guard, guard_end_line)
        self.reported_stale = set()
        self.is_ctor_dtor = False


def split_top(texts_toks, sep):
    """Split a token list on sep at zero paren/bracket/brace depth."""
    out, cur, d = [], [], 0
    for t in texts_toks:
        x = t.text
        if x in ("(", "[", "{"):
            d += 1
        elif x in (")", "]", "}"):
            d -= 1
        if x == sep and d == 0:
            out.append(cur)
            cur = []
        else:
            cur.append(t)
    out.append(cur)
    return out


def check_a1_a4(sf, model, stats):
    findings = []
    toks = sf.tokens
    n = len(toks)
    scopes = []
    stmt = []
    i = 0

    def innermost_func():
        for s in reversed(scopes):
            if s.kind == "function":
                return s.func
        return None

    def enclosing_record():
        for s in reversed(scopes):
            if s.kind == "record":
                return s.record
        return None

    def live_guards():
        out = {}
        for s in scopes:
            if s.kind == "function" and s.func is not None:
                for p in s.func.guard_params:
                    out[p] = {"local": False, "line": s.func.line}
            out.update(s.guards)
        return out

    def classify_brace(header):
        texts = [t.text for t in header]
        if not texts:
            return "block", None, None
        if "namespace" in texts[:2]:
            return "namespace", None, None
        for k, x in enumerate(texts):
            if x in ("struct", "class") and "=" not in texts[:k]:
                # find the record in the model
                for t2 in header[k + 1:]:
                    if t2.kind == "id" and t2.text not in (
                            "CCDS_CACHELINE_ALIGNED", "final", "alignas"):
                        rec = model.lookup_record(t2.text, sf.path)
                        return "record", rec, None
                return "record", None, None
        if "(" in texts and texts[-1] != "=":
            # control statement?
            p = texts.index("(")
            if p > 0 and texts[p - 1] in CONTROL_KEYWORDS:
                return "block", None, None
            if any(x in CONTROL_KEYWORDS for x in texts[:2]):
                return "block", None, None
            # function definition: NAME '(' params ')' [quals] at end
            func = parse_function_header(header, sf, model,
                                         enclosing_record())
            if func is not None:
                return "function", None, func
        if texts[-1] in ("else", "try", "do"):
            return "block", None, None
        return "other", None, None

    def process_statement(st):
        func = innermost_func()
        if func is None or not st:
            return
        # recurse into control-statement parens: for(init;cond;inc), if(decl)
        texts = [t.text for t in st]
        if texts and texts[0] in CONTROL_KEYWORDS and "(" in texts:
            p = texts.index("(")
            inner, _ = balanced_toks(st, p)
            for sub in split_top(inner, ";"):
                if sub:
                    process_statement(sub)
            return
        a4_scan(st, func)
        # --- return ---
        if texts and texts[0] == "return":
            expr = st[1:]
            handle_return(expr, func, st[0])
            return
        # --- declaration / assignment ---
        eq = None
        d = 0
        for k, t in enumerate(st):
            x = t.text
            if x in ("(", "[", "{"):
                d += 1
            elif x in (")", "]", "}"):
                d -= 1
            elif x == "=" and d == 0:
                eq = k
                break
        if eq is not None:
            lhs, rhs = st[:eq], st[eq + 1:]
            handle_assign(lhs, rhs, func)
        else:
            # declaration without init (`Node* p;`) registers the var
            if len(st) >= 2 and st[-1].kind == "id" and \
                    all(t.kind == "id" or t.text in ("*", "&", "<", ">",
                                                     "::", ">>")
                        for t in st[:-1]):
                if scopes:
                    scopes[-1].vars.add(st[-1].text)
            # stale deref in expression statements (e.g. `p->next();`)
            stale_scan(st, func)

    def balanced_toks(st, p):
        d = 0
        out = []
        for k in range(p, len(st)):
            x = st[k].text
            if x == "(":
                d += 1
                if d == 1:
                    continue
            elif x == ")":
                d -= 1
                if d == 0:
                    return out, k
            out.append(st[k])
        return out, len(st)

    def taint_of_expr(expr_toks, func):
        """Guard name tainting this expression, else None."""
        guards = live_guards()
        texts = [t.text for t in expr_toks]
        if "new" in texts or texts == ["nullptr"]:
            return None
        for k, t in enumerate(expr_toks):
            if t.kind != "id":
                continue
            # g.protect(...)
            if t.text in ("protect", "protect_raw") and k >= 2 and \
                    expr_toks[k - 1].text in (".", "->"):
                g = expr_toks[k - 2].text
                if g in guards:
                    return g
            if t.text in func.taint:
                # a tainted var used anywhere in the expression taints it
                return func.taint[t.text]
            if t.text in guards and k + 1 < len(expr_toks) and \
                    expr_toks[k + 1].text in (",", ")"):
                # passing the guard itself into a call: result derives
                # from protections made under it (find(key, g) shape)
                if k >= 1 and expr_toks[k - 1].text in ("(", ","):
                    return t.text
        return None

    def guard_is_local(gname, func):
        guards = live_guards()
        info = guards.get(gname)
        if info is None:
            return False
        return info["local"] and gname not in func.guard_params

    def handle_assign(lhs, rhs, func):
        stale_scan(rhs, func)
        a4_scan(rhs, func)
        taint = taint_of_expr(rhs, func)
        lt = [t.text for t in lhs]
        # declaration? type tokens then name
        is_decl = len(lhs) >= 2 and lhs[-1].kind == "id" and all(
            t.kind in ("id", "num") or t.text in ("*", "&", "<", ">", ">>",
                                                  "::", ",", "[", "]")
            for t in lhs[:-1])
        target_member = False
        target = None
        if is_decl:
            target = lhs[-1].text
            if scopes:
                scopes[-1].vars.add(target)
            # guard declaration?
            rtexts = [t.text for t in rhs]
            # d.guard() / d.lease() / lease_of(d) / acquire_guard() — any
            # *_guard() helper counts, except the mutex RAII names.
            if any(x in GUARD_CALLS for k, x in enumerate(rtexts)
                   if k >= 1 and rtexts[k - 1] in (".", "->")
                   and k + 1 < len(rtexts) and rtexts[k + 1] == "(") or \
                    "lease_of" in rtexts or \
                    any(x.endswith("_guard") and
                        x not in NOT_RECLAIMER_GUARDS and
                        k + 1 < len(rtexts) and rtexts[k + 1] == "("
                        for k, x in enumerate(rtexts)):
                if not any(x in NOT_RECLAIMER_GUARDS for x in lt):
                    scopes[-1].guards[target] = {"local": True,
                                                 "line": lhs[-1].line}
                    return
            if any(("Guard" in x) and x not in NOT_RECLAIMER_GUARDS
                   for x in lt[:-1]):
                scopes[-1].guards[target] = {"local": True,
                                             "line": lhs[-1].line}
                return
        elif len(lhs) >= 1:
            # assignment target: member? global? local?
            target = lhs[-1].text if lhs[-1].kind == "id" else None
            head = lhs[0].text
            rec = enclosing_record()
            if head == "this" or (target and target.endswith("_")) or \
                    (rec is not None and len(lhs) == 1 and
                     target in {m.name for m in rec.members}):
                target_member = True
        if taint is None:
            if target is not None and target in func.taint and not target_member:
                del func.taint[target]  # overwritten with a clean value
            func.stale.pop(target, None)
            return
        if target_member:
            # Storing a guard-protected pointer into a field outlives both
            # a local guard AND a caller's guard parameter: flag either way
            # (suppressible where the store is re-validated).
            line = lhs[-1].line if lhs else rhs[0].line
            if not sf.suppressed(line, "A1") and \
                    not sf.justified(line, "escape"):
                findings.append(Finding(
                    "A1-guard-escape", sf.path, line, lhs[-1].col,
                    "%s.%s" % (func.name, target or "?"),
                    "pointer protected by guard '%s' stored to"
                    " field/global '%s'; the guard dies at scope exit"
                    " and the referent may be reclaimed"
                    % (taint, "".join(lt))))
            return
        if target is not None:
            func.taint[target] = taint
            func.stale.pop(target, None)

    def handle_return(expr, func, rtok):
        stale_scan(expr, func)
        a4_scan(expr, func)
        if not expr:
            return
        taint = taint_of_expr(expr, func)
        if taint is None or not guard_is_local(taint, func):
            return
        texts = [t.text for t in expr]
        ret = [t for t in func.ret_tokens
               if t not in ("static", "inline", "constexpr", "virtual",
                            "const", "noexcept", "[[nodiscard]]")]
        ret_s = "".join(ret)
        # bare tainted var (or deref chain of one)
        bare = len(texts) == 1 and texts[0] in func.taint
        chainy = bool(texts) and texts[0] in func.taint and \
            len(texts) > 1 and texts[1] in (".", "->")
        if bare:
            if ret_s in NON_POINTER_SCALARS:
                return  # converted, not escaped (e.g. `return p;` -> bool)
            line = expr[0].line
            if not sf.suppressed(line, "A1") and \
                    not sf.justified(line, "escape"):
                findings.append(Finding(
                    "A1-guard-escape", sf.path, line, expr[0].col,
                    "%s.return" % func.name,
                    "returning pointer '%s' protected by locally-scoped"
                    " guard '%s'; the guard dies at return and the referent"
                    " may be reclaimed" % (texts[0], taint)))
            return
        if chainy and len(texts) >= 3:
            if ret_s in NON_POINTER_SCALARS or any(
                    x in ("==", "!=", "&&", "||", "<", ">") for x in texts):
                return  # compared/converted, the pointer itself never leaves
            field = texts[2]
            if model.atomic_fields.get(field) == "ptr" or \
                    field_is_pointer(field, model, sf.path):
                line = expr[0].line
                if not sf.suppressed(line, "A1") and \
                        not sf.justified(line, "escape"):
                    findings.append(Finding(
                        "A1-guard-escape", sf.path, line, expr[0].col,
                        "%s.return" % func.name,
                        "returning pointer member '%s' of guard-protected"
                        " '%s' past guard '%s'" % (field, texts[0], taint)))

    def stale_scan(ts, func):
        for k, t in enumerate(ts):
            if t.kind == "id" and t.text in func.stale and \
                    k + 1 < len(ts) and ts[k + 1].text in ("->",):
                if t.text in func.reported_stale:
                    continue
                g, gline = func.stale[t.text]
                func.reported_stale.add(t.text)
                if not sf.suppressed(t.line, "A1") and \
                        not sf.justified(t.line, "escape"):
                    findings.append(Finding(
                        "A1-guard-escape", sf.path, t.line, t.col,
                        "%s.%s" % (func.name, t.text),
                        "'%s' was protected by guard '%s' (closed at line"
                        " %d) and is dereferenced after the guard's scope"
                        " ended" % (t.text, g, gline)))

    def a4_scan(ts, func):
        if func.is_ctor_dtor:
            return
        guards = live_guards()
        for k, t in enumerate(ts):
            if t.kind != "id" or t.text not in ATOMIC_METHODS:
                continue
            if k < 3 or ts[k - 1].text != ".":
                continue
            field = ts[k - 2].text
            if ts[k - 3].text != "->":
                continue
            if model.atomic_fields.get(field) != "ptr":
                continue
            if k - 4 < 0 or ts[k - 4].kind != "id" or \
                    ts[k - 4].text == "this":
                continue
            if guards:
                continue
            line = t.line
            if sf.suppressed(line, "A4") or sf.justified(line, "unguarded"):
                continue
            sym = "%s.%s->%s" % (func.name, ts[k - 4].text, field)
            if sym in stats["a4_seen"]:
                continue
            stats["a4_seen"].add(sym)
            findings.append(Finding(
                "A4-unguarded-traversal", sf.path, line, t.col, sym,
                "atomic link field '%s' dereferenced through '%s' with no"
                " live reclaimer guard in scope (no local guard, no guard"
                " parameter); traversals of reclaimable nodes must run"
                " under Domain::guard()/lease()"
                % (field, ts[k - 4].text)))

    # ---- main walk ----
    while i < n:
        t = toks[i]
        if t.kind == "pp":
            i += 1
            continue
        x = t.text
        if x == "{":
            if brace_role(stmt) == "init":
                j = skip_balanced(toks, i, "{", "}")
                stmt.extend(toks[i:j])
                i = j
                continue
            kind, rec, func = classify_brace(stmt)
            if kind == "block" and stmt:
                # for(...) / if(...) headers carry declarations
                process_statement(stmt)
            depth = len(scopes)
            scopes.append(Scope(kind, depth, record=rec, func=func))
            stmt = []
            i += 1
            continue
        if x == "}":
            if stmt:
                process_statement(stmt)
                stmt = []
            if scopes:
                dying = scopes.pop()
                func = innermost_func()
                if func is not None and dying.guards:
                    # vars tainted by a dying local guard, declared in an
                    # outer (still-open) scope, go stale
                    for g in dying.guards:
                        for var, tg in list(func.taint.items()):
                            if tg == g and var not in dying.vars:
                                func.stale[var] = (g, t.line)
                                del func.taint[var]
                    for var in dying.vars:
                        func.taint.pop(var, None)
                if dying.kind == "function":
                    pass
            i += 1
            continue
        if x == ";":
            process_statement(stmt)
            stmt = []
            i += 1
            continue
        stmt.append(t)
        i += 1
    return findings


def field_is_pointer(field, model, file):
    for recs in model.records_by_name.values():
        for rec in recs:
            if rec.file != file:
                continue
            for m in rec.members:
                if m.name == field and m.type_tokens and \
                        m.type_tokens[-1] == "*":
                    return True
    return False


def parse_function_header(header, sf, model, rec):
    """Parse `RET NAME(params) quals` from the tokens before a '{'.
    Returns FuncCtx or None."""
    # find the param list: last ')' at depth 0 scanning from the end
    texts = [t.text for t in header]
    if ")" not in texts:
        return None
    # Trailing qualifiers after the param list are fine; find the matching
    # '(' for the LAST ')' run.
    end = len(header) - 1
    while end >= 0 and header[end].text in ("const", "noexcept", "override",
                                            "final", "&", "&&", "mutable"):
        end -= 1
    # member-initializer lists `: x_(v)` — scan back past them
    if end < 0 or header[end].text != ")":
        # could be `try` / `-> T` forms; bail
        return None
    d = 0
    p_open = None
    for k in range(end, -1, -1):
        if header[k].text == ")":
            d += 1
        elif header[k].text == "(":
            d -= 1
            if d == 0:
                p_open = k
                break
    if p_open is None or p_open == 0:
        return None
    name_tok = header[p_open - 1]
    if name_tok.kind != "id":
        if name_tok.text == "~" or name_tok.text == "operator":
            pass
        return None
    name = name_tok.text
    is_dtor = p_open >= 2 and header[p_open - 2].text == "~"
    ret_tokens = [t.text for t in header[:max(0, p_open - 1)]]
    params = header[p_open + 1:end]
    guard_params = set()
    for param in split_top(params, ","):
        ptexts = [t.text for t in param]
        if not param:
            continue
        pname = param[-1].text if param[-1].kind == "id" else None
        if pname and any("Guard" in x and x not in NOT_RECLAIMER_GUARDS
                         for x in ptexts[:-1]):
            guard_params.add(pname)
    ctx = FuncCtx(name, ret_tokens, guard_params, rec, name_tok.line)
    ctx.is_ctor_dtor = is_dtor or (rec is not None and name == rec.name)
    # ctor with no record context: `X::X(...)` out-of-line
    if not ctx.is_ctor_dtor and p_open >= 3 and \
            header[p_open - 2].text == "::" and \
            header[p_open - 3].text == name:
        ctx.is_ctor_dtor = True
    return ctx


# ---------------------------------------------------------------------------
# Optional libclang refinement
# ---------------------------------------------------------------------------

def try_libclang():
    try:
        import clang.cindex as ci  # noqa
        ci.Index.create()
        return ci
    except Exception:
        return None


def libclang_refine(ci, cc_path, paths, model, stats):
    """Authoritative record layouts from libclang, replacing computed ones.
    Fully defensive: any failure leaves the internal results standing."""
    try:
        args = ["-std=c++20", "-xc++"]
        if cc_path is not None:
            try:
                db = json.loads(
                    pathlib.Path(cc_path, "compile_commands.json").read_text())
                for ent in db[:1]:
                    for a in ent.get("command", "").split():
                        if a.startswith(("-I", "-D", "-std=")):
                            args.append(a)
            except Exception:
                pass
        index = ci.Index.create()
        hdrs = [f.path for f in model.files if f.path.endswith(".hpp")]
        stub = "\n".join('#include "%s"' % h for h in hdrs)
        tu = index.parse("ccds_analyze_tu.cpp", args=args,
                         unsaved_files=[("ccds_analyze_tu.cpp", stub)])

        def walk(cur):
            try:
                if cur.kind in (ci.CursorKind.STRUCT_DECL,
                                ci.CursorKind.CLASS_DECL) and \
                        cur.is_definition():
                    f = cur.location.file
                    if f is None:
                        return
                    key = (str(f.name), cur.spelling)
                    rec = model.records.get(key)
                    if rec is not None:
                        lay = Layout(cur.type.get_size(),
                                     cur.type.get_align())
                        for fld in cur.type.get_fields():
                            off = cur.type.get_offset(fld.spelling)
                            if off >= 0 and "atomic" in \
                                    fld.type.get_canonical().spelling:
                                lay.atoms.append(
                                    (fld.spelling, fld.location.line,
                                     off // 8, fld.type.get_size()))
                        if lay.size > 0:
                            _layout_cache[(rec.file, rec.name,
                                           rec.line)] = lay
                            stats["a3_libclang_layouts"] += 1
                for ch in cur.get_children():
                    walk(ch)
            except Exception:
                pass

        walk(tu.cursor)
    except Exception as e:  # pragma: no cover - environment dependent
        print("ccds-analyze: libclang refinement unavailable (%s);"
              " internal layouts kept" % e, file=sys.stderr)


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(path):
    entries = []
    p = pathlib.Path(path)
    if not p.is_file():
        return entries
    for ln, raw in enumerate(p.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [x.strip() for x in line.split("|")]
        if len(parts) < 4:
            print("%s:%d: malformed baseline line (want 'check | file |"
                  " symbol | reason')" % (path, ln), file=sys.stderr)
            continue
        entries.append({"check": parts[0], "file": parts[1],
                        "symbol": parts[2], "reason": parts[3],
                        "used": False, "line": ln})
    return entries


def apply_baseline(findings, entries):
    out = []
    for f in findings:
        matched = None
        for e in entries:
            if f.check.startswith(e["check"]) and \
                    f.file.endswith(e["file"]) and f.symbol == e["symbol"]:
                matched = e
                break
        if matched is not None:
            matched["used"] = True
            f.baselined = matched["reason"]
        out.append(f)
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def iter_sources(paths):
    for p in paths:
        path = pathlib.Path(p)
        if path.is_file():
            yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(p)
        for f in sorted(path.rglob("*.hpp")) + sorted(path.rglob("*.cpp")):
            if "model" in f.parts:
                continue  # the model checker manipulates orders as data
            yield f


def analyze(paths, backend="auto", cc_path=None, extra_files=()):
    """Run all checks; returns (findings, audit, stats, model)."""
    _layout_cache.clear()
    model = Model()
    stats = {"files": 0, "a2_sites": 0, "a3_records_measured": 0,
             "a3_skipped_unknown_layout": 0, "a3_libclang_layouts": 0,
             "a4_seen": set()}
    files = list(iter_sources(paths)) + [pathlib.Path(f)
                                         for f in extra_files]
    for f in files:
        try:
            text = f.read_text(encoding="utf-8")
        except OSError as e:
            print("cannot read %s: %s" % (f, e), file=sys.stderr)
            return None
        sf = SourceFile(f, text)
        model.files.append(sf)
        stats["files"] += 1
    for sf in model.files:
        collect_structure(sf, model)
    findings = []
    audit = []
    # A2 first: it also feeds written_atomics for A3.
    for sf in model.files:
        findings.extend(check_a2(sf, model, audit, stats))
    ci = None
    if backend in ("auto", "libclang"):
        ci = try_libclang()
        if ci is None and backend == "libclang":
            print("ccds-analyze: --backend=libclang requested but"
                  " clang.cindex is not importable", file=sys.stderr)
            return None
        if ci is not None:
            libclang_refine(ci, cc_path, paths, model, stats)
    findings.extend(check_a3(model, stats))
    for sf in model.files:
        findings.extend(check_a1_a4(sf, model, stats))
    findings.sort(key=lambda f: (f.file, f.line, f.check))
    stats["a4_seen"] = len(stats["a4_seen"])
    stats["backend"] = "libclang+internal" if ci is not None else "internal"
    return findings, audit, stats, model


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def repo_root():
    return pathlib.Path(__file__).resolve().parent.parent


def collect_expectations(files):
    """EXPECT-<rule> markers -> {(check, file, line)} plus rule tags."""
    rule_to_check = {"A1": "A1-guard-escape", "A2R1": "A2-memory-order",
                     "A2R2": "A2-memory-order", "A3": "A3-false-sharing",
                     "A4": "A4-unguarded-traversal"}
    want = set()
    for f in files:
        # scan raw text lines, not the tokenized comment map: markers on
        # preprocessor-directive lines are swallowed into the pp token
        text = pathlib.Path(f).read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                want.add((rule_to_check[m.group(1)], str(f), lineno))
    return want


def layout_cross_check(model, fixture_files):
    """Compile static_asserts of our computed fixture layouts with the real
    compiler.  Returns (ok, detail)."""
    cxx = shutil.which("g++") or shutil.which("c++") or shutil.which("clang++")
    if cxx is None:
        return True, "skipped (no C++ compiler on PATH)"
    lines = ["#include <atomic>", "#include <cstdint>", "#include <cstddef>",
             "#include <cstdlib>"]
    checked = 0
    for f in fixture_files:
        if "false_sharing" not in str(f):
            continue
        lines.append(pathlib.Path(f).read_text())
    lines.append("using namespace fix;")  # fixtures live in namespace fix
    for recs in model.records_by_name.values():
        for rec in recs:
            if "false_sharing" not in rec.file:
                continue
            lay = record_layout(rec, model)
            if lay is None:
                continue
            lines.append("static_assert(sizeof(%s) == %d, \"size %s\");"
                         % (rec.name, lay.size, rec.name))
            lines.append("static_assert(alignof(%s) == %d, \"align %s\");"
                         % (rec.name, lay.align, rec.name))
            for (leaf, _, off, _) in lay.atoms:
                if "[" in leaf:
                    continue
                lines.append(
                    "static_assert(__builtin_offsetof(%s, %s) == %d,"
                    " \"offset %s::%s\");" % (rec.name, leaf, off,
                                              rec.name, leaf))
                checked += 1
    if checked == 0:
        return False, "no fixture layouts to cross-check"
    with tempfile.NamedTemporaryFile("w", suffix=".cpp", delete=False) as tf:
        tf.write("\n".join(lines) + "\n")
        tmp = tf.name
    try:
        r = subprocess.run(
            [cxx, "-std=c++20", "-fsyntax-only", "-Wno-invalid-offsetof",
             tmp], capture_output=True, text=True)
        if r.returncode != 0:
            return False, "compiler rejected computed layout:\n" + r.stderr
        return True, "%d offsets verified by %s" % (checked,
                                                    pathlib.Path(cxx).name)
    finally:
        pathlib.Path(tmp).unlink(missing_ok=True)


def self_test():
    root = repo_root()
    fixdir = root / "tools" / "analyze" / "fixtures"
    if not fixdir.is_dir():
        print("self-test: missing %s" % fixdir, file=sys.stderr)
        return 2
    files = sorted(fixdir.glob("*.hpp")) + sorted(fixdir.glob("*.cpp"))
    test_fixture = root / "tests" / "test_analyzer_fixture.cpp"
    if test_fixture.is_file():
        files.append(test_fixture)
    want = collect_expectations(files)
    result = analyze([], backend="internal", extra_files=files)
    if result is None:
        return 2
    findings, audit, stats, model = result
    got = {f.key() for f in findings}
    failures = 0
    for miss in sorted(want - got):
        print("self-test: MISSED seeded bug %s at %s:%d"
              % miss, file=sys.stderr)
        failures += 1
    for extra in sorted(got - want):
        print("self-test: FALSE POSITIVE %s at %s:%d"
              % extra, file=sys.stderr)
        for f in findings:
            if f.key() == extra:
                print("    " + f.message, file=sys.stderr)
        failures += 1
    # The relaxation audit must bind justifications on the clean fixture.
    bound = [a for a in audit if a["justification"] is not None
             and "ok_memory_order" in a["file"]]
    if not bound:
        print("self-test: audit bound no justification comments",
              file=sys.stderr)
        failures += 1
    ok, detail = layout_cross_check(model, files)
    print("self-test: layout cross-check: %s" % detail)
    if not ok:
        failures += 1
    # Tokenizer unit checks.
    toks, comments = tokenize(
        'auto s = "x.load(); /* not code */";\n'
        "// relaxed: justification\n"
        'R"(y.store(1))";\n'
        "a->b . load ( std::memory_order_relaxed ) ;\n")
    texts = [t.text for t in toks]
    if "load" not in texts or texts.count("load") != 1:
        print("self-test: tokenizer leaked string contents", file=sys.stderr)
        failures += 1
    if "relaxed: justification" not in comments.get(2, ""):
        print("self-test: comment capture broken", file=sys.stderr)
        failures += 1
    if failures:
        print("self-test: %d failure(s)" % failures, file=sys.stderr)
        return 2
    print("ccds-analyze: self-test ok (%d seeded findings matched exactly,"
          " %d files, backend=%s)" % (len(want), stats["files"],
                                      stats["backend"]))
    return 0


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------

def main(argv):
    ap = argparse.ArgumentParser(
        description="ccds semantic concurrency analyzer (A1 guard-escape,"
                    " A2 memory-order audit, A3 layout-true false sharing,"
                    " A4 unguarded traversal)")
    ap.add_argument("paths", nargs="*", help="files/dirs (default: src)")
    ap.add_argument("-p", "--compile-commands", metavar="DIR", default=None,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--backend", choices=("auto", "internal", "libclang"),
                    default="auto")
    ap.add_argument("--json", metavar="FILE", default=None,
                    help="write findings+audit JSON ('-' for stdout)")
    ap.add_argument("--baseline", metavar="FILE",
                    default=str(repo_root() / "tools" / "analyze" /
                                "baseline.txt"))
    ap.add_argument("--no-baseline", action="store_true")
    ap.add_argument("--stats", action="store_true")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    paths = args.paths or [str(repo_root() / "src")]
    try:
        result = analyze(paths, backend=args.backend,
                         cc_path=args.compile_commands)
    except FileNotFoundError as e:
        print("no such file or directory: %s" % e, file=sys.stderr)
        return 2
    if result is None:
        return 2
    findings, audit, stats, _ = result
    entries = [] if args.no_baseline else load_baseline(args.baseline)
    findings = apply_baseline(findings, entries)
    active = [f for f in findings if f.baselined is None]

    if args.json:
        doc = {
            "version": 1,
            "backend": stats["backend"],
            "findings": [f.as_json() for f in findings],
            "relaxation_audit": audit,
            "stats": {k: v for k, v in stats.items() if k != "a4_seen"},
        }
        text = json.dumps(doc, indent=2)
        if args.json == "-":
            print(text)
        else:
            pathlib.Path(args.json).write_text(text + "\n")

    for f in active:
        print(f.text())
    stale = [e for e in entries if not e["used"]]
    for e in stale:
        print("%s:%d: stale baseline entry (%s | %s | %s) — fixed? remove it"
              % (args.baseline, e["line"], e["check"], e["file"],
                 e["symbol"]), file=sys.stderr)
    if args.stats:
        print("analyzed %d files: %d atomic call sites, %d records measured,"
              " %d skipped (template-dependent layout), backend=%s"
              % (stats["files"], stats["a2_sites"],
                 stats["a3_records_measured"],
                 stats["a3_skipped_unknown_layout"], stats["backend"]),
              file=sys.stderr)
    baselined = len(findings) - len(active)
    if baselined:
        print("%d finding(s) suppressed by baseline" % baselined,
              file=sys.stderr)
    if active:
        print("%d finding(s)" % len(active))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Gate BENCH_combining.json on the E16/E20 combining-engine contract.

Two layers, because CI smoke runs (min_time ~1ms) produce real rows but
meaningless timings:

  structural (always):
    - every enrolled engine (ENGINES below mirrors CCDS_COMBINER_ENGINES in
      src/sync/engines.hpp — a new engine must be added to BOTH or this
      gate fails the next artifact) has rows in every front family:
      BM_QueueMix<E*Queue>, BM_QueueBatch8<E*Queue>, BM_StackMix<E*Stack>,
      BM_CounterAdd<E*Counter>, and the E20 preemption sweep
      BM_CounterAddPreempt<E*Counter>, each at T in {1, 8};
    - the lock-free and lock baselines are present (MS queue, Treiber,
      plain atomic word, TTAS-lock queue/stack/counter);
    - the context block proves the artifact is honest: ccds_build_type is
      "release" and the oversubscription facts are recorded;
    - schema: EVERY row carries the per-thread fairness fields from
      bench_util.hpp (thread_ops_per_sec_min/max, fairness,
      per_thread_ops_per_sec) — dropping ThreadOps from a loop must fail
      here, not in the next perf-artifact run; combining-front rows carry
      the combining_front flag, baselines must NOT; preempt rows carry
      preempt_injected.

  performance (--perf, for real artifacts):
    - the wait-free claim, E20 — throughput retention: PSim's
      preempted/clean throughput ratio at T=8 is at least RETENTION_EDGE
      x the best blocking engine's ratio.  A stall in PSim delays only
      the crossing thread (helpers complete its announced op); a stall
      in a blocking engine convoys everyone behind the combiner, so
      retention is where wait-freedom shows up in wall-clock even on
      one CPU — and the ratio is stable run to run (~2x edge) because
      both sides of it come from the same process.
    - fairness is PRINTED but never gated: at T=8 on the 1-CPU
      measurement host the per-thread min/max spread is scheduler-
      quantum noise (the same clean PSim row has measured 0.39 and 0.01
      across runs).  The starvation half of the wait-free claim is
      carried deterministically by the unit test
      test_psim.cpp/ProgressWitnessWithThreadParkedMidCombine instead.

Floors are pinned from this repo's 1-CPU measurement host (see the E20
section of EXPERIMENTS.md for measured values and cushions).
"""
import json
import sys

# Mirrors CCDS_COMBINER_ENGINES in src/sync/engines.hpp.
ENGINES = ("FlatCombiner", "CcSynch", "HSynch", "PSim")

THREADS = (1, 8)

RETENTION_EDGE = 1.2

FAIRNESS_SCHEMA = ("thread_ops_per_sec_min", "thread_ops_per_sec_max",
                   "fairness", "per_thread_ops_per_sec")

BASELINES = ("BM_QueueMix<MsQueueEbr>", "BM_QueueMix<LockQueueTtas>",
             "BM_StackMix<TreiberEbr>", "BM_StackMix<LockStackTtas>",
             "BM_CounterAdd<AtomicCounter>",
             "BM_CounterAdd<LockCounter<TtasLock>>")


def row_name(family, engine, front, threads):
    return "BM_%s<%s%s>/real_time/threads:%d" % (family, engine, front,
                                                 threads)


def engine_rows(engine, threads):
    return [row_name("QueueMix", engine, "Queue", threads),
            row_name("QueueBatch8", engine, "Queue", threads),
            row_name("StackMix", engine, "Stack", threads),
            row_name("CounterAdd", engine, "Counter", threads),
            row_name("CounterAddPreempt", engine, "Counter", threads)]


def main():
    perf = "--perf" in sys.argv
    path = next((a for a in sys.argv[1:] if not a.startswith("--")),
                "BENCH_combining.json")
    data = json.load(open(path))
    errors = []

    ctx = data.get("context", {})
    if ctx.get("ccds_build_type") != "release":
        errors.append("context.ccds_build_type=%r, need 'release'"
                      % ctx.get("ccds_build_type"))
    for key in ("hardware_concurrency", "requested_max_threads",
                "oversubscribed"):
        if key not in ctx:
            errors.append("context missing %r (bench_util.hpp stamps it)" % key)

    rows = {b["name"]: b for b in data.get("benchmarks", [])
            if b.get("run_type") != "aggregate"}

    need = [n for e in ENGINES for t in THREADS for n in engine_rows(e, t)]
    need += ["%s/real_time/threads:%d" % (b, t)
             for b in BASELINES for t in THREADS]
    missing = [n for n in need if n not in rows]
    if missing:
        errors.append("missing rows: %s" % ", ".join(missing))

    # Fairness schema on EVERY row in the artifact, not just required ones.
    bad = [n for n, b in rows.items()
           if any(f not in b for f in FAIRNESS_SCHEMA)]
    if bad:
        errors.append("rows missing fairness fields: %s"
                      % ", ".join(sorted(bad)[:5]))

    if not missing:
        for e in ENGINES:
            for t in THREADS:
                for n in engine_rows(e, t):
                    if rows[n].get("combining_front") != 1:
                        errors.append("%s: missing combining_front flag" % n)
                pre = row_name("CounterAddPreempt", e, "Counter", t)
                if rows[pre].get("preempt_injected", 0) <= 0:
                    errors.append("%s: missing preempt_injected flag" % pre)
        for b in BASELINES:
            for t in THREADS:
                n = "%s/real_time/threads:%d" % (b, t)
                if "combining_front" in rows[n]:
                    errors.append("%s: baseline carries combining_front" % n)

    if perf and not missing:
        def tput(name):
            return rows[name].get("items_per_second", 0.0)

        pre = row_name("CounterAddPreempt", "PSim", "Counter", 8)
        clean = row_name("CounterAdd", "PSim", "Counter", 8)
        print("E20 PSim fairness T=8 (informational, not gated): "
              "clean %.3f, preempted %.3f"
              % (rows[clean].get("fairness", 0.0),
                 rows[pre].get("fairness", 0.0)))

        def retention(engine):
            clean = tput(row_name("CounterAdd", engine, "Counter", 8))
            stalled = tput(row_name("CounterAddPreempt", engine, "Counter", 8))
            return stalled / max(clean, 1e-9)

        psim = retention("PSim")
        blocking = {e: retention(e) for e in ENGINES if e != "PSim"}
        best = max(blocking.values())
        print("E20 throughput retention under stalls: PSim %.3f, %s"
              % (psim, ", ".join("%s %.3f" % kv
                                 for kv in sorted(blocking.items()))))
        if psim < RETENTION_EDGE * best:
            errors.append("PSim retention %.3f < %.1fx best blocking "
                          "retention %.3f" % (psim, RETENTION_EDGE, best))

    if errors:
        sys.exit("check_combining: FAIL\n  " + "\n  ".join(errors))
    print("check_combining: %d engine/baseline rows OK%s"
          % (len(need), " (+perf gates)" if perf else ""))


if __name__ == "__main__":
    main()

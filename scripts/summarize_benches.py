#!/usr/bin/env python3
"""Summarize benchmark results into compact per-experiment tables.

Usage: scripts/summarize_benches.py [BENCH_*.json | bench_output.txt ...]

With no arguments, reads every BENCH_*.json in the repository root (the
artifacts scripts/run_benchmarks.sh writes).  Each table is items/second
with one row per (benchmark, args) and one column per thread count — the
shape EXPERIMENTS.md quotes.  Legacy google-benchmark console dumps
(*.txt) are still parsed for old archives.
"""
import glob
import json
import os
import re
import sys
from collections import defaultdict


def parse_json(path):
    """One run_benchmarks.sh artifact -> {(name, args) -> {threads: Mops}}."""
    rows = defaultdict(dict)
    with open(path, errors="replace") as f:
        doc = json.load(f)
    benches = doc.get("benchmarks", [])
    # Prefer per-run rows; suites registered with ReportAggregatesOnly
    # (e.g. bench_ycsb) emit nothing but aggregates, so fall back to
    # their medians rather than printing an empty table.
    runs = [b for b in benches if b.get("run_type") != "aggregate"]
    if not runs:
        runs = [b for b in benches if b.get("aggregate_name") == "median"]
    for b in runs:
        full = b.get("name", "")
        ips = b.get("items_per_second")
        if ips is None:
            continue
        threads = int(b.get("threads", 1))
        parts = full.split("/")
        name = parts[0]
        args = "/".join(p for p in parts[1:]
                        if p != "real_time" and not p.startswith("threads:")
                        and not p.startswith("repeats:")
                        and p != "manual_time")
        rows[(name, args)][threads] = ips / 1e6
    return rows


def parse_console(path):
    """Legacy text parser: sections[binary] -> {(name, args) -> {t: Mops}}."""
    sections = defaultdict(lambda: defaultdict(dict))
    binary = None
    line_re = re.compile(
        r"^(.+?)(?:/real_time)?(?:/threads:(\d+))?\s{2,}.*items_per_second=([\d.]+)([kMG]?)/s"
    )
    for line in open(path, errors="replace"):
        m = re.match(r"^===== (.+?) =====", line)
        if m:
            binary = m.group(1)
            continue
        m = line_re.match(line.strip())
        if not m or binary is None:
            continue
        full, threads, value, suffix = m.groups()
        threads = int(threads) if threads else 1
        v = float(value) * {"": 1e-6, "k": 1e-3, "M": 1.0, "G": 1e3}[suffix]
        parts = full.split("/")
        name = parts[0]
        args = "/".join(p for p in parts[1:] if p != "real_time" and
                        not p.startswith("threads:"))
        sections[binary][(name, args)][threads] = v
    return sections


def parse_ycsb_work(path):
    """BENCH_ycsb.json -> {(tier, mix, alpha) -> {threads: work_per_op}}.

    E19's architectural claim rides on the scheduler-noise-free work
    counter, not items/sec, so the ycsb artifact gets a second table
    (medians only; see scripts/check_ycsb.py for the gated floors).
    """
    rows = defaultdict(dict)
    with open(path, errors="replace") as f:
        doc = json.load(f)
    for b in doc.get("benchmarks", []):
        if b.get("aggregate_name") != "median" or "work_per_op" not in b:
            continue
        parts = b["name"].split("/")
        tier = parts[0].replace("BM_Ycsb", "")
        mix, alpha = int(parts[1]), int(parts[2]) / 10.0
        rows[(tier, "r%d%%/a%.1f" % (mix, alpha))][int(b.get("threads", 1))] = \
            b["work_per_op"]
    return rows


# Combining-engine rows carry the engine in their template argument
# (sync/engines.hpp aliases: FlatCombinerQueue, PSimCounter, ...); surface
# it as its own column so per-engine comparisons read straight down.
ENGINE_RE = re.compile(r"<(FlatCombiner|CcSynch|HSynch|PSim)")


def engine_of(name):
    m = ENGINE_RE.search(name)
    return m.group(1) if m else "-"


def print_table(title, rows, units="items/sec, M"):
    threads = sorted({t for r in rows.values() for t in r})
    print(f"\n== {title} ({units})")
    print(f"  {'benchmark':58s}{'engine':>13s}"
          + "".join(f"{f'T={t}':>10s}" for t in threads))
    for (name, args), per_t in rows.items():
        label = name + (f" [{args}]" if args else "")
        cells = "".join(
            f"{per_t[t]:>10.2f}" if t in per_t else f"{'-':>10s}"
            for t in threads)
        print(f"  {label:58.58s}{engine_of(name):>13s}{cells}")


def main():
    paths = sys.argv[1:]
    if not paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
        if not paths:
            sys.exit("no BENCH_*.json found; run scripts/run_benchmarks.sh")
    for path in paths:
        if path.endswith(".json"):
            print_table(os.path.basename(path), parse_json(path))
            if "ycsb" in os.path.basename(path):
                print_table(os.path.basename(path) + " work counters",
                            parse_ycsb_work(path),
                            units="probes+cas_fails per op, median")
        else:
            for binary, rows in parse_console(path).items():
                print_table(binary, rows)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # piping into head is fine
        pass

#!/usr/bin/env python3
"""Summarize bench_output.txt into compact per-experiment tables.

Usage: scripts/summarize_benches.py [bench_output.txt]

Parses google-benchmark console output and prints, per bench binary, a
table of items/second with one row per (benchmark, args) and one column
per thread count — the shape EXPERIMENTS.md quotes.
"""
import re
import sys
from collections import defaultdict


def parse(path):
    # sections[binary] -> {(name, args) -> {threads: mops}}
    sections = defaultdict(lambda: defaultdict(dict))
    binary = None
    # Benchmark names may contain ", " inside template argument lists, so
    # match the name lazily up to the optional /real_time//threads suffix
    # followed by the whitespace-separated time column.
    line_re = re.compile(
        r"^(.+?)(?:/real_time)?(?:/threads:(\d+))?\s{2,}.*items_per_second=([\d.]+)([kMG]?)/s"
    )
    for line in open(path, errors="replace"):
        m = re.match(r"^===== (.+?) =====", line)
        if m:
            binary = m.group(1)
            continue
        m = line_re.match(line.strip())
        if not m or binary is None:
            continue
        full, threads, value, suffix = m.groups()
        threads = int(threads) if threads else 1
        v = float(value) * {"": 1e-6, "k": 1e-3, "M": 1.0, "G": 1e3}[suffix]
        # Split trailing /arg components off the benchmark name.
        parts = full.split("/")
        name = parts[0]
        args = "/".join(p for p in parts[1:] if p != "real_time" and
                        not p.startswith("threads:"))
        sections[binary][(name, args)][threads] = v
    return sections


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    sections = parse(path)
    for binary, rows in sections.items():
        threads = sorted({t for r in rows.values() for t in r})
        print(f"\n== {binary} (items/sec, M)")
        header = f"  {'benchmark':58s}" + "".join(f"{f'T={t}':>10s}" for t in threads)
        print(header)
        for (name, args), per_t in rows.items():
            label = name + (f" [{args}]" if args else "")
            cells = "".join(
                f"{per_t.get(t, float('nan')):>10.2f}" if t in per_t else f"{'-':>10s}"
                for t in threads)
            print(f"  {label:58.58s}{cells}")


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # piping into head is fine
        pass

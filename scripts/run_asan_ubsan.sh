#!/bin/bash
# Build and run the whole test suite under AddressSanitizer + UBSan.
#
# ASan and UBSan compose in one build (unlike TSan, which is exclusive);
# -fno-sanitize-recover=all in the CMake flags makes any UB finding abort,
# so a nonzero exit covers both sanitizers.  The grep is a belt-and-braces
# check for reports that did not change the exit status (e.g. LeakSanitizer
# in modes where exitcode is remapped).
set -eu
root="$(cd "$(dirname "$0")/.." && pwd)"
cmake -B "$root/build-asan" -G Ninja -DCCDS_SANITIZE_ADDRESS=ON \
      -DCCDS_SANITIZE_UNDEFINED=ON \
      -DCCDS_BUILD_BENCHMARKS=OFF -DCCDS_BUILD_EXAMPLES=OFF "$root"
cmake --build "$root/build-asan"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT
fail=0
for t in "$root"/build-asan/tests/test_* "$root"/build-asan/tests/model/test_*; do
  [ -x "$t" ] || continue
  echo "== $(basename "$t")"
  rc=0
  "$t" >"$log" 2>&1 || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "   FAILED (exit $rc)"
    tail -n 50 "$log"
    fail=1
  elif grep -qE "ERROR: (Address|LeakSanitizer)|runtime error:" "$log"; then
    echo "   FAILED (sanitizer report)"
    grep -A 20 -E "ERROR: (Address|LeakSanitizer)|runtime error:" "$log" | head -n 60
    fail=1
  else
    echo "   clean"
  fi
done
exit $fail

#!/usr/bin/env python3
"""Memory-order lint for ccds.

Every relaxation away from seq_cst is a claim about the algorithm, and claims
need to be written down.  This lint enforces the house rules on src/:

  R1 naked-relaxed
      `memory_order_relaxed` must have a justification comment containing the
      word "relaxed" on the same line or within the preceding few lines.
      Canonical form:  // relaxed: <why this cannot be reordered into harm>

  R2 implicit-seq-cst
      Atomic operations must spell out their memory order.  A bare `.load()`
      or `.fetch_add(1)` silently defaults to seq_cst, which on the hot path
      is either a hidden fence (a perf bug) or a load-bearing fence that
      looks accidental (a readability bug).  Intentional seq_cst defaults are
      suppressed with a comment containing "seq_cst".

  R3 unpadded-shared-atomic
      A top-level-class atomic member is shared state and sits on a cache
      line with its neighbours unless padded: it must carry
      CCDS_CACHELINE_ALIGNED, be wrapped in Padded<>, or carry a comment
      containing "unpadded" explaining why false sharing is acceptable.
      Members of nested structs (nodes, slots) are exempt: their placement
      is the enclosing container's concern.

  R4 fenced-publish-validate
      A seq_cst store followed closely by a seq_cst load is the Dekker
      publish/validate shape (hazard-pointer protect, epoch pin).  The
      library's house protocol pays that store-load fence ONCE per
      reclamation batch via core/asymmetric_fence.hpp, so a fully-fenced
      pair on a read path is either a perf bug or a deliberate baseline —
      the latter is suppressed with a comment containing "asymmetric"
      (canonical form: // asymmetric: OFF — <why the fenced protocol>).

  R5 unpadded-combining-node
      A combining/queue-lock request node — a struct with both an atomic
      link pointer and an atomic spin flag (wait/locked/completed/ready/
      done) — is spun on by its owner and written remotely by a combiner or
      predecessor.  Two such nodes on one cache line turn every remote
      hand-off into false sharing on the hot spin.  The struct must be
      CCDS_CACHELINE_ALIGNED, or the file must hold instances in Padded<>
      (the MCS-lock shape), or the struct carries a comment containing
      "unpadded" explaining why sharing is acceptable.

  R6 concrete-domain-coupling
      Structure headers are templates over the ccds::reclaimer concept; a
      concrete domain type (LeakyDomain, HazardDomain, EpochDomain,
      QsbrDomain, ...) may appear in code only in template DEFAULT-ARGUMENT
      position (`reclaimer Domain = HazardDomain`).  Anywhere else it
      hard-couples the structure to one policy — the bug that once made
      StealingPool epoch-only regardless of its parameter.  String literals
      (static_assert messages) and comments are ignored; deliberate
      couplings are suppressed with a comment containing "concrete-domain".
      src/reclaim/ is exempt: that is where the concrete domains live.

src/model/ is exempt: the checker manipulates memory orders as data.

Usage:  lint_memory_orders.py [--self-test] [paths...]   (default path: src)
Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

import argparse
import json
import pathlib
import re
import sys

# Lines of leading context in which a justification comment is accepted.
COMMENT_WINDOW = 6

# R4: how many lines after a seq_cst store a seq_cst load still reads as the
# validating half of a publish/validate pair.
PUBLISH_VALIDATE_WINDOW = 4

ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_strong|compare_exchange_weak)\s*\("
)

# An atomic data member: optional qualifiers, Atomic<...> or std::atomic<...>,
# then an identifier (a `*` after the template args means pointer-to-atomic,
# which is not itself shared state).
ATOMIC_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:ccds::)?(?:std::)?[Aa]tomic\s*<[^;=]*>\s*"
    r"(?P<name>\w+)\s*(?:\[[^\]]*\])?\s*(?:\{[^;]*\}|=[^;]*)?;"
)

CLASS_OPEN_RE = re.compile(r"\b(?:class|struct)\s+\w+[^;{]*\{")

# R5: a struct/class definition opening, with the optional alignment macro
# between the keyword and the name (the house spelling).
STRUCT_DEF_RE = re.compile(
    r"\b(?:class|struct)\s+(?:CCDS_CACHELINE_ALIGNED\s+)?(?P<name>\w+)[^;{]*\{"
)

# R5: member names that read as a locally-spun flag.
SPIN_FLAG_NAMES = re.compile(r"^(wait|locked|completed|ready|done)\w*$")

# R6: a concrete reclamation domain type.  Requires at least one character
# before "Domain", so the bare template-parameter name `Domain` never matches.
CONCRETE_DOMAIN_RE = re.compile(r"\b[A-Z]\w*Domain\b")

# R6: a double-quoted string literal (static_assert messages name domains).
STRING_LITERAL_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def split_comment(line, in_block):
    """Return (code, comment, in_block) for one source line.

    Handles // and a line-granular approximation of block comments, which is
    all the ccds tree uses.
    """
    code = []
    comment = []
    i = 0
    n = len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                comment.append(line[i:])
                i = n
            else:
                comment.append(line[i:end])
                i = end + 2
                in_block = False
        elif line.startswith("//", i):
            comment.append(line[i + 2 :])
            i = n
        elif line.startswith("/*", i):
            in_block = True
            i += 2
        else:
            code.append(line[i])
            i += 1
    return "".join(code), "".join(comment), in_block


class FileCheck:
    def __init__(self, name, text):
        self.name = name
        self.violations = []
        self.lines = text.splitlines()
        self.code = []
        self.comment = []
        in_block = False
        for line in self.lines:
            c, m, in_block = split_comment(line, in_block)
            self.code.append(c)
            self.comment.append(m)

    def justified(self, idx, word):
        """A comment containing `word` on this line or in the window above."""
        lo = max(0, idx - COMMENT_WINDOW)
        return any(word in self.comment[i].lower() for i in range(lo, idx + 1))

    def report(self, idx, rule, msg):
        self.violations.append(
            "%s:%d: [%s] %s" % (self.name, idx + 1, rule, msg)
        )

    def check_naked_relaxed(self):
        for i, code in enumerate(self.code):
            if "memory_order_relaxed" not in code:
                continue
            if not self.justified(i, "relaxed"):
                self.report(
                    i,
                    "naked-relaxed",
                    "memory_order_relaxed without a '// relaxed: ...' "
                    "justification comment nearby",
                )

    def check_implicit_seq_cst(self):
        for i, code in enumerate(self.code):
            for m in ATOMIC_CALL_RE.finditer(code):
                args, complete = self.argument_list(i, m.end() - 1)
                if not complete:
                    continue  # unbalanced within lookahead: skip, no guess
                if "memory_order" in args:
                    continue
                # Heuristic: require an atomic-ish receiver to cut down on
                # unrelated .load()/.store() methods (none exist in src/
                # today, but keep the lint honest about what it matches).
                if not self.justified(i, "seq_cst"):
                    self.report(
                        i,
                        "implicit-seq-cst",
                        ".%s() call without an explicit memory order "
                        "(defaults to seq_cst; add the order or a "
                        "'// seq_cst: ...' comment)" % m.group(1),
                    )

    def argument_list(self, idx, open_paren_col):
        """Text of a balanced argument list starting at an open paren,
        looking ahead up to 8 lines.  Returns (text, balanced)."""
        depth = 0
        out = []
        for j in range(idx, min(idx + 8, len(self.code))):
            seg = self.code[j][open_paren_col:] if j == idx else self.code[j]
            for ch in seg:
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        return "".join(out), True
                out.append(ch)
        return "".join(out), False

    def check_unpadded_members(self):
        # Track nesting depth of class/struct bodies; only members at depth 1
        # (a top-level class of the header) are checked.
        class_depth = 0
        brace_depth = 0
        # Stack of brace depths at which a class body opened.
        class_at = []
        for i, code in enumerate(self.code):
            opens_class = bool(CLASS_OPEN_RE.search(code))
            m = ATOMIC_MEMBER_RE.match(code)
            if (
                m
                and class_depth == 1
                and class_at
                and brace_depth == class_at[-1] + 1  # class scope, not a body
                and "CCDS_CACHELINE_ALIGNED" not in code
                and "Padded<" not in code
                and not self.justified(i, "unpadded")
            ):
                self.report(
                    i,
                    "unpadded-shared-atomic",
                    "atomic member '%s' in a top-level class without "
                    "CCDS_CACHELINE_ALIGNED / Padded<> / '// unpadded: ...' "
                    "comment" % m.group("name"),
                )
            for ch in code:
                if ch == "{":
                    if opens_class:
                        class_at.append(brace_depth)
                        class_depth += 1
                        opens_class = False  # first brace is the class body
                    brace_depth += 1
                elif ch == "}":
                    brace_depth -= 1
                    if class_at and class_at[-1] == brace_depth:
                        class_at.pop()
                        class_depth -= 1

    def check_fenced_publish_validate(self):
        # A seq_cst .store whose argument list names memory_order_seq_cst,
        # followed within PUBLISH_VALIDATE_WINDOW lines by a seq_cst .load:
        # the classic fully-fenced Dekker publish/validate.  Suppressed by a
        # comment containing "asymmetric" near the store (the deliberate
        # baseline branches carry '// asymmetric: OFF').
        for i, code in enumerate(self.code):
            store = re.search(r"(?:\.|->)\s*store\s*\(", code)
            if not store:
                continue
            args, complete = self.argument_list(i, store.end() - 1)
            if not complete or "memory_order_seq_cst" not in args:
                continue
            hi = min(len(self.code), i + 1 + PUBLISH_VALIDATE_WINDOW)
            for j in range(i, hi):
                seg = self.code[j][store.end():] if j == i else self.code[j]
                load = re.search(r"(?:\.|->)\s*load\s*\(", seg)
                if not load:
                    continue
                col = load.end() - 1 + (store.end() if j == i else 0)
                largs, lcomplete = self.argument_list(j, col)
                if not lcomplete or "memory_order_seq_cst" not in largs:
                    continue
                if not self.justified(i, "asymmetric"):
                    self.report(
                        i,
                        "fenced-publish-validate",
                        "seq_cst store followed by seq_cst load (Dekker "
                        "publish/validate): use the asymmetric-fence "
                        "protocol (core/asymmetric_fence.hpp) or suppress "
                        "with a '// asymmetric: ...' comment",
                    )
                break

    def check_unpadded_combining_nodes(self):
        # Find each struct/class definition, walk its body by brace count,
        # and record which atomic members it declares.  A node with both an
        # atomic link pointer and an atomic spin flag is a combining/queue-
        # lock request node and must own its cache line (see R5 docstring).
        all_code = "\n".join(self.code)
        for i, code in enumerate(self.code):
            m = STRUCT_DEF_RE.search(code)
            if not m:
                continue
            name = m.group("name")
            # Walk from the opening brace to its match.
            depth = 0
            has_link = False
            has_flag = False
            closed = False
            for j in range(i, len(self.code)):
                seg = self.code[j][m.end() - 1 :] if j == i else self.code[j]
                mem = ATOMIC_MEMBER_RE.match(self.code[j]) if depth == 1 else None
                if mem:
                    tmpl = self.code[j][: self.code[j].rfind(mem.group("name"))]
                    if "*" in tmpl:
                        has_link = True
                    elif SPIN_FLAG_NAMES.match(mem.group("name").rstrip("_")):
                        has_flag = True
                for ch in seg:
                    if ch == "{":
                        depth += 1
                    elif ch == "}":
                        depth -= 1
                        if depth == 0:
                            closed = True
                            break
                if closed:
                    break
            if not (has_link and has_flag):
                continue
            if "CCDS_CACHELINE_ALIGNED" in code:
                continue
            if "Padded<%s>" % name in all_code:
                continue  # instances padded at the container (MCS-lock shape)
            if self.justified(i, "unpadded"):
                continue
            self.report(
                i,
                "unpadded-combining-node",
                "request node '%s' has an atomic link and an atomic spin "
                "flag but is not CCDS_CACHELINE_ALIGNED, held in Padded<>, "
                "or excused with a '// unpadded: ...' comment" % name,
            )

    def check_concrete_domain_coupling(self):
        # Structure headers must stay generic over ccds::reclaimer.  A
        # concrete domain name in code is allowed only in default-argument
        # position (`reclaimer Domain = HazardDomain`); string literals are
        # dropped first so static_assert messages ("use WideHazardDomain")
        # don't trip the rule.  src/reclaim/ defines the domains and is
        # exempt wholesale.
        if "reclaim" in pathlib.PurePath(self.name).parts:
            return
        for i, code in enumerate(self.code):
            stripped = STRING_LITERAL_RE.sub('""', code)
            for m in CONCRETE_DOMAIN_RE.finditer(stripped):
                prefix = stripped[: m.start()]
                if not prefix.strip():
                    # Wrapped default arg: the `=` sits at the end of the
                    # nearest preceding non-blank code line.
                    for j in range(i - 1, max(-1, i - 3), -1):
                        prev = STRING_LITERAL_RE.sub('""', self.code[j])
                        if prev.strip():
                            prefix = prev
                            break
                if re.search(r"=\s*$", prefix):
                    continue  # default template argument
                if self.justified(i, "concrete-domain"):
                    continue
                self.report(
                    i,
                    "concrete-domain-coupling",
                    "concrete reclamation domain '%s' outside default-"
                    "argument position couples this header to one policy; "
                    "take a `ccds::reclaimer` template parameter or "
                    "suppress with a '// concrete-domain: ...' comment"
                    % m.group(0),
                )

    def run(self):
        self.check_naked_relaxed()
        self.check_implicit_seq_cst()
        self.check_unpadded_members()
        self.check_fenced_publish_validate()
        self.check_unpadded_combining_nodes()
        self.check_concrete_domain_coupling()
        return self.violations


def check_text(name, text):
    return FileCheck(name, text).run()


def iter_sources(paths):
    for p in paths:
        path = pathlib.Path(p)
        if path.is_file():
            yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(p)
        for f in sorted(path.rglob("*.hpp")) + sorted(path.rglob("*.cpp")):
            if "model" in f.parts:
                continue  # the checker handles memory orders as data
            yield f


def self_test():
    bad_relaxed = "x.store(1, std::memory_order_relaxed);\n"
    ok_relaxed = (
        "// relaxed: counter is monotonic, read only after join\n"
        "x.store(1, std::memory_order_relaxed);\n"
    )
    bad_implicit = "auto v = x.load();\n"
    ok_implicit = "auto v = x.load(std::memory_order_acquire);\n"
    ok_suppressed = (
        "// seq_cst: cold path, default order keeps the proof simple\n"
        "auto v = x.load();\n"
    )
    bad_member = "class C {\n  Atomic<int> c_{0};\n};\n"
    ok_member = "class C {\n  CCDS_CACHELINE_ALIGNED Atomic<int> c_{0};\n};\n"
    ok_nested = (
        "class C {\n  struct Node {\n    Atomic<Node*> next{nullptr};\n"
        "  };\n};\n"
    )
    ok_ptr_member = "class C {\n  Atomic<int>* p_ = nullptr;\n};\n"
    bad_publish_validate = (
        "hp.store(p, std::memory_order_seq_cst);\n"
        "auto q = src.load(std::memory_order_seq_cst);\n"
    )
    ok_publish_validate_suppressed = (
        "// asymmetric: OFF — fenced baseline for the E11 ablation\n"
        "hp.store(p, std::memory_order_seq_cst);\n"
        "auto q = src.load(std::memory_order_seq_cst);\n"
    )
    ok_asymmetric_shape = (
        "hp.store(p, std::memory_order_release);\n"
        "asymmetric_light();\n"
        "auto q = src.load(std::memory_order_seq_cst);\n"
    )
    bad_combining_node = (
        "class C {\n"
        "  struct Node {\n"
        "    Atomic<Node*> next{nullptr};\n"
        "    Atomic<bool> wait{false};\n"
        "  };\n"
        "};\n"
    )
    ok_combining_node_aligned = (
        "class C {\n"
        "  struct CCDS_CACHELINE_ALIGNED Node {\n"
        "    Atomic<Node*> next{nullptr};\n"
        "    Atomic<bool> wait{false};\n"
        "  };\n"
        "};\n"
    )
    ok_combining_node_padded_instances = (
        "class C {\n"
        "  struct QNode {\n"
        "    Atomic<QNode*> next{nullptr};\n"
        "    Atomic<bool> locked{false};\n"
        "  };\n"
        "  Padded<QNode> nodes_[8];\n"
        "};\n"
    )
    ok_combining_node_excused = (
        "class C {\n"
        "  // unpadded: checker fixture, never spun on concurrently\n"
        "  struct Node {\n"
        "    Atomic<Node*> next{nullptr};\n"
        "    Atomic<bool> done{false};\n"
        "  };\n"
        "};\n"
    )
    ok_link_only_node = (
        "class C {\n"
        "  struct Node {\n"
        "    Atomic<Node*> next{nullptr};\n"
        "    int value = 0;\n"
        "  };\n"
        "};\n"
    )
    # H-Synch shape: per-node request lists each hand nodes between a local
    # winner and remote enqueuers while a global lock serializes winners —
    # exactly the remote-handoff spin R5 protects.  The rule must fire on
    # the bare node even though the enclosing engine holds other padded
    # members, and stay quiet once the node owns its line.
    bad_hsynch_shaped_node = (
        "class H {\n"
        "  struct NodeRec {\n"
        "    Atomic<NodeRec*> next{nullptr};\n"
        "    Atomic<bool> wait{true};\n"
        "    Atomic<bool> completed{false};\n"
        "  };\n"
        "  CCDS_CACHELINE_ALIGNED TtasLock global_;\n"
        "  Padded<NodeRec*> tail_[8];\n"
        "};\n"
    )
    ok_hsynch_shaped_node = (
        "class H {\n"
        "  struct CCDS_CACHELINE_ALIGNED NodeRec {\n"
        "    Atomic<NodeRec*> next{nullptr};\n"
        "    Atomic<bool> wait{true};\n"
        "    Atomic<bool> completed{false};\n"
        "  };\n"
        "  CCDS_CACHELINE_ALIGNED TtasLock global_;\n"
        "  Padded<NodeRec*> tail_[8];\n"
        "};\n"
    )
    bad_concrete_domain = (
        "class C {\n  TreiberStack<int, EpochDomain> stacks_[8];\n};\n"
    )
    ok_default_arg_domain = (
        "template <typename T, reclaimer Domain = HazardDomain>\nclass C;\n"
    )
    ok_multiline_default_arg_domain = (
        "template <typename T,\n"
        "          typename Reclaimer =\n"
        "              EpochDomain>\n"
        "class C;\n"
    )
    ok_domain_string_literal = (
        'static_assert(kSlots >= 4, "use WideHazardDomain");\n'
    )
    ok_concrete_domain_excused = (
        "// concrete-domain: ablation fixture pins the baseline policy\n"
        "using S = TreiberStack<int, EpochDomain>;\n"
    )
    ok_bare_domain_param = "auto g = typename Domain::Guard(d);\n"
    ok_store_only = "done.store(1, std::memory_order_seq_cst);\n"
    ok_load_far_away = (
        "flag.store(1, std::memory_order_seq_cst);\n"
        + "f();\n" * (PUBLISH_VALIDATE_WINDOW + 1)
        + "auto v = other.load(std::memory_order_seq_cst);\n"
    )
    cases = [
        (bad_relaxed, 1),
        (ok_relaxed, 0),
        (bad_implicit, 1),
        (ok_implicit, 0),
        (ok_suppressed, 0),
        (bad_member, 1),
        (ok_member, 0),
        (ok_nested, 0),
        (ok_ptr_member, 0),
        (bad_publish_validate, 1),
        (ok_publish_validate_suppressed, 0),
        (ok_asymmetric_shape, 0),
        (ok_store_only, 0),
        (ok_load_far_away, 0),
        (bad_combining_node, 1),
        (ok_combining_node_aligned, 0),
        (ok_combining_node_padded_instances, 0),
        (ok_combining_node_excused, 0),
        (ok_link_only_node, 0),
        (bad_hsynch_shaped_node, 1),
        (ok_hsynch_shaped_node, 0),
        (bad_concrete_domain, 1),
        (ok_default_arg_domain, 0),
        (ok_multiline_default_arg_domain, 0),
        (ok_domain_string_literal, 0),
        (ok_concrete_domain_excused, 0),
        (ok_bare_domain_param, 0),
    ]
    failures = 0
    for idx, (text, want) in enumerate(cases):
        got = len(check_text("case%d" % idx, text))
        if got != want:
            print(
                "self-test case %d: want %d violations, got %d\n--\n%s--"
                % (idx, want, got, text),
                file=sys.stderr,
            )
            failures += 1
    # R6 path gate: files under src/reclaim/ define the domains.
    if check_text("src/reclaim/reclaim.hpp", "HazardDomain d;\n"):
        print("self-test: reclaim/ path gate failed", file=sys.stderr)
        failures += 1
    if failures:
        return 2
    print("lint_memory_orders: self-test ok (%d cases)" % len(cases))
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*", default=["src"])
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--json", action="store_true",
                    help="emit violations as a JSON array "
                         "({file, line, rule, message} objects)")
    args = ap.parse_args(argv)
    if args.self_test:
        return self_test()
    paths = args.paths or ["src"]
    violations = []
    scanned = 0
    try:
        for f in iter_sources(paths):
            try:
                text = f.read_text(encoding="utf-8")
            except OSError as e:
                print("cannot read %s: %s" % (f, e), file=sys.stderr)
                return 2
            scanned += 1
            violations.extend(check_text(str(f), text))
    except FileNotFoundError as e:
        print("no such file or directory: %s" % e, file=sys.stderr)
        return 2
    if scanned == 0:
        print("no sources found under: %s" % " ".join(map(str, paths)), file=sys.stderr)
        return 2
    if args.json:
        # Violations are formatted "file:line: [rule] message" (report());
        # decompose that fixed shape rather than threading a second
        # representation through every check.
        vre = re.compile(r"^(.*?):(\d+): \[([^\]]+)\] (.*)$", re.S)
        objs = []
        for v in violations:
            m = vre.match(v)
            objs.append({"file": m.group(1), "line": int(m.group(2)),
                         "rule": m.group(3), "message": m.group(4)}
                        if m else {"file": "", "line": 0,
                                   "rule": "unparsed", "message": v})
        json.dump(objs, sys.stdout, indent=2)
        print()
        return 1 if violations else 0
    for v in violations:
        print(v)
    if violations:
        print("%d memory-order lint violation(s)" % len(violations))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

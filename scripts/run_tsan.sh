#!/bin/bash
# Build and run the whole test suite under ThreadSanitizer.
set -eu
root="$(cd "$(dirname "$0")/.." && pwd)"
cmake -B "$root/build-tsan" -G Ninja -DCCDS_SANITIZE_THREAD=ON \
      -DCCDS_BUILD_BENCHMARKS=OFF -DCCDS_BUILD_EXAMPLES=OFF "$root"
cmake --build "$root/build-tsan"
fail=0
for t in "$root"/build-tsan/tests/test_*; do
  [ -x "$t" ] || continue
  echo "== $(basename "$t")"
  if ! "$t" 2>&1 | grep -E "WARNING: ThreadSanitizer|FAILED" ; then
    echo "   clean"
  else
    fail=1
  fi
done
exit $fail

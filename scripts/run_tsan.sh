#!/bin/bash
# Build and run the whole test suite under ThreadSanitizer.
#
# Both failure modes must fail the run: a nonzero exit from the test binary
# (crash, gtest failure) AND sanitizer output on an otherwise-green binary
# (TSan only exits nonzero with halt_on_error).  The old version piped the
# binary straight into grep, which replaced the binary's exit status with
# grep's — a crashing test with no data race counted as clean.
set -eu
root="$(cd "$(dirname "$0")/.." && pwd)"
# CCDS_TSAN_SOUND is forced by CCDS_SANITIZE_THREAD anyway; passing it
# explicitly keeps a stale build-tsan/ cache from ever dropping it.
cmake -B "$root/build-tsan" -G Ninja -DCCDS_SANITIZE_THREAD=ON \
      -DCCDS_TSAN_SOUND=ON \
      -DCCDS_BUILD_BENCHMARKS=OFF -DCCDS_BUILD_EXAMPLES=OFF "$root"
cmake --build "$root/build-tsan"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT
fail=0
for t in "$root"/build-tsan/tests/test_* "$root"/build-tsan/tests/model/test_*; do
  [ -x "$t" ] || continue
  echo "== $(basename "$t")"
  rc=0
  "$t" >"$log" 2>&1 || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "   FAILED (exit $rc)"
    tail -n 50 "$log"
    fail=1
  elif grep -qE "WARNING: ThreadSanitizer|ERROR: ThreadSanitizer" "$log"; then
    echo "   FAILED (sanitizer report)"
    grep -A 20 -E "WARNING: ThreadSanitizer|ERROR: ThreadSanitizer" "$log" | head -n 60
    fail=1
  else
    echo "   clean"
  fi
done
exit $fail

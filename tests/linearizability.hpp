// A Wing & Gong style linearizability checker for small concurrent
// histories, plus a recorder that produces such histories from live runs.
//
// Usage: worker threads perform operations through HistoryRecorder::record,
// which wraps each call with invocation/response timestamps drawn from one
// global atomic clock (so timestamp order is consistent with real-time
// order).  The checker then searches for a legal linearization: a total
// order of the operations that (a) respects real-time precedence (if op A
// completed before op B began, A comes first) and (b) is a legal sequential
// history of the specification.
//
// Complexity is exponential in the history size, as it must be (the
// problem is NP-complete); with <= ~24 operations per history and
// memoization on (remaining-set, state) it is instantaneous, and many small
// random histories catch real bugs far better than one giant one.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>

#include "core/atomic.hpp"
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

namespace ccds::lin {

// One completed operation in a history.
struct Op {
  int kind = 0;                         // spec-defined opcode
  std::uint64_t arg = 0;                // spec-defined argument
  std::optional<std::uint64_t> result;  // spec-defined result (if any)
  std::uint64_t invoke = 0;             // global-clock timestamps
  std::uint64_t response = 0;
};

// Records operations from concurrent workers.  One instance per trial;
// call `thread_log()` once per worker to get its private log.
class HistoryRecorder {
 public:
  using Log = std::vector<Op>;

  // Wrap an operation: f() runs between the two clock ticks.
  // `result_of` maps f's return value to the recorded result field.
  template <typename F, typename ResultFn>
  void record(Log& log, int kind, std::uint64_t arg, F&& f,
              ResultFn&& result_of) {
    Op op;
    op.kind = kind;
    op.arg = arg;
    // acq_rel RMW: later invocations observe earlier responses' ticks, so
    // timestamp order refines real-time order.
    op.invoke = clock_.fetch_add(1, std::memory_order_acq_rel);
    auto r = f();
    op.response = clock_.fetch_add(1, std::memory_order_acq_rel);
    op.result = result_of(r);
    log.push_back(op);
  }

  // Convenience for void results.
  template <typename F>
  void record_void(Log& log, int kind, std::uint64_t arg, F&& f) {
    Op op;
    op.kind = kind;
    op.arg = arg;
    op.invoke = clock_.fetch_add(1, std::memory_order_acq_rel);
    f();
    op.response = clock_.fetch_add(1, std::memory_order_acq_rel);
    log.push_back(op);
  }

 private:
  // ccds::Atomic so the recorder itself is instrumented under CCDS_MODEL:
  // the clock's acq_rel RMWs both timestamp the ops and carry the
  // happens-before edges that make timestamp order refine real-time order
  // inside the model's weak-memory simulation.
  Atomic<std::uint64_t> clock_{0};
};

// The checker.  Spec requirements:
//   struct Spec {
//     using State = <ordered, copyable sequential state>;
//     static State initial();
//     // Apply op to state; return false if op's recorded result is illegal.
//     static bool apply(State& s, const Op& op);
//   };
template <typename Spec>
class Checker {
 public:
  // True iff `history` (any order) has a legal linearization.
  static bool linearizable(std::vector<Op> history) {
    if (history.size() > 63) return false;  // refuse oversized histories
    Checker c(std::move(history));
    return c.search(0, Spec::initial());
  }

 private:
  explicit Checker(std::vector<Op> ops) : ops_(std::move(ops)) {}

  bool search(std::uint64_t done_mask, typename Spec::State state) {
    if (done_mask == (std::uint64_t{1} << ops_.size()) - 1) return true;
    // Memoize: reaching the same (done-set, state) again cannot succeed if
    // it failed before, and has already succeeded if it... (we only get
    // here on the failing side, so a hit always means "prune").
    auto key = std::make_pair(done_mask, state);
    if (!visited_.insert(key).second) return false;

    // Earliest response among remaining ops: any remaining op that invoked
    // after it cannot be linearized first (real-time order).
    std::uint64_t min_response = ~std::uint64_t{0};
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (done_mask & (std::uint64_t{1} << i)) continue;
      if (ops_[i].response < min_response) min_response = ops_[i].response;
    }

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if (done_mask & bit) continue;
      if (ops_[i].invoke > min_response) continue;  // not minimal
      typename Spec::State next = state;
      if (!Spec::apply(next, ops_[i])) continue;  // result illegal here
      if (search(done_mask | bit, std::move(next))) return true;
    }
    return false;
  }

  std::vector<Op> ops_;
  std::set<std::pair<std::uint64_t, typename Spec::State>> visited_;
};

// ---------------------------------------------------------------------------
// Sequential specifications for the ccds structure families.
// ---------------------------------------------------------------------------

// FIFO queue: Enqueue(v) -> void; Dequeue() -> value or empty (nullopt).
struct QueueSpec {
  enum { kEnq = 1, kDeq = 2 };
  using State = std::deque<std::uint64_t>;
  static State initial() { return {}; }
  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case kEnq:
        s.push_back(op.arg);
        return true;
      case kDeq:
        if (!op.result.has_value()) return s.empty();
        if (s.empty() || s.front() != *op.result) return false;
        s.pop_front();
        return true;
      default:
        return false;
    }
  }
};

// LIFO stack: Push(v) -> void; Pop() -> value or empty.
struct StackSpec {
  enum { kPush = 1, kPop = 2 };
  using State = std::vector<std::uint64_t>;
  static State initial() { return {}; }
  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case kPush:
        s.push_back(op.arg);
        return true;
      case kPop:
        if (!op.result.has_value()) return s.empty();
        if (s.empty() || s.back() != *op.result) return false;
        s.pop_back();
        return true;
      default:
        return false;
    }
  }
};

// Set: Insert(k)/Remove(k)/Contains(k) -> bool (1/0 in result).
struct SetSpec {
  enum { kInsert = 1, kRemove = 2, kContains = 3 };
  using State = std::set<std::uint64_t>;
  static State initial() { return {}; }
  static bool apply(State& s, const Op& op) {
    const bool r = op.result.value_or(0) != 0;
    switch (op.kind) {
      case kInsert:
        return s.insert(op.arg).second == r;
      case kRemove:
        return (s.erase(op.arg) == 1) == r;
      case kContains:
        return (s.count(op.arg) == 1) == r;
      default:
        return false;
    }
  }
};

// Fetch-and-add counter: FetchAdd(d) -> prior value.
struct CounterSpec {
  enum { kFetchAdd = 1 };
  using State = std::uint64_t;
  static State initial() { return 0; }
  static bool apply(State& s, const Op& op) {
    if (op.kind != kFetchAdd) return false;
    if (!op.result.has_value() || *op.result != s) return false;
    s += op.arg;
    return true;
  }
};

// Map: Put(k, v) -> bool (1 = newly inserted), Get(k) -> value or empty,
// Erase(k) -> bool.  Put packs key and value into `arg` as (k << 32) | v —
// histories use small keys/values, and the packing keeps Op unchanged.
struct MapSpec {
  enum { kPut = 1, kGet = 2, kErase = 3 };
  using State = std::map<std::uint64_t, std::uint64_t>;
  static State initial() { return {}; }
  static std::uint64_t pack(std::uint64_t k, std::uint64_t v) {
    return (k << 32) | v;
  }
  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case kPut: {
        const std::uint64_t k = op.arg >> 32;
        const bool fresh = s.insert_or_assign(k, op.arg & 0xffffffffull).second;
        return fresh == (op.result.value_or(0) != 0);
      }
      case kGet: {
        auto it = s.find(op.arg);
        if (!op.result.has_value()) return it == s.end();
        return it != s.end() && it->second == *op.result;
      }
      case kErase:
        return (s.erase(op.arg) == 1) == (op.result.value_or(0) != 0);
      default:
        return false;
    }
  }
};

// Min-priority queue: Push(p) -> void; PopMin() -> min or empty.
struct PQueueSpec {
  enum { kPush = 1, kPopMin = 2 };
  using State = std::multiset<std::uint64_t>;
  static State initial() { return {}; }
  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case kPush:
        s.insert(op.arg);
        return true;
      case kPopMin:
        if (!op.result.has_value()) return s.empty();
        if (s.empty() || *s.begin() != *op.result) return false;
        s.erase(s.begin());
        return true;
      default:
        return false;
    }
  }
};

}  // namespace ccds::lin

// Tests for the flat-combining executor: operations must appear atomic, all
// submitted operations must execute exactly once, and results must be routed
// back to their submitters.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "sync/flat_combining.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

TEST(FlatCombiner, SingleThreadedApply) {
  FlatCombiner<std::uint64_t> fc(10);
  const std::uint64_t prior = fc.apply([](std::uint64_t& v) {
    const std::uint64_t p = v;
    v += 5;
    return p;
  });
  EXPECT_EQ(prior, 10u);
  EXPECT_EQ(fc.apply([](std::uint64_t& v) { return v; }), 15u);
}

TEST(FlatCombiner, VoidOperations) {
  FlatCombiner<int> fc(0);
  fc.apply([](int& v) { v = 7; });
  EXPECT_EQ(fc.apply([](int& v) { return v; }), 7);
}

TEST(FlatCombiner, ConcurrentIncrementsAllApply) {
  FlatCombiner<std::uint64_t> fc(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      fc.apply([](std::uint64_t& v) { ++v; });
    }
  });
  EXPECT_EQ(fc.apply([](std::uint64_t& v) { return v; }),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(FlatCombiner, FetchAddReturnsUniquePriors) {
  // fetch_add through the combiner must behave like an atomic counter: all
  // returned priors are distinct — the linearizability witness for counters.
  FlatCombiner<std::uint64_t> fc(0);
  constexpr int kThreads = 6;
  constexpr int kIters = 5000;
  std::vector<std::vector<std::uint64_t>> priors(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    priors[idx].reserve(kIters);
    for (int i = 0; i < kIters; ++i) {
      priors[idx].push_back(fc.apply([](std::uint64_t& v) { return v++; }));
    }
  });
  std::set<std::uint64_t> all;
  for (auto& v : priors) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), static_cast<std::uint64_t>(kThreads) * kIters - 1);
}

TEST(FlatCombiner, WrapsNonTrivialState) {
  // A combined FIFO queue: the canonical flat-combining application.
  FlatCombiner<std::deque<int>> fc;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2500;

  std::vector<std::vector<int>> popped(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kPerThread; ++i) {
      const int value = static_cast<int>(idx) * kPerThread + i;
      fc.apply([value](std::deque<int>& q) { q.push_back(value); });
      const auto got = fc.apply([](std::deque<int>& q) -> std::optional<int> {
        if (q.empty()) return std::nullopt;
        int v = q.front();
        q.pop_front();
        return v;
      });
      if (got) popped[idx].push_back(*got);
    }
  });

  // Conservation: everything pushed was popped exactly once (each thread
  // pops right after pushing, so the queue drains to empty).
  std::multiset<int> all;
  for (auto& v : popped) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<int> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size()) << "duplicate pop";
  EXPECT_TRUE(fc.apply([](std::deque<int>& q) { return q.empty(); }));
}

TEST(FlatCombiner, ApplyLockedSerializesWithApply) {
  FlatCombiner<std::uint64_t> fc(0);
  test::run_threads(4, [&](std::size_t idx) {
    for (int i = 0; i < 5000; ++i) {
      if (idx % 2 == 0) {
        fc.apply([](std::uint64_t& v) { ++v; });
      } else {
        fc.apply_locked([](std::uint64_t& v) { ++v; });
      }
    }
  });
  EXPECT_EQ(fc.apply([](std::uint64_t& v) { return v; }), 20000u);
}

}  // namespace
}  // namespace ccds

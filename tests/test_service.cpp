// Runtime suite for the shard-per-core KV serving tier
// (service/kv_service.hpp): round-trip semantics through the mailbox path,
// windowed asynchronous submission, fallback clients beyond the ring-slot
// budget, backpressure on full mailboxes, graceful-shutdown draining, the
// per-shard witness counters, and the reclamation-policy matrix (the tier
// must be policy-independent exactly like the structures it composes —
// see test_reclaim_policies.cpp for the contract).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "pool/affinity.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/reclaim.hpp"
#include "service/kv_service.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

using Svc = KvService<std::uint64_t, std::uint64_t>;
using Op = Svc::Op;
using Response = Svc::Response;

// ---- basic round trips -----------------------------------------------------

TEST(KvService, SyncRoundTripsThroughMailboxes) {
  Svc::Config cfg;
  cfg.shards = 4;
  Svc svc(cfg);
  auto c = svc.make_client();
  EXPECT_FALSE(c.uses_fallback());

  EXPECT_TRUE(c.put(1, 100));
  EXPECT_TRUE(c.put(2, 200));
  EXPECT_FALSE(c.put(1, 101));  // overwrite reports pre-existing

  auto v = c.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 101u);
  EXPECT_EQ(c.get(2).value(), 200u);
  EXPECT_FALSE(c.get(3).has_value());

  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(svc.route_violations(), 0u);
}

TEST(KvService, PrefillLandsInOwningShardAndIsServed) {
  Svc::Config cfg;
  cfg.shards = 8;
  Svc svc(cfg);
  for (std::uint64_t k = 0; k < 512; ++k) svc.prefill(k, k * 3);
  EXPECT_EQ(svc.size(), 512u);

  // Every shard should own a non-empty slice of a 512-key uniform prefill.
  for (std::size_t s = 0; s < svc.shards(); ++s) {
    EXPECT_GT(svc.shard_map(s).size(), 0u) << "shard " << s;
  }

  auto c = svc.make_client();
  for (std::uint64_t k = 0; k < 512; ++k) {
    auto v = c.get(k);
    ASSERT_TRUE(v.has_value()) << "key " << k;
    EXPECT_EQ(*v, k * 3);
  }
}

// ---- windowed asynchronous submission --------------------------------------

// A client keeps a window of W requests outstanding — the submission shape
// the E19 harness uses to give shard workers real batches.  Conservation:
// every submitted request completes exactly once with the right answer.
TEST(KvService, WindowedAsyncCompletesEverything) {
  constexpr std::size_t kWindow = 32;
  constexpr std::uint64_t kOps = 4000;
  Svc::Config cfg;
  cfg.shards = 4;
  Svc svc(cfg);
  auto c = svc.make_client();

  std::vector<OneShot<Response>> slots(kWindow);
  std::vector<std::uint64_t> key_of(kWindow, 0);
  std::uint64_t completed = 0;

  // Take-before-reuse: slot i carries request i, i+W, i+2W, ... and is
  // reclaimed (blocking if necessary) just before its next issue, keeping
  // exactly W requests outstanding in steady state.
  for (std::uint64_t issued = 0; issued < kOps; ++issued) {
    const std::size_t i = issued % kWindow;
    if (issued >= kWindow) {
      const Response r = slots[i].take();
      EXPECT_EQ(r.value, key_of[i] + 7);
      ++completed;
    }
    key_of[i] = issued;
    c.put_async(issued, issued + 7, &slots[i]);
  }
  for (std::uint64_t j = 0; j < kWindow; ++j) {  // drain the tail window
    const std::size_t i = (kOps + j) % kWindow;
    const Response r = slots[i].take();
    EXPECT_EQ(r.value, key_of[i] + 7);
    ++completed;
  }
  EXPECT_EQ(completed, kOps);
  EXPECT_EQ(svc.size(), kOps);

  std::uint64_t applied = 0;
  for (std::size_t s = 0; s < svc.shards(); ++s) {
    applied += svc.shard_stats(s).ops;
  }
  EXPECT_EQ(applied, kOps);  // request conservation across all mailboxes
  EXPECT_EQ(svc.route_violations(), 0u);
}

// Fire-and-forget writes (null completion slot) are applied even though
// nobody waits on them; a final sync read observes every one.
TEST(KvService, FireAndForgetWritesApply) {
  Svc::Config cfg;
  cfg.shards = 2;
  Svc svc(cfg);
  auto c = svc.make_client();
  for (std::uint64_t k = 0; k < 1000; ++k) {
    c.submit(k, k ^ 0xabcdu, Op::kPut, nullptr);
  }
  // A sync get on each shard-routed key flushes behind the writes: the
  // mailbox is FIFO per (client, shard), so get(k) completing implies every
  // earlier write to k's shard has been applied.
  for (std::uint64_t k = 0; k < 1000; ++k) {
    auto v = c.get(k);
    ASSERT_TRUE(v.has_value()) << "key " << k;
    EXPECT_EQ(*v, k ^ 0xabcdu);
  }
}

// ---- fallback clients ------------------------------------------------------

TEST(KvService, ClientsBeyondSlotBudgetUseFallbackAndStillWork) {
  Svc::Config cfg;
  cfg.shards = 2;
  cfg.client_slots = 2;
  Svc svc(cfg);

  std::vector<Svc::Client> clients;
  for (int i = 0; i < 5; ++i) clients.push_back(svc.make_client());
  int fallback = 0;
  for (auto& c : clients) fallback += c.uses_fallback() ? 1 : 0;
  EXPECT_EQ(fallback, 3);  // 2 ring slots, 3 overflow clients

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::uint64_t base = 1000 * (i + 1);
    EXPECT_TRUE(clients[i].put(base, base));
    EXPECT_EQ(clients[i].get(base).value(), base);
  }

  std::uint64_t via_fallback = 0;
  for (std::size_t s = 0; s < svc.shards(); ++s) {
    via_fallback += svc.shard_stats(s).fallback_ops;
  }
  EXPECT_GT(via_fallback, 0u);
}

TEST(KvService, ReleasedSlotIsReused) {
  Svc::Config cfg;
  cfg.client_slots = 1;
  Svc svc(cfg);
  {
    auto c1 = svc.make_client();
    EXPECT_FALSE(c1.uses_fallback());
    auto c2 = svc.make_client();
    EXPECT_TRUE(c2.uses_fallback());  // only one ring slot
  }
  auto c3 = svc.make_client();
  EXPECT_FALSE(c3.uses_fallback());  // c1's slot came back
}

// ---- backpressure ----------------------------------------------------------

// With no workers pumping, a client filling a mailbox must block rather
// than drop or reorder; the first manual pump releases it.
TEST(KvService, FullMailboxBlocksUntilPumped) {
  Svc::Config cfg;
  cfg.shards = 1;
  cfg.ring_capacity = 8;
  cfg.spawn_workers = false;
  Svc svc(cfg);
  auto c = svc.make_client();

  std::atomic<bool> unblocked{false};
  std::thread producer([&] {
    for (std::uint64_t k = 0; k < 64; ++k) {
      c.submit(k, k, Op::kPut, nullptr);  // blocks at ring capacity
    }
    unblocked.store(true);
  });

  // Give the producer a chance to hit the wall, then drain.
  while (!unblocked.load()) {
    svc.pump_shard(0);
    std::this_thread::yield();
  }
  producer.join();
  while (svc.pump_shard(0) != 0) {
  }
  EXPECT_EQ(svc.size(), 64u);
  EXPECT_EQ(svc.shard_stats(0).ops, 64u);
}

// ---- graceful shutdown -----------------------------------------------------

// Requests in flight when the service is destroyed are applied before the
// workers exit.  Witness: completion slots that OUTLIVE the service — the
// destructor's drain contract says every queued request is applied and
// completed before the workers join, so after `~KvService` returns every
// slot must be ready with the right answer (and no hang occurred).
TEST(KvService, ShutdownDrainsAllMailboxes) {
  constexpr std::uint64_t kBurst = 2000;
  auto slots = std::make_unique<OneShot<Response>[]>(kBurst);
  {
    Svc::Config cfg;
    cfg.shards = 4;
    Svc svc(cfg);
    auto c = svc.make_client();
    for (std::uint64_t k = 0; k < kBurst; ++k) {
      c.submit(k, k + 1, Op::kPut, &slots[k]);
    }
    // Destructor runs here with much of the burst still queued.
  }
  for (std::uint64_t k = 0; k < kBurst; ++k) {
    ASSERT_TRUE(slots[k].ready()) << "request " << k << " lost in shutdown";
    const Response r = slots[k].take();
    EXPECT_EQ(r.value, k + 1);
    EXPECT_FALSE(r.found);  // every key was new
  }
}

// Deterministic drain witness: manual-pump service, queue a burst, then
// verify an explicit full drain applies exactly the burst.
TEST(KvService, ManualDrainAppliesExactlyTheBurst) {
  Svc::Config cfg;
  cfg.shards = 4;
  cfg.spawn_workers = false;
  cfg.ring_capacity = 1024;  // nobody pumps while we submit: the whole
                             // burst must fit (~kBurst/shards per mailbox)
  Svc svc(cfg);
  auto c = svc.make_client();
  constexpr std::uint64_t kBurst = 3000;
  for (std::uint64_t k = 0; k < kBurst; ++k) {
    c.submit(k, k, Op::kPut, nullptr);
  }
  std::size_t drained = 0;
  for (;;) {
    std::size_t round = 0;
    for (std::size_t s = 0; s < svc.shards(); ++s) round += svc.pump_shard(s);
    if (round == 0) break;
    drained += round;
  }
  EXPECT_EQ(drained, kBurst);
  EXPECT_EQ(svc.size(), kBurst);
  std::uint64_t max_batch = 0;
  for (std::size_t s = 0; s < svc.shards(); ++s) {
    max_batch = std::max(max_batch, svc.shard_stats(s).max_batch);
  }
  // A 3000-request backlog against default drain_batch=64 must produce at
  // least one real batch — the amortization the tier exists for.
  EXPECT_GT(max_batch, 1u);
}

// ---- concurrent clients ----------------------------------------------------

TEST(KvService, ManyClientsManyShardsConservation) {
  constexpr std::size_t kClients = 6;
  constexpr std::uint64_t kPerClient = 2000;
  Svc::Config cfg;
  cfg.shards = 4;
  cfg.client_slots = 4;  // two clients overflow to fallback
  Svc svc(cfg);

  std::vector<Svc::Client> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(svc.make_client());
  }
  test::run_threads(kClients, [&](std::size_t idx) {
    auto& c = clients[idx];
    const std::uint64_t base = idx * kPerClient;
    for (std::uint64_t i = 0; i < kPerClient; ++i) {
      ASSERT_TRUE(c.put(base + i, base + i + 1));
    }
    for (std::uint64_t i = 0; i < kPerClient; i += 2) {
      ASSERT_TRUE(c.erase(base + i));
    }
  });
  clients.clear();

  EXPECT_EQ(svc.size(), kClients * kPerClient / 2);
  auto checker = svc.make_client();
  for (std::uint64_t k = 0; k < kClients * kPerClient; ++k) {
    const auto v = checker.get(k);
    if (k % 2 == 1) {
      ASSERT_TRUE(v.has_value()) << "key " << k;
      EXPECT_EQ(*v, k + 1);
    } else {
      EXPECT_FALSE(v.has_value()) << "key " << k;
    }
  }
  std::uint64_t applied = 0;
  for (std::size_t s = 0; s < svc.shards(); ++s) {
    applied += svc.shard_stats(s).ops;
  }
  // puts + erases + the checker's gets, every one applied exactly once.
  EXPECT_EQ(applied, kClients * kPerClient + kClients * kPerClient / 2 +
                         kClients * kPerClient);
  EXPECT_EQ(svc.route_violations(), 0u);
}

// ---- affinity helpers ------------------------------------------------------

TEST(Affinity, PinCurrentThreadSmoke) {
#if defined(__linux__)
  EXPECT_TRUE(pin_current_thread(0));
#else
  EXPECT_FALSE(pin_current_thread(0));
#endif
}

TEST(Affinity, CoresCoverIsMonotone) {
  EXPECT_TRUE(cores_cover(1));
  EXPECT_FALSE(cores_cover(1u << 20));  // no host has a million cores
}

TEST(KvService, PinWorkersConfigIsAdvisory) {
  Svc::Config cfg;
  cfg.shards = 8;  // more shards than this host has cores
  cfg.pin_workers = true;
  Svc svc(cfg);
  auto c = svc.make_client();
  EXPECT_TRUE(c.put(42, 43));
  EXPECT_EQ(c.get(42).value(), 43u);
}

// ---- reclamation-policy matrix ---------------------------------------------

template <typename D>
class ServicePolicyTest : public ::testing::Test {};

using Policies =
    ::testing::Types<LeakyDomain, WideHazardDomain, EpochDomain, QsbrDomain,
                     EpochLeaseDomain, LeasedDomain<QsbrDomain>>;
TYPED_TEST_SUITE(ServicePolicyTest, Policies);

// The serving tier composes SwissHashMap partitions; its correctness must
// be independent of which reclaimer those partitions run.  Concurrent
// clients churn keys hard enough to force shard-map rehashes (retired
// tables) under every policy.
TYPED_TEST(ServicePolicyTest, ConcurrentChurnAllPolicies) {
  using PSvc =
      KvService<std::uint64_t, std::uint64_t, MixHash<std::uint64_t>,
                TypeParam>;
  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kPerClient = 1500;
  typename PSvc::Config cfg;
  cfg.shards = 2;
  cfg.initial_slots_per_shard = 16;  // force rehashes under churn
  PSvc svc(cfg);

  std::vector<typename PSvc::Client> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(svc.make_client());
  }
  std::atomic<int> failures{0};
  test::run_threads(kClients, [&](std::size_t idx) {
    auto& c = clients[idx];
    const std::uint64_t base = idx * kPerClient;
    for (std::uint64_t i = 0; i < kPerClient; ++i) {
      if (!c.put(base + i, base + i)) failures.fetch_add(1);
      const auto v = c.get(base + i);
      if (!v.has_value() || *v != base + i) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerClient; i += 2) {
      if (!c.erase(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.size(), kClients * kPerClient / 2);
  EXPECT_EQ(svc.route_violations(), 0u);
}

}  // namespace
}  // namespace ccds

// Tests for the skiplist module: set semantics across the three skip lists,
// concurrent stress with conservation accounting, and priority-queue
// behaviour (ordering + no element lost or duplicated).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "reclaim/hazard.hpp"
#include "skiplist/lazy_skiplist.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "skiplist/seq_skiplist.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// Both recovery modes of the lock-free list run the full set suites: the
// kRestart ablation baseline is shipped code (bench_skiplists.cpp measures
// it), and the hazard-domain build exercises the pointer-based mark-only
// protocol (backlinks are unvalidatable under HP, so that configuration
// takes the restart path regardless of the knob).
using LockFreeSkipRestart =
    LockFreeSkipListSet<std::uint64_t, std::less<std::uint64_t>, EpochDomain,
                        SkipListRecovery::kRestart>;
using LockFreeSkipHazard =
    LockFreeSkipListSet<std::uint64_t, std::less<std::uint64_t>,
                        WideHazardDomain>;

template <typename S>
class SkipListSetTest : public ::testing::Test {};

using SkipListSetTypes =
    ::testing::Types<SeqSkipListSet<std::uint64_t>,
                     CoarseSkipListSet<std::uint64_t>,
                     LazySkipListSet<std::uint64_t>,
                     LockFreeSkipListSet<std::uint64_t>, LockFreeSkipRestart,
                     LockFreeSkipHazard>;
TYPED_TEST_SUITE(SkipListSetTest, SkipListSetTypes);

TYPED_TEST(SkipListSetTest, BasicSetSemantics) {
  TypeParam s;
  EXPECT_FALSE(s.contains(10));
  EXPECT_TRUE(s.insert(10));
  EXPECT_FALSE(s.insert(10));
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.remove(10));
  EXPECT_FALSE(s.remove(10));
  EXPECT_FALSE(s.contains(10));
  EXPECT_TRUE(s.insert(10));  // reinsert
  EXPECT_TRUE(s.contains(10));
}

TYPED_TEST(SkipListSetTest, ManyKeysAllPatterns) {
  for (int pattern = 0; pattern < 3; ++pattern) {
    TypeParam s;
    constexpr std::uint64_t kN = 2000;
    for (std::uint64_t i = 0; i < kN; ++i) {
      std::uint64_t k = pattern == 0   ? i
                        : pattern == 1 ? kN - 1 - i
                                       : (i * 2654435761u) % (kN * 4);
      s.insert(k);
    }
    std::set<std::uint64_t> reference;
    for (std::uint64_t i = 0; i < kN; ++i) {
      std::uint64_t k = pattern == 0   ? i
                        : pattern == 1 ? kN - 1 - i
                                       : (i * 2654435761u) % (kN * 4);
      reference.insert(k);
    }
    for (std::uint64_t k = 0; k < kN * 4; ++k) {
      ASSERT_EQ(s.contains(k), reference.count(k) == 1) << "key " << k;
    }
  }
}

TYPED_TEST(SkipListSetTest, RemoveEverythingThenReuse) {
  TypeParam s;
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(s.insert(i));
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(s.remove(i));
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_FALSE(s.contains(i));
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(s.insert(i * 2));
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(s.contains(i * 2));
}

// ---------- finger search (SeqSkipListSet) ----------

TEST(SeqSkipListFinger, SortedPassMatchesReference) {
  SeqSkipListSet<std::uint64_t> s;
  for (std::uint64_t i = 0; i < 1000; i += 3) s.insert(i);
  // One finger, ascending seeks: insert absents, remove every 30th present.
  std::set<std::uint64_t> reference;
  for (std::uint64_t i = 0; i < 1000; i += 3) reference.insert(i);
  auto f = s.finger();
  for (std::uint64_t k = 0; k < 1000; ++k) {
    s.seek(f, k);
    const bool present = s.found_at(f, k);
    ASSERT_EQ(present, reference.count(k) == 1) << "key " << k;
    if (!present) {
      s.insert_new_at(f, k);
      reference.insert(k);
    } else if (k % 30 == 0) {
      s.remove_found_at(f);
      reference.erase(k);
    }
  }
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(s.contains(k), reference.count(k) == 1) << "key " << k;
  }
  EXPECT_EQ(s.size(), reference.size());
}

TEST(SeqSkipListFinger, RepeatedSeekOfSameKeyIsStable) {
  SeqSkipListSet<std::uint64_t> s;
  s.insert(10);
  s.insert(20);
  auto f = s.finger();
  s.seek(f, 15);
  EXPECT_FALSE(s.found_at(f, 15));
  s.seek(f, 15);  // same key again: the fast path
  EXPECT_FALSE(s.found_at(f, 15));
  s.insert_new_at(f, 15);
  s.seek(f, 15);
  EXPECT_TRUE(s.found_at(f, 15));
  s.seek(f, 20);
  EXPECT_TRUE(s.found_at(f, 20));
}

TEST(SeqSkipListFinger, FreshFingerStartsBeforeEverything) {
  SeqSkipListSet<std::uint64_t> s;
  for (std::uint64_t i = 100; i < 200; ++i) s.insert(i);
  auto f = s.finger();
  s.seek(f, 0);  // before the first key
  EXPECT_FALSE(s.found_at(f, 0));
  s.insert_new_at(f, 0);
  EXPECT_TRUE(s.contains(0));
}

TEST(SeqSkipListFinger, FoundRefMutationPreservingOrderIsVisible) {
  // A map-style element ordered by the key half: mutate the value half in
  // place through found_ref.
  struct Entry {
    std::uint64_t key;
    std::uint64_t value;
  };
  struct KeyLess {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.key < b.key;
    }
  };
  SeqSkipListSet<Entry, KeyLess> s;
  s.insert(Entry{1, 10});
  s.insert(Entry{2, 20});
  auto f = s.finger();
  s.seek(f, Entry{1, 0});
  ASSERT_TRUE(s.found_at(f, Entry{1, 0}));
  s.found_ref(f).value = 11;
  s.seek(f, Entry{2, 0});
  ASSERT_TRUE(s.found_at(f, Entry{2, 0}));
  EXPECT_EQ(s.found_ref(f).value, 20u);
  auto g = s.finger();
  s.seek(g, Entry{1, 0});
  ASSERT_TRUE(s.found_at(g, Entry{1, 0}));
  EXPECT_EQ(s.found_ref(g).value, 11u);
}

TEST(SeqSkipListFinger, TallKeyMutationsThroughShortFinger) {
  // Keyed towers make heights deterministic; interleave short seeks with
  // inserts/removes of keys whose towers are taller than the finger's top,
  // exercising the stale-upper-level refresh (extend_exact).
  SeqSkipListSet<std::uint64_t, std::less<std::uint64_t>,
                 SkipListLevels::kKeyed>
      s;
  std::set<std::uint64_t> reference;
  for (std::uint64_t i = 0; i < 4000; i += 2) {
    s.insert(i);
    reference.insert(i);
  }
  auto f = s.finger();
  for (std::uint64_t k = 0; k < 4000; ++k) {
    s.seek(f, k);
    if (k % 2 == 1) {
      ASSERT_FALSE(s.found_at(f, k));
      s.insert_new_at(f, k);
      reference.insert(k);
    } else if (k % 6 == 0) {
      ASSERT_TRUE(s.found_at(f, k));
      s.remove_found_at(f);
      reference.erase(k);
    }
  }
  for (std::uint64_t k = 0; k < 4000; ++k) {
    ASSERT_EQ(s.contains(k), reference.count(k) == 1) << "key " << k;
  }
}

TEST(SeqSkipList, KeyedLevelsAreDeterministic) {
  for (std::uint64_t h : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    const int l = skiplist_keyed_level(h);
    EXPECT_GE(l, 1);
    EXPECT_LE(l, kSkipListMaxLevel);
    EXPECT_EQ(l, skiplist_keyed_level(h));  // pure function of the hash
  }
  // The draw is geometric-ish: over many keys, most land on level 1-2.
  int low = 0;
  for (std::uint64_t h = 0; h < 1000; ++h) {
    if (skiplist_keyed_level(h * 2654435761u + 1) <= 2) ++low;
  }
  EXPECT_GT(low, 600);
}

// Concurrent suites exclude the sequential baseline.
template <typename S>
class ConcurrentSkipListTest : public ::testing::Test {};

using ConcurrentSkipListTypes =
    ::testing::Types<CoarseSkipListSet<std::uint64_t>,
                     LazySkipListSet<std::uint64_t>,
                     LockFreeSkipListSet<std::uint64_t>, LockFreeSkipRestart,
                     LockFreeSkipHazard>;
TYPED_TEST_SUITE(ConcurrentSkipListTest, ConcurrentSkipListTypes);

TYPED_TEST(ConcurrentSkipListTest, DisjointKeyRanges) {
  TypeParam s;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kRange = 2000;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kRange;
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!s.contains(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (s.contains(base + i) != ((i % 2) == 1)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TYPED_TEST(ConcurrentSkipListTest, SharedRangeConservation) {
  TypeParam s;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kKeys = 48;
  constexpr int kOps = 15000;
  std::vector<std::vector<std::int64_t>> net(
      kThreads, std::vector<std::int64_t>(kKeys, 0));

  test::run_threads(kThreads, [&](std::size_t idx) {
    auto& mine = net[idx];
    std::uint64_t state = idx * 31337 + 11;
    for (int i = 0; i < kOps; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t key = (state >> 33) % kKeys;
      if ((state >> 13) & 1) {
        if (s.insert(key)) mine[key] += 1;
      } else {
        if (s.remove(key)) mine[key] -= 1;
      }
    }
  });

  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::int64_t total = 0;
    for (std::size_t t = 0; t < kThreads; ++t) total += net[t][k];
    ASSERT_GE(total, 0) << "key " << k;
    ASSERT_LE(total, 1) << "key " << k;
    EXPECT_EQ(s.contains(k), total == 1) << "key " << k;
  }
}

TYPED_TEST(ConcurrentSkipListTest, PinnedKeyVisibleThroughChurn) {
  TypeParam s;
  constexpr std::uint64_t kPinned = 1000;
  ASSERT_TRUE(s.insert(kPinned));
  std::atomic<bool> missing{false};
  test::run_threads(5, [&](std::size_t idx) {
    if (idx == 0) {
      for (int i = 0; i < 20000; ++i) {
        if (!s.contains(kPinned)) missing.store(true);
      }
    } else {
      for (int i = 0; i < 8000; ++i) {
        const std::uint64_t k = 990 + (i % 21);  // 990..1010
        if (k == kPinned) continue;
        s.insert(k);
        s.remove(k);
      }
    }
  });
  EXPECT_FALSE(missing.load());
  EXPECT_TRUE(s.contains(kPinned));
}

TEST(LockFreeSkipList, ReclaimsNodesUnderChurn) {
  LockFreeSkipListSet<std::uint64_t> s;
  for (int round = 0; round < 30; ++round) {
    for (std::uint64_t i = 0; i < 300; ++i) s.insert(i);
    for (std::uint64_t i = 0; i < 300; ++i) s.remove(i);
  }
  s.domain().collect_all();
  s.domain().collect_all();
  EXPECT_LT(s.domain().retired_count(), 1200u);
}

// ---------- priority queues ----------

template <typename Q>
class PriorityQueueTest : public ::testing::Test {};

using PriorityQueueTypes =
    ::testing::Types<CoarsePriorityQueue<std::uint32_t>,
                     SkipListPriorityQueue<std::uint32_t>>;
TYPED_TEST_SUITE(PriorityQueueTest, PriorityQueueTypes);

TYPED_TEST(PriorityQueueTest, PopsInPriorityOrderSingleThread) {
  TypeParam q;
  EXPECT_FALSE(q.pop_min().has_value());
  const std::uint32_t input[] = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  for (auto p : input) q.push(p);
  for (std::uint32_t expect = 0; expect < 10; ++expect) {
    auto v = q.pop_min();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, expect);
  }
  EXPECT_FALSE(q.pop_min().has_value());
}

TYPED_TEST(PriorityQueueTest, DuplicatePrioritiesAllDelivered) {
  TypeParam q;
  for (int i = 0; i < 100; ++i) q.push(7);
  for (int i = 0; i < 100; ++i) {
    auto v = q.pop_min();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7u);
  }
  EXPECT_FALSE(q.pop_min().has_value());
}

TYPED_TEST(PriorityQueueTest, ConcurrentConservation) {
  TypeParam q;
  constexpr std::size_t kThreads = 6;
  constexpr int kPerThread = 4000;
  std::atomic<std::uint64_t> popped_count{0}, popped_sum{0};

  test::run_threads(kThreads, [&](std::size_t idx) {
    std::uint64_t state = idx * 48271 + 3;
    for (int i = 0; i < kPerThread; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      q.push(static_cast<std::uint32_t>(state >> 40));  // 24-bit priorities
      if (i % 2 == 0) {
        if (auto v = q.pop_min()) {
          popped_count.fetch_add(1, std::memory_order_relaxed);
          popped_sum.fetch_add(*v, std::memory_order_relaxed);
        }
      }
    }
  });

  // Drain and check conservation of count (sum of priorities pushed is not
  // tracked per-push here; count conservation is the key invariant).
  std::uint64_t leftover = 0;
  while (q.pop_min()) ++leftover;
  EXPECT_EQ(popped_count.load() + leftover,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TYPED_TEST(PriorityQueueTest, PopsAreWeaklyOrderedUnderConcurrency) {
  // With concurrent pops strict global order is not observable, but once all
  // pushes are done, a single-threaded drain must be perfectly sorted.
  TypeParam q;
  test::run_threads(4, [&](std::size_t idx) {
    std::uint64_t state = idx + 1;
    for (int i = 0; i < 2000; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      q.push(static_cast<std::uint32_t>(state >> 44));
    }
  });
  std::uint32_t last = 0;
  std::size_t drained = 0;
  while (auto v = q.pop_min()) {
    ASSERT_GE(*v, last);
    last = *v;
    ++drained;
  }
  EXPECT_EQ(drained, 8000u);
}

}  // namespace
}  // namespace ccds

// Compile-time coverage of the engine-traits layer (sync/combiner.hpp) for
// every enrolled engine (sync/engines.hpp): each engine models CombinerFor
// over a representative state, publishes the trait row documented in
// docs/choosing_a_structure.md, and the traits are readable both directly
// (E::kIsWaitFree) and through combiner_traits<E>.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "sync/engines.hpp"

namespace ccds {
namespace {

// Every enrolled engine models the Combiner policy over scalar and
// container states alike — enrollment is the protocol check.
#define CCDS_ASSERT_MODELS(E)                                              \
  static_assert(CombinerFor<E<std::uint64_t>, std::uint64_t>);             \
  static_assert(                                                           \
      CombinerFor<E<std::deque<std::uint64_t>>, std::deque<std::uint64_t>>); \
  static_assert(CombinerFor<E<std::vector<std::uint64_t>>,                 \
                            std::vector<std::uint64_t>>);
CCDS_COMBINER_ENGINES(CCDS_ASSERT_MODELS)
#undef CCDS_ASSERT_MODELS

// combiner_traits must agree with the engines' own constants for any State.
#define CCDS_ASSERT_TRAITS_AGREE(E)                                        \
  static_assert(combiner_traits<E<std::uint64_t>>::is_wait_free ==         \
                E<std::uint64_t>::kIsWaitFree);                            \
  static_assert(combiner_traits<E<std::uint64_t>>::is_hierarchical ==      \
                E<std::uint64_t>::kIsHierarchical);                        \
  static_assert(combiner_traits<E<std::uint64_t>>::max_threads ==          \
                E<std::uint64_t>::kMaxEngineThreads);
CCDS_COMBINER_ENGINES(CCDS_ASSERT_TRAITS_AGREE)
#undef CCDS_ASSERT_TRAITS_AGREE

// The selection table itself, engine by engine: PSim is the only wait-free
// engine, HSynch the only hierarchical one, and every fixed per-thread
// structure is sized for the registry's capacity.
static_assert(!combiner_traits<FlatCombiner<std::uint64_t>>::is_wait_free);
static_assert(!combiner_traits<FlatCombiner<std::uint64_t>>::is_hierarchical);
static_assert(!combiner_traits<CcSynch<std::uint64_t>>::is_wait_free);
static_assert(!combiner_traits<CcSynch<std::uint64_t>>::is_hierarchical);
static_assert(!combiner_traits<HSynch<std::uint64_t>>::is_wait_free);
static_assert(combiner_traits<HSynch<std::uint64_t>>::is_hierarchical);
static_assert(combiner_traits<PSim<std::uint64_t>>::is_wait_free);
static_assert(!combiner_traits<PSim<std::uint64_t>>::is_hierarchical);

#define CCDS_ASSERT_CAPACITY(E) \
  static_assert(combiner_traits<E<std::uint64_t>>::max_threads == kMaxThreads);
CCDS_COMBINER_ENGINES(CCDS_ASSERT_CAPACITY)
#undef CCDS_ASSERT_CAPACITY

// Engine display names (bench rows, diagnostics) match the identifiers.
TEST(EngineTraits, NamesMatchIdentifiers) {
  EXPECT_STREQ(combining_engine_name<FlatCombiner>::value, "FlatCombiner");
  EXPECT_STREQ(combining_engine_name<CcSynch>::value, "CcSynch");
  EXPECT_STREQ(combining_engine_name<HSynch>::value, "HSynch");
  EXPECT_STREQ(combining_engine_name<PSim>::value, "PSim");
}

// Runtime sanity: the traits describe constructible, usable engines.
TEST(EngineTraits, EveryEngineAppliesAnOp) {
#define CCDS_APPLY_ONE(E)                                      \
  {                                                            \
    E<std::uint64_t> e;                                        \
    e.apply([](std::uint64_t& v) { v += 7; });                 \
    EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }), 7u) \
        << combining_engine_name<E>::value;                    \
  }
  CCDS_COMBINER_ENGINES(CCDS_APPLY_ONE)
#undef CCDS_APPLY_ONE
}

}  // namespace
}  // namespace ccds

// Tests for the queue family.  Concurrent witnesses:
//   * conservation — enqueue count == dequeue count + leftover, no value
//     duplicated or invented;
//   * per-producer FIFO — each producer's values are consumed in the order
//     that producer enqueued them (the linearizability residue observable
//     without a global clock);
//   * SPSC ring: exact global FIFO; bounded queues: capacity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "queue/coarse_queue.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "queue/two_lock_queue.hpp"
#include "queue/ws_deque.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "sync/spinlock.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// Encode producer id in the top bits, per-producer sequence in the low bits.
constexpr std::uint64_t make_tag(std::size_t producer, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(producer) << 48) | seq;
}
constexpr std::size_t tag_producer(std::uint64_t v) { return v >> 48; }
constexpr std::uint64_t tag_seq(std::uint64_t v) {
  return v & 0xffffffffffffull;
}

template <typename Q>
class QueueTest : public ::testing::Test {};

using QueueTypes =
    ::testing::Types<LockQueue<std::uint64_t>,
                     LockQueue<std::uint64_t, TtasLock>,
                     TwoLockQueue<std::uint64_t>,
                     TwoLockQueue<std::uint64_t, TtasLock>,
                     MSQueue<std::uint64_t, HazardDomain>,
                     MSQueue<std::uint64_t, EpochDomain>,
                     MSQueue<std::uint64_t, LeakyDomain>>;
TYPED_TEST_SUITE(QueueTest, QueueTypes);

TYPED_TEST(QueueTest, EmptyDequeueReturnsNothing) {
  TypeParam q;
  EXPECT_FALSE(q.try_dequeue().has_value());
  EXPECT_TRUE(q.empty());
}

TYPED_TEST(QueueTest, SingleThreadFifo) {
  TypeParam q;
  for (std::uint64_t i = 0; i < 100; ++i) q.enqueue(i);
  EXPECT_FALSE(q.empty());
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto v = q.try_dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TYPED_TEST(QueueTest, AlternatingEnqueueDequeue) {
  TypeParam q;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.enqueue(i);
    auto v = q.try_dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty());
}

TYPED_TEST(QueueTest, MpmcConservationAndPerProducerFifo) {
  TypeParam q;
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 10000;

  std::vector<std::vector<std::uint64_t>> consumed(kConsumers);
  std::atomic<std::size_t> producers_done{0};

  test::run_threads(kProducers + kConsumers, [&](std::size_t idx) {
    if (idx < kProducers) {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.enqueue(make_tag(idx, i));
      }
      producers_done.fetch_add(1, std::memory_order_release);
    } else {
      auto& mine = consumed[idx - kProducers];
      for (;;) {
        if (auto v = q.try_dequeue()) {
          mine.push_back(*v);
        } else if (producers_done.load(std::memory_order_acquire) ==
                   kProducers) {
          // Producers are done and the queue read empty: no more work can
          // appear (other consumers may still drain what's left).
          break;
        }
      }
    }
  });

  // Drain anything the consumers' final race left behind.
  std::vector<std::uint64_t> leftovers;
  while (auto v = q.try_dequeue()) leftovers.push_back(*v);

  std::size_t total = leftovers.size();
  std::set<std::uint64_t> all(leftovers.begin(), leftovers.end());
  // Per-producer FIFO within each consumer's stream.
  for (auto& stream : consumed) {
    total += stream.size();
    std::map<std::size_t, std::uint64_t> last_seq;
    for (auto v : stream) {
      EXPECT_TRUE(all.insert(v).second) << "duplicate value";
      auto it = last_seq.find(tag_producer(v));
      if (it != last_seq.end()) {
        EXPECT_GT(tag_seq(v), it->second)
            << "per-producer FIFO violated for producer " << tag_producer(v);
      }
      last_seq[tag_producer(v)] = tag_seq(v);
    }
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_EQ(all.size(), kProducers * kPerProducer);
}

TYPED_TEST(QueueTest, StressMixedOperations) {
  TypeParam q;
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::atomic<std::uint64_t> enq{0}, deq{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    std::uint64_t next = 0;
    for (int i = 0; i < kOps; ++i) {
      if ((i + idx) % 3 != 0) {
        q.enqueue(make_tag(idx, next++));
        enq.fetch_add(1, std::memory_order_relaxed);
      } else if (q.try_dequeue()) {
        deq.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::uint64_t leftover = 0;
  while (q.try_dequeue()) ++leftover;
  EXPECT_EQ(deq.load() + leftover, enq.load());
}

// ---------- MS queue reclamation ----------

TEST(MSQueueReclaim, HazardDomainReclaimsUnderChurn) {
  MSQueue<std::uint64_t, HazardDomain> q;
  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t i = 0; i < 500; ++i) q.enqueue(i);
    while (q.try_dequeue()) {
    }
  }
  q.domain().collect_all();
  EXPECT_LT(q.domain().retired_count(), 600u);
}

// ---------- SPSC ring ----------

TEST(SpscRing, CapacityIsRoundedUp) {
  SpscRing<int> r(100);
  EXPECT_EQ(r.capacity(), 128u);
}

TEST(SpscRing, FillsToCapacityThenRejects) {
  SpscRing<int> r(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));
  EXPECT_EQ(r.try_pop().value(), 0);
  EXPECT_TRUE(r.try_push(99));  // slot freed
  EXPECT_FALSE(r.try_push(100));
}

TEST(SpscRing, WrapAroundPreservesFifo) {
  SpscRing<int> r(4);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (r.try_push(next_in)) ++next_in;
    while (auto v = r.try_pop()) {
      ASSERT_EQ(*v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(SpscRing, OneProducerOneConsumerExactFifo) {
  SpscRing<std::uint64_t> r(1024);
  constexpr std::uint64_t kCount = 1000000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!r.try_push(i)) cpu_relax();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    if (auto v = r.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, DrainEmptyReturnsZero) {
  SpscRing<int> r(8);
  int calls = 0;
  EXPECT_EQ(r.drain([&](int&&) { ++calls; }, 16), 0u);
  EXPECT_EQ(calls, 0);
}

TEST(SpscRing, DrainTakesEverythingInFifoOrder) {
  SpscRing<int> r(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(r.drain([&](int&& v) { out.push_back(v); }, 64), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, DrainHonorsMaxAndResumes) {
  SpscRing<int> r(16);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(r.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(r.drain([&](int&& v) { out.push_back(v); }, 5), 5u);
  EXPECT_EQ(r.drain([&](int&& v) { out.push_back(v); }, 5), 5u);
  EXPECT_EQ(r.drain([&](int&& v) { out.push_back(v); }, 5), 2u);
  for (int i = 0; i < 12; ++i) ASSERT_EQ(out[i], i);
}

TEST(SpscRing, DrainAcrossWrapBoundary) {
  SpscRing<int> r(4);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 500; ++round) {
    while (r.try_push(next_in)) ++next_in;
    r.drain(
        [&](int&& v) {
          ASSERT_EQ(v, next_out);
          ++next_out;
        },
        3);  // smaller than occupancy: exercises partial drains mid-wrap
  }
  while (r.try_pop()) ++next_out;
  EXPECT_EQ(next_in, next_out);
}

// Producer streams while the consumer empties exclusively via drain — the
// serving tier's exact usage (shard worker pumping a client mailbox).
TEST(SpscRing, DrainConcurrentWithProducerExactFifo) {
  SpscRing<std::uint64_t> r(256);
  constexpr std::uint64_t kCount = 500000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!r.try_push(i)) cpu_relax();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    r.drain(
        [&](std::uint64_t&& v) {
          ASSERT_EQ(v, expected);
          ++expected;
        },
        64);
  }
  producer.join();
  EXPECT_EQ(r.drain([](std::uint64_t&&) {}, 64), 0u);
}

TEST(SpscRing, DrainDestroysMovedFromElements) {
  SpscRing<std::vector<int>> r(8);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(r.try_push(std::vector<int>(100, i)));
  }
  std::size_t total = 0;
  r.drain([&](std::vector<int>&& v) { total += v.size(); }, 64);
  EXPECT_EQ(total, 600u);  // ASan would flag any leak/double-destroy here
}

TEST(SpscRing, NonTrivialElementType) {
  SpscRing<std::vector<int>> r(4);
  EXPECT_TRUE(r.try_push(std::vector<int>{1, 2, 3}));
  auto v = r.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 3u);
  // Destructor must clean up any elements left inside.
  r.try_push(std::vector<int>(1000, 7));
}

// ---------- MPMC bounded queue ----------

TEST(MpmcQueue, FillsToCapacityThenRejects) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_enqueue(99));
  EXPECT_EQ(q.try_dequeue().value(), 0);
  EXPECT_TRUE(q.try_enqueue(99));
}

TEST(MpmcQueue, SingleThreadFifo) {
  MpmcQueue<std::uint64_t> q(64);
  for (std::uint64_t i = 0; i < 64; ++i) ASSERT_TRUE(q.try_enqueue(i));
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(q.try_dequeue().value(), i);
  }
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TEST(MpmcQueue, MpmcConservation) {
  MpmcQueue<std::uint64_t> q(256);
  constexpr std::size_t kProducers = 4, kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 50000;
  std::atomic<std::uint64_t> consumed_count{0};
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::size_t> producers_done{0};

  test::run_threads(kProducers + kConsumers, [&](std::size_t idx) {
    if (idx < kProducers) {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = make_tag(idx, i);
        while (!q.try_enqueue(v)) cpu_relax();
      }
      producers_done.fetch_add(1, std::memory_order_release);
    } else {
      std::map<std::size_t, std::uint64_t> last_seq;
      for (;;) {
        if (auto v = q.try_dequeue()) {
          consumed_count.fetch_add(1, std::memory_order_relaxed);
          checksum.fetch_add(*v, std::memory_order_relaxed);
          auto it = last_seq.find(tag_producer(*v));
          if (it != last_seq.end()) {
            ASSERT_GT(tag_seq(*v), it->second) << "per-producer FIFO broken";
          }
          last_seq[tag_producer(*v)] = tag_seq(*v);
        } else if (producers_done.load(std::memory_order_acquire) ==
                   kProducers) {
          break;
        }
      }
    }
  });

  std::uint64_t leftover_count = 0, leftover_sum = 0;
  while (auto v = q.try_dequeue()) {
    ++leftover_count;
    leftover_sum += *v;
  }
  EXPECT_EQ(consumed_count.load() + leftover_count,
            kProducers * kPerProducer);
  std::uint64_t expected_sum = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      expected_sum += make_tag(p, i);
    }
  }
  EXPECT_EQ(checksum.load() + leftover_sum, expected_sum);
}

// ---------- MPMC bulk operations ----------

TEST(MpmcQueue, PushBulkAllThenPopSingles) {
  MpmcQueue<int> q(16);
  int items[10];
  for (int i = 0; i < 10; ++i) items[i] = i;
  EXPECT_EQ(q.try_push_bulk(items, 10), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.try_dequeue().value(), i);
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TEST(MpmcQueue, PushBulkPartialWhenNearlyFull) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_enqueue(i));
  int items[6] = {100, 101, 102, 103, 104, 105};
  EXPECT_EQ(q.try_push_bulk(items, 6), 3u);  // only 3 cells free
  EXPECT_EQ(q.try_push_bulk(items, 6), 0u);  // now full
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.try_dequeue().value(), i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(q.try_dequeue().value(), 100 + i);
}

TEST(MpmcQueue, PopBulkDrainsInFifoOrder) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(q.try_enqueue(i));
  int out[16];
  EXPECT_EQ(q.try_pop_bulk(out, 16), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.try_pop_bulk(out, 16), 0u);
}

TEST(MpmcQueue, PopBulkHonorsMax) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.try_enqueue(i));
  int out[4];
  EXPECT_EQ(q.try_pop_bulk(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.try_pop_bulk(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], 4 + i);
  EXPECT_EQ(q.try_pop_bulk(out, 4), 2u);
}

TEST(MpmcQueue, BulkAndSingleOpsInterleaveAcrossLaps) {
  MpmcQueue<int> q(8);
  int next_in = 0, next_out = 0;
  int buf[5];
  for (int round = 0; round < 2000; ++round) {
    // Mix singles and bulks on both sides, forcing many lap wraps.
    if (round % 3 == 0) {
      while (q.try_enqueue(next_in)) ++next_in;
    } else {
      int items[3];
      for (int i = 0; i < 3; ++i) items[i] = next_in + i;
      next_in += static_cast<int>(q.try_push_bulk(items, 3));
    }
    const std::size_t n = q.try_pop_bulk(buf, 5);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], next_out);
      ++next_out;
    }
  }
  while (q.try_dequeue()) ++next_out;
  EXPECT_EQ(next_in, next_out);
}

// Conservation under concurrent bulk producers and bulk consumers: every
// element pushed is popped exactly once, with per-producer FIFO preserved
// (bulk claims are contiguous runs, so a producer's batches may interleave
// with other producers' but never internally reorder).
TEST(MpmcQueue, BulkMpmcConservationStress) {
  MpmcQueue<std::uint64_t> q(256);
  constexpr std::size_t kProducers = 3, kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 60000;
  constexpr std::size_t kBatch = 8;
  std::atomic<std::uint64_t> consumed_count{0};
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::size_t> producers_done{0};

  test::run_threads(kProducers + kConsumers, [&](std::size_t idx) {
    if (idx < kProducers) {
      std::uint64_t batch[kBatch];
      std::uint64_t i = 0;
      while (i < kPerProducer) {
        const std::size_t want =
            std::min<std::uint64_t>(kBatch, kPerProducer - i);
        for (std::size_t j = 0; j < want; ++j) {
          batch[j] = make_tag(idx, i + j);
        }
        std::size_t pushed = 0;
        while (pushed < want) {
          const std::size_t n =
              q.try_push_bulk(batch + pushed, want - pushed);
          if (n == 0) cpu_relax();
          pushed += n;
        }
        i += want;
      }
      producers_done.fetch_add(1, std::memory_order_release);
    } else {
      std::uint64_t out[kBatch];
      std::map<std::size_t, std::uint64_t> last_seq;
      const auto account = [&](std::size_t n) {
        consumed_count.fetch_add(n, std::memory_order_relaxed);
        for (std::size_t j = 0; j < n; ++j) {
          checksum.fetch_add(out[j], std::memory_order_relaxed);
          auto it = last_seq.find(tag_producer(out[j]));
          if (it != last_seq.end()) {
            ASSERT_GT(tag_seq(out[j]), it->second)
                << "per-producer FIFO broken by bulk ops";
          }
          last_seq[tag_producer(out[j])] = tag_seq(out[j]);
        }
      };
      for (;;) {
        const std::size_t n = q.try_pop_bulk(out, kBatch);
        if (n != 0) {
          account(n);
          continue;
        }
        if (producers_done.load(std::memory_order_acquire) == kProducers) {
          // Re-check after the done flag: elements published between our
          // empty scan and the flag read must still be accounted.
          const std::size_t m = q.try_pop_bulk(out, kBatch);
          if (m == 0) break;
          account(m);
        }
      }
    }
  });

  std::uint64_t leftover_count = 0, leftover_sum = 0;
  while (auto v = q.try_dequeue()) {
    ++leftover_count;
    leftover_sum += *v;
  }
  EXPECT_EQ(consumed_count.load() + leftover_count,
            kProducers * kPerProducer);
  std::uint64_t expected_sum = 0;
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      expected_sum += make_tag(p, i);
    }
  }
  EXPECT_EQ(checksum.load() + leftover_sum, expected_sum);
}

TEST(MpmcQueue, BulkNonTrivialElementType) {
  MpmcQueue<std::vector<int>> q(8);
  std::vector<int> items[4];
  for (int i = 0; i < 4; ++i) items[i] = std::vector<int>(50, i);
  EXPECT_EQ(q.try_push_bulk(items, 4), 4u);
  std::vector<int> out[4];
  EXPECT_EQ(q.try_pop_bulk(out, 4), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].size(), 50u);
    EXPECT_EQ(out[i][0], i);
  }
  // Leave one in for the destructor path.
  EXPECT_EQ(q.try_push_bulk(items, 1), 1u);
}

// ---------- Chase-Lev work-stealing deque ----------

TEST(WsDeque, OwnerLifoWhenAlone) {
  WorkStealingDeque<std::uint64_t> d;
  for (std::uint64_t i = 0; i < 100; ++i) d.push(i);
  for (std::uint64_t i = 100; i-- > 0;) {
    EXPECT_EQ(d.try_pop().value(), i);
  }
  EXPECT_FALSE(d.try_pop().has_value());
}

TEST(WsDeque, StealTakesOldestFirst) {
  WorkStealingDeque<std::uint64_t> d;
  for (std::uint64_t i = 0; i < 10; ++i) d.push(i);
  EXPECT_EQ(d.try_steal().value(), 0u);
  EXPECT_EQ(d.try_steal().value(), 1u);
  EXPECT_EQ(d.try_pop().value(), 9u);
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  WorkStealingDeque<std::uint64_t> d(2);
  for (std::uint64_t i = 0; i < 10000; ++i) d.push(i);
  EXPECT_EQ(d.size_approx(), 10000u);
  for (std::uint64_t i = 10000; i-- > 0;) {
    ASSERT_EQ(d.try_pop().value(), i);
  }
}

TEST(WsDeque, OwnerAndThievesConserveWork) {
  WorkStealingDeque<std::uint64_t> d;
  constexpr std::uint64_t kTasks = 200000;
  constexpr int kThieves = 3;
  std::atomic<std::uint64_t> taken{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> owner_done{false};

  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (!owner_done.load(std::memory_order_acquire) ||
             d.size_approx() > 0) {
        if (auto v = d.try_steal()) {
          taken.fetch_add(1, std::memory_order_relaxed);
          sum.fetch_add(*v, std::memory_order_relaxed);
        }
      }
    });
  }

  std::uint64_t pushed_sum = 0;
  for (std::uint64_t i = 1; i <= kTasks; ++i) {
    d.push(i);
    pushed_sum += i;
    if (i % 7 == 0) {
      if (auto v = d.try_pop()) {
        taken.fetch_add(1, std::memory_order_relaxed);
        sum.fetch_add(*v, std::memory_order_relaxed);
      }
    }
  }
  // Owner drains what's left, racing the thieves.
  while (auto v = d.try_pop()) {
    taken.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(*v, std::memory_order_relaxed);
  }
  owner_done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Final sweep (owner drained before signalling, but a thief may have been
  // mid-steal; deque must now be empty).
  EXPECT_FALSE(d.try_pop().has_value());

  EXPECT_EQ(taken.load(), kTasks);
  EXPECT_EQ(sum.load(), pushed_sum);
}

}  // namespace
}  // namespace ccds

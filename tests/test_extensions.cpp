// Tests for the extension structures: Peterson / Filter software locks,
// the bitonic counting network (step property + uniqueness), and the
// blocking bounded queue (blocking, backpressure, close semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "counter/counting_network.hpp"
#include "queue/blocking_queue.hpp"
#include "sync/peterson.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// ---------- Peterson lock ----------

TEST(PetersonLock, MutualExclusionBetweenTwoThreads) {
  PetersonLock lock;
  std::uint64_t counter = 0;
  constexpr int kIters = 100000;
  test::run_threads(2, [&](std::size_t idx) {
    for (int i = 0; i < kIters; ++i) {
      lock.lock(static_cast<int>(idx));
      ++counter;
      lock.unlock(static_cast<int>(idx));
    }
  });
  EXPECT_EQ(counter, 2ull * kIters);
}

TEST(PetersonLock, NoOverlap) {
  PetersonLock lock;
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  test::run_threads(2, [&](std::size_t idx) {
    for (int i = 0; i < 20000; ++i) {
      lock.lock(static_cast<int>(idx));
      if (inside.fetch_add(1, std::memory_order_acq_rel) != 0) {
        overlap.store(true);
      }
      inside.fetch_sub(1, std::memory_order_acq_rel);
      lock.unlock(static_cast<int>(idx));
    }
  });
  EXPECT_FALSE(overlap.load());
}

// ---------- Filter lock ----------

TEST(FilterLock, MutualExclusionAmongManyThreads) {
  FilterLock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 300;  // filter lock is O(kMaxThreads^2) per acquire
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      lock.lock();
      ++counter;
      lock.unlock();
    }
  });
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---------- counting network ----------

TEST(CountingNetwork, StepPropertySequential) {
  // Feed tokens one at a time (always quiescent): after every token the
  // output-wire counts must satisfy the step property — counts
  // non-increasing across wires, max-min <= 1.
  constexpr int kWidth = 8;
  detail::Bitonic net(kWidth);
  int counts[kWidth] = {};
  for (int t = 0; t < 1000; ++t) {
    const int wire = net.traverse(t % kWidth);
    ASSERT_GE(wire, 0);
    ASSERT_LT(wire, kWidth);
    ++counts[wire];
    for (int i = 0; i + 1 < kWidth; ++i) {
      ASSERT_GE(counts[i], counts[i + 1])
          << "step property violated after token " << t << " at wire " << i;
      ASSERT_LE(counts[i] - counts[i + 1], 1);
    }
  }
}

TEST(CountingNetwork, StepPropertyAtQuiescenceAfterConcurrency) {
  constexpr int kWidth = 8;
  detail::Bitonic net(kWidth);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 20000;
  std::vector<std::vector<int>> counts(kThreads, std::vector<int>(kWidth, 0));
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int t = 0; t < kPerThread; ++t) {
      ++counts[idx][net.traverse(static_cast<int>(idx) % kWidth)];
    }
  });
  int total[kWidth] = {};
  int sum = 0;
  for (int w = 0; w < kWidth; ++w) {
    for (int t = 0; t < kThreads; ++t) total[w] += counts[t][w];
    sum += total[w];
  }
  EXPECT_EQ(sum, kThreads * kPerThread);
  for (int i = 0; i + 1 < kWidth; ++i) {
    EXPECT_GE(total[i], total[i + 1]) << "wire " << i;
    EXPECT_LE(total[i] - total[i + 1], 1) << "wire " << i;
  }
}

TEST(CountingNetworkCounter, ValuesAreUniqueAndContiguousAtQuiescence) {
  CountingNetworkCounter<4> counter;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    got[idx].reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) got[idx].push_back(counter.next());
  });
  std::set<std::uint64_t> all;
  for (auto& v : got) all.insert(v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread)
      << "duplicate value handed out";
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(),
            static_cast<std::uint64_t>(kThreads) * kPerThread - 1)
      << "values not contiguous at quiescence";
  EXPECT_EQ(counter.issued(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(CountingNetworkCounter, SequentialIsOrdered) {
  CountingNetworkCounter<8> counter;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(counter.next(), i);  // with no concurrency it counts exactly
  }
}

// ---------- blocking bounded queue ----------

TEST(BlockingQueue, TryVariantsRespectCapacity) {
  BlockingBoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.try_pop().value(), 0);
  EXPECT_TRUE(q.try_push(99));
  for (int expect : {1, 2, 3, 99}) EXPECT_EQ(q.try_pop().value(), expect);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, PushBlocksUntilSpace) {
  BlockingBoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(3));  // blocks until a pop
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load()) << "push did not block on a full queue";
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, PopBlocksUntilItem) {
  BlockingBoundedQueue<int> q(2);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(popped.load()) << "pop did not block on an empty queue";
  q.push(7);
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BlockingQueue, CloseDrainsThenSignals) {
  BlockingBoundedQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));       // closed: push fails
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);  // drains remaining
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed => nullopt
}

TEST(BlockingQueue, CloseWakesBlockedConsumers) {
  BlockingBoundedQueue<int> q(2);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      EXPECT_FALSE(q.pop().has_value());
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(BlockingQueue, ProducerConsumerConservation) {
  BlockingBoundedQueue<std::uint64_t> q(16);
  constexpr std::size_t kProducers = 3, kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 20000;
  std::atomic<std::uint64_t> consumed{0}, checksum{0};
  std::atomic<std::size_t> producers_left{kProducers};

  test::run_threads(kProducers + kConsumers, [&](std::size_t idx) {
    if (idx < kProducers) {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(idx * kPerProducer + i));
      }
      if (producers_left.fetch_sub(1) == 1) q.close();
    } else {
      while (auto v = q.pop()) {  // blocking pops until closed+drained
        consumed.fetch_add(1, std::memory_order_relaxed);
        checksum.fetch_add(*v, std::memory_order_relaxed);
      }
    }
  });

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  std::uint64_t expected = 0;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      expected += p * kPerProducer + i;
    }
  }
  EXPECT_EQ(checksum.load(), expected);
}

}  // namespace
}  // namespace ccds

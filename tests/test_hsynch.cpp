// Tests for the hierarchical H-Synch engine (sync/hsynch.hpp): per-node
// list sizing from the topology service, exactness and conservation with
// threads spread across several deterministic nodes, the node-winner /
// global-lock bracket, and the batch surfaces on a multi-node hierarchy.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/thread_registry.hpp"
#include "core/topology.hpp"
#include "queue/combining_queue.hpp"
#include "sync/hsynch.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

std::size_t node_mod2(std::size_t tid) { return tid % 2; }
std::size_t node_mod4(std::size_t tid) { return tid % 4; }
std::size_t node_all_zero(std::size_t) { return 0; }

TEST(HSynch, ListCountFollowsTopologyAtConstruction) {
  {
    topology::ScopedOverride ov(1, nullptr);
    HSynch<std::uint64_t> e;
    EXPECT_EQ(e.node_list_count(), 1u);
  }
  {
    topology::ScopedOverride ov(4, &node_mod4);
    HSynch<std::uint64_t> e;
    EXPECT_EQ(e.node_list_count(), 4u);
  }
  {
    // More topology nodes than the engine caps at: clamped, never zero.
    topology::ScopedOverride ov(64, nullptr);
    HSynch<std::uint64_t> e;
    EXPECT_EQ(e.node_list_count(), kHSynchMaxNodes);
  }
  // No override: whatever the host reports, the engine builds >= 1 list.
  HSynch<std::uint64_t> e;
  EXPECT_GE(e.node_list_count(), 1u);
  EXPECT_LE(e.node_list_count(), kHSynchMaxNodes);
}

// With every thread mapped to ONE node, H-Synch degenerates to CC-Synch
// plus an uncontended lock — exactness must hold.
TEST(HSynch, SingleNodeDegeneratesToExactCombining) {
  topology::ScopedOverride ov(1, &node_all_zero);
  HSynch<std::uint64_t> e;
  constexpr std::size_t kThreads = 8;
  constexpr int kOps = 20000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kOps; ++i) {
      e.apply([](std::uint64_t& v) { ++v; });
    }
  });
  EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }),
            kThreads * static_cast<std::uint64_t>(kOps));
}

// The core hierarchical claim: concurrent node winners from DIFFERENT nodes
// serialize through the global lock, so a plain read-modify-write state
// stays exact.  Threads spread over 4 deterministic nodes; any unlocked
// window between two node winners would lose increments.
TEST(HSynch, CrossNodeWinnersSerializeExactly) {
  topology::ScopedOverride ov(4, &node_mod4);
  HSynch<std::uint64_t> e;
  constexpr std::size_t kThreads = 8;
  constexpr int kOps = 20000;
  std::vector<std::uint64_t> done(kThreads, 0);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      e.apply([](std::uint64_t& v) { ++v; });
      ++done[idx];
    }
  });
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(done[t], static_cast<std::uint64_t>(kOps)) << "thread " << t;
  }
  EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }),
            kThreads * static_cast<std::uint64_t>(kOps));
}

// fetch_add-style results across nodes must be unique: two node winners
// whose episodes overlapped would hand the same prior out twice.
TEST(HSynch, FetchAddPriorsUniqueAcrossNodes) {
  topology::ScopedOverride ov(2, &node_mod2);
  HSynch<std::uint64_t> e;
  constexpr std::size_t kThreads = 6;
  constexpr int kOps = 10000;
  std::vector<std::vector<std::uint64_t>> priors(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    priors[idx].reserve(kOps);
    for (int i = 0; i < kOps; ++i) {
      priors[idx].push_back(e.apply([](std::uint64_t& v) { return v++; }));
    }
  });
  std::set<std::uint64_t> uniq;
  for (auto& v : priors) uniq.insert(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), kThreads * static_cast<std::size_t>(kOps));
}

// Batch atomicity through the hierarchy: a {read, add, read} batch
// published on one node's list must see no foreign op in between, even
// though other nodes are combining concurrently.
TEST(HSynch, BatchesStayAtomicAcrossNodes) {
  topology::ScopedOverride ov(2, &node_mod2);
  struct AddOp {
    std::uint64_t delta;
    std::uint64_t seen;
    void operator()(std::uint64_t& v) {
      seen = v;
      v += delta;
    }
  };
  HSynch<std::uint64_t> e;
  constexpr std::size_t kThreads = 6;
  constexpr int kIters = 4000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      AddOp ops[3] = {{0, 0}, {10, 0}, {0, 0}};
      e.apply_batch(std::span<AddOp>(ops));
      ASSERT_EQ(ops[1].seen, ops[0].seen);
      ASSERT_EQ(ops[2].seen, ops[0].seen + 10);
    }
  });
  EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }),
            kThreads * static_cast<std::uint64_t>(kIters) * 10);
}

// The queue front on a 2-node hierarchy: conservation and no duplicate
// delivery under mixed batch/single traffic.
TEST(HSynch, QueueFrontConservesAcrossNodes) {
  topology::ScopedOverride ov(2, &node_mod2);
  CombiningQueue<std::uint64_t, HSynch> q;
  using Op = QueueOp<std::uint64_t>;
  constexpr std::size_t kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      const std::uint64_t v = static_cast<std::uint64_t>(idx) * kOps + i;
      if (i % 2 == 0) {
        q.enqueue(v);
        if (auto d = q.try_dequeue()) got[idx].push_back(*d);
      } else {
        std::vector<Op> ops;
        ops.push_back(Op::enqueue(v));
        ops.push_back(Op::dequeue());
        q.apply_batch(std::span<Op>(ops));
        if (ops[1].result) got[idx].push_back(*ops[1].result);
      }
    }
  });
  std::size_t residue = 0;
  while (q.try_dequeue()) ++residue;
  std::set<std::uint64_t> uniq;
  std::size_t total = residue;
  for (auto& v : got) {
    total += v.size();
    uniq.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, kThreads * static_cast<std::size_t>(kOps));
  EXPECT_EQ(uniq.size(), total - residue) << "duplicate dequeue";
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace ccds
